//! The model driver: main body = Dynamics then Physics, per step.
//!
//! Matches the paper's Figure 1 structure. Phases recorded in the trace:
//! `"dynamics"` (containing `"filter"`, `"halo"`, `"fd"`) and `"physics"`
//! (containing `"balance"` when scheme 3 is active) — the cost model
//! replays these into the component breakdowns of Figure 1 and the
//! execution times of Tables 4–7.

use crate::config::{AgcmConfig, ConfigError};
use agcm_dynamics::core::{Dynamics, DynamicsConfig};
use agcm_dynamics::state::ModelState;
use agcm_grid::arakawa::Variable;
use agcm_grid::decomp::{Decomp, Subdomain};
use agcm_mps::fault::FaultPlan;
use agcm_mps::runtime::{run_traced, run_world, WorldOptions};
use agcm_mps::span::SpanObserver;
use agcm_mps::topology::CartComm;
use agcm_mps::trace::WorldTrace;
use agcm_mps::{CancelToken, Comm};
use agcm_physics::balance::exec::run_balanced;
use agcm_physics::balance::scheme3::PairwiseExchange;
use agcm_physics::load::LoadTracker;
use agcm_physics::step::PhysicsStep;
use agcm_resilience::checkpoint::ModelCheckpoint;
use agcm_resilience::coordinator::{write_coordinated, CheckpointStore};
use agcm_resilience::metrics::ResilienceMetrics;
use agcm_resilience::recovery::{
    run_recovered, AttemptFailure, RecoveryError, RecoveryOptions, RunProgress,
};
use std::sync::Arc;

/// Per-rank results of a model run.
#[derive(Debug, Clone, PartialEq)]
pub struct RankOutcome {
    /// Measured physics load (flops) per step.
    pub physics_loads: Vec<f64>,
    /// Whether the state stayed finite.
    pub stable: bool,
    /// Final local maximum wind speed.
    pub max_wind: f64,
}

/// A completed run: per-rank outcomes plus the full execution trace.
#[derive(Debug)]
pub struct ModelRun {
    /// Outcomes in rank order.
    pub ranks: Vec<RankOutcome>,
    /// The execution trace (for cost-model replay).
    pub trace: WorldTrace,
    /// The configuration that produced this run.
    pub config: AgcmConfig,
}

impl ModelRun {
    /// Physics load imbalance at a given step, paper metric.
    pub fn physics_imbalance(&self, step: usize) -> f64 {
        let loads: Vec<f64> = self.ranks.iter().map(|r| r.physics_loads[step]).collect();
        agcm_physics::load::imbalance(&loads)
    }

    /// True if every rank stayed finite.
    pub fn stable(&self) -> bool {
        self.ranks.iter().all(|r| r.stable)
    }
}

/// One rank's per-step machinery, shared by the plain and resilient
/// drivers so the two cannot drift apart.
struct StepContext<'a> {
    cfg: &'a AgcmConfig,
    cart: CartComm,
    sub: Subdomain,
    dynamics: Dynamics,
    physics: PhysicsStep,
    scheme: PairwiseExchange,
}

impl<'a> StepContext<'a> {
    fn new(cfg: &'a AgcmConfig, decomp: Decomp, comm: &Comm) -> StepContext<'a> {
        let sub = decomp.subdomain_of_rank(comm.rank());
        StepContext {
            cfg,
            cart: CartComm::new(comm, cfg.mesh_lat, cfg.mesh_lon, (false, true)),
            sub,
            dynamics: Dynamics::new(
                cfg.grid,
                decomp,
                DynamicsConfig::new(cfg.dt, Some(cfg.filter))
                    .with_filter_organization(cfg.filter_organization),
            ),
            physics: PhysicsStep::new(cfg.grid, sub),
            scheme: PairwiseExchange::default(),
        }
    }

    /// Advance one step: Dynamics then Physics (Figure 1). Returns the
    /// (performed, owned) physics loads. The whole step is wrapped in a
    /// `"step"` phase so telemetry can slice the trace per timestep.
    fn step(
        &self,
        comm: &Comm,
        state: &mut ModelState,
        tracker: &LoadTracker,
        step: u64,
    ) -> (f64, f64) {
        comm.phase("step", || self.step_body(comm, state, tracker, step))
    }

    fn step_body(
        &self,
        comm: &Comm,
        state: &mut ModelState,
        tracker: &LoadTracker,
        step: u64,
    ) -> (f64, f64) {
        let cfg = self.cfg;
        let t = step as f64 * cfg.dt;
        comm.phase("dynamics", || self.dynamics.step(&self.cart, state));

        comm.phase("physics", || {
            // Scheme 3 needs a load estimate before it "can proceed":
            // use the previous pass's *owned-column* load once
            // available (the executed load is balanced by design and
            // would mask the underlying imbalance).
            let estimates = if cfg.balance_physics {
                comm.phase("balance", || tracker.gather_estimates(comm))
            } else {
                None
            };
            let theta = &mut state.fields[Variable::Theta.index()];
            match estimates {
                Some(loads) => {
                    let rounds =
                        self.scheme
                            .plan_rounds(&loads, cfg.balance_target, cfg.balance_rounds);
                    let plan: Vec<_> = rounds.into_iter().flatten().collect();
                    let br = run_balanced(comm, &cfg.grid, &self.sub, theta, t, &plan);
                    (br.performed, br.owned)
                }
                None => {
                    let l = self.physics.run_local(comm, theta, t);
                    (l, l)
                }
            }
        })
    }
}

/// Run the model per `cfg`, spawning one thread per mesh node. Panics on
/// a degenerate configuration; use [`try_run_model`] for a typed error.
pub fn run_model(cfg: AgcmConfig) -> ModelRun {
    try_run_model(cfg).unwrap_or_else(|e| panic!("invalid AGCM config: {e}"))
}

/// Run the model per `cfg`, rejecting degenerate configurations (zero
/// ranks, zero steps, mesh larger than the grid) as a typed
/// [`ConfigError`] before any thread is spawned.
pub fn try_run_model(cfg: AgcmConfig) -> Result<ModelRun, ConfigError> {
    cfg.validate()?;
    let decomp = Decomp::new(cfg.grid, cfg.mesh_lat, cfg.mesh_lon);
    let (ranks, trace) = run_traced(cfg.size(), |comm| model_body(&cfg, decomp, comm));
    // With no sink installed this is a single atomic load.
    agcm_telemetry::telemetry().observe_trace(&trace, None);
    Ok(ModelRun {
        ranks,
        trace,
        config: cfg,
    })
}

/// Like [`try_run_model`], but with a live [`SpanObserver`] attached, so
/// a sampling profiler (or any other live listener) sees every phase
/// boundary while the world runs. The trace and outcomes are identical
/// to a plain run; only the observation channel differs.
pub fn try_run_model_observed(
    cfg: AgcmConfig,
    spans: Arc<dyn SpanObserver>,
) -> Result<ModelRun, ConfigError> {
    cfg.validate()?;
    let decomp = Decomp::new(cfg.grid, cfg.mesh_lat, cfg.mesh_lon);
    let out = run_world(
        cfg.size(),
        WorldOptions {
            spans: Some(spans),
            ..WorldOptions::default()
        },
        |comm| model_body(&cfg, decomp, comm),
    );
    let trace = out.trace;
    // No fault plan and no cancel token: typed failures are impossible,
    // so unwrapping per-rank results mirrors the plain path.
    let ranks = out
        .results
        .into_iter()
        .map(|r| r.expect("observed run has no fault plan"))
        .collect();
    agcm_telemetry::telemetry().observe_trace(&trace, None);
    Ok(ModelRun {
        ranks,
        trace,
        config: cfg,
    })
}

/// The per-rank body shared by every plain-run entry point.
fn model_body(cfg: &AgcmConfig, decomp: Decomp, comm: &Comm) -> RankOutcome {
    let ctx = StepContext::new(cfg, decomp, comm);
    let mut state = ModelState::initial(cfg.grid, ctx.sub);
    let mut tracker = LoadTracker::new();
    let mut physics_loads = Vec::with_capacity(cfg.steps);

    for step in 0..cfg.steps {
        let (performed, owned) = ctx.step(comm, &mut state, &tracker, step as u64);
        tracker.record(owned);
        physics_loads.push(performed);
    }

    RankOutcome {
        physics_loads,
        stable: !state.has_blown_up(),
        max_wind: state.max_wind(),
    }
}

/// Knobs for a resilient model run.
#[derive(Clone)]
pub struct ResilienceOpts {
    /// Where checkpoints live.
    pub store: CheckpointStore,
    /// Restarts allowed after the first attempt.
    pub max_restarts: usize,
    /// Fault plan for the *first* attempt (a restart models the failed
    /// node being replaced, so later attempts run fault-free).
    pub plan: Option<FaultPlan>,
    /// Cooperative cancellation token (deadline expiry, explicit
    /// cancellation); a cancelled run is never retried.
    pub cancel: Option<CancelToken>,
    /// Live progress observer: attempt starts from the recovery loop,
    /// checkpoint commits from rank 0.
    pub progress: Option<std::sync::Arc<dyn RunProgress>>,
    /// Live span observer, notified at every phase boundary on every
    /// rank while the model runs.
    pub spans: Option<std::sync::Arc<dyn agcm_mps::span::SpanObserver>>,
}

impl std::fmt::Debug for ResilienceOpts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilienceOpts")
            .field("store", &self.store)
            .field("max_restarts", &self.max_restarts)
            .field("plan", &self.plan)
            .field("cancel", &self.cancel)
            .field("progress", &self.progress.as_ref().map(|_| "RunProgress"))
            .field("spans", &self.spans.as_ref().map(|_| "SpanObserver"))
            .finish()
    }
}

impl ResilienceOpts {
    /// Checkpoints under `dir`, three restarts, no injected faults.
    pub fn new(dir: impl Into<std::path::PathBuf>) -> ResilienceOpts {
        ResilienceOpts::from_store(CheckpointStore::new(dir))
    }

    /// Checkpoints in an explicit store — e.g. one wired to a shared
    /// `ShardBackend` so the run resumes from (and contributes to) the
    /// fleet-wide content-addressed store instead of a private
    /// directory.
    pub fn from_store(store: CheckpointStore) -> ResilienceOpts {
        ResilienceOpts {
            store,
            max_restarts: 3,
            plan: None,
            cancel: None,
            progress: None,
            spans: None,
        }
    }

    /// Builder-style: inject this fault plan on the first attempt.
    pub fn with_plan(mut self, plan: FaultPlan) -> ResilienceOpts {
        self.plan = Some(plan);
        self
    }

    /// Builder-style: thread this cancellation token through the run.
    pub fn with_cancel(mut self, token: CancelToken) -> ResilienceOpts {
        self.cancel = Some(token);
        self
    }

    /// Builder-style: observe attempts and checkpoint commits live.
    pub fn with_progress(mut self, progress: std::sync::Arc<dyn RunProgress>) -> ResilienceOpts {
        self.progress = Some(progress);
        self
    }

    /// Builder-style: observe phase boundaries live.
    pub fn with_spans(
        mut self,
        spans: std::sync::Arc<dyn agcm_mps::span::SpanObserver>,
    ) -> ResilienceOpts {
        self.spans = Some(spans);
        self
    }
}

/// A completed resilient run.
#[derive(Debug)]
pub struct ResilientRun {
    /// Outcomes in rank order (from the successful attempt).
    pub ranks: Vec<RankOutcome>,
    /// Attempts made (1 = no failure).
    pub attempts: usize,
    /// Failed attempts, in order.
    pub failures: Vec<AttemptFailure>,
    /// Injected-fault log per rank, merged across attempts (the run's
    /// deterministic fault trace).
    pub fault_events: Vec<Vec<agcm_mps::fault::FaultEvent>>,
    /// Aggregated fault/recovery counters.
    pub metrics: ResilienceMetrics,
    /// Execution trace of the successful attempt.
    pub trace: WorldTrace,
    /// The configuration that produced this run.
    pub config: AgcmConfig,
}

/// Run the model with checkpoint/restart recovery.
///
/// Every `cfg.checkpoint_every` steps each rank writes its full model
/// state — prognostic fields, physics-balancer memory, load series, step
/// counter — as a shard, committed atomically by rank 0 (see
/// `agcm_resilience::coordinator`). If a rank dies (e.g. killed by
/// `opts.plan`), surviving ranks observe typed disconnects instead of
/// panics, the attempt is abandoned, and the run restarts from the last
/// committed checkpoint. The model is a deterministic function of
/// (state, step), so a recovered run continues bit-identically with an
/// uninterrupted one.
pub fn run_model_resilient(
    cfg: AgcmConfig,
    opts: ResilienceOpts,
) -> Result<ResilientRun, RecoveryError> {
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid AGCM config: {e}"));
    let decomp = Decomp::new(cfg.grid, cfg.mesh_lat, cfg.mesh_lon);
    let store = &opts.store;
    let report = run_recovered(
        cfg.size(),
        RecoveryOptions {
            max_restarts: opts.max_restarts,
            cancel: opts.cancel.clone(),
            progress: opts.progress.clone(),
            spans: opts.spans.clone(),
        },
        store,
        |attempt| {
            if attempt == 0 {
                opts.plan.clone()
            } else {
                None
            }
        },
        |comm, resume| {
            let ctx = StepContext::new(&cfg, decomp, comm);
            let rank = comm.rank() as u32;
            let (start, mut state, mut tracker, mut physics_loads) = match resume {
                Some(step) => {
                    let ckpt = store
                        .load_shard(step, rank)
                        .expect("restart requires a loadable committed shard");
                    let mut state = ModelState::zeros(cfg.grid, ctx.sub);
                    state.fields = ckpt.fields;
                    let mut tracker = LoadTracker::new();
                    if ckpt.scalars[0] != 0.0 {
                        tracker.record(ckpt.scalars[1]);
                    }
                    (step, state, tracker, ckpt.series)
                }
                None => (
                    0,
                    ModelState::initial(cfg.grid, ctx.sub),
                    LoadTracker::new(),
                    Vec::with_capacity(cfg.steps),
                ),
            };

            for step in start..cfg.steps as u64 {
                comm.begin_step(step);
                let (performed, owned) = ctx.step(comm, &mut state, &tracker, step);
                tracker.record(owned);
                physics_loads.push(performed);

                if cfg.checkpoint_every > 0 && (step + 1) % cfg.checkpoint_every as u64 == 0 {
                    let ckpt = ModelCheckpoint {
                        rank,
                        world: comm.size() as u32,
                        step: step + 1,
                        seeds: Vec::new(),
                        scalars: match tracker.estimate() {
                            Some(v) => vec![1.0, v],
                            None => vec![0.0, 0.0],
                        },
                        series: physics_loads.clone(),
                        fields: state.fields.clone(),
                    };
                    write_coordinated(comm, store, &ckpt).expect("checkpoint write must succeed");
                    // One notification per commit, not per shard.
                    if rank == 0 {
                        if let Some(progress) = &opts.progress {
                            progress.on_checkpoint(step + 1);
                        }
                    }
                }
            }

            RankOutcome {
                physics_loads,
                stable: !state.has_blown_up(),
                max_wind: state.max_wind(),
            }
        },
    )?;
    agcm_telemetry::telemetry().observe_trace(
        &report.trace,
        Some(agcm_telemetry::ResilienceCounters {
            attempts: report.attempts as u64,
            failures: report.failures.len() as u64,
            fault_events: report.fault_events.iter().map(|e| e.len() as u64).sum(),
        }),
    );
    Ok(ResilientRun {
        ranks: report.results,
        attempts: report.attempts,
        failures: report.failures,
        fault_events: report.fault_events,
        metrics: report.metrics,
        trace: report.trace,
        config: cfg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_filtering::driver::FilterVariant;
    use agcm_grid::latlon::GridSpec;

    fn small_cfg(filter: FilterVariant) -> AgcmConfig {
        AgcmConfig::for_grid(GridSpec::new(48, 24, 3), 2, 2, filter).with_steps(3)
    }

    #[test]
    fn model_runs_stably_with_every_filter() {
        for filter in FilterVariant::ALL {
            let run = run_model(small_cfg(filter));
            assert!(run.stable(), "{filter:?} run must stay finite");
            assert_eq!(run.ranks.len(), 4);
            for r in &run.ranks {
                assert_eq!(r.physics_loads.len(), 3);
                assert!(r.max_wind < 300.0);
            }
        }
    }

    #[test]
    fn trace_contains_component_phases() {
        let run = run_model(small_cfg(FilterVariant::LbFft));
        use agcm_mps::trace::Event;
        for evs in &run.trace.ranks {
            let count = |name: &str| {
                evs.iter()
                    .filter(|e| matches!(e, Event::PhaseBegin(n) if *n == name))
                    .count()
            };
            assert_eq!(count("step"), 3);
            assert_eq!(count("dynamics"), 3);
            assert_eq!(count("physics"), 3);
            assert_eq!(count("filter"), 3);
        }
    }

    #[test]
    fn physics_balancing_reduces_step_imbalance() {
        let base = AgcmConfig::for_grid(GridSpec::new(72, 46, 9), 4, 4, FilterVariant::LbFft)
            .with_steps(3);
        let unbalanced = run_model(base);
        let balanced = run_model(base.with_physics_balancing());
        // Step 0 has no estimate yet; steps 1+ are balanced.
        let before = unbalanced.physics_imbalance(2);
        let after = balanced.physics_imbalance(2);
        assert!(before > 0.08, "unbalanced imbalance {before}");
        assert!(after < 0.6 * before, "balancing helps: {before} -> {after}");
        assert!(balanced.stable());
    }

    #[test]
    fn degenerate_configs_are_typed_errors_not_panics() {
        let base = small_cfg(FilterVariant::LbFft);

        let mut zero_ranks = base;
        zero_ranks.mesh_lat = 0;
        assert!(matches!(
            try_run_model(zero_ranks),
            Err(ConfigError::ZeroRanks { .. })
        ));

        assert!(matches!(
            try_run_model(base.with_steps(0)),
            Err(ConfigError::ZeroSteps)
        ));

        let mut too_wide = base;
        too_wide.mesh_lon = 49; // grid has 48 longitudes
        assert!(matches!(
            try_run_model(too_wide),
            Err(ConfigError::MeshExceedsGrid { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid AGCM config")]
    fn run_model_panics_with_typed_message_on_bad_config() {
        run_model(small_cfg(FilterVariant::LbFft).with_steps(0));
    }

    #[test]
    fn balanced_and_unbalanced_agree_physically() {
        // Load balancing must not change the answer: compare stability and
        // wind diagnostics across configurations.
        let base = small_cfg(FilterVariant::LbFft);
        let a = run_model(base);
        let b = run_model(base.with_physics_balancing());
        for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
            assert!((ra.max_wind - rb.max_wind).abs() < 1e-9);
        }
    }
}
