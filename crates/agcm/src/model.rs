//! The model driver: main body = Dynamics then Physics, per step.
//!
//! Matches the paper's Figure 1 structure. Phases recorded in the trace:
//! `"dynamics"` (containing `"filter"`, `"halo"`, `"fd"`) and `"physics"`
//! (containing `"balance"` when scheme 3 is active) — the cost model
//! replays these into the component breakdowns of Figure 1 and the
//! execution times of Tables 4–7.

use crate::config::AgcmConfig;
use agcm_dynamics::core::{Dynamics, DynamicsConfig};
use agcm_dynamics::state::ModelState;
use agcm_grid::arakawa::Variable;
use agcm_grid::decomp::Decomp;
use agcm_mps::runtime::run_traced;
use agcm_mps::topology::CartComm;
use agcm_mps::trace::WorldTrace;
use agcm_physics::balance::exec::run_balanced;
use agcm_physics::balance::scheme3::PairwiseExchange;
use agcm_physics::load::LoadTracker;
use agcm_physics::step::PhysicsStep;

/// Per-rank results of a model run.
#[derive(Debug, Clone)]
pub struct RankOutcome {
    /// Measured physics load (flops) per step.
    pub physics_loads: Vec<f64>,
    /// Whether the state stayed finite.
    pub stable: bool,
    /// Final local maximum wind speed.
    pub max_wind: f64,
}

/// A completed run: per-rank outcomes plus the full execution trace.
#[derive(Debug)]
pub struct ModelRun {
    /// Outcomes in rank order.
    pub ranks: Vec<RankOutcome>,
    /// The execution trace (for cost-model replay).
    pub trace: WorldTrace,
    /// The configuration that produced this run.
    pub config: AgcmConfig,
}

impl ModelRun {
    /// Physics load imbalance at a given step, paper metric.
    pub fn physics_imbalance(&self, step: usize) -> f64 {
        let loads: Vec<f64> = self.ranks.iter().map(|r| r.physics_loads[step]).collect();
        agcm_physics::load::imbalance(&loads)
    }

    /// True if every rank stayed finite.
    pub fn stable(&self) -> bool {
        self.ranks.iter().all(|r| r.stable)
    }
}

/// Run the model per `cfg`, spawning one thread per mesh node.
pub fn run_model(cfg: AgcmConfig) -> ModelRun {
    let decomp = Decomp::new(cfg.grid, cfg.mesh_lat, cfg.mesh_lon);
    let (ranks, trace) = run_traced(cfg.size(), |comm| {
        let cart = CartComm::new(comm, cfg.mesh_lat, cfg.mesh_lon, (false, true));
        let sub = decomp.subdomain_of_rank(comm.rank());
        let dynamics =
            Dynamics::new(cfg.grid, decomp, DynamicsConfig::new(cfg.dt, Some(cfg.filter)));
        let physics = PhysicsStep::new(cfg.grid, sub);
        let mut state = ModelState::initial(cfg.grid, sub);
        let mut tracker = LoadTracker::new();
        let mut physics_loads = Vec::with_capacity(cfg.steps);
        let scheme = PairwiseExchange::default();

        for step in 0..cfg.steps {
            let t = step as f64 * cfg.dt;
            comm.phase("dynamics", || dynamics.step(&cart, &mut state));

            let (performed, owned) = comm.phase("physics", || {
                // Scheme 3 needs a load estimate before it "can proceed":
                // use the previous pass's *owned-column* load once
                // available (the executed load is balanced by design and
                // would mask the underlying imbalance).
                let estimates = if cfg.balance_physics {
                    comm.phase("balance", || tracker.gather_estimates(comm))
                } else {
                    None
                };
                let theta = &mut state.fields[Variable::Theta.index()];
                match estimates {
                    Some(loads) => {
                        let rounds =
                            scheme.plan_rounds(&loads, cfg.balance_target, cfg.balance_rounds);
                        let plan: Vec<_> = rounds.into_iter().flatten().collect();
                        let br = run_balanced(comm, &cfg.grid, &sub, theta, t, &plan);
                        (br.performed, br.owned)
                    }
                    None => {
                        let l = physics.run_local(comm, theta, t);
                        (l, l)
                    }
                }
            });
            tracker.record(owned);
            physics_loads.push(performed);
        }

        RankOutcome {
            physics_loads,
            stable: !state.has_blown_up(),
            max_wind: state.max_wind(),
        }
    });
    ModelRun { ranks, trace, config: cfg }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_filtering::driver::FilterVariant;
    use agcm_grid::latlon::GridSpec;

    fn small_cfg(filter: FilterVariant) -> AgcmConfig {
        AgcmConfig::for_grid(GridSpec::new(48, 24, 3), 2, 2, filter).with_steps(3)
    }

    #[test]
    fn model_runs_stably_with_every_filter() {
        for filter in FilterVariant::ALL {
            let run = run_model(small_cfg(filter));
            assert!(run.stable(), "{filter:?} run must stay finite");
            assert_eq!(run.ranks.len(), 4);
            for r in &run.ranks {
                assert_eq!(r.physics_loads.len(), 3);
                assert!(r.max_wind < 300.0);
            }
        }
    }

    #[test]
    fn trace_contains_component_phases() {
        let run = run_model(small_cfg(FilterVariant::LbFft));
        use agcm_mps::trace::Event;
        for evs in &run.trace.ranks {
            let count = |name: &str| {
                evs.iter()
                    .filter(|e| matches!(e, Event::PhaseBegin(n) if *n == name))
                    .count()
            };
            assert_eq!(count("dynamics"), 3);
            assert_eq!(count("physics"), 3);
            assert_eq!(count("filter"), 3);
        }
    }

    #[test]
    fn physics_balancing_reduces_step_imbalance() {
        let base = AgcmConfig::for_grid(GridSpec::new(72, 46, 9), 4, 4, FilterVariant::LbFft)
            .with_steps(3);
        let unbalanced = run_model(base);
        let balanced = run_model(base.with_physics_balancing());
        // Step 0 has no estimate yet; steps 1+ are balanced.
        let before = unbalanced.physics_imbalance(2);
        let after = balanced.physics_imbalance(2);
        assert!(before > 0.08, "unbalanced imbalance {before}");
        assert!(after < 0.6 * before, "balancing helps: {before} -> {after}");
        assert!(balanced.stable());
    }

    #[test]
    fn balanced_and_unbalanced_agree_physically() {
        // Load balancing must not change the answer: compare stability and
        // wind diagnostics across configurations.
        let base = small_cfg(FilterVariant::LbFft);
        let a = run_model(base);
        let b = run_model(base.with_physics_balancing());
        for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
            assert!((ra.max_wind - rb.max_wind).abs() < 1e-9);
        }
    }
}
