//! Reusable GCM component templates (paper §5).
//!
//! "We are also identifying common algorithms and operation components
//! from GCM applications, and developing code modules which are reusable
//! and extensible (as application templates) … candidate components …
//! include efficient finite-difference kernels, parallel spectral filters,
//! communication modules for exchanging ghost-point values …, load-balance
//! modules, and fast (parallel) linear system solvers" (§5). The paper
//! proposed an object-oriented organization; the Rust rendering is a
//! component trait plus a pipeline that owns the timestep loop, so a new
//! GCM variant is assembled from parts rather than rewritten.
//!
//! The concrete components in this workspace already follow the template
//! contracts (the polar filters, the halo exchange, the balance schemes,
//! the implicit vertical solver); this module provides the glue and two
//! ready-made [`Component`] adapters.

use agcm_dynamics::core::Dynamics;
use agcm_dynamics::state::ModelState;
use agcm_mps::topology::CartComm;
use agcm_physics::step::PhysicsStep;

/// One pluggable stage of a model timestep. Implementations must be
/// collective over the mesh: every rank calls [`Component::step`] once per
/// model step, in pipeline order.
pub trait Component {
    /// Name used for the trace phase and reports.
    fn name(&self) -> &'static str;

    /// Advance the local state by one step at model time `t` (seconds).
    fn step(&mut self, cart: &CartComm, state: &mut ModelState, t: f64);
}

/// The Dynamics component as a pipeline stage.
pub struct DynamicsComponent {
    inner: Dynamics,
}

impl DynamicsComponent {
    /// Wrap a configured dynamical core.
    pub fn new(inner: Dynamics) -> DynamicsComponent {
        DynamicsComponent { inner }
    }
}

impl Component for DynamicsComponent {
    fn name(&self) -> &'static str {
        "dynamics"
    }

    fn step(&mut self, cart: &CartComm, state: &mut ModelState, _t: f64) {
        self.inner.step(cart, state);
    }
}

/// The (unbalanced) Physics component as a pipeline stage.
pub struct PhysicsComponent {
    inner: PhysicsStep,
}

impl PhysicsComponent {
    /// Wrap a configured physics driver.
    pub fn new(inner: PhysicsStep) -> PhysicsComponent {
        PhysicsComponent { inner }
    }
}

impl Component for PhysicsComponent {
    fn name(&self) -> &'static str {
        "physics"
    }

    fn step(&mut self, cart: &CartComm, state: &mut ModelState, t: f64) {
        use agcm_grid::arakawa::Variable;
        let theta = &mut state.fields[Variable::Theta.index()];
        self.inner.run_local(cart.comm(), theta, t);
    }
}

/// A model assembled from components: owns the timestep loop, brackets
/// each component in a trace phase, and keeps the clock.
pub struct Pipeline {
    components: Vec<Box<dyn Component>>,
    dt: f64,
    steps_taken: usize,
}

impl Pipeline {
    /// An empty pipeline with the given timestep.
    pub fn new(dt: f64) -> Pipeline {
        assert!(dt > 0.0, "timestep must be positive");
        Pipeline {
            components: Vec::new(),
            dt,
            steps_taken: 0,
        }
    }

    /// Append a component (builder style).
    pub fn with(mut self, c: Box<dyn Component>) -> Pipeline {
        self.components.push(c);
        self
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the pipeline has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Current model time (seconds).
    pub fn time(&self) -> f64 {
        self.steps_taken as f64 * self.dt
    }

    /// Run `n` steps of every component in order.
    pub fn run(&mut self, cart: &CartComm, state: &mut ModelState, n: usize) {
        for _ in 0..n {
            let t = self.time();
            for c in &mut self.components {
                cart.comm().phase_begin(c.name());
                c.step(cart, state, t);
                cart.comm().phase_end(c.name());
            }
            self.steps_taken += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_dynamics::core::DynamicsConfig;
    use agcm_dynamics::timestep::{max_stable_dt, signal_speed};
    use agcm_filtering::driver::FilterVariant;
    use agcm_grid::decomp::Decomp;
    use agcm_grid::latlon::GridSpec;
    use agcm_mps::runtime::{run, run_traced};

    struct Counter {
        calls: usize,
        times: Vec<f64>,
    }

    impl Component for Counter {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn step(&mut self, _cart: &CartComm, _state: &mut ModelState, t: f64) {
            self.calls += 1;
            self.times.push(t);
        }
    }

    #[test]
    fn pipeline_orders_time_and_calls() {
        let grid = GridSpec::new(8, 4, 1);
        let decomp = Decomp::new(grid, 1, 1);
        run(1, |c| {
            let cart = CartComm::new(c, 1, 1, (false, true));
            let mut state = ModelState::zeros(grid, decomp.subdomain(0, 0));
            let mut p = Pipeline::new(60.0).with(Box::new(Counter {
                calls: 0,
                times: vec![],
            }));
            assert_eq!(p.len(), 1);
            assert!(!p.is_empty());
            p.run(&cart, &mut state, 3);
            assert_eq!(p.time(), 180.0);
        });
    }

    #[test]
    fn assembled_model_matches_the_handwritten_driver_structure() {
        // A pipeline of Dynamics + Physics produces the same phase layout
        // the dedicated driver in `model.rs` does.
        let grid = GridSpec::new(48, 24, 2);
        let decomp = Decomp::new(grid, 2, 2);
        let dt = max_stable_dt(&grid, signal_speed(), 0.35, Some(45.0));
        let (_, trace) = run_traced(4, |c| {
            let cart = CartComm::new(c, 2, 2, (false, true));
            let sub = decomp.subdomain_of_rank(c.rank());
            let dynamics = Dynamics::new(
                grid,
                decomp,
                DynamicsConfig::new(dt, Some(FilterVariant::LbFft)),
            );
            let physics = PhysicsStep::new(grid, sub);
            let mut state = ModelState::initial(grid, sub);
            let mut p = Pipeline::new(dt)
                .with(Box::new(DynamicsComponent::new(dynamics)))
                .with(Box::new(PhysicsComponent::new(physics)));
            p.run(&cart, &mut state, 2);
            assert!(!state.has_blown_up());
        });
        use agcm_mps::trace::Event;
        for evs in &trace.ranks {
            let begins: Vec<&str> = evs
                .iter()
                .filter_map(|e| match e {
                    Event::PhaseBegin(n) => Some(*n),
                    _ => None,
                })
                .collect();
            let dyn_count = begins.iter().filter(|&&n| n == "dynamics").count();
            let phys_count = begins.iter().filter(|&&n| n == "physics").count();
            assert_eq!(dyn_count, 2);
            assert_eq!(phys_count, 2);
            // Dynamics precedes physics within each step.
            let first_dyn = begins.iter().position(|&n| n == "dynamics").unwrap();
            let first_phys = begins.iter().position(|&n| n == "physics").unwrap();
            assert!(first_dyn < first_phys);
        }
    }

    #[test]
    #[should_panic(expected = "timestep must be positive")]
    fn zero_dt_rejected() {
        Pipeline::new(0.0);
    }
}
