//! # agcm-core — the assembled parallel AGCM
//!
//! The full model of the paper's Figure 1: a time-stepping main body whose
//! every step runs the Dynamics component (spectral filtering + finite
//! differences, `agcm-dynamics`) followed by the Physics component (column
//! processes, `agcm-physics`), on a 2-D processor mesh over the 2°×2.5°
//! grid. Pre/post-processing is a one-time setup, "absolutely dominant
//! [cost] is the main body".
//!
//! * [`config`] — run configuration: grid, mesh, timestep, filter variant,
//!   physics balancing;
//! * [`model`] — the driver: spawn the mesh, step the model, collect the
//!   execution trace and per-rank results; [`model::run_model_resilient`]
//!   adds checkpoint/restart recovery on top (see `agcm-resilience`);
//! * [`timers`] — wall-clock component timers (the measurement
//!   infrastructure of Tables 1–3);
//! * [`report`] — fixed-width table formatting for the `reproduce`
//!   harness, including paper-vs-measured columns;
//! * [`templates`] — the paper's §5 reusable-component design: a
//!   [`templates::Component`] trait and [`templates::Pipeline`] assembling
//!   a model from parts.

pub mod config;
pub mod model;
pub mod report;
pub mod templates;
pub mod timers;

pub use config::{AgcmConfig, ConfigError};
pub use model::{
    run_model, run_model_resilient, try_run_model, try_run_model_observed, ModelRun, RankOutcome,
    ResilienceOpts, ResilientRun,
};
pub use report::Table;
