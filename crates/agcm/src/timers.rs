//! Wall-clock component timers.
//!
//! The paper's measurement infrastructure: named accumulating timers
//! around code sections ("a timing on the previous pass of physics
//! component was performed at each processor", §3.4). The virtual
//! (machine-model) times come from the trace replay; these timers measure
//! *this* machine, which the benches use for real kernel comparisons.

use std::collections::HashMap;
use std::time::Instant;

/// A set of named accumulating timers.
#[derive(Debug, Default)]
pub struct Timers {
    acc: HashMap<&'static str, f64>,
    running: HashMap<&'static str, Instant>,
}

impl Timers {
    /// Fresh timer set.
    pub fn new() -> Timers {
        Timers::default()
    }

    /// Start (or restart) the named timer. Starting a timer that is
    /// already running first accumulates the elapsed interval — a missed
    /// `stop` loses the gap between the two calls, never the time the
    /// timer was observably running.
    pub fn start(&mut self, name: &'static str) {
        if let Some(t0) = self.running.insert(name, Instant::now()) {
            *self.acc.entry(name).or_insert(0.0) += t0.elapsed().as_secs_f64();
        }
    }

    /// Stop the named timer, accumulating elapsed seconds.
    ///
    /// # Panics
    /// If the timer was not started.
    pub fn stop(&mut self, name: &'static str) {
        let t0 = self
            .running
            .remove(name)
            .unwrap_or_else(|| panic!("timer {name} not started"));
        *self.acc.entry(name).or_insert(0.0) += t0.elapsed().as_secs_f64();
    }

    /// Time a closure under the named timer.
    pub fn time<R>(&mut self, name: &'static str, body: impl FnOnce() -> R) -> R {
        self.start(name);
        let r = body();
        self.stop(name);
        r
    }

    /// Accumulated seconds for a timer (0 if never stopped).
    pub fn seconds(&self, name: &str) -> f64 {
        self.acc.get(name).copied().unwrap_or(0.0)
    }

    /// All timers, sorted by descending accumulated time.
    pub fn sorted(&self) -> Vec<(&'static str, f64)> {
        let mut v: Vec<(&'static str, f64)> = self.acc.iter().map(|(&k, &t)| (k, t)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_invocations() {
        let mut t = Timers::new();
        t.time("work", || {
            std::thread::sleep(std::time::Duration::from_millis(5))
        });
        let first = t.seconds("work");
        assert!(first >= 0.004, "{first}");
        t.time("work", || {
            std::thread::sleep(std::time::Duration::from_millis(5))
        });
        assert!(t.seconds("work") > first);
    }

    #[test]
    fn unknown_timer_is_zero() {
        assert_eq!(Timers::new().seconds("nope"), 0.0);
    }

    #[test]
    fn time_returns_closure_value() {
        let mut t = Timers::new();
        let v = t.time("calc", || 21 * 2);
        assert_eq!(v, 42);
    }

    #[test]
    fn sorted_order() {
        let mut t = Timers::new();
        t.time("fast", || ());
        t.time("slow", || {
            std::thread::sleep(std::time::Duration::from_millis(10))
        });
        let order = t.sorted();
        assert_eq!(order[0].0, "slow");
    }

    #[test]
    #[should_panic(expected = "not started")]
    fn stop_without_start_panics() {
        Timers::new().stop("ghost");
    }

    #[test]
    fn restart_accumulates_instead_of_discarding() {
        let mut t = Timers::new();
        t.start("work");
        std::thread::sleep(std::time::Duration::from_millis(5));
        // Restart without stop: the first interval must not be lost.
        t.start("work");
        assert!(t.seconds("work") >= 0.004, "{}", t.seconds("work"));
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.stop("work");
        assert!(t.seconds("work") >= 0.008, "{}", t.seconds("work"));
    }
}
