//! Run configuration.

use agcm_dynamics::timestep::{max_stable_dt, signal_speed};
use agcm_filtering::driver::{FilterOrganization, FilterVariant};
use agcm_grid::latlon::GridSpec;

/// Configuration of one AGCM run.
#[derive(Debug, Clone, Copy)]
pub struct AgcmConfig {
    /// The global grid.
    pub grid: GridSpec,
    /// Processors along latitude.
    pub mesh_lat: usize,
    /// Processors along longitude.
    pub mesh_lon: usize,
    /// Timestep (seconds).
    pub dt: f64,
    /// Polar filter implementation.
    pub filter: FilterVariant,
    /// Variable organization of the FFT filter variants: aggregated
    /// (production, one redistribute pass per filter class) or
    /// per-variable (paper-faithful Tables 8–11 organization).
    pub filter_organization: FilterOrganization,
    /// Whether the Physics component load-balances (scheme 3).
    pub balance_physics: bool,
    /// Physics balancing: target imbalance fraction.
    pub balance_target: f64,
    /// Physics balancing: maximum pairwise rounds per step.
    pub balance_rounds: usize,
    /// Steps to run.
    pub steps: usize,
    /// Checkpoint every this many steps in resilient runs (0 = never).
    pub checkpoint_every: usize,
}

impl AgcmConfig {
    /// The paper's standard configuration on a given mesh: 2°×2.5°×9 grid,
    /// timestep at 35% of the filtered CFL bound, chosen filter variant,
    /// physics balancing off (the original organization).
    pub fn paper(mesh_lat: usize, mesh_lon: usize, filter: FilterVariant) -> AgcmConfig {
        let grid = GridSpec::paper_9_layer();
        AgcmConfig::for_grid(grid, mesh_lat, mesh_lon, filter)
    }

    /// Same, with an explicit grid (e.g. the 15-layer variant or a reduced
    /// test grid).
    pub fn for_grid(
        grid: GridSpec,
        mesh_lat: usize,
        mesh_lon: usize,
        filter: FilterVariant,
    ) -> AgcmConfig {
        let dt = max_stable_dt(&grid, signal_speed(), 0.35, Some(45.0));
        AgcmConfig {
            grid,
            mesh_lat,
            mesh_lon,
            dt,
            filter,
            filter_organization: FilterOrganization::default(),
            balance_physics: false,
            balance_target: 0.06,
            balance_rounds: 2,
            steps: 2,
            checkpoint_every: 0,
        }
    }

    /// Builder-style: enable physics load balancing.
    pub fn with_physics_balancing(mut self) -> AgcmConfig {
        self.balance_physics = true;
        self
    }

    /// Builder-style: run the FFT filter one variable at a time, as the
    /// original code was organized (for paper-faithful comparisons).
    pub fn with_per_variable_filtering(mut self) -> AgcmConfig {
        self.filter_organization = FilterOrganization::PerVariable;
        self
    }

    /// Builder-style: set the number of steps.
    pub fn with_steps(mut self, steps: usize) -> AgcmConfig {
        self.steps = steps;
        self
    }

    /// Builder-style: checkpoint every `every` steps in resilient runs.
    pub fn with_checkpointing(mut self, every: usize) -> AgcmConfig {
        self.checkpoint_every = every;
        self
    }

    /// Total processors.
    pub fn size(&self) -> usize {
        self.mesh_lat * self.mesh_lon
    }

    /// Number of timesteps in one simulated day (for converting measured
    /// per-step times into the paper's seconds/simulated-day).
    pub fn steps_per_day(&self) -> f64 {
        86_400.0 / self.dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let cfg = AgcmConfig::paper(8, 30, FilterVariant::LbFft);
        assert_eq!(cfg.size(), 240);
        assert_eq!(cfg.grid.points(), 144 * 90 * 9);
        assert!(
            cfg.dt > 60.0 && cfg.dt < 1200.0,
            "plausible AGCM timestep: {}",
            cfg.dt
        );
        assert!(cfg.steps_per_day() > 50.0);
        assert!(!cfg.balance_physics);
    }

    #[test]
    fn builders() {
        let cfg = AgcmConfig::paper(4, 4, FilterVariant::ConvolutionRing)
            .with_physics_balancing()
            .with_steps(5)
            .with_checkpointing(2);
        assert!(cfg.balance_physics);
        assert_eq!(cfg.steps, 5);
        assert_eq!(cfg.checkpoint_every, 2);
    }

    #[test]
    fn fifteen_layer_variant() {
        let cfg = AgcmConfig::for_grid(GridSpec::paper_15_layer(), 4, 8, FilterVariant::FftNoLb);
        assert_eq!(cfg.grid.n_lev, 15);
        assert_eq!(cfg.size(), 32);
    }
}
