//! Run configuration.

use agcm_dynamics::timestep::{max_stable_dt, signal_speed};
use agcm_filtering::driver::{FilterOrganization, FilterVariant};
use agcm_grid::latlon::GridSpec;
use std::fmt;

/// Why a configuration cannot be run. Produced by
/// [`AgcmConfig::validate`]; degenerate configs surface here as typed
/// errors instead of assertion panics deep inside `mps::run` or the grid
/// decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The processor mesh has zero extent (no ranks to run on).
    ZeroRanks {
        /// Processors along latitude.
        mesh_lat: usize,
        /// Processors along longitude.
        mesh_lon: usize,
    },
    /// The run would take no steps.
    ZeroSteps,
    /// The processor mesh is larger than the grid it decomposes: some
    /// rank would own an empty subdomain.
    MeshExceedsGrid {
        /// Processors along latitude.
        mesh_lat: usize,
        /// Processors along longitude.
        mesh_lon: usize,
        /// Grid rows (latitudes).
        n_lat: usize,
        /// Grid columns (longitudes).
        n_lon: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroRanks { mesh_lat, mesh_lon } => {
                write!(f, "mesh {mesh_lat}x{mesh_lon} has zero ranks")
            }
            ConfigError::ZeroSteps => write!(f, "run has zero steps"),
            ConfigError::MeshExceedsGrid {
                mesh_lat,
                mesh_lon,
                n_lat,
                n_lon,
            } => write!(
                f,
                "mesh {mesh_lat}x{mesh_lon} exceeds grid {n_lat}x{n_lon}: \
                 some rank would own an empty subdomain"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of one AGCM run.
#[derive(Debug, Clone, Copy)]
pub struct AgcmConfig {
    /// The global grid.
    pub grid: GridSpec,
    /// Processors along latitude.
    pub mesh_lat: usize,
    /// Processors along longitude.
    pub mesh_lon: usize,
    /// Timestep (seconds).
    pub dt: f64,
    /// Polar filter implementation.
    pub filter: FilterVariant,
    /// Variable organization of the FFT filter variants: aggregated
    /// (production, one redistribute pass per filter class) or
    /// per-variable (paper-faithful Tables 8–11 organization).
    pub filter_organization: FilterOrganization,
    /// Whether the Physics component load-balances (scheme 3).
    pub balance_physics: bool,
    /// Physics balancing: target imbalance fraction.
    pub balance_target: f64,
    /// Physics balancing: maximum pairwise rounds per step.
    pub balance_rounds: usize,
    /// Steps to run.
    pub steps: usize,
    /// Checkpoint every this many steps in resilient runs (0 = never).
    pub checkpoint_every: usize,
}

impl AgcmConfig {
    /// The paper's standard configuration on a given mesh: 2°×2.5°×9 grid,
    /// timestep at 35% of the filtered CFL bound, chosen filter variant,
    /// physics balancing off (the original organization).
    pub fn paper(mesh_lat: usize, mesh_lon: usize, filter: FilterVariant) -> AgcmConfig {
        let grid = GridSpec::paper_9_layer();
        AgcmConfig::for_grid(grid, mesh_lat, mesh_lon, filter)
    }

    /// Same, with an explicit grid (e.g. the 15-layer variant or a reduced
    /// test grid).
    pub fn for_grid(
        grid: GridSpec,
        mesh_lat: usize,
        mesh_lon: usize,
        filter: FilterVariant,
    ) -> AgcmConfig {
        let dt = max_stable_dt(&grid, signal_speed(), 0.35, Some(45.0));
        AgcmConfig {
            grid,
            mesh_lat,
            mesh_lon,
            dt,
            filter,
            filter_organization: FilterOrganization::default(),
            balance_physics: false,
            balance_target: 0.06,
            balance_rounds: 2,
            steps: 2,
            checkpoint_every: 0,
        }
    }

    /// Builder-style: enable physics load balancing.
    pub fn with_physics_balancing(mut self) -> AgcmConfig {
        self.balance_physics = true;
        self
    }

    /// Builder-style: run the FFT filter one variable at a time, as the
    /// original code was organized (for paper-faithful comparisons).
    pub fn with_per_variable_filtering(mut self) -> AgcmConfig {
        self.filter_organization = FilterOrganization::PerVariable;
        self
    }

    /// Builder-style: set the number of steps.
    pub fn with_steps(mut self, steps: usize) -> AgcmConfig {
        self.steps = steps;
        self
    }

    /// Builder-style: checkpoint every `every` steps in resilient runs.
    pub fn with_checkpointing(mut self, every: usize) -> AgcmConfig {
        self.checkpoint_every = every;
        self
    }

    /// Check the configuration is runnable: a non-empty mesh, at least
    /// one step, and a mesh no larger than the grid (mirroring the
    /// invariants `Decomp::new` and `mps::run` would otherwise assert
    /// deep inside a spawned world).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.mesh_lat == 0 || self.mesh_lon == 0 {
            return Err(ConfigError::ZeroRanks {
                mesh_lat: self.mesh_lat,
                mesh_lon: self.mesh_lon,
            });
        }
        if self.steps == 0 {
            return Err(ConfigError::ZeroSteps);
        }
        if self.mesh_lat > self.grid.n_lat || self.mesh_lon > self.grid.n_lon {
            return Err(ConfigError::MeshExceedsGrid {
                mesh_lat: self.mesh_lat,
                mesh_lon: self.mesh_lon,
                n_lat: self.grid.n_lat,
                n_lon: self.grid.n_lon,
            });
        }
        Ok(())
    }

    /// Total processors.
    pub fn size(&self) -> usize {
        self.mesh_lat * self.mesh_lon
    }

    /// Canonical lineage hash: FNV-1a over every field that determines
    /// the trajectory — grid, mesh, exact timestep bits, filter variant
    /// and organization, and the physics-balancing knobs. The model is
    /// a deterministic function of these, so two configs with equal
    /// lineage walk bit-identical state through every step they share.
    ///
    /// `steps` and `checkpoint_every` are deliberately **excluded**:
    /// they bound how far a run goes and how often it snapshots, not
    /// where it goes. That exclusion is what lets an extended-horizon
    /// resubmission resume from a shorter run's committed prefix in the
    /// fleet checkpoint store.
    pub fn lineage(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.grid.n_lon as u64);
        eat(self.grid.n_lat as u64);
        eat(self.grid.n_lev as u64);
        eat(self.mesh_lat as u64);
        eat(self.mesh_lon as u64);
        eat(self.dt.to_bits());
        eat(match self.filter {
            FilterVariant::ConvolutionRing => 0,
            FilterVariant::ConvolutionTree => 1,
            FilterVariant::FftNoLb => 2,
            FilterVariant::LbFft => 3,
        });
        eat(match self.filter_organization {
            FilterOrganization::Aggregated => 0,
            FilterOrganization::PerVariable => 1,
        });
        eat(self.balance_physics as u64);
        eat(self.balance_target.to_bits());
        eat(self.balance_rounds as u64);
        h
    }

    /// Number of timesteps in one simulated day (for converting measured
    /// per-step times into the paper's seconds/simulated-day).
    pub fn steps_per_day(&self) -> f64 {
        86_400.0 / self.dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let cfg = AgcmConfig::paper(8, 30, FilterVariant::LbFft);
        assert_eq!(cfg.size(), 240);
        assert_eq!(cfg.grid.points(), 144 * 90 * 9);
        assert!(
            cfg.dt > 60.0 && cfg.dt < 1200.0,
            "plausible AGCM timestep: {}",
            cfg.dt
        );
        assert!(cfg.steps_per_day() > 50.0);
        assert!(!cfg.balance_physics);
    }

    #[test]
    fn builders() {
        let cfg = AgcmConfig::paper(4, 4, FilterVariant::ConvolutionRing)
            .with_physics_balancing()
            .with_steps(5)
            .with_checkpointing(2);
        assert!(cfg.balance_physics);
        assert_eq!(cfg.steps, 5);
        assert_eq!(cfg.checkpoint_every, 2);
    }

    #[test]
    fn valid_config_validates() {
        assert_eq!(
            AgcmConfig::paper(8, 30, FilterVariant::LbFft).validate(),
            Ok(())
        );
    }

    #[test]
    fn zero_mesh_dimension_is_zero_ranks() {
        let mut cfg = AgcmConfig::paper(2, 2, FilterVariant::LbFft);
        cfg.mesh_lon = 0;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroRanks {
                mesh_lat: 2,
                mesh_lon: 0,
            })
        );
        cfg.mesh_lon = 2;
        cfg.mesh_lat = 0;
        assert!(matches!(cfg.validate(), Err(ConfigError::ZeroRanks { .. })));
    }

    #[test]
    fn zero_steps_rejected() {
        let cfg = AgcmConfig::paper(2, 2, FilterVariant::LbFft).with_steps(0);
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroSteps));
    }

    #[test]
    fn mesh_larger_than_grid_rejected() {
        // 48x24 grid (n_lon x n_lat): 25 mesh rows exceed 24 latitudes.
        let cfg = AgcmConfig::for_grid(GridSpec::new(48, 24, 3), 25, 2, FilterVariant::LbFft);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::MeshExceedsGrid {
                mesh_lat: 25,
                mesh_lon: 2,
                n_lat: 24,
                n_lon: 48,
            })
        );
    }

    #[test]
    fn lineage_ignores_horizon_but_tracks_trajectory_knobs() {
        let base = AgcmConfig::paper(2, 2, FilterVariant::LbFft).with_steps(10);
        // Horizon and checkpoint cadence do not change the trajectory.
        assert_eq!(base.lineage(), base.with_steps(50).lineage());
        assert_eq!(base.lineage(), base.with_checkpointing(5).lineage());
        // Everything that does change the trajectory changes the hash.
        assert_ne!(
            base.lineage(),
            AgcmConfig::paper(2, 2, FilterVariant::FftNoLb)
                .with_steps(10)
                .lineage()
        );
        assert_ne!(base.lineage(), base.with_physics_balancing().lineage());
        assert_ne!(base.lineage(), base.with_per_variable_filtering().lineage());
        assert_ne!(
            base.lineage(),
            AgcmConfig::paper(2, 4, FilterVariant::LbFft)
                .with_steps(10)
                .lineage()
        );
        let mut jitter = base;
        jitter.dt *= 1.0 + 1e-12;
        assert_ne!(
            base.lineage(),
            jitter.lineage(),
            "dt compared by exact bits"
        );
    }

    #[test]
    fn fifteen_layer_variant() {
        let cfg = AgcmConfig::for_grid(GridSpec::paper_15_layer(), 4, 8, FilterVariant::FftNoLb);
        assert_eq!(cfg.grid.n_lev, 15);
        assert_eq!(cfg.size(), 32);
    }
}
