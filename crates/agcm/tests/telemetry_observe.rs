//! End-to-end telemetry wiring: install a memory sink, run the model, and
//! check that per-step and per-run records arrive with the right shape —
//! including the acceptance criterion that the run summary's flop
//! imbalance agrees with `WorldTrace::flop_imbalance` to 1e-9. Global
//! telemetry installs once per process, so this file is a single test.

use agcm_core::config::AgcmConfig;
use agcm_core::model::{run_model, run_model_resilient, ResilienceOpts};
use agcm_costmodel::machine::MachineProfile;
use agcm_filtering::driver::FilterVariant;
use agcm_grid::latlon::GridSpec;
use agcm_telemetry::{install, MemorySink};
use std::sync::Arc;

#[test]
fn model_runs_feed_the_installed_sink() {
    let sink = Arc::new(MemorySink::new());
    assert!(install(sink.clone(), MachineProfile::t3d()));
    // Second install loses (first wins).
    assert!(!install(
        Arc::new(MemorySink::new()),
        MachineProfile::paragon()
    ));

    let cfg =
        AgcmConfig::for_grid(GridSpec::new(48, 24, 3), 2, 2, FilterVariant::LbFft).with_steps(3);
    let run = run_model(cfg);
    assert!(run.stable());

    // Three step records and one run record.
    let steps = sink.steps();
    let runs = sink.runs();
    assert_eq!(steps.len(), 3);
    assert_eq!(runs.len(), 1);
    let summary = &runs[0];
    assert_eq!(summary.ranks, 4);
    assert_eq!(summary.steps, 3);
    assert!(summary.resilience.is_none());

    // Acceptance criterion: summary imbalance == trace imbalance to 1e-9.
    assert!(
        (summary.flop_imbalance - run.trace.flop_imbalance()).abs() < 1e-9,
        "{} vs {}",
        summary.flop_imbalance,
        run.trace.flop_imbalance()
    );

    // Steps carry the component phases with positive virtual time.
    for step in &steps {
        assert!(step.virt_seconds > 0.0);
        for phase in ["dynamics", "physics", "filter"] {
            let (_, secs) = step
                .phase_seconds
                .iter()
                .find(|(n, _)| *n == phase)
                .unwrap_or_else(|| panic!("step {} lacks phase {phase}", step.step));
            assert!(*secs > 0.0, "{phase}");
        }
        assert_eq!(step.flops.len(), 4);
        assert!(step.flop_imbalance >= 0.0);
    }

    // Per-phase flop imbalance in the summary covers the component phases.
    for phase in ["dynamics", "physics"] {
        assert!(
            summary
                .phase_flop_imbalance
                .iter()
                .any(|(n, _)| *n == phase),
            "summary lacks {phase}"
        );
    }

    // Collective counters flowed through from the substrate.
    assert!(
        !summary.collectives.is_empty(),
        "model run uses collectives (load estimates, reductions)"
    );

    // A resilient run attaches resilience counters to its summary.
    let dir = std::env::temp_dir().join(format!("agcm-telemetry-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let res = run_model_resilient(
        AgcmConfig::for_grid(GridSpec::new(48, 24, 3), 2, 2, FilterVariant::LbFft)
            .with_steps(2)
            .with_checkpointing(1),
        ResilienceOpts::new(&dir),
    )
    .unwrap();
    assert_eq!(res.attempts, 1);
    let runs = sink.runs();
    assert_eq!(runs.len(), 2);
    let resilient_summary = &runs[1];
    let counters = resilient_summary.resilience.expect("resilience counters");
    assert_eq!(counters.attempts, 1);
    assert_eq!(counters.failures, 0);
    assert!((resilient_summary.flop_imbalance - res.trace.flop_imbalance()).abs() < 1e-9);
    let _ = std::fs::remove_dir_all(&dir);
}
