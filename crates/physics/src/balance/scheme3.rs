//! Scheme 3: iterated pairwise exchange (paper Figure 6) — the adopted
//! design.
//!
//! "The data load is sorted and a rank is assigned to each processor as a
//! result of the sorting, and a pairwise data exchange between processors
//! with rank i and rank N−i+1 is initiated. … If [the result] is not
//! satisfactory … the load sorting and pairwise data exchange can be
//! repeated. … A pairwise data exchange is only needed when the load
//! difference in the pair of nodes exceeds some tolerance, and the
//! iteration can stop as soon as the percentage of load-imbalance falls
//! within a prescribed tolerance."

use super::{quantize, BalanceScheme, Transfer};
use crate::load::imbalance;

/// One round pairs the k-th most loaded rank with the k-th least loaded
/// and moves half the difference.
#[derive(Debug, Clone, Copy)]
pub struct PairwiseExchange {
    /// A pair exchanges only if its load difference exceeds this.
    pub pair_tolerance: f64,
    /// Transfers are floored to multiples of this (0 = exact).
    pub quantum: f64,
}

impl Default for PairwiseExchange {
    fn default() -> Self {
        PairwiseExchange {
            pair_tolerance: 0.0,
            quantum: 0.0,
        }
    }
}

impl PairwiseExchange {
    /// Plan repeated rounds until the imbalance is at most
    /// `target_imbalance` or `max_rounds` is reached. Returns one plan per
    /// executed round (the per-round structure matters: each round is a
    /// separate sort + exchange on the machine).
    pub fn plan_rounds(
        &self,
        loads: &[f64],
        target_imbalance: f64,
        max_rounds: usize,
    ) -> Vec<Vec<Transfer>> {
        let mut current = loads.to_vec();
        let mut rounds = Vec::new();
        for _ in 0..max_rounds {
            if imbalance(&current) <= target_imbalance {
                break;
            }
            let plan = self.plan(&current);
            if plan.is_empty() {
                break; // converged as far as the quantum allows
            }
            super::apply_plan(&mut current, &plan);
            rounds.push(plan);
        }
        rounds
    }
}

impl BalanceScheme for PairwiseExchange {
    fn name(&self) -> &'static str {
        "scheme 3: pairwise exchange"
    }

    fn plan(&self, loads: &[f64]) -> Vec<Transfer> {
        let p = loads.len();
        if p < 2 {
            return Vec::new();
        }
        // Sort ranks by load, descending (Figure 6B's rank assignment).
        let mut order: Vec<usize> = (0..p).collect();
        order.sort_by(|&a, &b| loads[b].total_cmp(&loads[a]));
        let mut plan = Vec::with_capacity(p / 2);
        for k in 0..p / 2 {
            let hi = order[k];
            let lo = order[p - 1 - k];
            let diff = loads[hi] - loads[lo];
            if diff > self.pair_tolerance {
                let amount = quantize(diff / 2.0, self.quantum);
                if amount > 0.0 {
                    plan.push(Transfer {
                        from: hi,
                        to: lo,
                        amount,
                    });
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::apply_plan;

    #[test]
    fn figure6_first_round() {
        // Loads 65/24/38/15 (Figure 6A). Sorted: 65, 38, 24, 15. Pairs
        // (65,15) and (38,24): moves of 25 and 7 (Figure 6B) giving
        // 40/31/31/40.
        let mut loads = vec![65.0, 24.0, 38.0, 15.0];
        let plan = PairwiseExchange {
            quantum: 1.0,
            ..Default::default()
        }
        .plan(&loads);
        assert_eq!(
            plan,
            vec![
                Transfer {
                    from: 0,
                    to: 3,
                    amount: 25.0
                },
                Transfer {
                    from: 2,
                    to: 1,
                    amount: 7.0
                },
            ]
        );
        apply_plan(&mut loads, &plan);
        assert_eq!(loads, vec![40.0, 31.0, 31.0, 40.0]);
    }

    #[test]
    fn figure6_second_round_reaches_paper_result() {
        // Figure 6C/D: from 40/31/31/40 the second round moves 4 from each
        // 40 to a 31, ending at 36/35/35/36.
        let mut loads = vec![40.0, 31.0, 31.0, 40.0];
        let plan = PairwiseExchange {
            quantum: 1.0,
            ..Default::default()
        }
        .plan(&loads);
        apply_plan(&mut loads, &plan);
        let mut sorted = loads.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![35.0, 35.0, 36.0, 36.0], "{loads:?}");
    }

    #[test]
    fn rounds_converge_like_tables_1_to_3() {
        // The qualitative shape of Tables 1-3: a big first-round drop, a
        // small second-round drop to single digits.
        let loads = vec![11.0, 8.3, 7.9, 4.9, 9.5, 7.0, 8.8, 6.6];
        let scheme = PairwiseExchange::default();
        let rounds = scheme.plan_rounds(&loads, 0.02, 4);
        let mut current = loads.clone();
        let mut history = vec![imbalance(&current)];
        for plan in &rounds {
            apply_plan(&mut current, plan);
            history.push(imbalance(&current));
        }
        assert!(history[0] > 0.3, "initial imbalance {}", history[0]);
        for w in history.windows(2) {
            assert!(w[1] < w[0], "imbalance must fall every round: {history:?}");
        }
        assert!(*history.last().unwrap() <= 0.1);
    }

    #[test]
    fn tolerance_suppresses_small_exchanges() {
        let loads = vec![10.0, 9.5, 9.0, 8.5];
        let strict = PairwiseExchange::default().plan(&loads);
        let tolerant = PairwiseExchange {
            pair_tolerance: 2.0,
            ..Default::default()
        }
        .plan(&loads);
        assert!(!strict.is_empty());
        assert!(tolerant.is_empty(), "differences ≤ 2 must not move data");
    }

    #[test]
    fn per_round_message_cost_is_linear() {
        // At most ⌊P/2⌋ transfers per round — the scheme's selling point
        // versus scheme 1's O(P²).
        let loads: Vec<f64> = (0..240).map(|i| (i * 7919 % 101) as f64).collect();
        let plan = PairwiseExchange::default().plan(&loads);
        assert!(plan.len() <= 120);
    }

    #[test]
    fn stop_when_under_target() {
        let loads = vec![10.0, 10.1, 9.9, 10.0];
        let rounds = PairwiseExchange::default().plan_rounds(&loads, 0.05, 10);
        assert!(rounds.is_empty(), "already within tolerance");
    }

    #[test]
    fn odd_rank_count_leaves_median_alone() {
        let loads = vec![30.0, 20.0, 10.0];
        let plan = PairwiseExchange::default().plan(&loads);
        // Only the (30,10) pair exchanges; the median 20 is untouched.
        assert_eq!(
            plan,
            vec![Transfer {
                from: 0,
                to: 2,
                amount: 10.0
            }]
        );
    }
}
