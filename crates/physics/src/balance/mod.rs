//! Load-balancing schemes for the physics component (paper §3.4).
//!
//! A scheme examines the per-rank load vector and plans [`Transfer`]s of
//! work between ranks. Three candidates, as in the paper:
//!
//! * [`scheme1`] — cyclic all-to-all data shuffling (Figure 4): perfect
//!   balance, O(P²) messages;
//! * [`scheme2`] — sorted greedy donor→receiver moves (Figure 5): O(P)
//!   messages, but needs global sorting and "a substantial amount of local
//!   bookkeeping" per pass;
//! * [`scheme3`] — iterated pairwise exchange between rank *i* and rank
//!   *P−i+1* of the sorted order (Figure 6): the adopted design — cheap
//!   per round, repeatable until the imbalance is under tolerance.
//!
//! [`exec`] actually moves columns between ranks according to a plan.

pub mod exec;
pub mod scheme1;
pub mod scheme2;
pub mod scheme3;

pub use scheme1::CyclicShuffle;
pub use scheme2::SortedGreedy;
pub use scheme3::PairwiseExchange;

/// A planned movement of `amount` load units from one rank to another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Donor rank.
    pub from: usize,
    /// Receiver rank.
    pub to: usize,
    /// Load units (flops or seconds) to move.
    pub amount: f64,
}

/// A load-balancing scheme: plans one balancing pass from a load vector.
pub trait BalanceScheme {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Plan one balancing pass. Every transfer must have
    /// `from != to` and `amount > 0`.
    fn plan(&self, loads: &[f64]) -> Vec<Transfer>;

    /// Total messages a pass costs (one per transfer, by default).
    fn message_count(&self, loads: &[f64]) -> usize {
        self.plan(loads).len()
    }
}

/// Apply a plan to a load vector (the paper's "simulation" mode: evaluate
/// the balance quality "without actually moving the data arrays around").
pub fn apply_plan(loads: &mut [f64], plan: &[Transfer]) {
    for t in plan {
        assert_ne!(t.from, t.to, "self-transfer in plan");
        assert!(t.amount >= 0.0, "negative transfer in plan");
        loads[t.from] -= t.amount;
        loads[t.to] += t.amount;
    }
}

/// Round an amount down to a multiple of `quantum` (`0` = exact). The
/// paper's worked examples use integer load units.
pub fn quantize(amount: f64, quantum: f64) -> f64 {
    if quantum <= 0.0 {
        amount
    } else {
        (amount / quantum).floor() * quantum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_plan_conserves_total() {
        let mut loads = vec![65.0, 24.0, 38.0, 15.0];
        let total: f64 = loads.iter().sum();
        apply_plan(
            &mut loads,
            &[
                Transfer {
                    from: 0,
                    to: 3,
                    amount: 25.0,
                },
                Transfer {
                    from: 2,
                    to: 1,
                    amount: 7.0,
                },
            ],
        );
        assert_eq!(loads, vec![40.0, 31.0, 31.0, 40.0]);
        assert_eq!(loads.iter().sum::<f64>(), total);
    }

    #[test]
    fn quantize_modes() {
        assert_eq!(quantize(4.5, 0.0), 4.5);
        assert_eq!(quantize(4.5, 1.0), 4.0);
        assert_eq!(quantize(4.5, 0.5), 4.5);
        assert_eq!(quantize(24.9, 10.0), 20.0);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_transfer_rejected() {
        apply_plan(
            &mut [1.0, 2.0],
            &[Transfer {
                from: 1,
                to: 1,
                amount: 0.5,
            }],
        );
    }
}
