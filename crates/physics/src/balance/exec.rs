//! Executing a balance plan: actually moving columns between ranks.
//!
//! The paper first evaluated scheme 3 "without actually moving the data
//! arrays around"; this module is the complete implementation ("A complete
//! implementation of the load-balancing module for the physics component
//! is being developed", §6 — here it is). A donor selects columns whose
//! predicted cost sums to the planned amount, ships profile + coordinates
//! to the receiver, the receiver runs the physics on the foreign columns
//! and returns the results, and the donor writes them back. Column physics
//! is location-independent, so the balanced run is bit-identical to the
//! unbalanced one.

use super::Transfer;
use crate::step::{column_cost, run_column, PhysicsConfig};
use agcm_grid::decomp::Subdomain;
use agcm_grid::field::Field3D;
use agcm_grid::latlon::GridSpec;
use agcm_mps::comm::Comm;
use agcm_mps::message::Payload;

const TAG_META: u64 = 301;
const TAG_DATA: u64 = 302;
const TAG_RESULT: u64 = 303;

/// The two load measurements of a balanced pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancedRun {
    /// Flops this rank executed (own remaining + foreign columns) — the
    /// quantity whose spread Tables 1–3 report.
    pub performed: f64,
    /// Cost of the columns this rank *owns* (wherever they ran) — the
    /// correct estimate for planning the next pass's balancing, since
    /// delegation is transient and ownership never moves.
    pub owned: f64,
}

/// Run one physics pass executing `plan` (in flop units).
pub fn run_balanced(
    comm: &Comm,
    grid: &GridSpec,
    sub: &Subdomain,
    theta: &mut Field3D,
    t: f64,
    plan: &[Transfer],
) -> BalancedRun {
    let cfg = PhysicsConfig::for_grid(grid);
    let me = comm.rank();
    let nk = grid.n_lev;

    // --- Select columns to delegate, one contiguous scan, no overlap. ----
    let my_out: Vec<&Transfer> = plan.iter().filter(|tr| tr.from == me).collect();
    let mut delegated: Vec<Vec<(usize, usize)>> = vec![Vec::new(); my_out.len()]; // local (i, j)
    let mut taken = vec![false; sub.ni * sub.nj];
    {
        let mut cursor = 0usize; // linear index over local columns
        for (slot, tr) in my_out.iter().enumerate() {
            let mut shipped = 0.0;
            while shipped < tr.amount && cursor < sub.ni * sub.nj {
                let (i, j) = (cursor % sub.ni, cursor / sub.ni);
                let cost = column_cost(&cfg, grid, sub.i0 + i, sub.j0 + j, t).flops;
                delegated[slot].push((i, j));
                taken[cursor] = true;
                shipped += cost;
                cursor += 1;
            }
        }
    }

    // --- Ship delegated columns. -----------------------------------------
    let mut delegated_cost = 0.0;
    for (slot, tr) in my_out.iter().enumerate() {
        let cols = &delegated[slot];
        delegated_cost += cols
            .iter()
            .map(|&(i, j)| column_cost(&cfg, grid, sub.i0 + i, sub.j0 + j, t).flops)
            .sum::<f64>();
        let mut meta: Vec<i64> = Vec::with_capacity(1 + 2 * cols.len());
        meta.push(cols.len() as i64);
        let mut data: Vec<f64> = Vec::with_capacity(cols.len() * nk);
        for &(i, j) in cols {
            meta.push((sub.i0 + i) as i64);
            meta.push((sub.j0 + j) as i64);
            data.extend_from_slice(&theta.column(i, j));
        }
        comm.send(tr.to, TAG_META, Payload::I64(meta));
        comm.send(tr.to, TAG_DATA, Payload::F64(data));
    }

    // --- Process what stays local. ---------------------------------------
    let mut flops = 0.0;
    let mut local_own = 0.0;
    for j in 0..sub.nj {
        for i in 0..sub.ni {
            if taken[j * sub.ni + i] {
                continue;
            }
            let mut col = theta.column(i, j);
            let cost = run_column(&cfg, grid, sub.i0 + i, sub.j0 + j, t, &mut col);
            flops += cost;
            local_own += cost;
            theta.set_column(i, j, &col);
        }
    }

    // --- Process foreign columns and return results. ---------------------
    for tr in plan.iter().filter(|tr| tr.to == me) {
        let meta = comm.recv_i64(tr.from, TAG_META);
        let mut data = comm.recv_f64(tr.from, TAG_DATA);
        let n_cols = meta[0] as usize;
        assert_eq!(data.len(), n_cols * nk, "column data length mismatch");
        for c in 0..n_cols {
            let (gi, gj) = (meta[1 + 2 * c] as usize, meta[2 + 2 * c] as usize);
            let col = &mut data[c * nk..(c + 1) * nk];
            flops += run_column(&cfg, grid, gi, gj, t, col);
        }
        comm.send(tr.from, TAG_RESULT, Payload::F64(data));
    }
    comm.record_flops(flops);

    // --- Collect results for our delegated columns. ----------------------
    for (slot, tr) in my_out.iter().enumerate() {
        let data = comm.recv_f64(tr.to, TAG_RESULT);
        for (c, &(i, j)) in delegated[slot].iter().enumerate() {
            theta.set_column(i, j, &data[c * nk..(c + 1) * nk]);
        }
    }
    let registry = agcm_telemetry::registry();
    registry.counter("physics.balanced_passes").inc();
    registry
        .counter("physics.columns_delegated")
        .add(delegated.iter().map(|d| d.len() as u64).sum());
    BalancedRun {
        performed: flops,
        owned: local_own + delegated_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::scheme3::PairwiseExchange;
    use crate::balance::BalanceScheme;
    use crate::load::imbalance;
    use crate::step::PhysicsStep;
    use agcm_grid::decomp::Decomp;
    use agcm_mps::runtime::{run, run_traced};

    fn initial_theta(grid: &GridSpec, sub: &Subdomain) -> Field3D {
        Field3D::from_fn(sub.ni, sub.nj, grid.n_lev, |i, j, k| {
            ((sub.i0 + i) as f64 * 0.3).sin() + ((sub.j0 + j) as f64 * 0.2).cos() - 0.05 * k as f64
        })
    }

    #[test]
    fn balanced_run_is_bit_identical_to_local_run() {
        let grid = GridSpec::new(36, 24, 5);
        let decomp = Decomp::new(grid, 3, 2);
        let t = 43_200.0;

        let unbalanced = run(decomp.size(), |c| {
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut theta = initial_theta(&grid, &sub);
            PhysicsStep::new(grid, sub).run_local(c, &mut theta, t);
            theta
        });

        let balanced = run(decomp.size(), |c| {
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut theta = initial_theta(&grid, &sub);
            // All ranks compute the same plan from predicted loads.
            let loads: Vec<f64> = (0..decomp.size())
                .map(|r| PhysicsStep::new(grid, decomp.subdomain_of_rank(r)).predicted_load(t))
                .collect();
            let plan = PairwiseExchange::default().plan(&loads);
            run_balanced(c, &grid, &sub, &mut theta, t, &plan);
            theta
        });

        for (a, b) in unbalanced.iter().zip(&balanced) {
            assert_eq!(a.max_abs_diff(b), 0.0, "results must be identical");
        }
    }

    #[test]
    fn balancing_reduces_measured_imbalance() {
        let grid = GridSpec::new(72, 46, 9);
        let decomp = Decomp::new(grid, 4, 4);
        let t = 21_600.0;

        let measure = |balance: bool| {
            let (loads, trace) = run_traced(decomp.size(), |c| {
                let sub = decomp.subdomain_of_rank(c.rank());
                let mut theta = initial_theta(&grid, &sub);
                if balance {
                    let loads: Vec<f64> = (0..decomp.size())
                        .map(|r| {
                            PhysicsStep::new(grid, decomp.subdomain_of_rank(r)).predicted_load(t)
                        })
                        .collect();
                    // Two rounds, as in Tables 1-3.
                    let scheme = PairwiseExchange::default();
                    let rounds = scheme.plan_rounds(&loads, 0.0, 2);
                    let mut flat = Vec::new();
                    for r in rounds {
                        flat.extend(r);
                    }
                    run_balanced(c, &grid, &sub, &mut theta, t, &flat).performed
                } else {
                    PhysicsStep::new(grid, sub).run_local(c, &mut theta, t)
                }
            });
            (imbalance(&loads), trace)
        };

        let (imb_before, _) = measure(false);
        let (imb_after, _) = measure(true);
        assert!(imb_before > 0.10, "unbalanced imbalance {imb_before}");
        assert!(
            imb_after < 0.5 * imb_before,
            "balancing must at least halve the imbalance: {imb_before} -> {imb_after}"
        );
    }

    #[test]
    fn empty_plan_equals_local_run() {
        let grid = GridSpec::new(24, 12, 3);
        let decomp = Decomp::new(grid, 2, 2);
        let out = run(4, |c| {
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut a = initial_theta(&grid, &sub);
            let fa = run_balanced(c, &grid, &sub, &mut a, 0.0, &[]).performed;
            let mut b = initial_theta(&grid, &sub);
            let fb = PhysicsStep::new(grid, sub).run_local(c, &mut b, 0.0);
            (a.max_abs_diff(&b), (fa - fb).abs())
        });
        for (diff, flopdiff) in out {
            assert_eq!(diff, 0.0);
            assert!(flopdiff < 1e-9);
        }
    }

    #[test]
    fn chained_plan_through_intermediate_rank() {
        // Transfers can route through a rank that both receives and sends.
        let grid = GridSpec::new(24, 12, 3);
        let decomp = Decomp::new(grid, 2, 2);
        let plan = vec![
            Transfer {
                from: 0,
                to: 1,
                amount: 5_000.0,
            },
            Transfer {
                from: 1,
                to: 2,
                amount: 5_000.0,
            },
        ];
        let unbalanced = run(4, |c| {
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut theta = initial_theta(&grid, &sub);
            PhysicsStep::new(grid, sub).run_local(c, &mut theta, 0.0);
            theta
        });
        let routed = run(4, |c| {
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut theta = initial_theta(&grid, &sub);
            run_balanced(c, &grid, &sub, &mut theta, 0.0, &plan);
            theta
        });
        for (a, b) in unbalanced.iter().zip(&routed) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }
}
