//! Scheme 2: sorted greedy donor→receiver moves (paper Figure 5).
//!
//! "All the nodes are then assigned a new node id through a sorting of all
//! local loads. The sorting … is performed to simplify subsequent data
//! movement which attempts to minimize the amount of interprocessor
//! communication. … the communication complexity of this load-balancing
//! approach is O(N) … However, a potentially significant overhead is
//! incurred … a number of global communications and a substantial amount
//! of local bookkeeping."

use super::{quantize, BalanceScheme, Transfer};

/// Sorted greedy moves from the largest surplus to the largest deficit.
#[derive(Debug, Clone, Copy)]
pub struct SortedGreedy {
    /// Transfers are floored to multiples of this (0 = exact). The paper's
    /// worked example uses integer weights.
    pub quantum: f64,
}

impl Default for SortedGreedy {
    fn default() -> Self {
        SortedGreedy { quantum: 0.0 }
    }
}

impl BalanceScheme for SortedGreedy {
    fn name(&self) -> &'static str {
        "scheme 2: sorted greedy moves"
    }

    fn plan(&self, loads: &[f64]) -> Vec<Transfer> {
        let p = loads.len();
        if p < 2 {
            return Vec::new();
        }
        let avg: f64 = loads.iter().sum::<f64>() / p as f64;
        // Donors above average, receivers below; both sorted by excess /
        // deficit, biggest first (the "new node id" of Figure 5B).
        let mut donors: Vec<(usize, f64)> = loads
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > avg)
            .map(|(i, &l)| (i, l - avg))
            .collect();
        let mut receivers: Vec<(usize, f64)> = loads
            .iter()
            .enumerate()
            .filter(|(_, &l)| l < avg)
            .map(|(i, &l)| (i, avg - l))
            .collect();
        donors.sort_by(|a, b| b.1.total_cmp(&a.1));
        receivers.sort_by(|a, b| b.1.total_cmp(&a.1));

        let mut plan = Vec::new();
        let (mut d, mut r) = (0, 0);
        while d < donors.len() && r < receivers.len() {
            let give = quantize(donors[d].1.min(receivers[r].1), self.quantum);
            if give > 0.0 {
                plan.push(Transfer {
                    from: donors[d].0,
                    to: receivers[r].0,
                    amount: give,
                });
            }
            donors[d].1 -= give;
            receivers[r].1 -= give;
            // Advance whichever side is (nearly) exhausted; always advance
            // at least one to terminate under quantization.
            let d_done = donors[d].1 < self.quantum.max(1e-12);
            let r_done = receivers[r].1 < self.quantum.max(1e-12);
            if d_done {
                d += 1;
            }
            if r_done {
                r += 1;
            }
            if !d_done && !r_done {
                // give was quantized to zero yet both have room: nothing
                // more can move at this quantum.
                break;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::apply_plan;
    use crate::load::imbalance;

    #[test]
    fn figure5_example_balances() {
        // Initial loads 65/24/38/15 (Figure 5A); exact arithmetic reaches
        // the 35.5 average everywhere.
        let mut loads = vec![65.0, 24.0, 38.0, 15.0];
        let plan = SortedGreedy::default().plan(&loads);
        apply_plan(&mut loads, &plan);
        for l in &loads {
            assert!((l - 35.5).abs() < 1e-9, "{loads:?}");
        }
    }

    #[test]
    fn figure5_transfer_count_is_linear() {
        // Figure 5's point: O(N) messages. With D donors and R receivers
        // a greedy pass needs at most D + R − 1 ≤ N − 1 transfers.
        let loads = vec![65.0, 24.0, 38.0, 15.0];
        let plan = SortedGreedy::default().plan(&loads);
        assert!(plan.len() <= 3, "{plan:?}");
        // The largest move goes from the biggest donor (node 1, load 65) to
        // the biggest-deficit receiver (node 4, load 15).
        assert_eq!(plan[0].from, 0);
        assert_eq!(plan[0].to, 3);
    }

    #[test]
    fn quantized_plan_close_to_balanced() {
        let mut loads = vec![65.0, 24.0, 38.0, 15.0];
        let plan = SortedGreedy { quantum: 1.0 }.plan(&loads);
        for t in &plan {
            assert_eq!(t.amount.fract(), 0.0, "integer transfers only");
        }
        apply_plan(&mut loads, &plan);
        assert!(imbalance(&loads) < 0.05, "{loads:?}");
    }

    #[test]
    fn already_balanced_is_noop() {
        assert!(SortedGreedy::default().plan(&[5.0, 5.0, 5.0]).is_empty());
    }

    #[test]
    fn scales_linearly_on_large_vectors() {
        let loads: Vec<f64> = (0..240).map(|i| 10.0 + (i % 7) as f64).collect();
        let plan = SortedGreedy::default().plan(&loads);
        assert!(plan.len() < 240, "O(N) transfers, got {}", plan.len());
        let mut after = loads.clone();
        apply_plan(&mut after, &plan);
        assert!(imbalance(&after) < 1e-9);
    }

    #[test]
    fn two_ranks() {
        let mut loads = vec![10.0, 0.0];
        let plan = SortedGreedy::default().plan(&loads);
        assert_eq!(
            plan,
            vec![Transfer {
                from: 0,
                to: 1,
                amount: 5.0
            }]
        );
        apply_plan(&mut loads, &plan);
        assert_eq!(loads, vec![5.0, 5.0]);
    }
}
