//! Scheme 1: cyclic all-to-all data shuffling (paper Figure 4).
//!
//! "Each processor divides its local data to be processed into N pieces,
//! sends (N−1) pieces of the data to other processors, and receives (N−1)
//! pieces of data from other processors. … The complete data shuffling
//! guarantees a balanced load distribution as long as the load
//! distribution within each processor is close to uniform in space. …
//! The main drawback of this approach is the cost of performing all-to-all
//! communications with a complexity of O(N²)."

use super::{BalanceScheme, Transfer};

/// The cyclic shuffle: every rank scatters its load equally to everyone.
#[derive(Debug, Clone, Copy, Default)]
pub struct CyclicShuffle;

impl BalanceScheme for CyclicShuffle {
    fn name(&self) -> &'static str {
        "scheme 1: cyclic all-to-all shuffle"
    }

    fn plan(&self, loads: &[f64]) -> Vec<Transfer> {
        let p = loads.len();
        let mut plan = Vec::with_capacity(p.saturating_sub(1) * p);
        for (from, &load) in loads.iter().enumerate() {
            let piece = load / p as f64;
            if piece <= 0.0 {
                continue;
            }
            for to in 0..p {
                if to != from {
                    plan.push(Transfer {
                        from,
                        to,
                        amount: piece,
                    });
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::apply_plan;
    use crate::load::imbalance;

    #[test]
    fn shuffle_balances_perfectly() {
        let mut loads = vec![65.0, 24.0, 38.0, 15.0];
        let plan = CyclicShuffle.plan(&loads);
        apply_plan(&mut loads, &plan);
        let avg = 142.0 / 4.0;
        for l in &loads {
            assert!((l - avg).abs() < 1e-12, "{loads:?}");
        }
        assert!(imbalance(&loads) < 1e-12);
    }

    #[test]
    fn message_complexity_is_quadratic() {
        // Figure 4: each of the N processors sends N−1 pieces.
        let loads = vec![1.0; 16];
        assert_eq!(CyclicShuffle.message_count(&loads), 16 * 15);
        let loads = vec![1.0; 240];
        assert_eq!(CyclicShuffle.message_count(&loads), 240 * 239);
    }

    #[test]
    fn idle_rank_sends_nothing() {
        let plan = CyclicShuffle.plan(&[0.0, 10.0]);
        assert!(plan.iter().all(|t| t.from == 1));
    }

    #[test]
    fn single_rank_noop() {
        assert!(CyclicShuffle.plan(&[42.0]).is_empty());
    }
}
