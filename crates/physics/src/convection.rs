//! Cumulus convection: conditionally triggered, variable-cost adjustment.
//!
//! "…the amount of cumulus convection determined by the conditional
//! stability of the atmosphere" (paper §3.4). Convection is the spikiest
//! cost driver: most columns do nothing, unstable ones run an iterative
//! moist-adjustment loop whose trip count depends on how unstable they
//! are.

use crate::clouds::{cloud_fraction, lattice_noise};

/// A CAPE-like instability index for the column at (lat, lon, t). Larger
/// means more unstable; the distribution is tropics-heavy with random
/// mesoscale outbreaks.
pub fn instability(lat: f64, lon: f64, t_seconds: f64) -> f64 {
    // Thermodynamic background: warm tropics destabilize.
    let background = 1.6 * (-(lat / 0.45).powi(2)).exp();
    // Moisture availability follows cloudiness.
    let moisture = 0.8 * cloud_fraction(lat, lon, t_seconds);
    // Mesoscale trigger noise, refreshed every simulated half hour.
    let bucket = (t_seconds / 1800.0).floor() as i64;
    let trigger = lattice_noise(
        (lon * 40.0).floor() as i64,
        (lat * 40.0).floor() as i64,
        bucket,
    );
    background * moisture * (0.4 + 1.2 * trigger)
}

/// Threshold above which the adjustment loop runs at all.
pub const TRIGGER_THRESHOLD: f64 = 0.35;

/// Charged flops per adjusted layer pair per iteration (cost-model
/// parameter, cf. `radiation`).
pub const ADJ_FLOPS_PER_PAIR: f64 = 250.0;

/// Number of moist-adjustment iterations a column with instability `cape`
/// performs (0 for stable columns, up to 8 for violent convection).
pub fn adjustment_iterations(cape: f64) -> usize {
    if cape <= TRIGGER_THRESHOLD {
        0
    } else {
        (1.0 + 5.0 * (cape - TRIGGER_THRESHOLD)).min(8.0) as usize
    }
}

/// Run the moist convective adjustment on a column profile. Each
/// iteration is one relaxation sweep over adjacent layer pairs. Returns
/// the flop count.
pub fn adjust(column: &mut [f64], iterations: usize) -> f64 {
    let k = column.len();
    if k < 2 {
        return 0.0;
    }
    for _ in 0..iterations {
        // Remove instability: where a lower layer is warmer than the one
        // above by more than the lapse tolerance, mix the pair.
        for i in 0..k - 1 {
            let excess = column[i] - column[i + 1] - 0.1;
            if excess > 0.0 {
                let flux = 0.5 * excess;
                column[i] -= flux;
                column[i + 1] += flux;
            }
        }
    }
    ADJ_FLOPS_PER_PAIR * (iterations * (k - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tropics_more_unstable_than_poles() {
        let avg_at = |lat: f64| {
            (0..200)
                .map(|i| instability(lat, 2.0 * std::f64::consts::PI * i as f64 / 200.0, 0.0))
                .sum::<f64>()
                / 200.0
        };
        let tropics = avg_at(0.05);
        let midlat = avg_at(0.9);
        assert!(
            tropics > 3.0 * midlat,
            "tropics {tropics} vs midlat {midlat}"
        );
    }

    #[test]
    fn iteration_count_monotone() {
        assert_eq!(adjustment_iterations(0.0), 0);
        assert_eq!(adjustment_iterations(TRIGGER_THRESHOLD), 0);
        let mut prev = 0;
        for step in 1..30 {
            let cape = TRIGGER_THRESHOLD + step as f64 * 0.1;
            let it = adjustment_iterations(cape);
            assert!(it >= prev);
            assert!(it <= 8);
            prev = it;
        }
        assert_eq!(prev, 8, "violent convection saturates at 8 iterations");
    }

    #[test]
    fn adjustment_removes_instability() {
        // An absolutely unstable profile (warm below cold).
        let mut col: Vec<f64> = (0..9).map(|i| 10.0 - i as f64).collect();
        adjust(&mut col, 8);
        // After enough sweeps, adjacent excess above the tolerance shrinks.
        let max_excess = col
            .windows(2)
            .map(|w| w[0] - w[1] - 0.1)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_excess < 0.6, "residual instability {max_excess}");
    }

    #[test]
    fn adjustment_conserves_column_total() {
        let mut col: Vec<f64> = (0..9).map(|i| (i as f64 * 2.1).sin() * 3.0).collect();
        let before: f64 = col.iter().sum();
        adjust(&mut col, 5);
        let after: f64 = col.iter().sum();
        assert!(
            (before - after).abs() < 1e-12,
            "mixing must conserve the total"
        );
    }

    #[test]
    fn stable_profile_untouched() {
        let mut col: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let orig = col.clone();
        adjust(&mut col, 4);
        assert_eq!(col, orig);
    }

    #[test]
    fn zero_iterations_is_free() {
        let mut col = vec![5.0, 1.0];
        assert_eq!(adjust(&mut col, 0), 0.0);
        assert_eq!(col, vec![5.0, 1.0]);
    }

    #[test]
    fn flop_count_scales_with_iterations() {
        let mut a = vec![0.0; 10];
        let mut b = vec![0.0; 10];
        let fa = adjust(&mut a, 2);
        let fb = adjust(&mut b, 6);
        assert_eq!(fb, 3.0 * fa);
    }
}
