//! # agcm-physics — column physics and its load balancing
//!
//! "The Physics component of the AGCM code consists of a large amount of
//! local computations with no interprocessor communication required …
//! it is only the load-imbalance in the column physics processing that
//! drags down the parallel efficiency" (paper §3.4). "The amount of
//! computation required at each grid point is determined by several
//! factors, including whether it is day or night, the cloud distribution,
//! and the amount of cumulus convection determined by the conditional
//! stability of the atmosphere."
//!
//! This crate emulates exactly those cost drivers and implements the three
//! load-balancing schemes the paper weighs:
//!
//! * [`radiation`] — solar geometry (day/night), shortwave and an
//!   O(levels²) longwave exchange kernel;
//! * [`clouds`] — a deterministic, spatially-correlated, time-evolving
//!   cloud field ("unpredictability of the cloud distribution");
//! * [`convection`] — conditionally-triggered cumulus adjustment with a
//!   data-dependent iteration count;
//! * [`step`] — the per-column physics step that does the arithmetic and
//!   records its cost;
//! * [`load`] — load estimation from the previous pass's measured cost
//!   (the paper's §3.4 estimator) and the imbalance metric of Tables 1–3;
//! * [`balance`] — scheme 1 (cyclic all-to-all shuffle, Figure 4),
//!   scheme 2 (sorted greedy moves, Figure 5), scheme 3 (iterated pairwise
//!   exchange, Figure 6 — the adopted design), plus the executor that
//!   actually moves columns between ranks.

pub mod balance;
pub mod clouds;
pub mod convection;
pub mod load;
pub mod radiation;
pub mod step;

pub use balance::{BalanceScheme, Transfer};
pub use load::imbalance;
pub use step::{ColumnCost, PhysicsConfig, PhysicsStep};
