//! Radiative transfer emulation: solar geometry and longwave exchange.
//!
//! Day/night is the single largest systematic driver of physics load
//! imbalance — half the planet skips shortwave radiation entirely, and
//! with a longitude-decomposed mesh the day hemisphere lands on a fixed
//! subset of processors at any instant.
//!
//! The longwave kernel is the class of routine the paper picked for
//! single-node optimization ("a routine involved in the longwave radiation
//! calculation"): an emissivity exchange between every pair of layers,
//! O(K²) per column.

/// Seconds per simulated day.
pub const DAY_SECONDS: f64 = 86_400.0;

/// Charged flops per level of the shortwave sweep. Like
/// `agcm_dynamics::tendencies::flops`, these constants are cost-model
/// parameters sized to the full UCLA parameterization suite (see
/// DESIGN.md): the reduced kernels here perform the same *pattern* of work
/// with less arithmetic per element.
pub const SW_FLOPS_PER_LEVEL: f64 = 450.0;

/// Charged flops per level-pair of the longwave exchange (O(K²) total).
pub const LW_FLOPS_PER_PAIR: f64 = 70.0;

/// Cosine of the solar zenith angle at (lat, lon) radians and simulation
/// time `t` seconds, for equinox conditions (solar declination 0).
/// Positive means the Sun is up.
pub fn solar_zenith_cos(lat: f64, lon: f64, t_seconds: f64) -> f64 {
    // Hour angle: the Sun starts over longitude 0 at t = 0 and sweeps west.
    let hour_angle = lon - 2.0 * std::f64::consts::PI * (t_seconds / DAY_SECONDS);
    lat.cos() * hour_angle.cos()
}

/// Whether the column at (lat, lon) is sunlit at time `t`.
pub fn is_day(lat: f64, lon: f64, t_seconds: f64) -> bool {
    solar_zenith_cos(lat, lon, t_seconds) > 0.0
}

/// Shortwave heating of one column: a two-stream sweep, O(K). Only called
/// for sunlit columns. Returns the heating profile and the flop count.
pub fn shortwave(column: &mut [f64], cos_zenith: f64, cloud: f64) -> f64 {
    let k = column.len();
    let mut transmitted = cos_zenith.max(0.0) * (1.0 - 0.6 * cloud);
    for v in column.iter_mut().rev() {
        // Absorb a layer-dependent fraction on the way down.
        let absorbed = 0.12 * transmitted;
        *v += absorbed;
        transmitted -= absorbed;
    }
    SW_FLOPS_PER_LEVEL * k as f64
}

/// Longwave emissivity exchange of one column: every layer exchanges with
/// every other, O(K²) — the heavy, always-on part of radiation. Returns
/// the flop count.
pub fn longwave(column: &mut [f64], cloud: f64) -> f64 {
    let k = column.len();
    let emissivity = 0.8 + 0.15 * cloud;
    // Pairwise exchange: layer i cools toward layer j by a distance-damped
    // amount. Written as the AGCM would: explicit nested loops.
    let snapshot: Vec<f64> = column.to_vec();
    for i in 0..k {
        let mut net = 0.0;
        for (j, &tj) in snapshot.iter().enumerate() {
            if i == j {
                continue;
            }
            let dist = (i as f64 - j as f64).abs();
            net += emissivity * (tj - snapshot[i]) / (1.0 + dist * dist);
        }
        column[i] += 1.0e-3 * net;
    }
    LW_FLOPS_PER_PAIR * (k * k) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noon_at_greenwich_at_t0() {
        // t=0: hour angle 0 at lon 0 → Sun overhead on the equator.
        assert!((solar_zenith_cos(0.0, 0.0, 0.0) - 1.0).abs() < 1e-12);
        assert!(is_day(0.0, 0.0, 0.0));
    }

    #[test]
    fn midnight_on_far_side() {
        let lon = std::f64::consts::PI; // 180°E at t=0
        assert!(solar_zenith_cos(0.0, lon, 0.0) < 0.0);
        assert!(!is_day(0.0, lon, 0.0));
    }

    #[test]
    fn subsolar_point_moves_with_time() {
        // A quarter day later the subsolar longitude has advanced by 90°:
        // longitude 90° is now at local noon.
        let quarter_day = DAY_SECONDS / 4.0;
        let lon_90 = std::f64::consts::FRAC_PI_2;
        assert!((solar_zenith_cos(0.0, lon_90, quarter_day) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn half_the_planet_is_dark() {
        let n = 1000;
        let day_count = (0..n)
            .filter(|&i| {
                let lon = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                is_day(0.3, lon, 12_345.0)
            })
            .count();
        let frac = day_count as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "day fraction {frac}");
    }

    #[test]
    fn shortwave_conserves_deposit_order() {
        let mut col = vec![0.0; 9];
        let flops = shortwave(&mut col, 1.0, 0.0);
        assert_eq!(flops, 9.0 * SW_FLOPS_PER_LEVEL);
        // Top layer (last index) absorbs first and most.
        assert!(col[8] > col[0]);
        assert!(col.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn cloud_reduces_shortwave() {
        let mut clear = vec![0.0; 9];
        let mut cloudy = vec![0.0; 9];
        shortwave(&mut clear, 1.0, 0.0);
        shortwave(&mut cloudy, 1.0, 1.0);
        let sum = |v: &[f64]| v.iter().sum::<f64>();
        assert!(sum(&cloudy) < sum(&clear));
    }

    #[test]
    fn longwave_relaxes_toward_uniformity() {
        let mut col: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let spread_before = col[8] - col[0];
        for _ in 0..100 {
            longwave(&mut col, 0.3);
        }
        let spread_after = col[8] - col[0];
        assert!(
            spread_after < spread_before,
            "{spread_before} -> {spread_after}"
        );
    }

    #[test]
    fn longwave_flops_quadratic_in_levels() {
        let mut a = vec![1.0; 9];
        let mut b = vec![1.0; 18];
        let fa = longwave(&mut a, 0.0);
        let fb = longwave(&mut b, 0.0);
        assert_eq!(fb / fa, 4.0);
    }

    #[test]
    fn longwave_conserves_mean_approximately() {
        let mut col: Vec<f64> = (0..9).map(|i| (i as f64 * 1.7).sin()).collect();
        let mean_before: f64 = col.iter().sum::<f64>() / 9.0;
        longwave(&mut col, 0.5);
        let mean_after: f64 = col.iter().sum::<f64>() / 9.0;
        assert!(
            (mean_before - mean_after).abs() < 1e-9,
            "exchange is pairwise-antisymmetric"
        );
    }
}
