//! The per-column physics step and its cost structure.
//!
//! One physics pass visits every owned column, runs longwave radiation
//! (always), shortwave (sunlit columns only) and cumulus adjustment
//! (unstable columns only), mutating the column profile and recording the
//! floating-point work. The *cost* of a column is a deterministic function
//! of (lat, lon, t) — which is what makes load estimation from the
//! previous pass a sensible strategy, exactly as the paper found.

use crate::clouds::cloud_fraction;
use crate::convection::{adjust, adjustment_iterations, instability};
use crate::radiation::{is_day, longwave, shortwave, solar_zenith_cos};
use agcm_grid::decomp::Subdomain;
use agcm_grid::field::Field3D;
use agcm_grid::latlon::GridSpec;
use agcm_mps::comm::Comm;

/// Static configuration of the physics emulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicsConfig {
    /// Vertical layers per column.
    pub n_lev: usize,
    /// Per-column fixed overhead charged in flops (boundary layer, surface
    /// fluxes and the rest of the always-on parameterizations).
    pub base_flops: f64,
}

impl PhysicsConfig {
    /// Configuration matching a grid.
    pub fn for_grid(grid: &GridSpec) -> PhysicsConfig {
        PhysicsConfig {
            n_lev: grid.n_lev,
            base_flops: 500.0 * grid.n_lev as f64,
        }
    }
}

/// Breakdown of one column's work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnCost {
    /// Whether the column is sunlit (shortwave runs).
    pub day: bool,
    /// Convective adjustment iterations triggered.
    pub convection_iters: usize,
    /// Total predicted flops.
    pub flops: f64,
}

/// Predict the cost of the column at grid point (i, j) at time `t` without
/// doing the work — used to pick which columns to delegate when balancing.
pub fn column_cost(cfg: &PhysicsConfig, grid: &GridSpec, i: usize, j: usize, t: f64) -> ColumnCost {
    let (lat, lon) = (grid.latitude(j), grid.longitude(i));
    let k = cfg.n_lev as f64;
    let day = is_day(lat, lon, t);
    let iters = adjustment_iterations(instability(lat, lon, t));
    let mut flops = cfg.base_flops + crate::radiation::LW_FLOPS_PER_PAIR * k * k; // longwave
    if day {
        flops += crate::radiation::SW_FLOPS_PER_LEVEL * k; // shortwave
    }
    flops += crate::convection::ADJ_FLOPS_PER_PAIR * (iters * (cfg.n_lev - 1)) as f64; // convection
    ColumnCost {
        day,
        convection_iters: iters,
        flops,
    }
}

/// Execute the physics on one column profile in place; returns the flops
/// actually performed (matches [`column_cost`] by construction).
pub fn run_column(
    cfg: &PhysicsConfig,
    grid: &GridSpec,
    i: usize,
    j: usize,
    t: f64,
    column: &mut [f64],
) -> f64 {
    assert_eq!(column.len(), cfg.n_lev);
    let (lat, lon) = (grid.latitude(j), grid.longitude(i));
    let cloud = cloud_fraction(lat, lon, t);
    let mut flops = cfg.base_flops;
    // Base parameterizations: a cheap smoothing sweep standing in for PBL
    // and surface fluxes.
    for v in column.iter_mut() {
        *v += 1.0e-4 * (cloud - 0.5);
    }
    flops += longwave(column, cloud);
    let cosz = solar_zenith_cos(lat, lon, t);
    if cosz > 0.0 {
        flops += shortwave(column, cosz, cloud);
    }
    let iters = adjustment_iterations(instability(lat, lon, t));
    flops += adjust(column, iters);
    flops
}

/// The physics driver for one rank's subdomain.
pub struct PhysicsStep {
    cfg: PhysicsConfig,
    grid: GridSpec,
    sub: Subdomain,
}

impl PhysicsStep {
    /// Driver for one rank.
    pub fn new(grid: GridSpec, sub: Subdomain) -> PhysicsStep {
        PhysicsStep {
            cfg: PhysicsConfig::for_grid(&grid),
            grid,
            sub,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PhysicsConfig {
        &self.cfg
    }

    /// Run physics on every owned column without load balancing. Records
    /// the flops on `comm` and returns the measured local load (flops) —
    /// the estimate used for the *next* pass's balancing, per §3.4:
    /// "a timing on the previous pass of physics component was performed
    /// at each processor and the result was used as an estimate".
    pub fn run_local(&self, comm: &Comm, theta: &mut Field3D, t: f64) -> f64 {
        let mut total = 0.0;
        let (ni, nj, _) = theta.shape();
        assert_eq!(
            (ni, nj),
            (self.sub.ni, self.sub.nj),
            "field must match the subdomain"
        );
        for j in 0..nj {
            for i in 0..ni {
                let mut col = theta.column(i, j);
                total += run_column(
                    &self.cfg,
                    &self.grid,
                    self.sub.i0 + i,
                    self.sub.j0 + j,
                    t,
                    &mut col,
                );
                theta.set_column(i, j, &col);
            }
        }
        comm.record_flops(total);
        total
    }

    /// Predicted total load (flops) of this subdomain at time `t`.
    pub fn predicted_load(&self, t: f64) -> f64 {
        let mut total = 0.0;
        for j in self.sub.lats() {
            for i in self.sub.lons() {
                total += column_cost(&self.cfg, &self.grid, i, j, t).flops;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_grid::decomp::Decomp;
    use agcm_mps::runtime::{run, run_traced};

    fn grid() -> GridSpec {
        GridSpec::new(36, 24, 9)
    }

    #[test]
    fn prediction_matches_execution() {
        let g = grid();
        let cfg = PhysicsConfig::for_grid(&g);
        for (i, j) in [(0, 0), (17, 11), (35, 23), (9, 12)] {
            let predicted = column_cost(&cfg, &g, i, j, 7200.0).flops;
            let mut col = vec![0.5; g.n_lev];
            let actual = run_column(&cfg, &g, i, j, 7200.0, &mut col);
            assert_eq!(predicted, actual, "column ({i},{j})");
        }
    }

    #[test]
    fn day_columns_cost_more() {
        let g = grid();
        let cfg = PhysicsConfig::for_grid(&g);
        // Scan a latitude circle at high latitude (no convection noise
        // there — instability is negligible poleward) and compare day/night.
        let j = 22; // near-polar row
        let costs: Vec<ColumnCost> = (0..g.n_lon)
            .map(|i| column_cost(&cfg, &g, i, j, 0.0))
            .collect();
        let day_avg: f64 = {
            let d: Vec<f64> = costs.iter().filter(|c| c.day).map(|c| c.flops).collect();
            d.iter().sum::<f64>() / d.len() as f64
        };
        let night_avg: f64 = {
            let n: Vec<f64> = costs.iter().filter(|c| !c.day).map(|c| c.flops).collect();
            n.iter().sum::<f64>() / n.len() as f64
        };
        assert!(day_avg > night_avg, "day {day_avg} vs night {night_avg}");
    }

    #[test]
    fn tropics_cost_more_than_midlatitudes() {
        let g = grid();
        let cfg = PhysicsConfig::for_grid(&g);
        let row_cost = |j: usize| -> f64 {
            (0..g.n_lon)
                .map(|i| column_cost(&cfg, &g, i, j, 3600.0).flops)
                .sum()
        };
        let equator = row_cost(12);
        let midlat = row_cost(20);
        assert!(equator > midlat, "equator {equator} vs midlat {midlat}");
    }

    #[test]
    fn run_local_returns_recorded_flops() {
        let g = grid();
        let d = Decomp::new(g, 2, 2);
        let (loads, trace) = run_traced(4, |c| {
            let sub = d.subdomain_of_rank(c.rank());
            let step = PhysicsStep::new(g, sub);
            let mut theta =
                Field3D::from_fn(sub.ni, sub.nj, g.n_lev, |i, j, k| (i + j + k) as f64 * 0.01);
            step.run_local(c, &mut theta, 1800.0)
        });
        let stats = trace.stats();
        for (rank, &load) in loads.iter().enumerate() {
            assert!((stats[rank].flops - load).abs() < 1e-6);
            assert!(load > 0.0);
        }
    }

    #[test]
    fn load_is_imbalanced_without_balancing() {
        // The situation of Tables 1-3: day/night plus convection produce a
        // double-digit percentage imbalance on a 2D mesh.
        let g = GridSpec::new(72, 46, 9);
        let d = Decomp::new(g, 4, 4);
        let loads = run(16, |c| {
            let sub = d.subdomain_of_rank(c.rank());
            PhysicsStep::new(g, sub).predicted_load(0.0)
        });
        let imb = crate::load::imbalance(&loads);
        assert!(imb > 0.10, "expected >10% imbalance, got {imb}");
    }

    #[test]
    fn predicted_load_matches_summed_columns() {
        let g = grid();
        let d = Decomp::new(g, 2, 3);
        let sub = d.subdomain_of_rank(4);
        let step = PhysicsStep::new(g, sub);
        let by_hand: f64 = sub
            .lats()
            .flat_map(|j| sub.lons().map(move |i| (i, j)))
            .map(|(i, j)| column_cost(step.config(), &g, i, j, 500.0).flops)
            .sum();
        assert_eq!(step.predicted_load(500.0), by_hand);
    }
}
