//! Load measurement and the paper's imbalance metric.
//!
//! Tables 1–3 define:
//!
//! ```text
//! AverageLoad = (Σ LocalLoad_i) / P
//! PercentageOfLoadImbalance = (MaxLoad − AverageLoad) / AverageLoad
//! ```
//!
//! and estimate the current pass's load from a timing of the previous
//! pass. [`LoadTracker`] carries that one-pass memory per rank.

use agcm_mps::collectives::Op;
use agcm_mps::comm::Comm;

/// The paper's percentage-of-load-imbalance metric (as a fraction; multiply
/// by 100 for the tables' percentages).
pub fn imbalance(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let avg: f64 = loads.iter().sum::<f64>() / loads.len() as f64;
    if avg == 0.0 {
        return 0.0;
    }
    let max = loads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (max - avg) / avg
}

/// Summary statistics of a load vector, as printed in Tables 1–3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSummary {
    /// Largest per-rank load.
    pub max: f64,
    /// Smallest per-rank load.
    pub min: f64,
    /// Mean per-rank load.
    pub avg: f64,
    /// `(max − avg) / avg`.
    pub imbalance: f64,
}

/// Summarize a load vector.
pub fn summarize(loads: &[f64]) -> LoadSummary {
    assert!(!loads.is_empty(), "cannot summarize an empty load vector");
    let max = loads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = loads.iter().copied().fold(f64::INFINITY, f64::min);
    let avg = loads.iter().sum::<f64>() / loads.len() as f64;
    LoadSummary {
        max,
        min,
        avg,
        imbalance: if avg == 0.0 { 0.0 } else { (max - avg) / avg },
    }
}

/// Per-rank memory of the previous pass's measured load.
#[derive(Debug, Default, Clone, Copy)]
pub struct LoadTracker {
    previous: Option<f64>,
}

impl LoadTracker {
    /// A tracker with no history yet.
    pub fn new() -> LoadTracker {
        LoadTracker { previous: None }
    }

    /// Record this pass's measured load.
    pub fn record(&mut self, load: f64) {
        self.previous = Some(load);
    }

    /// The estimate for the upcoming pass: the previous measurement, if
    /// any. With no history the balancer should skip balancing (the
    /// paper's scheme needs an estimate before it "can proceed").
    pub fn estimate(&self) -> Option<f64> {
        self.previous
    }

    /// Gather every rank's estimate. Returns `None` (everywhere) until all
    /// ranks have history. Collective.
    pub fn gather_estimates(&self, comm: &Comm) -> Option<Vec<f64>> {
        let have = i64::from(self.previous.is_some());
        let all_have = comm.allreduce_i64(Op::Min, &[have])[0] == 1;
        if !all_have {
            return None;
        }
        Some(comm.allgather_f64(&[self.previous.expect("checked")]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_mps::runtime::run;

    #[test]
    fn paper_metric_examples() {
        // Table 1 before balancing: max 11.0, min 4.9 — 37% with the
        // implied average ≈ 8.0.
        let loads = [11.0, 8.0, 8.1, 4.9];
        let s = summarize(&loads);
        assert_eq!(s.max, 11.0);
        assert_eq!(s.min, 4.9);
        assert!((s.imbalance - (11.0 - s.avg) / s.avg).abs() < 1e-12);
    }

    #[test]
    fn balanced_vector_has_zero_imbalance() {
        assert_eq!(imbalance(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn figure5_loads() {
        // 65/24/38/15: avg 35.5, max 65 → (65−35.5)/35.5 ≈ 83%.
        let imb = imbalance(&[65.0, 24.0, 38.0, 15.0]);
        assert!((imb - 29.5 / 35.5).abs() < 1e-12);
    }

    #[test]
    fn tracker_lifecycle() {
        let mut t = LoadTracker::new();
        assert_eq!(t.estimate(), None);
        t.record(7.5);
        assert_eq!(t.estimate(), Some(7.5));
        t.record(9.0);
        assert_eq!(t.estimate(), Some(9.0));
    }

    #[test]
    fn gather_requires_everyone() {
        let out = run(3, |c| {
            let mut t = LoadTracker::new();
            // Only rank 1 has history on the first try.
            if c.rank() == 1 {
                t.record(5.0);
            }
            let first = t.gather_estimates(c);
            // Then everyone records.
            t.record(c.rank() as f64 + 1.0);
            let second = t.gather_estimates(c);
            (first, second)
        });
        for (first, second) in out {
            assert_eq!(first, None);
            assert_eq!(second, Some(vec![1.0, 2.0, 3.0]));
        }
    }
}
