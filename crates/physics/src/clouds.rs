//! A deterministic, evolving cloud field.
//!
//! "Adding to the difficulty of physics load-balancing is the
//! unpredictability of the cloud distribution" (paper §3.4). The emulation
//! needs a field that (a) varies in space with realistic large-scale
//! structure (storm tracks, an ITCZ band), (b) drifts in time so the load
//! distribution changes between balancing passes, and (c) is a pure
//! function of (lon, lat, t) so every rank — and every test — computes the
//! same value without communication.
//!
//! The "noise" component is a hash-based lattice value: unpredictable to
//! the balancer, reproducible to the harness.

/// Deterministic unit-interval noise from an integer lattice point and a
/// time bucket (SplitMix64 avalanche).
pub fn lattice_noise(i: i64, j: i64, bucket: i64) -> f64 {
    let mut z = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((bucket as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Cloud fraction in [0, 1] at (lat, lon) radians and time `t` seconds.
pub fn cloud_fraction(lat: f64, lon: f64, t_seconds: f64) -> f64 {
    // Large-scale structure: an ITCZ band near the equator and mid-latitude
    // storm tracks, drifting slowly eastward.
    let drift = 2.0 * std::f64::consts::PI * t_seconds / (10.0 * 86_400.0);
    let itcz = 0.35 * (-(lat / 0.15).powi(2)).exp();
    let storm_tracks = 0.25
        * (lat.abs() / 0.9 * std::f64::consts::PI).sin().max(0.0)
        * (0.5 + 0.5 * (3.0 * lon - drift).sin());
    // Mesoscale variability: hash noise on a coarse lattice refreshed every
    // simulated hour.
    let bucket = (t_seconds / 3600.0).floor() as i64;
    let noise = 0.3
        * lattice_noise(
            (lon * 20.0).floor() as i64,
            (lat * 20.0).floor() as i64,
            bucket,
        );
    (0.15 + itcz + storm_tracks + noise).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_and_uniformish() {
        assert_eq!(lattice_noise(3, -7, 42), lattice_noise(3, -7, 42));
        assert_ne!(lattice_noise(3, -7, 42), lattice_noise(3, -7, 43));
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| lattice_noise(i, 2 * i + 1, 0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for i in 0..1000 {
            let v = lattice_noise(i, -i, i);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fractions_in_range() {
        for j in 0..50 {
            for i in 0..50 {
                let lat = -1.5 + 3.0 * j as f64 / 50.0;
                let lon = 2.0 * std::f64::consts::PI * i as f64 / 50.0;
                let c = cloud_fraction(lat, lon, 7200.0);
                assert!((0.0..=1.0).contains(&c), "cloud {c} at ({lat},{lon})");
            }
        }
    }

    #[test]
    fn itcz_cloudier_than_subtropics() {
        // Average around latitude circles: equator vs ±25°.
        let avg_at = |lat: f64| {
            (0..100)
                .map(|i| cloud_fraction(lat, 2.0 * std::f64::consts::PI * i as f64 / 100.0, 0.0))
                .sum::<f64>()
                / 100.0
        };
        let equator = avg_at(0.0);
        let subtropics = avg_at(25f64.to_radians());
        assert!(
            equator > subtropics,
            "ITCZ {equator} vs subtropics {subtropics}"
        );
    }

    #[test]
    fn field_evolves_in_time() {
        let before = cloud_fraction(0.8, 1.0, 0.0);
        let after = cloud_fraction(0.8, 1.0, 86_400.0 * 3.0);
        assert_ne!(before, after);
    }

    #[test]
    fn reproducible_across_calls() {
        let a = cloud_fraction(0.3, 2.0, 5_000.0);
        let b = cloud_fraction(0.3, 2.0, 5_000.0);
        assert_eq!(a, b);
    }
}
