//! Property tests for the physics load-balancing schemes, centred on the
//! adopted scheme 3 (iterated pairwise exchange).
//!
//! No external property-testing crate is available offline; properties run
//! over seeded SplitMix64 cases each, deterministic across runs. Three
//! families:
//!
//! * plan algebra — conservation of total load, non-increasing imbalance
//!   round over round, pairwise disjointness within a round;
//! * message-count bounds — scheme 1 pays exactly P·(P−1) messages on
//!   all-positive loads, scheme 2 at most P−1, scheme 3 at most ⌊P/2⌋
//!   *per round* (the paper's reason for adopting it);
//! * execution equivalence — running physics under any scheme-3 plan is
//!   bit-identical to the unbalanced run and performs the same total work.

use agcm_grid::decomp::Decomp;
use agcm_grid::field::Field3D;
use agcm_grid::latlon::GridSpec;
use agcm_mps::runtime::run;
use agcm_physics::balance::exec::run_balanced;
use agcm_physics::balance::{
    apply_plan, BalanceScheme, CyclicShuffle, PairwiseExchange, SortedGreedy, Transfer,
};
use agcm_physics::load::imbalance;
use agcm_physics::step::PhysicsStep;

const CASES: u64 = 64;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
    /// A load in (0, 100): strictly positive, spread over two decades.
    fn load(&mut self) -> f64 {
        0.1 + (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 99.9
    }
    fn loads(&mut self, p: usize) -> Vec<f64> {
        (0..p).map(|_| self.load()).collect()
    }
}

/// Every transfer well-formed; no rank touched twice within one round
/// (scheme 3 exchanges between *disjoint* pairs of the sorted order).
fn assert_round_well_formed(round: &[Transfer], p: usize, case: u64) {
    let mut touched = vec![false; p];
    for t in round {
        assert_ne!(t.from, t.to, "case {case}: self-transfer");
        assert!(t.amount > 0.0, "case {case}: non-positive amount");
        assert!(t.from < p && t.to < p, "case {case}: rank out of range");
        for r in [t.from, t.to] {
            assert!(!touched[r], "case {case}: rank {r} in two pairs");
            touched[r] = true;
        }
    }
}

#[test]
fn plan_rounds_conserve_total_and_never_worsen_imbalance() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let p = rng.range(2, 13);
        let loads = rng.loads(p);
        let total: f64 = loads.iter().sum();
        let target = [0.0, 0.02, 0.1][rng.range(0, 3)];
        let max_rounds = rng.range(1, 5);

        let rounds = PairwiseExchange::default().plan_rounds(&loads, target, max_rounds);
        assert!(rounds.len() <= max_rounds, "case {case}");

        let mut current = loads.clone();
        let mut history = vec![imbalance(&current)];
        for round in &rounds {
            assert_round_well_formed(round, p, case);
            assert!(
                round.len() <= p / 2,
                "case {case}: {} transfers for P={p}",
                round.len()
            );
            apply_plan(&mut current, round);
            history.push(imbalance(&current));
        }
        let after: f64 = current.iter().sum();
        assert!(
            (after - total).abs() < 1e-9 * total.max(1.0),
            "case {case}: total load {total} -> {after}"
        );
        for w in history.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "case {case}: imbalance rose {} -> {}: {history:?}",
                w[0],
                w[1]
            );
        }
        // An early stop means the target was reached (or the loads ended
        // perfectly equal, where the pairwise plan is empty — imbalance 0).
        if rounds.len() < max_rounds {
            assert!(
                *history.last().unwrap() <= target + 1e-12,
                "case {case}: stopped early above target {target}: {history:?}"
            );
        }
    }
}

#[test]
fn message_count_bounds_scheme1_vs_scheme2_vs_scheme3() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5CE3 ^ case);
        let p = rng.range(2, 13);
        let loads = rng.loads(p);

        // Scheme 1 always shuffles everything: exactly P·(P−1) messages
        // when every load is positive (Figure 4's all-to-all).
        assert_eq!(
            CyclicShuffle.message_count(&loads),
            p * (p - 1),
            "case {case}: P={p}"
        );

        // Scheme 2: the greedy donor→receiver merge emits at most P−1
        // transfers (each step exhausts a donor or a receiver).
        let s2 = SortedGreedy::default().plan(&loads);
        assert!(
            s2.len() < p,
            "case {case}: scheme 2 planned {} > P-1={}",
            s2.len(),
            p - 1
        );

        // Scheme 3: at most ⌊P/2⌋ per round — and that bound holds for
        // every round of an iterated plan, not just the first.
        for round in PairwiseExchange::default().plan_rounds(&loads, 0.0, 4) {
            assert!(round.len() <= p / 2, "case {case}: P={p}");
        }
    }
}

#[test]
fn balanced_physics_is_bit_identical_and_work_conserving() {
    let grid = GridSpec::new(24, 12, 3);
    let decomp = Decomp::new(grid, 2, 2);
    let t = 21_600.0;

    let initial = |sub: &agcm_grid::decomp::Subdomain| {
        Field3D::from_fn(sub.ni, sub.nj, grid.n_lev, |i, j, k| {
            ((sub.i0 + i) as f64 * 0.3).sin() + ((sub.j0 + j) as f64 * 0.2).cos() - 0.05 * k as f64
        })
    };

    // The unbalanced baseline, once.
    let baseline = run(decomp.size(), |c| {
        let sub = decomp.subdomain_of_rank(c.rank());
        let mut theta = initial(&sub);
        let flops = PhysicsStep::new(grid, sub).run_local(c, &mut theta, t);
        (theta, flops)
    });
    let baseline_total: f64 = baseline.iter().map(|(_, f)| f).sum();

    // Randomized scheme-3 plans over perturbed load estimates. Every rank
    // derives the same plan from the shared case seed, as the model does
    // from its gathered estimates.
    for case in 0..8u64 {
        let balanced = run(decomp.size(), |c| {
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut rng = Rng::new(case);
            let loads: Vec<f64> = (0..decomp.size())
                .map(|r| {
                    let predicted =
                        PhysicsStep::new(grid, decomp.subdomain_of_rank(r)).predicted_load(t);
                    predicted * (0.5 + 1.5 * (rng.load() / 100.0))
                })
                .collect();
            let target = [0.0, 0.05][rng.range(0, 2)];
            let rounds = PairwiseExchange::default().plan_rounds(&loads, target, rng.range(1, 4));
            let plan: Vec<Transfer> = rounds.into_iter().flatten().collect();
            let mut theta = initial(&sub);
            let br = run_balanced(c, &grid, &sub, &mut theta, t, &plan);
            (theta, br.performed)
        });
        let mut performed_total = 0.0;
        for (rank, ((theta, performed), (base, _))) in balanced.iter().zip(&baseline).enumerate() {
            assert_eq!(
                theta.max_abs_diff(base),
                0.0,
                "case {case}: rank {rank} diverged from the unbalanced run"
            );
            performed_total += performed;
        }
        assert!(
            (performed_total - baseline_total).abs() < 1e-6 * baseline_total,
            "case {case}: balancing changed total work {baseline_total} -> {performed_total}"
        );
    }
}
