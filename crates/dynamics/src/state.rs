//! The prognostic model state of one rank.
//!
//! Six variables, matching `agcm_grid::arakawa::Variable`: winds u and v,
//! layer thickness h (standing in for potential temperature as the mass
//! variable of the shallow-water reduction), surface pressure p, and two
//! advected tracers (specific humidity q and ozone o₃). Each is a local
//! [`Field3D`] over the rank's subdomain, all vertical levels.

use agcm_grid::arakawa::Variable;
use agcm_grid::decomp::Subdomain;
use agcm_grid::field::Field3D;
use agcm_grid::latlon::GridSpec;

/// Mean layer thickness (m) around which the state is initialized.
pub const MEAN_THICKNESS: f64 = 8_000.0;

/// One rank's prognostic fields, indexable by [`Variable`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    /// The fields, ordered as [`Variable::ALL`].
    pub fields: Vec<Field3D>,
    /// The owning subdomain.
    pub sub: Subdomain,
    /// The global grid.
    pub grid: GridSpec,
}

impl ModelState {
    /// A state of zeros.
    pub fn zeros(grid: GridSpec, sub: Subdomain) -> ModelState {
        let fields = Variable::ALL
            .iter()
            .map(|_| Field3D::zeros(sub.ni, sub.nj, grid.n_lev))
            .collect();
        ModelState { fields, sub, grid }
    }

    /// A balanced, smoothly varying initial condition: a zonal jet in
    /// gradient balance with the thickness field, plus tracer plumes and a
    /// burst of short polar waves (the modes the filter exists to damp).
    pub fn initial(grid: GridSpec, sub: Subdomain) -> ModelState {
        let mut s = ModelState::zeros(grid, sub);
        for k in 0..grid.n_lev {
            for j in 0..sub.nj {
                let lat = grid.latitude(sub.j0 + j);
                for i in 0..sub.ni {
                    let lon = grid.longitude(sub.i0 + i);
                    // Zonal jet peaking mid-latitude, weak vertical shear.
                    let jet = 25.0 * (2.0 * lat).sin().powi(2) * (1.0 + 0.08 * k as f64);
                    // Thickness in approximate balance + planetary wave.
                    let h = MEAN_THICKNESS - 600.0 * lat.sin().powi(2)
                        + 40.0 * (3.0 * lon).cos() * lat.cos();
                    // Short polar noise, the CFL offenders.
                    let polar_noise = 6.0 * (20.0 * lon).sin() * lat.sin().powi(4);
                    s.field_mut(Variable::U).set(i, j, k, jet);
                    s.field_mut(Variable::V)
                        .set(i, j, k, 0.5 * (5.0 * lon).sin() * lat.cos());
                    s.field_mut(Variable::Theta).set(i, j, k, h + polar_noise);
                    s.field_mut(Variable::Pressure)
                        .set(i, j, k, 1.0e5 - 10.0 * k as f64);
                    s.field_mut(Variable::Humidity).set(
                        i,
                        j,
                        k,
                        (0.02 * (-(lat / 0.5).powi(2)).exp()).max(1e-6),
                    );
                    s.field_mut(Variable::Ozone).set(
                        i,
                        j,
                        k,
                        1.0e-6 * (1.0 + 0.3 * (2.0 * lon).sin()),
                    );
                }
            }
        }
        s
    }

    /// Borrow a variable's field.
    pub fn field(&self, v: Variable) -> &Field3D {
        &self.fields[v.index()]
    }

    /// Mutably borrow a variable's field.
    pub fn field_mut(&mut self, v: Variable) -> &mut Field3D {
        &mut self.fields[v.index()]
    }

    /// Maximum |u|, |v| over the local subdomain — the local CFL speed.
    pub fn max_wind(&self) -> f64 {
        let scan = |f: &Field3D| f.as_slice().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        scan(self.field(Variable::U)).max(scan(self.field(Variable::V)))
    }

    /// Local mass (sum of thickness over the subdomain) — conserved by the
    /// flux-form continuity equation up to boundary fluxes.
    pub fn local_mass(&self) -> f64 {
        self.field(Variable::Theta).as_slice().iter().sum()
    }

    /// True if any field holds a non-finite value (instability detector).
    pub fn has_blown_up(&self) -> bool {
        self.fields
            .iter()
            .any(|f| f.as_slice().iter().any(|v| !v.is_finite()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_grid::decomp::Decomp;

    #[test]
    fn initial_state_is_finite_and_plausible() {
        let grid = GridSpec::new(36, 24, 3);
        let d = Decomp::new(grid, 1, 1);
        let s = ModelState::initial(grid, d.subdomain(0, 0));
        assert!(!s.has_blown_up());
        assert!(s.max_wind() > 10.0 && s.max_wind() < 100.0);
        let mean_h = s.local_mass() / (36.0 * 24.0 * 3.0);
        assert!(
            (mean_h - MEAN_THICKNESS).abs() < 1_000.0,
            "mean thickness {mean_h}"
        );
    }

    #[test]
    fn subdomain_states_tile_the_global_one() {
        let grid = GridSpec::new(24, 12, 2);
        let d = Decomp::new(grid, 2, 3);
        let global = ModelState::initial(grid, Decomp::new(grid, 1, 1).subdomain(0, 0));
        for rank in 0..d.size() {
            let sub = d.subdomain_of_rank(rank);
            let local = ModelState::initial(grid, sub);
            for v in Variable::ALL {
                for k in 0..grid.n_lev {
                    for j in 0..sub.nj {
                        for i in 0..sub.ni {
                            assert_eq!(
                                local.field(v).get(i, j, k),
                                global.field(v).get(sub.i0 + i, sub.j0 + j, k),
                                "rank {rank} {v:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn blowup_detection() {
        let grid = GridSpec::new(8, 4, 1);
        let d = Decomp::new(grid, 1, 1);
        let mut s = ModelState::initial(grid, d.subdomain(0, 0));
        assert!(!s.has_blown_up());
        s.field_mut(Variable::V).set(3, 2, 0, f64::NAN);
        assert!(s.has_blown_up());
    }

    #[test]
    fn variable_accessors_are_distinct() {
        let grid = GridSpec::new(8, 4, 1);
        let d = Decomp::new(grid, 1, 1);
        let mut s = ModelState::zeros(grid, d.subdomain(0, 0));
        s.field_mut(Variable::U).set(0, 0, 0, 1.0);
        s.field_mut(Variable::Ozone).set(0, 0, 0, 2.0);
        assert_eq!(s.field(Variable::U).get(0, 0, 0), 1.0);
        assert_eq!(s.field(Variable::Ozone).get(0, 0, 0), 2.0);
        assert_eq!(s.field(Variable::V).get(0, 0, 0), 0.0);
    }
}
