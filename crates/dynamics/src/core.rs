//! The Dynamics driver: filter → halo exchange → finite differences.
//!
//! One call to [`Dynamics::step`] is one model timestep of the Dynamics
//! component (paper §2): the polar spectral filter runs first ("the
//! spectral filtering is performed at each time step before the
//! finite-difference procedures are called", §3.3), ghost points are
//! exchanged, and the multi-layer shallow-water equations advance with a
//! forward-backward scheme (mass first, then winds against the updated
//! mass field — stable for gravity waves up to CFL 1).
//!
//! Every phase is bracketed in the execution trace ("filter", "halo",
//! "fd"), which is how Figure 1 and Tables 4–7 are regenerated.

use crate::advection::upwind_tendency;
use crate::state::ModelState;
use crate::tendencies::{coriolis_param, flops, flux_divergence, grad_x, grad_y};
use crate::timestep::GRAVITY;
use agcm_filtering::driver::{FilterOrganization, FilterVariant, PolarFilter};
use agcm_filtering::lines::FilterSetup;
use agcm_grid::arakawa::Variable;
use agcm_grid::decomp::Decomp;
use agcm_grid::halo::HaloField;
use agcm_grid::latlon::GridSpec;
use agcm_mps::topology::CartComm;

/// Configuration of the dynamical core.
#[derive(Debug, Clone, Copy)]
pub struct DynamicsConfig {
    /// Timestep in seconds.
    pub dt: f64,
    /// Gravitational acceleration (m/s²).
    pub gravity: f64,
    /// Polar filter variant, or `None` to run unfiltered (unstable unless
    /// `dt` respects the polar CFL limit).
    pub filter: Option<FilterVariant>,
    /// Variable organization of the FFT filter variants (aggregated by
    /// default; per-variable for paper-faithful comparison runs).
    pub filter_organization: FilterOrganization,
}

impl DynamicsConfig {
    /// A configuration with the standard gravity and the chosen filter
    /// (aggregated organization).
    pub fn new(dt: f64, filter: Option<FilterVariant>) -> DynamicsConfig {
        DynamicsConfig {
            dt,
            gravity: GRAVITY,
            filter,
            filter_organization: FilterOrganization::default(),
        }
    }

    /// Override the filter's variable organization.
    pub fn with_filter_organization(mut self, organization: FilterOrganization) -> DynamicsConfig {
        self.filter_organization = organization;
        self
    }
}

/// The per-rank Dynamics component.
pub struct Dynamics {
    grid: GridSpec,
    cfg: DynamicsConfig,
    setup: FilterSetup,
    filter: Option<PolarFilter>,
}

impl Dynamics {
    /// Build the component (precomputes the filter setup — the paper's
    /// once-per-run bookkeeping).
    pub fn new(grid: GridSpec, decomp: Decomp, cfg: DynamicsConfig) -> Dynamics {
        let setup = FilterSetup::new(grid, decomp);
        let filter = cfg
            .filter
            .map(|v| PolarFilter::with_organization(&setup, v, cfg.filter_organization));
        Dynamics {
            grid,
            cfg,
            setup,
            filter,
        }
    }

    /// The filter setup (shared bookkeeping).
    pub fn setup(&self) -> &FilterSetup {
        &self.setup
    }

    /// Advance the local state by one timestep. Collective over the mesh.
    pub fn step(&self, cart: &CartComm, state: &mut ModelState) {
        let comm = cart.comm();

        // --- Spectral filtering. ------------------------------------------
        if let Some(filter) = &self.filter {
            comm.phase("filter", || {
                filter.apply(&self.setup, cart, &mut state.fields)
            });
        }

        // --- Ghost-point exchange (communication phase). -------------------
        let sub = state.sub;
        let mut halos: Vec<HaloField> = comm.phase("halo", || {
            Variable::ALL
                .iter()
                .map(|&v| {
                    let f = state.field(v);
                    let mut h = HaloField::zeros(sub.ni, sub.nj, self.grid.n_lev, 1);
                    h.fill_interior(|i, j, k| f.get(i, j, k));
                    h.exchange(cart);
                    h
                })
                .collect()
        });

        // --- Finite differences (forward-backward). ------------------------
        comm.phase("fd", || {
            let dt = self.cfg.dt;
            let g = self.cfg.gravity;
            let (u_h, v_h) = (&halos[Variable::U.index()], &halos[Variable::V.index()]);
            let h_h = &halos[Variable::Theta.index()];
            let npts = (sub.ni * sub.nj * self.grid.n_lev) as f64;

            // 1. Continuity, flux form: h* = h − dt·∇·(h·u).
            let div = flux_divergence(h_h, u_h, v_h, &self.grid, sub.j0);
            let mut h_new = state.field(Variable::Theta).clone();
            for (hv, dv) in h_new.as_mut_slice().iter_mut().zip(div.as_slice()) {
                *hv -= dt * dv;
            }
            comm.record_flops((flops::FLUX_DIV + 2.0) * npts);

            // Refresh the thickness halo with the updated field (backward
            // part of forward-backward).
            let mut hstar = HaloField::zeros(sub.ni, sub.nj, self.grid.n_lev, 1);
            hstar.fill_interior(|i, j, k| h_new.get(i, j, k));
            comm.phase("halo", || hstar.exchange(cart));

            // 2. Momentum: Coriolis + pressure gradient on h* + advection.
            let dhdx = grad_x(&hstar, &self.grid, sub.j0);
            let dhdy = grad_y(&hstar, &self.grid, sub.j0);
            let adv_u = upwind_tendency(u_h, u_h, v_h, &self.grid, sub.j0);
            let adv_v = upwind_tendency(v_h, u_h, v_h, &self.grid, sub.j0);
            comm.record_flops((2.0 * flops::GRAD + 2.0 * flops::UPWIND) * npts);

            let mut u_new = state.field(Variable::U).clone();
            let mut v_new = state.field(Variable::V).clone();
            for k in 0..self.grid.n_lev {
                for j in 0..sub.nj {
                    let f = coriolis_param(self.grid.latitude(sub.j0 + j));
                    for i in 0..sub.ni {
                        let (uu, vv) = (u_new.get(i, j, k), v_new.get(i, j, k));
                        u_new.set(
                            i,
                            j,
                            k,
                            uu + dt * (f * vv - g * dhdx.get(i, j, k) + adv_u.get(i, j, k)),
                        );
                        v_new.set(
                            i,
                            j,
                            k,
                            vv + dt * (-f * uu - g * dhdy.get(i, j, k) + adv_v.get(i, j, k)),
                        );
                    }
                }
            }
            comm.record_flops(2.0 * flops::MOMENTUM * npts);

            // 3. Tracers: upwind advection by the old winds.
            for tracer in [Variable::Humidity, Variable::Ozone] {
                let adv = upwind_tendency(&halos[tracer.index()], u_h, v_h, &self.grid, sub.j0);
                let fld = state.field_mut(tracer);
                for (qv, av) in fld.as_mut_slice().iter_mut().zip(adv.as_slice()) {
                    *qv += dt * av;
                }
                comm.record_flops((flops::UPWIND + 2.0) * npts);
            }

            *state.field_mut(Variable::Theta) = h_new;
            *state.field_mut(Variable::U) = u_new;
            *state.field_mut(Variable::V) = v_new;
        });
        halos.clear();
    }
}

/// Area-weighted global mass of the thickness field, reduced over the
/// mesh: `Σ h·cosφ`. Conserved exactly by the flux-form continuity
/// operator (collective).
pub fn global_mass(cart: &CartComm, state: &ModelState) -> f64 {
    let sub = state.sub;
    let mut local = 0.0;
    let h = state.field(Variable::Theta);
    for k in 0..state.grid.n_lev {
        for j in 0..sub.nj {
            let w = state.grid.latitude(sub.j0 + j).cos();
            for i in 0..sub.ni {
                local += h.get(i, j, k) * w;
            }
        }
    }
    cart.comm()
        .allreduce_f64(agcm_mps::collectives::Op::Sum, &[local])[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestep::{max_stable_dt, signal_speed};
    use agcm_mps::runtime::run;

    fn run_steps(
        grid: GridSpec,
        mesh: (usize, usize),
        dt: f64,
        filter: Option<FilterVariant>,
        steps: usize,
    ) -> Vec<(bool, f64, f64, f64)> {
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        run(decomp.size(), move |c| {
            let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
            let dyn_core = Dynamics::new(grid, decomp, DynamicsConfig::new(dt, filter));
            let mut state = ModelState::initial(grid, decomp.subdomain_of_rank(c.rank()));
            let mass0 = global_mass(&cart, &state);
            // No early exit on blow-up: ranks must stay in lockstep through
            // the collectives, and NaNs propagate harmlessly.
            for _ in 0..steps {
                dyn_core.step(&cart, &mut state);
            }
            let mass1 = global_mass(&cart, &state);
            // Global diagnostics so every rank reports the same values.
            use agcm_mps::collectives::Op;
            let blown = cart
                .comm()
                .allreduce_i64(Op::Max, &[i64::from(state.has_blown_up())])[0]
                == 1;
            let wind = cart.comm().allreduce_f64(Op::Max, &[state.max_wind()])[0];
            (blown, wind, mass0, mass1)
        })
    }

    #[test]
    fn stable_at_conservative_timestep() {
        let grid = GridSpec::new(48, 24, 2);
        let dt = max_stable_dt(&grid, signal_speed(), 0.5, None);
        let out = run_steps(grid, (2, 2), dt, None, 10);
        for (blown, wind, _, _) in out {
            assert!(!blown);
            assert!(wind < 200.0, "wind stayed physical: {wind}");
        }
    }

    #[test]
    fn mass_is_conserved() {
        let grid = GridSpec::new(48, 24, 2);
        let dt = max_stable_dt(&grid, signal_speed(), 0.4, None);
        let out = run_steps(grid, (2, 2), dt, None, 8);
        for (_, _, m0, m1) in out {
            assert!(
                (m1 - m0).abs() < 1e-9 * m0.abs(),
                "mass {m0} -> {m1} must be conserved by the flux form"
            );
        }
    }

    #[test]
    fn filter_permits_timestep_the_raw_grid_cannot_take() {
        // THE experiment of the paper's §2: at a timestep sized for the
        // 45°-filtered CFL limit, the unfiltered model explodes at the
        // poles while the filtered one stays bounded.
        let grid = GridSpec::new(64, 32, 1);
        // Courant 0.35 at the 45° cutoff: comfortably stable under the
        // filter (damping × gravity-wave growth < 1 at every wavenumber),
        // yet ~5× beyond the raw polar CFL limit.
        let dt = max_stable_dt(&grid, signal_speed(), 0.35, Some(45.0));
        assert!(crate::timestep::worst_courant(&grid, signal_speed(), dt) > 3.0);

        let unfiltered = run_steps(grid, (2, 2), dt, None, 60);
        let filtered = run_steps(grid, (2, 2), dt, Some(FilterVariant::LbFft), 60);

        let unfiltered_bad = unfiltered
            .iter()
            .any(|(blown, wind, _, _)| *blown || *wind > 1.0e3);
        assert!(
            unfiltered_bad,
            "unfiltered run should go unstable: {unfiltered:?}"
        );
        for (blown, wind, _, _) in &filtered {
            assert!(!blown, "filtered run must not blow up");
            assert!(*wind < 500.0, "filtered winds bounded: {wind}");
        }
    }

    #[test]
    fn parallel_runs_match_single_rank() {
        // Bit-for-bit domain-decomposition independence over a few steps.
        let grid = GridSpec::new(32, 16, 2);
        let dt = max_stable_dt(&grid, signal_speed(), 0.4, None);
        let single = run_steps(grid, (1, 1), dt, Some(FilterVariant::LbFft), 3);
        let multi = run_steps(grid, (2, 2), dt, Some(FilterVariant::LbFft), 3);
        // Compare the scalar diagnostics (mass is global and exact).
        let (_, w1, _, m1) = single[0];
        for &(_, w4, _, m4) in &multi {
            assert!((m1 - m4).abs() < 1e-6 * m1.abs(), "mass {m1} vs {m4}");
            assert!((w1 - w4).abs() < 1e-6, "max wind {w1} vs {w4}");
        }
    }

    #[test]
    fn filter_phase_appears_in_trace() {
        let grid = GridSpec::new(32, 16, 1);
        let decomp = Decomp::new(grid, 2, 2);
        let dt = max_stable_dt(&grid, signal_speed(), 0.4, Some(45.0));
        let (_, trace) = agcm_mps::runtime::run_traced(4, |c| {
            let cart = CartComm::new(c, 2, 2, (false, true));
            let dyn_core = Dynamics::new(
                grid,
                decomp,
                DynamicsConfig::new(dt, Some(FilterVariant::LbFft)),
            );
            let mut state = ModelState::initial(grid, decomp.subdomain_of_rank(c.rank()));
            dyn_core.step(&cart, &mut state);
        });
        use agcm_mps::trace::Event;
        for evs in &trace.ranks {
            let names: Vec<&str> = evs
                .iter()
                .filter_map(|e| match e {
                    Event::PhaseBegin(n) => Some(*n),
                    _ => None,
                })
                .collect();
            assert!(names.contains(&"filter"));
            assert!(names.contains(&"halo"));
            assert!(names.contains(&"fd"));
        }
    }
}
