//! The Dynamics driver: filter → halo exchange → finite differences.
//!
//! One call to [`Dynamics::step`] is one model timestep of the Dynamics
//! component (paper §2): the polar spectral filter runs first ("the
//! spectral filtering is performed at each time step before the
//! finite-difference procedures are called", §3.3), ghost points are
//! exchanged, and the multi-layer shallow-water equations advance with a
//! forward-backward scheme (mass first, then winds against the updated
//! mass field — stable for gravity waves up to CFL 1).
//!
//! Every phase is bracketed in the execution trace ("filter", "halo",
//! "fd"), which is how Figure 1 and Tables 4–7 are regenerated. Inside
//! "fd" the compute is sub-bracketed as "dyn.tendencies" (gradients,
//! divergence, momentum) and "dyn.advection" (upwind transport) — phases
//! accumulate inclusively in the cost-model replay, so the outer "fd"
//! accounting is unchanged.
//!
//! The production [`Dynamics::step`] runs the §4-optimized flat kernels
//! from `agcm-kernels` over a reusable [`DynScratch`] workspace (zero
//! heap allocations once warmed up); [`Dynamics::step_reference`] keeps
//! the original allocating `from_fn` operators. Both paths are
//! bit-identical — enforced by the equivalence tests below.

use crate::advection::upwind_tendency;
use crate::state::ModelState;
use crate::tendencies::{coriolis_param, flops, flux_divergence, grad_x, grad_y};
use crate::timestep::GRAVITY;
use agcm_filtering::driver::{FilterOrganization, FilterVariant, PolarFilter};
use agcm_filtering::lines::FilterSetup;
use agcm_grid::arakawa::Variable;
use agcm_grid::decomp::{Decomp, Subdomain};
use agcm_grid::halo::HaloField;
use agcm_grid::latlon::GridSpec;
use agcm_kernels::advect::upwind_into;
use agcm_kernels::tendency::{
    advance_in_place, flux_divergence_into, grad_x_into, grad_y_into, momentum_update,
};
use agcm_kernels::{DynScratch, HaloView};
use agcm_mps::topology::CartComm;
use agcm_telemetry::Counter;
use std::cell::RefCell;
use std::sync::Arc;

/// Configuration of the dynamical core.
#[derive(Debug, Clone, Copy)]
pub struct DynamicsConfig {
    /// Timestep in seconds.
    pub dt: f64,
    /// Gravitational acceleration (m/s²).
    pub gravity: f64,
    /// Polar filter variant, or `None` to run unfiltered (unstable unless
    /// `dt` respects the polar CFL limit).
    pub filter: Option<FilterVariant>,
    /// Variable organization of the FFT filter variants (aggregated by
    /// default; per-variable for paper-faithful comparison runs).
    pub filter_organization: FilterOrganization,
}

impl DynamicsConfig {
    /// A configuration with the standard gravity and the chosen filter
    /// (aggregated organization).
    pub fn new(dt: f64, filter: Option<FilterVariant>) -> DynamicsConfig {
        DynamicsConfig {
            dt,
            gravity: GRAVITY,
            filter,
            filter_organization: FilterOrganization::default(),
        }
    }

    /// Override the filter's variable organization.
    pub fn with_filter_organization(mut self, organization: FilterOrganization) -> DynamicsConfig {
        self.filter_organization = organization;
        self
    }
}

/// The per-rank Dynamics component.
pub struct Dynamics {
    grid: GridSpec,
    cfg: DynamicsConfig,
    setup: FilterSetup,
    filter: Option<PolarFilter>,
    /// Reusable kernel workspace (per rank; `Dynamics` is built inside
    /// each rank's thread, so interior mutability needs no `Sync`).
    scratch: RefCell<DynScratch>,
    /// Grid points advanced per step (5 prognostic updates per point),
    /// cached so the hot path never touches the registry lock.
    points_updated: Arc<Counter>,
}

impl Dynamics {
    /// Build the component (precomputes the filter setup — the paper's
    /// once-per-run bookkeeping).
    pub fn new(grid: GridSpec, decomp: Decomp, cfg: DynamicsConfig) -> Dynamics {
        let setup = FilterSetup::new(grid, decomp);
        let filter = cfg
            .filter
            .map(|v| PolarFilter::with_organization(&setup, v, cfg.filter_organization));
        Dynamics {
            grid,
            cfg,
            setup,
            filter,
            scratch: RefCell::new(DynScratch::new()),
            points_updated: agcm_telemetry::registry().counter("dyn.points_updated"),
        }
    }

    /// The filter setup (shared bookkeeping).
    pub fn setup(&self) -> &FilterSetup {
        &self.setup
    }

    /// Size the scratch for `sub`, refreshing the Coriolis table whenever
    /// the buffers were (re)built. No-op after the first step.
    fn ensure_scratch(&self, scratch: &mut DynScratch, sub: Subdomain) {
        if scratch.ensure(&self.grid, sub.j0, sub.ni, sub.nj, Variable::ALL.len()) {
            for (j, f) in scratch.f_cor.iter_mut().enumerate() {
                *f = coriolis_param(self.grid.latitude(sub.j0 + j));
            }
        }
    }

    /// Continuity, flux form: h* = h − dt·∇·(h·u), then stage h* into its
    /// halo (interior only; the caller exchanges).
    fn continuity_kernels(&self, scratch: &mut DynScratch, state: &mut ModelState) {
        {
            let u_h = HaloView::of(&scratch.halos[Variable::U.index()]);
            let v_h = HaloView::of(&scratch.halos[Variable::V.index()]);
            let h_h = HaloView::of(&scratch.halos[Variable::Theta.index()]);
            flux_divergence_into(&h_h, &u_h, &v_h, &scratch.tables, &mut scratch.div);
        }
        // Negative dt: h −= dt·div, bit-identical to the reference loop.
        advance_in_place(
            state.field_mut(Variable::Theta).as_mut_slice(),
            &scratch.div,
            -self.cfg.dt,
        );
        scratch
            .hstar
            .copy_interior_from(state.field(Variable::Theta));
    }

    /// Pressure-gradient terms on the exchanged h*.
    fn gradient_kernels(scratch: &mut DynScratch) {
        let hs = HaloView::of(&scratch.hstar);
        grad_x_into(&hs, &scratch.tables, &mut scratch.dhdx);
        grad_y_into(&hs, &scratch.tables, &mut scratch.dhdy);
    }

    /// Upwind self-advection of the old winds.
    fn wind_advection_kernels(scratch: &mut DynScratch) {
        let u_h = HaloView::of(&scratch.halos[Variable::U.index()]);
        let v_h = HaloView::of(&scratch.halos[Variable::V.index()]);
        upwind_into(&u_h, &u_h, &v_h, &scratch.tables, &mut scratch.adv_u);
        upwind_into(&v_h, &u_h, &v_h, &scratch.tables, &mut scratch.adv_v);
    }

    /// In-place forward-backward momentum update.
    fn momentum_kernel(&self, scratch: &DynScratch, state: &mut ModelState) {
        let shape = (state.sub.ni, state.sub.nj, self.grid.n_lev);
        // u and v mutably at once: split the field vec at V's index.
        let (left, right) = state.fields.split_at_mut(Variable::V.index());
        momentum_update(
            left[Variable::U.index()].as_mut_slice(),
            right[0].as_mut_slice(),
            &scratch.dhdx,
            &scratch.dhdy,
            &scratch.adv_u,
            &scratch.adv_v,
            &scratch.f_cor,
            shape,
            self.cfg.dt,
            self.cfg.gravity,
        );
    }

    /// Upwind advection of one tracer by the old winds, applied in place.
    fn tracer_kernels(&self, scratch: &mut DynScratch, state: &mut ModelState, tracer: Variable) {
        {
            let q_h = HaloView::of(&scratch.halos[tracer.index()]);
            let u_h = HaloView::of(&scratch.halos[Variable::U.index()]);
            let v_h = HaloView::of(&scratch.halos[Variable::V.index()]);
            upwind_into(&q_h, &u_h, &v_h, &scratch.tables, &mut scratch.adv_q);
        }
        advance_in_place(
            state.field_mut(tracer).as_mut_slice(),
            &scratch.adv_q,
            self.cfg.dt,
        );
    }

    /// Advance the local state by one timestep. Collective over the mesh.
    ///
    /// This is the optimized path: flat `agcm-kernels` operators over the
    /// reusable scratch, bit-identical to [`Dynamics::step_reference`].
    pub fn step(&self, cart: &CartComm, state: &mut ModelState) {
        let comm = cart.comm();

        // --- Spectral filtering. ------------------------------------------
        if let Some(filter) = &self.filter {
            comm.phase("filter", || {
                filter.apply(&self.setup, cart, &mut state.fields)
            });
        }

        let sub = state.sub;
        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        self.ensure_scratch(scratch, sub);

        // --- Ghost-point exchange (communication phase). -------------------
        comm.phase("halo", || {
            for (h, f) in scratch.halos.iter_mut().zip(&state.fields) {
                h.copy_interior_from(f);
                h.exchange(cart);
            }
        });

        // --- Finite differences (forward-backward). ------------------------
        comm.phase("fd", || {
            let npts = (sub.ni * sub.nj * self.grid.n_lev) as f64;

            // 1. Continuity: h* = h − dt·∇·(h·u).
            comm.phase("dyn.tendencies", || {
                self.continuity_kernels(scratch, state);
                comm.record_flops((flops::FLUX_DIV + 2.0) * npts);
            });

            // Refresh the thickness halo with the updated field (backward
            // part of forward-backward).
            comm.phase("halo", || scratch.hstar.exchange(cart));

            // 2. Momentum: Coriolis + pressure gradient on h* + advection.
            comm.phase("dyn.tendencies", || {
                Self::gradient_kernels(scratch);
                comm.record_flops(2.0 * flops::GRAD * npts);
            });
            comm.phase("dyn.advection", || {
                Self::wind_advection_kernels(scratch);
                comm.record_flops(2.0 * flops::UPWIND * npts);
            });
            comm.phase("dyn.tendencies", || {
                self.momentum_kernel(scratch, state);
                comm.record_flops(2.0 * flops::MOMENTUM * npts);
            });

            // 3. Tracers: upwind advection by the old winds.
            for tracer in [Variable::Humidity, Variable::Ozone] {
                comm.phase("dyn.advection", || {
                    self.tracer_kernels(scratch, state, tracer);
                    comm.record_flops((flops::UPWIND + 2.0) * npts);
                });
            }
        });

        // h, u, v, and the two tracers each advanced once per point.
        self.points_updated
            .add((5 * sub.ni * sub.nj * self.grid.n_lev) as u64);
    }

    /// The per-step kernel sequence with **no communication and no trace
    /// events**: halo interiors are refreshed from `state`, but ghosts
    /// keep whatever the scratch currently holds (neighbour data after a
    /// real [`Dynamics::step`], zeros on a fresh scratch) and h* is not
    /// re-exchanged. Not a substitute for `step` — it exists so the
    /// counting-allocator test and the kernel benchmarks can drive the
    /// hot compute path in isolation.
    pub fn compute_step_no_comm(&self, state: &mut ModelState) {
        let sub = state.sub;
        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        self.ensure_scratch(scratch, sub);
        for (h, f) in scratch.halos.iter_mut().zip(&state.fields) {
            h.copy_interior_from(f);
        }
        self.continuity_kernels(scratch, state);
        Self::gradient_kernels(scratch);
        Self::wind_advection_kernels(scratch);
        self.momentum_kernel(scratch, state);
        for tracer in [Variable::Humidity, Variable::Ozone] {
            self.tracer_kernels(scratch, state, tracer);
        }
    }

    /// The original `from_fn` timestep, kept verbatim as the bit-exact
    /// reference for the kernel path (and as the baseline the committed
    /// kernel benchmarks measure against). Allocates fresh halos and
    /// tendency fields every call.
    pub fn step_reference(&self, cart: &CartComm, state: &mut ModelState) {
        let comm = cart.comm();

        // --- Spectral filtering. ------------------------------------------
        if let Some(filter) = &self.filter {
            comm.phase("filter", || {
                filter.apply(&self.setup, cart, &mut state.fields)
            });
        }

        // --- Ghost-point exchange (communication phase). -------------------
        let sub = state.sub;
        let mut halos: Vec<HaloField> = comm.phase("halo", || {
            Variable::ALL
                .iter()
                .map(|&v| {
                    let f = state.field(v);
                    let mut h = HaloField::zeros(sub.ni, sub.nj, self.grid.n_lev, 1);
                    h.fill_interior(|i, j, k| f.get(i, j, k));
                    h.exchange(cart);
                    h
                })
                .collect()
        });

        // --- Finite differences (forward-backward). ------------------------
        comm.phase("fd", || {
            let dt = self.cfg.dt;
            let g = self.cfg.gravity;
            let (u_h, v_h) = (&halos[Variable::U.index()], &halos[Variable::V.index()]);
            let h_h = &halos[Variable::Theta.index()];
            let npts = (sub.ni * sub.nj * self.grid.n_lev) as f64;

            // 1. Continuity, flux form: h* = h − dt·∇·(h·u).
            let div = flux_divergence(h_h, u_h, v_h, &self.grid, sub.j0);
            let mut h_new = state.field(Variable::Theta).clone();
            for (hv, dv) in h_new.as_mut_slice().iter_mut().zip(div.as_slice()) {
                *hv -= dt * dv;
            }
            comm.record_flops((flops::FLUX_DIV + 2.0) * npts);

            // Refresh the thickness halo with the updated field (backward
            // part of forward-backward).
            let mut hstar = HaloField::zeros(sub.ni, sub.nj, self.grid.n_lev, 1);
            hstar.fill_interior(|i, j, k| h_new.get(i, j, k));
            comm.phase("halo", || hstar.exchange(cart));

            // 2. Momentum: Coriolis + pressure gradient on h* + advection.
            let dhdx = grad_x(&hstar, &self.grid, sub.j0);
            let dhdy = grad_y(&hstar, &self.grid, sub.j0);
            let adv_u = upwind_tendency(u_h, u_h, v_h, &self.grid, sub.j0);
            let adv_v = upwind_tendency(v_h, u_h, v_h, &self.grid, sub.j0);
            comm.record_flops((2.0 * flops::GRAD + 2.0 * flops::UPWIND) * npts);

            let mut u_new = state.field(Variable::U).clone();
            let mut v_new = state.field(Variable::V).clone();
            for k in 0..self.grid.n_lev {
                for j in 0..sub.nj {
                    let f = coriolis_param(self.grid.latitude(sub.j0 + j));
                    for i in 0..sub.ni {
                        let (uu, vv) = (u_new.get(i, j, k), v_new.get(i, j, k));
                        u_new.set(
                            i,
                            j,
                            k,
                            uu + dt * (f * vv - g * dhdx.get(i, j, k) + adv_u.get(i, j, k)),
                        );
                        v_new.set(
                            i,
                            j,
                            k,
                            vv + dt * (-f * uu - g * dhdy.get(i, j, k) + adv_v.get(i, j, k)),
                        );
                    }
                }
            }
            comm.record_flops(2.0 * flops::MOMENTUM * npts);

            // 3. Tracers: upwind advection by the old winds.
            for tracer in [Variable::Humidity, Variable::Ozone] {
                let adv = upwind_tendency(&halos[tracer.index()], u_h, v_h, &self.grid, sub.j0);
                let fld = state.field_mut(tracer);
                for (qv, av) in fld.as_mut_slice().iter_mut().zip(adv.as_slice()) {
                    *qv += dt * av;
                }
                comm.record_flops((flops::UPWIND + 2.0) * npts);
            }

            *state.field_mut(Variable::Theta) = h_new;
            *state.field_mut(Variable::U) = u_new;
            *state.field_mut(Variable::V) = v_new;
        });
        halos.clear();
    }
}

/// Area-weighted global mass of the thickness field, reduced over the
/// mesh: `Σ h·cosφ`. Conserved exactly by the flux-form continuity
/// operator (collective).
pub fn global_mass(cart: &CartComm, state: &ModelState) -> f64 {
    let sub = state.sub;
    let mut local = 0.0;
    let h = state.field(Variable::Theta);
    for k in 0..state.grid.n_lev {
        for j in 0..sub.nj {
            let w = state.grid.latitude(sub.j0 + j).cos();
            for i in 0..sub.ni {
                local += h.get(i, j, k) * w;
            }
        }
    }
    cart.comm()
        .allreduce_f64(agcm_mps::collectives::Op::Sum, &[local])[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestep::{max_stable_dt, signal_speed};
    use agcm_mps::runtime::run;

    fn run_steps(
        grid: GridSpec,
        mesh: (usize, usize),
        dt: f64,
        filter: Option<FilterVariant>,
        steps: usize,
    ) -> Vec<(bool, f64, f64, f64)> {
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        run(decomp.size(), move |c| {
            let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
            let dyn_core = Dynamics::new(grid, decomp, DynamicsConfig::new(dt, filter));
            let mut state = ModelState::initial(grid, decomp.subdomain_of_rank(c.rank()));
            let mass0 = global_mass(&cart, &state);
            // No early exit on blow-up: ranks must stay in lockstep through
            // the collectives, and NaNs propagate harmlessly.
            for _ in 0..steps {
                dyn_core.step(&cart, &mut state);
            }
            let mass1 = global_mass(&cart, &state);
            // Global diagnostics so every rank reports the same values.
            use agcm_mps::collectives::Op;
            let blown = cart
                .comm()
                .allreduce_i64(Op::Max, &[i64::from(state.has_blown_up())])[0]
                == 1;
            let wind = cart.comm().allreduce_f64(Op::Max, &[state.max_wind()])[0];
            (blown, wind, mass0, mass1)
        })
    }

    #[test]
    fn stable_at_conservative_timestep() {
        let grid = GridSpec::new(48, 24, 2);
        let dt = max_stable_dt(&grid, signal_speed(), 0.5, None);
        let out = run_steps(grid, (2, 2), dt, None, 10);
        for (blown, wind, _, _) in out {
            assert!(!blown);
            assert!(wind < 200.0, "wind stayed physical: {wind}");
        }
    }

    #[test]
    fn mass_is_conserved() {
        let grid = GridSpec::new(48, 24, 2);
        let dt = max_stable_dt(&grid, signal_speed(), 0.4, None);
        let out = run_steps(grid, (2, 2), dt, None, 8);
        for (_, _, m0, m1) in out {
            assert!(
                (m1 - m0).abs() < 1e-9 * m0.abs(),
                "mass {m0} -> {m1} must be conserved by the flux form"
            );
        }
    }

    #[test]
    fn filter_permits_timestep_the_raw_grid_cannot_take() {
        // THE experiment of the paper's §2: at a timestep sized for the
        // 45°-filtered CFL limit, the unfiltered model explodes at the
        // poles while the filtered one stays bounded.
        let grid = GridSpec::new(64, 32, 1);
        // Courant 0.35 at the 45° cutoff: comfortably stable under the
        // filter (damping × gravity-wave growth < 1 at every wavenumber),
        // yet ~5× beyond the raw polar CFL limit.
        let dt = max_stable_dt(&grid, signal_speed(), 0.35, Some(45.0));
        assert!(crate::timestep::worst_courant(&grid, signal_speed(), dt) > 3.0);

        let unfiltered = run_steps(grid, (2, 2), dt, None, 60);
        let filtered = run_steps(grid, (2, 2), dt, Some(FilterVariant::LbFft), 60);

        let unfiltered_bad = unfiltered
            .iter()
            .any(|(blown, wind, _, _)| *blown || *wind > 1.0e3);
        assert!(
            unfiltered_bad,
            "unfiltered run should go unstable: {unfiltered:?}"
        );
        for (blown, wind, _, _) in &filtered {
            assert!(!blown, "filtered run must not blow up");
            assert!(*wind < 500.0, "filtered winds bounded: {wind}");
        }
    }

    #[test]
    fn parallel_runs_match_single_rank() {
        // Bit-for-bit domain-decomposition independence over a few steps.
        let grid = GridSpec::new(32, 16, 2);
        let dt = max_stable_dt(&grid, signal_speed(), 0.4, None);
        let single = run_steps(grid, (1, 1), dt, Some(FilterVariant::LbFft), 3);
        let multi = run_steps(grid, (2, 2), dt, Some(FilterVariant::LbFft), 3);
        // Compare the scalar diagnostics (mass is global and exact).
        let (_, w1, _, m1) = single[0];
        for &(_, w4, _, m4) in &multi {
            assert!((m1 - m4).abs() < 1e-6 * m1.abs(), "mass {m1} vs {m4}");
            assert!((w1 - w4).abs() < 1e-6, "max wind {w1} vs {w4}");
        }
    }

    fn run_fields(
        grid: GridSpec,
        mesh: (usize, usize),
        dt: f64,
        filter: Option<FilterVariant>,
        steps: usize,
        reference: bool,
    ) -> Vec<Vec<f64>> {
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        run(decomp.size(), move |c| {
            let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
            let dyn_core = Dynamics::new(grid, decomp, DynamicsConfig::new(dt, filter));
            let mut state = ModelState::initial(grid, decomp.subdomain_of_rank(c.rank()));
            for _ in 0..steps {
                if reference {
                    dyn_core.step_reference(&cart, &mut state);
                } else {
                    dyn_core.step(&cart, &mut state);
                }
            }
            state
                .fields
                .iter()
                .flat_map(|f| f.as_slice().iter().copied())
                .collect()
        })
    }

    #[test]
    fn kernel_step_is_bit_identical_to_reference() {
        // The acceptance bar for the optimized path: full-model results
        // bit-identical to the from_fn reference, across mesh shapes (the
        // pole rows land on different ranks), filtered and unfiltered.
        let grid = GridSpec::new(32, 16, 2);
        let dt = max_stable_dt(&grid, signal_speed(), 0.3, None);
        for (mesh, filter) in [
            ((1, 1), None),
            ((2, 2), Some(FilterVariant::LbFft)),
            ((1, 4), None),
            ((4, 1), Some(FilterVariant::LbFft)),
        ] {
            let opt = run_fields(grid, mesh, dt, filter, 4, false);
            let reference = run_fields(grid, mesh, dt, filter, 4, true);
            for (rank, (a, b)) in opt.iter().zip(&reference).enumerate() {
                assert_eq!(a.len(), b.len());
                assert!(
                    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "mesh {mesh:?} filter {filter:?} rank {rank}: kernel path diverged"
                );
            }
        }
    }

    #[test]
    fn points_updated_counter_advances() {
        let counter = agcm_telemetry::registry().counter("dyn.points_updated");
        let before = counter.get();
        let grid = GridSpec::new(16, 8, 2);
        let dt = max_stable_dt(&grid, signal_speed(), 0.3, None);
        run_fields(grid, (1, 1), dt, None, 2, false);
        // ≥, not ==: the registry is process-global and other tests step
        // concurrently.
        let expected = (2 * 5 * 16 * 8 * 2) as u64;
        assert!(
            counter.get() - before >= expected,
            "counter did not advance"
        );
    }

    #[test]
    fn filter_phase_appears_in_trace() {
        let grid = GridSpec::new(32, 16, 1);
        let decomp = Decomp::new(grid, 2, 2);
        let dt = max_stable_dt(&grid, signal_speed(), 0.4, Some(45.0));
        let (_, trace) = agcm_mps::runtime::run_traced(4, |c| {
            let cart = CartComm::new(c, 2, 2, (false, true));
            let dyn_core = Dynamics::new(
                grid,
                decomp,
                DynamicsConfig::new(dt, Some(FilterVariant::LbFft)),
            );
            let mut state = ModelState::initial(grid, decomp.subdomain_of_rank(c.rank()));
            dyn_core.step(&cart, &mut state);
        });
        use agcm_mps::trace::Event;
        for evs in &trace.ranks {
            let names: Vec<&str> = evs
                .iter()
                .filter_map(|e| match e {
                    Event::PhaseBegin(n) => Some(*n),
                    _ => None,
                })
                .collect();
            assert!(names.contains(&"filter"));
            assert!(names.contains(&"halo"));
            assert!(names.contains(&"fd"));
            assert!(names.contains(&"dyn.tendencies"));
            assert!(names.contains(&"dyn.advection"));
        }
    }
}
