//! Implicit vertical solver — the linear-system component of §5.
//!
//! The paper's list of reusable GCM components includes "fast (parallel)
//! linear system solvers for implicit time-differencing schemes". In a
//! 2-D horizontally decomposed AGCM the implicit direction is vertical:
//! each column owns its entire tridiagonal system (that is *why* the
//! decomposition is horizontal, §2), so the parallel solver is a local
//! Thomas algorithm swept over owned columns — embarrassingly parallel,
//! like the physics.
//!
//! Provided here: the tridiagonal solver and an implicit (backward-Euler)
//! vertical diffusion step, unconditionally stable at any diffusion
//! number — the standard implicit-scheme payoff.

use agcm_grid::field::Field3D;
use agcm_mps::comm::Comm;

/// Solve the tridiagonal system `a[i]·x[i−1] + b[i]·x[i] + c[i]·x[i+1] =
/// d[i]` with the Thomas algorithm. `a[0]` and `c[n−1]` are ignored.
///
/// # Panics
/// On inconsistent lengths or a zero pivot (non-diagonally-dominant
/// systems are the caller's responsibility).
pub fn thomas_solve(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> Vec<f64> {
    let n = b.len();
    assert!(n > 0, "empty system");
    assert!(
        a.len() == n && c.len() == n && d.len() == n,
        "inconsistent system sizes"
    );
    let mut cp = vec![0.0; n];
    let mut dp = vec![0.0; n];
    let mut pivot = b[0];
    assert!(pivot.abs() > f64::EPSILON, "zero pivot at row 0");
    cp[0] = c[0] / pivot;
    dp[0] = d[0] / pivot;
    for i in 1..n {
        pivot = b[i] - a[i] * cp[i - 1];
        assert!(pivot.abs() > f64::EPSILON, "zero pivot at row {i}");
        cp[i] = c[i] / pivot;
        dp[i] = (d[i] - a[i] * dp[i - 1]) / pivot;
    }
    let mut x = vec![0.0; n];
    x[n - 1] = dp[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = dp[i] - cp[i] * x[i + 1];
    }
    x
}

/// Flops of one Thomas solve of size `n` (~8n: forward sweep 5n, back
/// substitution 2n, plus setup).
pub fn thomas_flops(n: usize) -> f64 {
    8.0 * n as f64
}

/// One backward-Euler vertical diffusion step on every owned column:
/// `(I − ν·Δt·D²) θⁿ⁺¹ = θⁿ` with zero-flux boundaries. `nu_dt` is the
/// diffusion number ν·Δt/Δz² (any non-negative value is stable). Records
/// the flop count on `comm` and returns it.
pub fn implicit_vertical_diffusion(comm: &Comm, theta: &mut Field3D, nu_dt: f64) -> f64 {
    assert!(nu_dt >= 0.0, "diffusion number must be non-negative");
    let (ni, nj, nk) = theta.shape();
    if nk == 1 || nu_dt == 0.0 {
        return 0.0; // nothing to diffuse
    }
    // Constant coefficients: build the stencil once.
    let mut a = vec![-nu_dt; nk];
    let mut b = vec![1.0 + 2.0 * nu_dt; nk];
    let mut c = vec![-nu_dt; nk];
    // Zero-flux (Neumann) boundaries: the missing neighbour folds into the
    // diagonal.
    b[0] = 1.0 + nu_dt;
    b[nk - 1] = 1.0 + nu_dt;
    a[0] = 0.0;
    c[nk - 1] = 0.0;

    let mut flops = 0.0;
    for j in 0..nj {
        for i in 0..ni {
            let d = theta.column(i, j);
            let x = thomas_solve(&a, &b, &c, &d);
            theta.set_column(i, j, &x);
            flops += thomas_flops(nk);
        }
    }
    comm.record_flops(flops);
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_mps::runtime::run;

    fn residual(a: &[f64], b: &[f64], c: &[f64], d: &[f64], x: &[f64]) -> f64 {
        let n = b.len();
        (0..n)
            .map(|i| {
                let lo = if i > 0 { a[i] * x[i - 1] } else { 0.0 };
                let hi = if i + 1 < n { c[i] * x[i + 1] } else { 0.0 };
                (lo + b[i] * x[i] + hi - d[i]).abs()
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_identity() {
        let n = 7;
        let x = thomas_solve(
            &vec![0.0; n],
            &vec![1.0; n],
            &vec![0.0; n],
            &[1., 2., 3., 4., 5., 6., 7.],
        );
        assert_eq!(x, vec![1., 2., 3., 4., 5., 6., 7.]);
    }

    #[test]
    fn solves_diagonally_dominant_system() {
        let n = 9;
        let a: Vec<f64> = (0..n).map(|i| -0.3 - 0.01 * i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| 2.0 + 0.1 * i as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| -0.4 + 0.02 * i as f64).collect();
        let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.8).sin()).collect();
        let x = thomas_solve(&a, &b, &c, &d);
        assert!(residual(&a, &b, &c, &d, &x) < 1e-12);
    }

    #[test]
    fn single_row_system() {
        assert_eq!(thomas_solve(&[0.0], &[4.0], &[0.0], &[8.0]), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn mismatched_lengths_rejected() {
        thomas_solve(&[0.0], &[1.0, 1.0], &[0.0, 0.0], &[1.0, 1.0]);
    }

    #[test]
    fn diffusion_conserves_column_integral() {
        // Neumann boundaries: Σ_k θ must be invariant.
        run(1, |comm| {
            let mut f = Field3D::from_fn(4, 3, 9, |i, j, k| {
                ((i + 2 * j) as f64 * 0.7).sin() + (k as f64 - 4.0).powi(2)
            });
            let before: Vec<f64> = (0..4)
                .flat_map(|i| (0..3).map(move |j| (i, j)))
                .map(|(i, j)| f.column(i, j).iter().sum::<f64>())
                .collect();
            implicit_vertical_diffusion(comm, &mut f, 5.0);
            let after: Vec<f64> = (0..4)
                .flat_map(|i| (0..3).map(move |j| (i, j)))
                .map(|(i, j)| f.column(i, j).iter().sum::<f64>())
                .collect();
            for (x, y) in before.iter().zip(&after) {
                assert!((x - y).abs() < 1e-9, "column integral {x} -> {y}");
            }
        });
    }

    #[test]
    fn diffusion_reduces_vertical_variance_and_is_stable_at_huge_dt() {
        // The implicit payoff: a diffusion number of 1000 (wildly beyond
        // any explicit limit) stays stable and monotone.
        run(1, |comm| {
            let mut f = Field3D::from_fn(2, 2, 16, |_, _, k| if k < 8 { 1.0 } else { -1.0 });
            let var = |f: &Field3D| -> f64 {
                let col = f.column(0, 0);
                let mean = col.iter().sum::<f64>() / col.len() as f64;
                col.iter().map(|v| (v - mean).powi(2)).sum()
            };
            let v0 = var(&f);
            implicit_vertical_diffusion(comm, &mut f, 1000.0);
            let v1 = var(&f);
            assert!(
                v1 < 0.01 * v0,
                "huge implicit step flattens the profile: {v0} -> {v1}"
            );
            assert!(f
                .as_slice()
                .iter()
                .all(|v| v.is_finite() && v.abs() <= 1.0 + 1e-9));
        });
    }

    #[test]
    fn zero_diffusion_is_identity() {
        run(1, |comm| {
            let mut f = Field3D::from_fn(3, 3, 5, |i, j, k| (i + j * 10 + k * 100) as f64);
            let orig = f.clone();
            let flops = implicit_vertical_diffusion(comm, &mut f, 0.0);
            assert_eq!(flops, 0.0);
            assert_eq!(f.max_abs_diff(&orig), 0.0);
        });
    }

    #[test]
    fn flops_recorded_in_trace() {
        let (_, trace) = agcm_mps::runtime::run_traced(1, |comm| {
            let mut f = Field3D::zeros(4, 4, 9);
            implicit_vertical_diffusion(comm, &mut f, 0.5);
        });
        assert_eq!(trace.stats()[0].flops, 16.0 * thomas_flops(9));
    }
}
