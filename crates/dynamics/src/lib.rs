//! # agcm-dynamics — the finite-difference dynamical core
//!
//! "AGCM/Dynamics … computes the evolution of the fluid flow governed by
//! the primitive equations by means of finite-differences" (paper §2),
//! preceded each step by the spectral filtering near the poles. This crate
//! provides a multi-layer shallow-water core on the uniform lat-lon grid —
//! the standard reduced form of the primitive equations that exhibits the
//! same computational structure: nearest-neighbour stencils, ghost-point
//! exchange, fast inertia-gravity waves that violate the CFL condition at
//! the poles unless filtered, and per-point flop counts dominated by
//! advection and pressure-gradient terms.
//!
//! (Substitution note, cf. DESIGN.md: variables are collocated rather than
//! C-staggered in the difference operators — the staggering metadata lives
//! in `agcm-grid::arakawa` — which changes none of the parallel structure
//! the paper measures: stencil footprint, halo width, flops per point.)
//!
//! * [`state`] — the prognostic model state (u, v, h/θ, p, q, o₃ per rank);
//! * [`advection`] — tracer advection, in the naive and restructured forms
//!   of the paper's single-node study (§3.4: −35% on a T3D node);
//! * [`tendencies`] — Coriolis, pressure-gradient and mass-flux terms;
//! * [`implicit`] — the §5 linear-solver component: per-column Thomas
//!   solver and unconditionally stable implicit vertical diffusion;
//! * [`timestep`] — forward-backward/leapfrog stepping with an
//!   Asselin-Robert filter and CFL accounting;
//! * [`core`] — the per-step driver: polar filter → halo exchange →
//!   tendencies → advance, with flops and phases traced.

pub mod advection;
pub mod core;
pub mod implicit;
pub mod state;
pub mod tendencies;
pub mod timestep;

pub use crate::core::{Dynamics, DynamicsConfig};
pub use state::ModelState;
