//! Advection: the model's upwind operator, plus the naive/restructured
//! pair from the paper's single-node study.
//!
//! §3.4: "We selected the advection routine from the Dynamics component …
//! as the representative candidate for single-node performance analysis
//! … eliminating or minimizing redundant calculations in nested loops …
//! enforcing loop-unrolling on some large loops. When applying these
//! strategies to the advection routine, we were able to reduce its
//! execution time on a single Cray T3D node by about 35%."
//!
//! [`advect_naive`] transliterates the original style: one big fused loop
//! that re-derives every metric factor and reciprocal at every grid point.
//! [`advect_restructured`] applies the paper's machine-independent fixes:
//! hoist latitude-dependent factors out of the inner loop, precompute
//! reciprocals once per row, and unroll the inner loop by four. Both
//! produce identical tendencies, which the tests check; the speed gap is
//! measured in `agcm-bench`.

use crate::tendencies::flops;
use agcm_grid::field::Field3D;
use agcm_grid::halo::HaloField;
use agcm_grid::latlon::{GridSpec, EARTH_RADIUS_M};

/// First-order upwind advective tendency `−(u ∂q/∂x + v ∂q/∂y)` on a
/// halo-exchanged field — the operator the time stepper uses (monotone and
/// stable at CFL ≤ 1).
pub fn upwind_tendency(
    q: &HaloField,
    u: &HaloField,
    v: &HaloField,
    grid: &GridSpec,
    j0: usize,
) -> Field3D {
    let (ni, nj, nk) = q.shape();
    let dlon = grid.dlon();
    let dlat = grid.dlat();
    Field3D::from_fn(ni, nj, nk, |i, j, k| {
        let cos = grid.latitude(j0 + j).cos();
        let dx = EARTH_RADIUS_M * cos * dlon;
        let dy = EARTH_RADIUS_M * dlat;
        let (ii, jj) = (i as isize, j as isize);
        let uu = u.get(ii, jj, k);
        let vv = v.get(ii, jj, k);
        let dqdx = if uu >= 0.0 {
            (q.get(ii, jj, k) - q.get(ii - 1, jj, k)) / dx
        } else {
            (q.get(ii + 1, jj, k) - q.get(ii, jj, k)) / dx
        };
        let dqdy = if vv >= 0.0 {
            (q.get(ii, jj, k) - q.get(ii, jj - 1, k)) / dy
        } else {
            (q.get(ii, jj + 1, k) - q.get(ii, jj, k)) / dy
        };
        -(uu * dqdx + vv * dqdy)
    })
}

/// Shape descriptor for the flat-array single-node kernels: interior
/// points only, `i` fastest.
#[derive(Debug, Clone, Copy)]
pub struct AdvShape {
    /// Longitude points.
    pub ni: usize,
    /// Latitude points.
    pub nj: usize,
    /// Levels.
    pub nk: usize,
}

impl AdvShape {
    fn len(&self) -> usize {
        self.ni * self.nj * self.nk
    }
    #[inline]
    fn at(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.nj + j) * self.ni + i
    }
}

/// Naive centred advection tendency, original style: everything recomputed
/// in the innermost loop (periodic in `i`, one-sided at the `j` edges).
pub fn advect_naive(
    q: &[f64],
    u: &[f64],
    v: &[f64],
    shape: AdvShape,
    grid: &GridSpec,
    j0: usize,
) -> Vec<f64> {
    let mut out = vec![0.0; shape.len()];
    for k in 0..shape.nk {
        for j in 0..shape.nj {
            for i in 0..shape.ni {
                // Redundant work, faithfully reproduced: the metric terms,
                // trig and divisions are re-derived per point.
                let lat = -std::f64::consts::FRAC_PI_2
                    + ((j0 + j) as f64 + 0.5) * (std::f64::consts::PI / grid.n_lat as f64);
                let dx =
                    EARTH_RADIUS_M * lat.cos() * (2.0 * std::f64::consts::PI / grid.n_lon as f64);
                let dy = EARTH_RADIUS_M * (std::f64::consts::PI / grid.n_lat as f64);
                let ip = shape.at((i + 1) % shape.ni, j, k);
                let im = shape.at((i + shape.ni - 1) % shape.ni, j, k);
                let jp = shape.at(i, (j + 1).min(shape.nj - 1), k);
                let jm = shape.at(i, j.saturating_sub(1), k);
                let c = shape.at(i, j, k);
                let dqdx = (q[ip] - q[im]) / (2.0 * dx);
                let dqdy = (q[jp] - q[jm]) / (2.0 * dy);
                out[c] = -(u[c] * dqdx + v[c] * dqdy);
            }
        }
    }
    out
}

/// Restructured advection: identical arithmetic, with the paper's fixes —
/// metric factors and reciprocals hoisted out of the inner loop, and the
/// periodic wrap-around peeled into prologue/epilogue so the hot span is a
/// branch-free, modulo-free streaming loop the compiler can vectorize.
pub fn advect_restructured(
    q: &[f64],
    u: &[f64],
    v: &[f64],
    shape: AdvShape,
    grid: &GridSpec,
    j0: usize,
) -> Vec<f64> {
    assert!(
        shape.ni >= 2,
        "boundary peeling needs at least two longitudes"
    );
    let mut out = vec![0.0; shape.len()];
    let dlon = 2.0 * std::f64::consts::PI / grid.n_lon as f64;
    let dlat = std::f64::consts::PI / grid.n_lat as f64;
    let rdy2 = 1.0 / (2.0 * EARTH_RADIUS_M * dlat);
    // Hoist: one reciprocal per latitude row, computed once.
    let rdx2: Vec<f64> = (0..shape.nj)
        .map(|j| {
            let lat = -std::f64::consts::FRAC_PI_2 + ((j0 + j) as f64 + 0.5) * dlat;
            1.0 / (2.0 * EARTH_RADIUS_M * lat.cos() * dlon)
        })
        .collect();
    let ni = shape.ni;
    for k in 0..shape.nk {
        #[allow(clippy::needless_range_loop)] // index drives multiple buffers
        for j in 0..shape.nj {
            let rx = rdx2[j];
            let row = shape.at(0, j, k);
            let rowp = shape.at(0, (j + 1).min(shape.nj - 1), k);
            let rowm = shape.at(0, j.saturating_sub(1), k);
            // Peeled western boundary (wraps to the easternmost point).
            {
                let c = row;
                let dqdx = (q[row + 1] - q[row + ni - 1]) * rx;
                let dqdy = (q[rowp] - q[rowm]) * rdy2;
                out[c] = -(u[c] * dqdx + v[c] * dqdy);
            }
            // Hot interior: no wrap, no modulo, unit stride.
            for i in 1..ni - 1 {
                let c = row + i;
                let dqdx = (q[c + 1] - q[c - 1]) * rx;
                let dqdy = (q[rowp + i] - q[rowm + i]) * rdy2;
                out[c] = -(u[c] * dqdx + v[c] * dqdy);
            }
            // Peeled eastern boundary (wraps to the westernmost point).
            {
                let c = row + ni - 1;
                let dqdx = (q[row] - q[c - 1]) * rx;
                let dqdy = (q[rowp + ni - 1] - q[rowm + ni - 1]) * rdy2;
                out[c] = -(u[c] * dqdx + v[c] * dqdy);
            }
        }
    }
    out
}

/// Flop count of one upwind advection pass over `n` points (for tracing).
pub fn upwind_flops(n: usize) -> f64 {
    flops::UPWIND * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_mps::runtime::run;
    use agcm_mps::topology::CartComm;

    fn shape() -> AdvShape {
        AdvShape {
            ni: 24,
            nj: 16,
            nk: 3,
        }
    }

    fn test_fields(s: AdvShape) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let n = s.ni * s.nj * s.nk;
        let q: Vec<f64> = (0..n).map(|x| ((x as f64) * 0.37).sin()).collect();
        let u: Vec<f64> = (0..n).map(|x| 10.0 + ((x as f64) * 0.11).cos()).collect();
        let v: Vec<f64> = (0..n).map(|x| -3.0 * ((x as f64) * 0.07).sin()).collect();
        (q, u, v)
    }

    #[test]
    fn restructured_matches_naive_exactly() {
        // The whole point of §3.4: same arithmetic, different loop
        // structure. Results must agree to rounding error.
        let s = shape();
        let grid = GridSpec::new(s.ni, s.nj, s.nk);
        let (q, u, v) = test_fields(s);
        let a = advect_naive(&q, &u, &v, s, &grid, 0);
        let b = advect_restructured(&q, &u, &v, s, &grid, 0);
        let err = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-13, "restructuring changed the answer by {err}");
    }

    #[test]
    fn zero_wind_means_zero_tendency() {
        let s = shape();
        let grid = GridSpec::new(s.ni, s.nj, s.nk);
        let (q, _, _) = test_fields(s);
        let zero = vec![0.0; s.ni * s.nj * s.nk];
        let out = advect_naive(&q, &zero, &zero, s, &grid, 0);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn uniform_tracer_has_zero_tendency() {
        let s = shape();
        let grid = GridSpec::new(s.ni, s.nj, s.nk);
        let ones = vec![1.0; s.ni * s.nj * s.nk];
        let (_, u, v) = test_fields(s);
        let out = advect_restructured(&ones, &u, &v, s, &grid, 0);
        assert!(out.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn upwind_moves_a_bump_downstream() {
        // Constant eastward wind: after one tendency application, the
        // tracer must grow just downstream (east) of the bump and shrink
        // at the bump.
        let grid = GridSpec::new(32, 8, 1);
        let out = run(1, |c| {
            let cart = CartComm::new(c, 1, 1, (false, true));
            let mk = |f: &dyn Fn(usize, usize) -> f64| {
                let mut h = HaloField::zeros(32, 8, 1, 1);
                h.fill_interior(|i, j, _| f(i, j));
                let mut h2 = h.clone();
                h2.exchange(&cart);
                h2
            };
            let q = mk(&|i, _| if i == 10 { 1.0 } else { 0.0 });
            let u = mk(&|_, _| 20.0);
            let v = mk(&|_, _| 0.0);
            upwind_tendency(&q, &u, &v, &grid, 0)
        })
        .pop()
        .unwrap();
        let mid = 4;
        assert!(out.get(10, mid, 0) < 0.0, "bump must decay");
        assert!(out.get(11, mid, 0) > 0.0, "downstream must grow");
        assert_eq!(out.get(9, mid, 0), 0.0, "upstream untouched by upwinding");
    }

    #[test]
    fn upwind_respects_wind_direction() {
        let grid = GridSpec::new(32, 8, 1);
        let out = run(1, |c| {
            let cart = CartComm::new(c, 1, 1, (false, true));
            let mk = |f: &dyn Fn(usize, usize) -> f64| {
                let mut h = HaloField::zeros(32, 8, 1, 1);
                h.fill_interior(|i, j, _| f(i, j));
                h.exchange(&cart);
                h
            };
            let q = mk(&|i, _| if i == 10 { 1.0 } else { 0.0 });
            let u = mk(&|_, _| -20.0); // westward
            let v = mk(&|_, _| 0.0);
            upwind_tendency(&q, &u, &v, &grid, 0)
        })
        .pop()
        .unwrap();
        assert!(out.get(9, 4, 0) > 0.0, "westward wind spreads westward");
        assert_eq!(out.get(11, 4, 0), 0.0);
    }

    #[test]
    fn flop_estimate_scales() {
        assert_eq!(upwind_flops(100), 100.0 * crate::tendencies::flops::UPWIND);
    }
}
