//! Finite-difference operators: gradients, Coriolis, and the flux-form
//! continuity operator.
//!
//! All operators act on [`HaloField`]s whose ghosts have been exchanged,
//! use centred differences with spherical metric factors, and return plain
//! interior tendency fields. Meridional mass flux is closed off at the
//! poles, making the continuity operator exactly conservative of
//! area-weighted mass — which the tests verify.

use agcm_grid::field::Field3D;
use agcm_grid::halo::HaloField;
use agcm_grid::latlon::{GridSpec, EARTH_RADIUS_M};

/// Earth's rotation rate (rad/s).
pub const OMEGA: f64 = 7.292e-5;

/// Coriolis parameter `f = 2Ω sin φ`.
pub fn coriolis_param(lat: f64) -> f64 {
    2.0 * OMEGA * lat.sin()
}

/// Zonal derivative `(1/(a cosφ)) ∂q/∂λ`, centred.
pub fn grad_x(q: &HaloField, grid: &GridSpec, j0: usize) -> Field3D {
    let (ni, nj, nk) = q.shape();
    let dlon = grid.dlon();
    Field3D::from_fn(ni, nj, nk, |i, j, k| {
        let cos = grid.latitude(j0 + j).cos();
        let (ii, jj) = (i as isize, j as isize);
        (q.get(ii + 1, jj, k) - q.get(ii - 1, jj, k)) / (2.0 * dlon * EARTH_RADIUS_M * cos)
    })
}

/// Meridional derivative `(1/a) ∂q/∂φ`, centred.
pub fn grad_y(q: &HaloField, grid: &GridSpec, _j0: usize) -> Field3D {
    let (ni, nj, nk) = q.shape();
    let dlat = grid.dlat();
    Field3D::from_fn(ni, nj, nk, |i, j, k| {
        let (ii, jj) = (i as isize, j as isize);
        (q.get(ii, jj + 1, k) - q.get(ii, jj - 1, k)) / (2.0 * dlat * EARTH_RADIUS_M)
    })
}

/// Flux-form divergence `∇·(h·u)` on the sphere:
/// `(1/(a cosφ)) [ ∂(hu)/∂λ + ∂(hv cosφ)/∂φ ]`, with the meridional flux
/// forced to zero across the poles. `j0`/`global_lats` locate the
/// subdomain so pole rows are recognized.
pub fn flux_divergence(
    h: &HaloField,
    u: &HaloField,
    v: &HaloField,
    grid: &GridSpec,
    j0: usize,
) -> Field3D {
    let (ni, nj, nk) = h.shape();
    let dlon = grid.dlon();
    let dlat = grid.dlat();
    let a = EARTH_RADIUS_M;
    // cos at half-latitudes; clamp to ≥ 0 at the poles themselves.
    let cos_half = |j_global: f64| -> f64 {
        let lat = -std::f64::consts::FRAC_PI_2 + (j_global + 0.5) * dlat;
        lat.cos().max(0.0)
    };
    Field3D::from_fn(ni, nj, nk, |i, j, k| {
        let jg = j0 + j;
        let cosj = grid.latitude(jg).cos();
        let (ii, jj) = (i as isize, j as isize);
        // Zonal flux at cell faces, collocated average.
        let fe = 0.5
            * (h.get(ii, jj, k) * u.get(ii, jj, k) + h.get(ii + 1, jj, k) * u.get(ii + 1, jj, k));
        let fw = 0.5
            * (h.get(ii - 1, jj, k) * u.get(ii - 1, jj, k) + h.get(ii, jj, k) * u.get(ii, jj, k));
        // Meridional flux, cos-weighted; zero across a pole boundary.
        let gn = if jg + 1 >= grid.n_lat {
            0.0
        } else {
            0.5 * (h.get(ii, jj, k) * v.get(ii, jj, k)
                + h.get(ii, jj + 1, k) * v.get(ii, jj + 1, k))
                * cos_half(jg as f64)
        };
        let gs = if jg == 0 {
            0.0
        } else {
            0.5 * (h.get(ii, jj - 1, k) * v.get(ii, jj - 1, k)
                + h.get(ii, jj, k) * v.get(ii, jj, k))
                * cos_half(jg as f64 - 1.0)
        };
        ((fe - fw) / dlon + (gn - gs) / dlat) / (a * cosj)
    })
}

/// Charged flop counts per grid point, for tracing.
///
/// These are *cost-model parameters*, not operation counts of the reduced
/// kernels above: per the substitution note in DESIGN.md, the shallow-water
/// core stands in for the full UCLA primitive-equation term set (vertical
/// advection, energy conversion, moisture transport, …), whose per-point
/// arithmetic is roughly an order of magnitude larger. The constants are
/// sized so the single-processor component shares reproduce the paper's
/// Figure 1; everything the paper *measures* — scaling across meshes,
/// variant ratios, load balance — then emerges from the traced algorithms.
pub mod flops {
    /// grad_x or grad_y.
    pub const GRAD: f64 = 120.0;
    /// flux_divergence.
    pub const FLUX_DIV: f64 = 520.0;
    /// Coriolis + pressure-gradient update of one wind component.
    pub const MOMENTUM: f64 = 180.0;
    /// Upwind advection of one tracer.
    pub const UPWIND: f64 = 300.0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_grid::decomp::Decomp;
    use agcm_mps::runtime::run;
    use agcm_mps::topology::CartComm;

    /// Build a single-rank halo field from a function of global indices.
    fn single_rank_halo(
        grid: &GridSpec,
        f: impl Fn(usize, usize, usize) -> f64 + Copy,
    ) -> HaloField {
        let mut h = HaloField::zeros(grid.n_lon, grid.n_lat, grid.n_lev, 1);
        h.fill_interior(f);
        h
    }

    fn exchanged(
        grid: &GridSpec,
        f: impl Fn(usize, usize, usize) -> f64 + Copy + Sync,
    ) -> HaloField {
        let grid = *grid;
        run(1, move |c| {
            let cart = CartComm::new(c, 1, 1, (false, true));
            let mut h = single_rank_halo(&grid, f);
            h.exchange(&cart);
            h
        })
        .pop()
        .unwrap()
    }

    #[test]
    fn coriolis_sign_and_magnitude() {
        assert!(coriolis_param(0.5) > 0.0);
        assert!(coriolis_param(-0.5) < 0.0);
        assert_eq!(coriolis_param(0.0), 0.0);
        assert!((coriolis_param(std::f64::consts::FRAC_PI_2) - 2.0 * OMEGA).abs() < 1e-12);
    }

    #[test]
    fn grad_x_of_zonal_wave_is_analytic() {
        let grid = GridSpec::new(72, 18, 1);
        let q = exchanged(&grid, |i, _, _| (3.0 * (i as f64) * grid.dlon()).sin());
        let g = grad_x(&q, &grid, 0);
        // d/dx sin(3λ) = 3 cos(3λ) / (a cosφ)
        for j in [4, 9, 13] {
            let cos = grid.latitude(j).cos();
            for i in [0, 17, 40] {
                let lon = grid.longitude(i);
                // Centred difference of sin(3λ): (sin(3λ+3Δ)−sin(3λ−3Δ))/(2Δ·a·cosφ)
                let expect = 3.0 * (3.0 * lon).cos() * (3.0 * grid.dlon()).sin()
                    / (3.0 * grid.dlon())
                    / (EARTH_RADIUS_M * cos);
                let got = g.get(i, j, 0);
                assert!(
                    (got - expect).abs() < 1e-9 * expect.abs().max(1e-9),
                    "({i},{j}): {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn grad_y_of_constant_is_zero_interior() {
        let grid = GridSpec::new(16, 12, 2);
        let q = exchanged(&grid, |_, _, _| 7.0);
        let g = grad_y(&q, &grid, 0);
        for k in 0..2 {
            for j in 0..12 {
                for i in 0..16 {
                    assert!(g.get(i, j, k).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn flux_divergence_of_rest_state_is_zero() {
        let grid = GridSpec::new(24, 16, 1);
        let h = exchanged(&grid, |_, _, _| 8000.0);
        let u = exchanged(&grid, |_, _, _| 0.0);
        let v = exchanged(&grid, |_, _, _| 0.0);
        let div = flux_divergence(&h, &u, &v, &grid, 0);
        assert!(div.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn continuity_conserves_area_weighted_mass() {
        // Σ_ij div·cosφ must vanish: zonal fluxes telescope around each
        // circle; meridional fluxes telescope pole to pole with zero flux
        // at the poles.
        let grid = GridSpec::new(24, 16, 1);
        let h = exchanged(&grid, |i, j, _| {
            8000.0 + 50.0 * ((i + 2 * j) as f64 * 0.4).sin()
        });
        let u = exchanged(&grid, |i, j, _| {
            10.0 * ((i as f64 * 0.26).cos() + 0.1 * j as f64)
        });
        let v = exchanged(&grid, |i, j, _| {
            5.0 * ((j as f64 * 0.5).sin() + 0.2 * (i as f64).cos())
        });
        let div = flux_divergence(&h, &u, &v, &grid, 0);
        let mut total = 0.0;
        let mut scale = 0.0;
        for j in 0..16 {
            let cos = grid.latitude(j).cos();
            for i in 0..24 {
                total += div.get(i, j, 0) * cos;
                scale += div.get(i, j, 0).abs() * cos;
            }
        }
        assert!(
            total.abs() < 1e-12 * scale.max(1.0),
            "mass leak {total} (scale {scale})"
        );
    }

    #[test]
    fn parallel_operators_match_single_rank() {
        // Gradients computed on a 2x2 mesh with halo exchange must equal
        // the single-rank result.
        let grid = GridSpec::new(16, 12, 1);
        let decomp = Decomp::new(grid, 2, 2);
        let f =
            |i: usize, j: usize, _k: usize| ((i as f64) * 0.39).sin() + ((j as f64) * 0.52).cos();
        let single = {
            let q = exchanged(&grid, f);
            grad_x(&q, &grid, 0)
        };
        let locals = run(4, |c| {
            let cart = CartComm::new(c, 2, 2, (false, true));
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut q = HaloField::zeros(sub.ni, sub.nj, 1, 1);
            q.fill_interior(|i, j, k| f(sub.i0 + i, sub.j0 + j, k));
            q.exchange(&cart);
            grad_x(&q, &grid, sub.j0)
        });
        #[allow(clippy::needless_range_loop)] // index drives multiple buffers
        for rank in 0..4 {
            let sub = decomp.subdomain_of_rank(rank);
            for j in 0..sub.nj {
                // Skip global pole rows: their ghost extrapolation differs
                // from the interior stencil by construction on both sides,
                // so compare only rows with true neighbours.
                let jg = sub.j0 + j;
                if jg == 0 || jg == grid.n_lat - 1 {
                    continue;
                }
                for i in 0..sub.ni {
                    let got = locals[rank].get(i, j, 0);
                    let expect = single.get(sub.i0 + i, jg, 0);
                    assert!(
                        (got - expect).abs() < 1e-12,
                        "rank {rank} ({i},{j}): {got} vs {expect}"
                    );
                }
            }
        }
    }
}
