//! Time stepping support: CFL accounting and the forward-backward update.
//!
//! The paper's framing (§2): "The filtering operation is needed at each
//! time step in regions close to the poles to ensure the effective grid
//! size there satisfies the Courant-Friedrich-Levy (CFL) condition, a
//! stability requirement for explicit time-difference schemes when a fixed
//! time step is used throughout the entire spherical finite-difference
//! grid." These helpers quantify exactly that: the gravity-wave speed, the
//! worst-cell Courant number, and the timestep bounds with and without
//! filtering.

use crate::state::MEAN_THICKNESS;
use agcm_grid::latlon::GridSpec;

/// Gravitational acceleration (m/s²).
pub const GRAVITY: f64 = 9.81;

/// Shallow-water gravity-wave speed `c = √(g·H)`.
pub fn gravity_wave_speed(gravity: f64, mean_thickness: f64) -> f64 {
    (gravity * mean_thickness).sqrt()
}

/// The default signal speed of the model: gravity waves on the mean state
/// plus a jet-strength wind allowance.
pub fn signal_speed() -> f64 {
    gravity_wave_speed(GRAVITY, MEAN_THICKNESS) + 50.0
}

/// Worst-cell zonal Courant number of a timestep `dt` given signal speed
/// `c`: `max_j c·dt/Δx(φ_j)`. Stability needs this ≲ 1.
pub fn worst_courant(grid: &GridSpec, c: f64, dt: f64) -> f64 {
    (0..grid.n_lat)
        .map(|j| c * dt / grid.zonal_spacing_m(j))
        .fold(0.0, f64::max)
}

/// Worst Courant number over the *unfiltered* region only (rows
/// equatorward of `cutoff_deg`): the effective stability constraint when
/// the polar filter damps the modes poleward of the cutoff.
pub fn worst_courant_filtered(grid: &GridSpec, c: f64, dt: f64, cutoff_deg: f64) -> f64 {
    (0..grid.n_lat)
        .filter(|&j| grid.latitude_deg(j).abs() < cutoff_deg)
        .map(|j| c * dt / grid.zonal_spacing_m(j))
        .fold(0.0, f64::max)
}

/// Largest timestep with worst Courant number ≤ `target` (a safety factor
/// below 1), optionally under polar filtering.
pub fn max_stable_dt(grid: &GridSpec, c: f64, target: f64, filter_cutoff_deg: Option<f64>) -> f64 {
    assert!(target > 0.0 && c > 0.0);
    let min_dx = match filter_cutoff_deg {
        Some(cut) => (0..grid.n_lat)
            .filter(|&j| grid.latitude_deg(j).abs() < cut)
            .map(|j| grid.zonal_spacing_m(j))
            .fold(f64::INFINITY, f64::min),
        None => (0..grid.n_lat)
            .map(|j| grid.zonal_spacing_m(j))
            .fold(f64::INFINITY, f64::min),
    };
    target * min_dx / c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gravity_wave_speed_magnitude() {
        // √(9.81 × 8000) ≈ 280 m/s — the fast external mode.
        let c = gravity_wave_speed(GRAVITY, MEAN_THICKNESS);
        assert!((c - 280.0).abs() < 1.0, "c = {c}");
    }

    #[test]
    fn courant_is_worst_at_pole() {
        let grid = GridSpec::paper_9_layer();
        let c = signal_speed();
        let dt = 100.0;
        let worst = worst_courant(&grid, c, dt);
        // Either polar row may win by a rounding hair; both are polar.
        let polar = c * dt / grid.zonal_spacing_m(0);
        assert!((worst - polar).abs() < 1e-9 * polar);
    }

    #[test]
    fn filtering_relaxes_the_bound_dramatically() {
        let grid = GridSpec::paper_9_layer();
        let c = signal_speed();
        let dt_raw = max_stable_dt(&grid, c, 0.7, None);
        let dt_filt = max_stable_dt(&grid, c, 0.7, Some(45.0));
        // "the use of spectral filtering … improves the computational
        // efficiency … by enabling the use of uniformly larger time steps".
        assert!(
            dt_filt > 15.0 * dt_raw,
            "filtered dt {dt_filt} vs unfiltered {dt_raw}"
        );
    }

    #[test]
    fn filtered_courant_consistent_with_dt_bound() {
        let grid = GridSpec::paper_9_layer();
        let c = signal_speed();
        let dt = max_stable_dt(&grid, c, 0.7, Some(45.0));
        let nr = worst_courant_filtered(&grid, c, dt, 45.0);
        assert!((nr - 0.7).abs() < 1e-9);
        // The raw Courant number at that dt is wildly unstable — the modes
        // the filter must remove.
        assert!(worst_courant(&grid, c, dt) > 10.0);
    }
}
