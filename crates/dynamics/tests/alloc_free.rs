//! Acceptance-criterion test: a warmed-up dynamics timestep performs
//! **zero heap allocations** in its compute path. A counting global
//! allocator gates the whole binary, so this file holds exactly one test
//! — parallel test threads would otherwise pollute the counter.
//!
//! Scope: `Dynamics::compute_step_no_comm`, the exact kernel sequence
//! `step` runs between its halo exchanges over the reusable
//! [`agcm_kernels::DynScratch`]. Exchange packing and trace events are
//! runtime concerns, deliberately outside this gate.

use agcm_dynamics::core::{Dynamics, DynamicsConfig};
use agcm_dynamics::state::ModelState;
use agcm_dynamics::timestep::{max_stable_dt, signal_speed};
use agcm_grid::decomp::Decomp;
use agcm_grid::latlon::GridSpec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

// Per-thread flag: libtest's harness threads allocate concurrently with
// the test body, so a process-wide flag over-counts. Const-init Cell has
// no lazy allocation or destructor, so reading it inside `alloc` is safe.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

fn counting() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warmed_up_timestep_allocates_nothing() {
    let grid = GridSpec::new(48, 24, 3);
    let decomp = Decomp::new(grid, 1, 1);
    let dt = max_stable_dt(&grid, signal_speed(), 0.3, None);
    let dyn_core = Dynamics::new(grid, decomp, DynamicsConfig::new(dt, None));
    let mut state = ModelState::initial(grid, decomp.subdomain_of_rank(0));

    // Warm-up: the scratch (halos, metric tables, tendency buffers) is
    // built on the first call.
    dyn_core.compute_step_no_comm(&mut state);

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..10 {
        dyn_core.compute_step_no_comm(&mut state);
    }
    COUNTING.with(|c| c.set(false));
    let count = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        count, 0,
        "warmed-up timestep performed {count} heap allocations"
    );
}
