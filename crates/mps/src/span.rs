//! Live span observation: a hook called as ranks enter and leave phases.
//!
//! The [`trace::RankTrace`](crate::trace::RankTrace) records phase events
//! for *post-hoc* replay; a [`SpanObserver`] sees the same phase
//! boundaries *while the world runs*, so a serving layer can show the
//! phase breakdown of a job that has not finished yet. The observer is
//! optional ([`WorldOptions::spans`](crate::runtime::WorldOptions)); when
//! absent, phase entry/exit costs one `Option` check and nothing else.
//!
//! Observers are called from every rank thread concurrently and must be
//! cheap: a slow observer stalls the rank that called it. Implementations
//! pair `phase_begin`/`phase_end` themselves (calls on one rank are
//! properly nested, in program order).

/// Receives phase-boundary notifications from running ranks.
pub trait SpanObserver: Send + Sync {
    /// Rank `rank` entered phase `name`.
    fn phase_begin(&self, rank: usize, name: &'static str);

    /// Rank `rank` left phase `name` (the innermost open phase).
    fn phase_end(&self, rank: usize, name: &'static str);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_world, WorldOptions};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[derive(Default)]
    struct Recorder {
        events: Mutex<Vec<(usize, &'static str, bool)>>,
    }

    impl SpanObserver for Recorder {
        fn phase_begin(&self, rank: usize, name: &'static str) {
            self.events.lock().push((rank, name, true));
        }
        fn phase_end(&self, rank: usize, name: &'static str) {
            self.events.lock().push((rank, name, false));
        }
    }

    #[test]
    fn observer_sees_balanced_phases_per_rank() {
        let rec = Arc::new(Recorder::default());
        let opts = WorldOptions {
            spans: Some(rec.clone()),
            ..WorldOptions::default()
        };
        let out = run_world(3, opts, |c| {
            c.phase("step", || {
                c.phase("fd", || c.record_flops(1.0));
            });
        });
        assert!(out.all_ok());
        let events = rec.events.lock();
        for rank in 0..3 {
            let mine: Vec<_> = events.iter().filter(|(r, _, _)| *r == rank).collect();
            assert_eq!(
                mine.iter()
                    .map(|(_, n, begin)| (*n, *begin))
                    .collect::<Vec<_>>(),
                vec![("step", true), ("fd", true), ("fd", false), ("step", false)],
                "rank {rank}"
            );
        }
    }

    #[test]
    fn no_observer_is_the_default_and_harmless() {
        let out = run_world(2, WorldOptions::default(), |c| c.phase("step", || c.rank()));
        assert!(out.all_ok());
    }
}
