//! Live span observation: a hook called as ranks enter and leave phases.
//!
//! The [`trace::RankTrace`](crate::trace::RankTrace) records phase events
//! for *post-hoc* replay; a [`SpanObserver`] sees the same phase
//! boundaries *while the world runs*, so a serving layer can show the
//! phase breakdown of a job that has not finished yet. The observer is
//! optional ([`WorldOptions::spans`](crate::runtime::WorldOptions)); when
//! absent, phase entry/exit costs one `Option` check and nothing else.
//!
//! Observers are called from every rank thread concurrently and must be
//! cheap: a slow observer stalls the rank that called it. Implementations
//! pair `phase_begin`/`phase_end` themselves (calls on one rank are
//! properly nested, in program order).

use std::sync::Arc;

/// Receives phase-boundary notifications from running ranks.
pub trait SpanObserver: Send + Sync {
    /// Rank `rank` entered phase `name`.
    fn phase_begin(&self, rank: usize, name: &'static str);

    /// Rank `rank` left phase `name` (the innermost open phase).
    fn phase_end(&self, rank: usize, name: &'static str);

    /// Rank `rank`'s thread started; called before the rank body runs.
    /// A sampling profiler uses this to mark the rank's slot live.
    fn rank_started(&self, _rank: usize) {}

    /// Rank `rank`'s thread finished (successfully or not); no further
    /// callbacks for this rank will arrive after it.
    fn rank_finished(&self, _rank: usize) {}
}

/// Fans every callback out to several observers, in order. Lets a single
/// [`WorldOptions::spans`](crate::runtime::WorldOptions) slot feed both a
/// live telemetry bridge and a sampling profiler.
pub struct FanoutObserver {
    observers: Vec<Arc<dyn SpanObserver>>,
}

impl FanoutObserver {
    /// A fan-out over `observers`; callbacks are forwarded in this order.
    pub fn new(observers: Vec<Arc<dyn SpanObserver>>) -> FanoutObserver {
        FanoutObserver { observers }
    }
}

impl SpanObserver for FanoutObserver {
    fn phase_begin(&self, rank: usize, name: &'static str) {
        for o in &self.observers {
            o.phase_begin(rank, name);
        }
    }

    fn phase_end(&self, rank: usize, name: &'static str) {
        for o in &self.observers {
            o.phase_end(rank, name);
        }
    }

    fn rank_started(&self, rank: usize) {
        for o in &self.observers {
            o.rank_started(rank);
        }
    }

    fn rank_finished(&self, rank: usize) {
        for o in &self.observers {
            o.rank_finished(rank);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_world, WorldOptions};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[derive(Default)]
    struct Recorder {
        events: Mutex<Vec<(usize, &'static str, bool)>>,
    }

    impl SpanObserver for Recorder {
        fn phase_begin(&self, rank: usize, name: &'static str) {
            self.events.lock().push((rank, name, true));
        }
        fn phase_end(&self, rank: usize, name: &'static str) {
            self.events.lock().push((rank, name, false));
        }
    }

    #[test]
    fn observer_sees_balanced_phases_per_rank() {
        let rec = Arc::new(Recorder::default());
        let opts = WorldOptions {
            spans: Some(rec.clone()),
            ..WorldOptions::default()
        };
        let out = run_world(3, opts, |c| {
            c.phase("step", || {
                c.phase("fd", || c.record_flops(1.0));
            });
        });
        assert!(out.all_ok());
        let events = rec.events.lock();
        for rank in 0..3 {
            let mine: Vec<_> = events.iter().filter(|(r, _, _)| *r == rank).collect();
            assert_eq!(
                mine.iter()
                    .map(|(_, n, begin)| (*n, *begin))
                    .collect::<Vec<_>>(),
                vec![("step", true), ("fd", true), ("fd", false), ("step", false)],
                "rank {rank}"
            );
        }
    }

    #[test]
    fn no_observer_is_the_default_and_harmless() {
        let out = run_world(2, WorldOptions::default(), |c| c.phase("step", || c.rank()));
        assert!(out.all_ok());
    }

    #[derive(Default)]
    struct Lifecycle {
        events: Mutex<Vec<(usize, &'static str)>>,
    }

    impl SpanObserver for Lifecycle {
        fn phase_begin(&self, rank: usize, _name: &'static str) {
            self.events.lock().push((rank, "begin"));
        }
        fn phase_end(&self, rank: usize, _name: &'static str) {
            self.events.lock().push((rank, "end"));
        }
        fn rank_started(&self, rank: usize) {
            self.events.lock().push((rank, "started"));
        }
        fn rank_finished(&self, rank: usize) {
            self.events.lock().push((rank, "finished"));
        }
    }

    #[test]
    fn rank_lifecycle_brackets_every_phase_event() {
        let rec = Arc::new(Lifecycle::default());
        let opts = WorldOptions {
            spans: Some(rec.clone()),
            ..WorldOptions::default()
        };
        let out = run_world(2, opts, |c| c.phase("step", || ()));
        assert!(out.all_ok());
        let events = rec.events.lock();
        for rank in 0..2 {
            let mine: Vec<&'static str> = events
                .iter()
                .filter(|(r, _)| *r == rank)
                .map(|(_, e)| *e)
                .collect();
            assert_eq!(
                mine,
                vec!["started", "begin", "end", "finished"],
                "rank {rank}"
            );
        }
    }

    #[test]
    fn fanout_forwards_to_every_observer_in_order() {
        let a = Arc::new(Lifecycle::default());
        let b = Arc::new(Lifecycle::default());
        let fan = FanoutObserver::new(vec![
            a.clone() as Arc<dyn SpanObserver>,
            b.clone() as Arc<dyn SpanObserver>,
        ]);
        fan.rank_started(0);
        fan.phase_begin(0, "x");
        fan.phase_end(0, "x");
        fan.rank_finished(0);
        let expect = vec![(0, "started"), (0, "begin"), (0, "end"), (0, "finished")];
        assert_eq!(*a.events.lock(), expect);
        assert_eq!(*b.events.lock(), expect);
    }
}
