//! Launching a world of ranks.
//!
//! [`run`] spawns one OS thread per rank, hands each a world [`Comm`], and
//! returns the per-rank results in rank order. [`run_traced`] additionally
//! enables event tracing and returns the [`WorldTrace`] for cost-model
//! replay. The paper's largest configuration is an 8×30 = 240-node mesh;
//! 240 threads are comfortably within what this runtime handles.

use crate::comm::{Comm, RankShared, World};
use crate::message::WirePacket;
use crate::trace::{RankTrace, WorldTrace};
use crossbeam::channel::unbounded;
use std::sync::Arc;

fn launch<F, R>(n: usize, tracing: bool, f: F) -> (Vec<R>, WorldTrace)
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    assert!(n > 0, "world size must be at least 1");
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<WirePacket>();
        senders.push(tx);
        receivers.push(rx);
    }
    let world = Arc::new(World { senders });
    let traces: Vec<Arc<RankTrace>> = (0..n).map(|_| RankTrace::new(tracing)).collect();

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let world = Arc::clone(&world);
            let trace = Arc::clone(&traces[rank]);
            let f = &f;
            handles.push(scope.spawn(move || {
                let shared = RankShared::new(world, rank, rx, trace);
                let comm = Comm::world(shared);
                f(&comm)
            }));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            match handle.join() {
                Ok(r) => *slot = Some(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let trace = WorldTrace { ranks: traces.iter().map(|t| t.take()).collect() };
    (
        results.into_iter().map(|r| r.expect("joined rank produced a result")).collect(),
        trace,
    )
}

/// Run `f` on `n` ranks and return the per-rank results in rank order.
/// Panics in any rank propagate to the caller.
pub fn run<F, R>(n: usize, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    launch(n, false, f).0
}

/// Like [`run`], but with event tracing enabled; also returns the
/// [`WorldTrace`] for replay by `agcm-costmodel`.
pub fn run_traced<F, R>(n: usize, f: F) -> (Vec<R>, WorldTrace)
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    launch(n, true, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::Op;
    use crate::message::Payload;
    use crate::trace::Event;

    #[test]
    fn results_in_rank_order() {
        let out = run(8, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_rank_world() {
        let out = run(1, |c| {
            assert_eq!(c.size(), 1);
            c.rank()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn large_world_240_ranks() {
        // The paper's biggest mesh: 8 x 30 = 240 nodes.
        let out = run(240, |c| c.allreduce_i64(Op::Sum, &[1])[0]);
        assert!(out.into_iter().all(|v| v == 240));
    }

    #[test]
    fn traced_run_captures_messages() {
        let (_, trace) = run_traced(2, |c| {
            let other = 1 - c.rank();
            c.record_flops(50.0);
            c.send(other, 0, Payload::F64(vec![0.0; 16]));
            c.recv(other, 0);
        });
        assert_eq!(trace.size(), 2);
        let stats = trace.stats();
        for s in &stats {
            assert_eq!(s.sends, 1);
            assert_eq!(s.bytes_sent, 128);
            assert_eq!(s.recvs, 1);
            assert_eq!(s.flops, 50.0);
        }
        // Sequence numbers must let the replayer match sends to receives.
        for evs in &trace.ranks {
            let send_seq = evs.iter().find_map(|e| match e {
                Event::Send { seq, .. } => Some(*seq),
                _ => None,
            });
            assert_eq!(send_seq, Some(0));
        }
    }

    #[test]
    fn traced_phases_recorded_in_order() {
        let (_, trace) = run_traced(1, |c| {
            c.phase("dynamics", || c.record_flops(10.0));
            c.phase("physics", || c.record_flops(20.0));
        });
        let evs = &trace.ranks[0];
        assert_eq!(
            evs.as_slice(),
            &[
                Event::PhaseBegin("dynamics"),
                Event::Flops(10.0),
                Event::PhaseEnd("dynamics"),
                Event::PhaseBegin("physics"),
                Event::Flops(20.0),
                Event::PhaseEnd("physics"),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "world size must be at least 1")]
    fn zero_ranks_rejected() {
        run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "rank 3 exploded")]
    fn rank_panic_propagates() {
        run(6, |c| {
            if c.rank() == 3 {
                panic!("rank 3 exploded");
            }
        });
    }
}
