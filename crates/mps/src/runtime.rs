//! Launching a world of ranks.
//!
//! [`run`] spawns one OS thread per rank, hands each a world [`Comm`], and
//! returns the per-rank results in rank order. [`run_traced`] additionally
//! enables event tracing and returns the [`WorldTrace`] for cost-model
//! replay. The paper's largest configuration is an 8×30 = 240-node mesh;
//! 240 threads are comfortably within what this runtime handles.
//!
//! [`run_with_faults`] is the fault-aware variant: a [`FaultPlan`] is
//! threaded into every communicator, rank deaths (planned kills, or
//! communication aborts caused by a dead peer) are caught and returned as
//! typed per-rank failures instead of propagating panics, and each rank's
//! injected-fault log is returned for determinism checks.

use crate::cancel::{CancelToken, CancelUnwind};
use crate::comm::{Comm, RankShared, World};
use crate::error::Error;
use crate::fault::{CommAbort, FaultEvent, FaultKill, FaultPlan, FaultState};
use crate::message::WirePacket;
use crate::span::SpanObserver;
use crate::trace::{RankTrace, WorldTrace};
use crossbeam::channel::unbounded;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};

/// Controlled unwinds (planned kills, comm aborts on a dead peer,
/// cooperative cancellation) are expected control flow in a faulty run;
/// keep the default panic hook from printing a "thread panicked" message
/// and backtrace for them. Installed once, forwards every genuine panic to
/// the previous hook. Public so the regression test in
/// `tests/panic_hook.rs` can install it under a recording hook and prove
/// the forwarding behaviour.
pub fn silence_controlled_unwinds() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.downcast_ref::<CommAbort>().is_none()
                && payload.downcast_ref::<FaultKill>().is_none()
                && payload.downcast_ref::<CancelUnwind>().is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Why a rank failed in a fault-aware run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The fault plan killed the rank at the start of this step.
    Killed {
        /// The step at which the plan fired.
        step: u64,
    },
    /// A communication call failed (typically a receive whose peer died).
    Disconnected {
        /// The underlying communication error.
        error: Error,
    },
    /// The world's [`CancelToken`] was cancelled and the rank unwound at a
    /// cancellation point (step boundary or blocked receive).
    Cancelled,
}

/// Outcome of a fault-aware run.
pub struct FaultyRun<R> {
    /// Per-rank results in rank order; `Err` for ranks that died.
    pub results: Vec<Result<R, FailureKind>>,
    /// Event trace (tracing is enabled for fault-aware runs).
    pub trace: WorldTrace,
    /// Per-rank log of injected faults — the run's deterministic fault
    /// trace: same plan, same program ⇒ same log.
    pub fault_events: Vec<Vec<FaultEvent>>,
}

impl<R> FaultyRun<R> {
    /// True if every rank completed.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(|r| r.is_ok())
    }

    /// Ranks that failed, with their failure kinds.
    pub fn failures(&self) -> Vec<(usize, FailureKind)> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(r, res)| res.as_ref().err().map(|f| (r, f.clone())))
            .collect()
    }

    /// Unwrap per-rank results, panicking if any rank failed.
    pub fn into_results(self) -> Vec<R> {
        self.results
            .into_iter()
            .enumerate()
            .map(|(r, res)| match res {
                Ok(v) => v,
                Err(f) => panic!("rank {r} failed: {f:?}"),
            })
            .collect()
    }
}

fn launch<F, R>(
    n: usize,
    tracing: bool,
    plan: Option<Arc<FaultPlan>>,
    cancel: Option<CancelToken>,
    spans: Option<Arc<dyn SpanObserver>>,
    f: F,
) -> FaultyRun<R>
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    assert!(n > 0, "world size must be at least 1");
    let faulty = plan.is_some();
    debug_assert!(
        cancel.is_none() || faulty,
        "cancellable worlds run in faulty mode so the unwind is caught"
    );
    if faulty {
        silence_controlled_unwinds();
    }
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<WirePacket>();
        senders.push(tx);
        receivers.push(rx);
    }
    let world = Arc::new(World {
        senders,
        alive: (0..n).map(|_| AtomicBool::new(true)).collect(),
        faulty,
    });
    // One epoch for the whole world, so wall-clock stamps are comparable
    // across ranks.
    let epoch = std::time::Instant::now();
    let traces: Vec<Arc<RankTrace>> = (0..n)
        .map(|_| RankTrace::with_epoch(tracing, epoch))
        .collect();
    let faults: Vec<Option<Arc<FaultState>>> = (0..n)
        .map(|_| plan.as_ref().map(|p| FaultState::new(Arc::clone(p))))
        .collect();

    let mut results: Vec<Option<Result<R, FailureKind>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let world = Arc::clone(&world);
            let trace = Arc::clone(&traces[rank]);
            let fault = faults[rank].clone();
            let cancel = cancel.clone();
            let spans = spans.clone();
            let f = &f;
            // Named threads register each rank with the OS (visible in
            // debuggers and sampling profilers); the observer hooks
            // register it with any live SpanObserver.
            let builder = std::thread::Builder::new().name(format!("agcm-rank-{rank}"));
            let handle = builder.spawn_scoped(scope, move || {
                if let Some(s) = &spans {
                    s.rank_started(rank);
                }
                let shared = RankShared::new(
                    Arc::clone(&world),
                    rank,
                    rx,
                    trace,
                    fault.clone(),
                    cancel,
                    spans.clone(),
                );
                let comm = Comm::world(shared);
                let result = catch_unwind(AssertUnwindSafe(|| f(&comm)));
                // A rank that finishes normally first flushes any packets
                // the injector held back (a delayed message is late, not
                // lost); a rank that dies takes its held packets with it.
                if result.is_ok() {
                    if let Some(fs) = &fault {
                        for (dst, pkt) in fs.drain_held() {
                            let _ = world.senders[dst].send(pkt);
                        }
                    }
                }
                // The liveness flag drops only after the flush above, so a
                // peer that observes the flag down will find every message
                // this rank ever sent already in its channel.
                world.alive[rank].store(false, Ordering::SeqCst);
                if let Some(s) = &spans {
                    s.rank_finished(rank);
                }
                result
            });
            handles.push(handle.expect("spawn rank thread"));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            let joined = handle.join().expect("rank thread itself never panics");
            *slot = Some(match joined {
                Ok(value) => Ok(value),
                Err(payload) => {
                    if !faulty {
                        resume_unwind(payload);
                    }
                    if let Some(kill) = payload.downcast_ref::<FaultKill>() {
                        Err(FailureKind::Killed { step: kill.step })
                    } else if let Some(abort) = payload.downcast_ref::<CommAbort>() {
                        Err(FailureKind::Disconnected {
                            error: abort.0.clone(),
                        })
                    } else if payload.downcast_ref::<CancelUnwind>().is_some() {
                        Err(FailureKind::Cancelled)
                    } else {
                        // A genuine panic (assertion failure, model bug):
                        // not a fault-injection outcome, so propagate.
                        resume_unwind(payload);
                    }
                }
            });
        }
    });

    FaultyRun {
        results: results
            .into_iter()
            .map(|r| r.expect("joined rank produced a result"))
            .collect(),
        trace: WorldTrace {
            ranks: traces.iter().map(|t| t.take()).collect(),
            walls: traces.iter().map(|t| t.take_walls()).collect(),
            collectives: traces.iter().map(|t| t.take_collectives()).collect(),
        },
        fault_events: faults
            .iter()
            .map(|f| f.as_ref().map(|fs| fs.take_events()).unwrap_or_default())
            .collect(),
    }
}

/// Run `f` on `n` ranks and return the per-rank results in rank order.
/// Panics in any rank propagate to the caller.
pub fn run<F, R>(n: usize, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    launch(n, false, None, None, None, f)
        .results
        .into_iter()
        .map(|r| r.expect("non-faulty run has no typed failures"))
        .collect()
}

/// Like [`run`], but with event tracing enabled; also returns the
/// [`WorldTrace`] for replay by `agcm-costmodel`.
pub fn run_traced<F, R>(n: usize, f: F) -> (Vec<R>, WorldTrace)
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    let out = launch(n, true, None, None, None, f);
    (
        out.results
            .into_iter()
            .map(|r| r.expect("non-faulty run has no typed failures"))
            .collect(),
        out.trace,
    )
}

/// Run `f` on `n` ranks under a fault plan. Planned kills and
/// communication aborts become typed per-rank failures; genuine panics
/// still propagate. `plan = None` degrades to a plain traced run that
/// still reports per-rank results as `Ok`.
pub fn run_with_faults<F, R>(n: usize, plan: Option<FaultPlan>, f: F) -> FaultyRun<R>
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    run_world(
        n,
        WorldOptions {
            plan,
            ..WorldOptions::default()
        },
        f,
    )
}

/// Options for [`run_world`].
#[derive(Clone, Default)]
pub struct WorldOptions {
    /// Fault plan; `None` degrades to an empty plan (typed failures, no
    /// injected faults).
    pub plan: Option<FaultPlan>,
    /// Cooperative cancellation token shared by every rank of the world.
    pub cancel: Option<CancelToken>,
    /// Live span observer notified at every phase boundary on every rank.
    pub spans: Option<Arc<dyn SpanObserver>>,
}

impl std::fmt::Debug for WorldOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldOptions")
            .field("plan", &self.plan)
            .field("cancel", &self.cancel)
            .field("spans", &self.spans.as_ref().map(|_| "SpanObserver"))
            .finish()
    }
}

/// The most general launcher: tracing on, typed per-rank failures, with an
/// optional fault plan and an optional [`CancelToken`]. Cancelling the
/// token unwinds every rank at its next cancellation point (step boundary
/// or blocked receive) as [`FailureKind::Cancelled`]; ranks that instead
/// observe a cancelled peer's death surface as `Disconnected`. Either way
/// the whole world drains and `run_world` returns.
pub fn run_world<F, R>(n: usize, opts: WorldOptions, f: F) -> FaultyRun<R>
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    // Even with no plan, run in faulty mode (typed failures, empty plan)
    // so recovery drivers and schedulers get a uniform interface.
    let plan = opts.plan.unwrap_or_default();
    launch(n, true, Some(Arc::new(plan)), opts.cancel, opts.spans, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::Op;
    use crate::fault::FaultAction;
    use crate::message::Payload;
    use crate::trace::Event;
    use std::time::Duration;

    #[test]
    fn results_in_rank_order() {
        let out = run(8, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_rank_world() {
        let out = run(1, |c| {
            assert_eq!(c.size(), 1);
            c.rank()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn large_world_240_ranks() {
        // The paper's biggest mesh: 8 x 30 = 240 nodes.
        let out = run(240, |c| c.allreduce_i64(Op::Sum, &[1])[0]);
        assert!(out.into_iter().all(|v| v == 240));
    }

    #[test]
    fn traced_run_captures_messages() {
        let (_, trace) = run_traced(2, |c| {
            let other = 1 - c.rank();
            c.record_flops(50.0);
            c.send(other, 0, Payload::F64(vec![0.0; 16]));
            c.recv(other, 0);
        });
        assert_eq!(trace.size(), 2);
        let stats = trace.stats();
        for s in &stats {
            assert_eq!(s.sends, 1);
            assert_eq!(s.bytes_sent, 128);
            assert_eq!(s.recvs, 1);
            assert_eq!(s.flops, 50.0);
        }
        // Sequence numbers must let the replayer match sends to receives.
        for evs in &trace.ranks {
            let send_seq = evs.iter().find_map(|e| match e {
                Event::Send { seq, .. } => Some(*seq),
                _ => None,
            });
            assert_eq!(send_seq, Some(0));
        }
    }

    #[test]
    fn traced_phases_recorded_in_order() {
        let (_, trace) = run_traced(1, |c| {
            c.phase("dynamics", || c.record_flops(10.0));
            c.phase("physics", || c.record_flops(20.0));
        });
        let evs = &trace.ranks[0];
        assert_eq!(
            evs.as_slice(),
            &[
                Event::PhaseBegin("dynamics"),
                Event::Flops(10.0),
                Event::PhaseEnd("dynamics"),
                Event::PhaseBegin("physics"),
                Event::Flops(20.0),
                Event::PhaseEnd("physics"),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "world size must be at least 1")]
    fn zero_ranks_rejected() {
        run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "rank 3 exploded")]
    fn rank_panic_propagates() {
        run(6, |c| {
            if c.rank() == 3 {
                panic!("rank 3 exploded");
            }
        });
    }

    #[test]
    fn kill_surfaces_as_typed_failure() {
        let plan = FaultPlan::seeded(1).with_kill(2, 5);
        let out = run_with_faults(4, Some(plan), |c| {
            for step in 0..10u64 {
                c.begin_step(step);
            }
            c.rank()
        });
        assert_eq!(out.results[2], Err(FailureKind::Killed { step: 5 }));
        for r in [0, 1, 3] {
            assert_eq!(out.results[r], Ok(r));
        }
        assert_eq!(out.fault_events[2], vec![FaultEvent::Kill { step: 5 }]);
    }

    #[test]
    fn peer_death_aborts_blocked_receivers() {
        // Rank 1 dies before sending; rank 0's blocking recv must abort
        // with a typed Disconnected failure rather than hang or panic.
        let plan = FaultPlan::seeded(0).with_kill(1, 0);
        let out = run_with_faults(2, Some(plan), |c| {
            if c.rank() == 1 {
                c.begin_step(0);
            }
            if c.rank() == 0 {
                c.recv(1, 7);
            }
        });
        assert_eq!(out.results[1], Err(FailureKind::Killed { step: 0 }));
        match &out.results[0] {
            Err(FailureKind::Disconnected { error }) => {
                assert_eq!(*error, Error::PeerDisconnected { world_rank: 1 });
            }
            other => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn message_sent_before_death_is_still_received() {
        // The victim sends first, then dies: the receiver must get the
        // message even though the sender is gone by the time it looks.
        let plan = FaultPlan::seeded(0).with_kill(1, 0);
        let out = run_with_faults(2, Some(plan), |c| {
            if c.rank() == 1 {
                c.send(0, 7, Payload::I64(vec![41]));
                c.begin_step(0);
                0
            } else {
                c.recv_i64(1, 7)[0] + 1
            }
        });
        assert_eq!(out.results[0], Ok(42));
    }

    #[test]
    fn collectives_abort_on_dead_rank() {
        // A rank dies before a barrier; every survivor's barrier must
        // surface a typed failure (possibly cascading), never a hang.
        let plan = FaultPlan::seeded(0).with_kill(3, 0);
        let out = run_with_faults(4, Some(plan), |c| {
            if c.rank() == 3 {
                c.begin_step(0);
            }
            c.barrier();
        });
        assert_eq!(out.results[3], Err(FailureKind::Killed { step: 0 }));
        for r in [0, 1, 2] {
            assert!(
                matches!(out.results[r], Err(FailureKind::Disconnected { .. })),
                "rank {r}: {:?}",
                out.results[r]
            );
        }
    }

    #[test]
    fn fault_trace_is_deterministic() {
        let plan = FaultPlan::seeded(99)
            .with_drop_ppm(150_000)
            .with_duplicate_ppm(100_000)
            .with_delay_ppm(100_000);
        let workload = |c: &Comm| {
            // All-to-all chatter with per-pair tags; receipt is not
            // asserted (drops are expected) — only the injector log is.
            for peer in 0..c.size() {
                if peer != c.rank() {
                    for i in 0..20 {
                        c.send(peer, i, Payload::I64(vec![i as i64]));
                    }
                }
            }
        };
        let a = run_with_faults(4, Some(plan.clone()), workload);
        let b = run_with_faults(4, Some(plan), workload);
        assert!(a.all_ok() && b.all_ok());
        assert_eq!(a.fault_events, b.fault_events);
        assert!(
            a.fault_events.iter().any(|evs| !evs.is_empty()),
            "plan with 35% fault rate must inject something"
        );
    }

    #[test]
    fn duplicate_and_delay_preserve_eventual_delivery() {
        // Every non-dropped message is eventually receivable: duplicates
        // arrive twice, delayed messages arrive late (flushed at exit).
        let plan = FaultPlan::seeded(5)
            .with_targeted(0, 1, 0, FaultAction::Delay)
            .with_targeted(0, 1, 1, FaultAction::Duplicate);
        let out = run_with_faults(2, Some(plan), |c| {
            if c.rank() == 0 {
                c.send(1, 10, Payload::I64(vec![1])); // delayed
                c.send(1, 20, Payload::I64(vec![2])); // duplicated
                vec![]
            } else {
                // The duplicated message overtakes the delayed one.
                let first = c.recv(crate::comm::ANY_SRC, crate::comm::ANY_TAG);
                assert_eq!(first.tag, 20);
                let mut tags = vec![first.tag];
                for _ in 0..2 {
                    tags.push(c.recv(crate::comm::ANY_SRC, crate::comm::ANY_TAG).tag);
                }
                tags
            }
        });
        let tags = out.results[1].as_ref().unwrap();
        assert_eq!(tags, &vec![20, 20, 10]);
    }

    #[test]
    fn recv_timeout_expires() {
        // The peer stays alive (blocked on its own receive) past the
        // deadline, so the timed receive expires rather than observing a
        // dead peer.
        let out = run_with_faults(2, None, |c| {
            if c.rank() == 0 {
                let r = c.recv_timeout(1, 9, Duration::from_millis(20));
                c.send(1, 1, Payload::Empty);
                r.err()
            } else {
                c.recv(0, 1);
                None
            }
        });
        assert_eq!(out.results[0], Ok(Some(Error::Timeout)));
    }

    #[test]
    fn recv_timeout_on_dead_peer_reports_disconnect() {
        let plan = FaultPlan::seeded(0).with_kill(1, 0);
        let out = run_with_faults(2, Some(plan), |c| {
            if c.rank() == 1 {
                c.begin_step(0);
            }
            if c.rank() == 0 {
                c.recv_timeout(1, 9, Duration::from_secs(30)).err()
            } else {
                None
            }
        });
        assert_eq!(
            out.results[0],
            Ok(Some(Error::PeerDisconnected { world_rank: 1 }))
        );
    }

    #[test]
    fn pre_cancelled_world_unwinds_at_first_step() {
        let token = CancelToken::new();
        token.cancel();
        let opts = WorldOptions {
            plan: None,
            cancel: Some(token),
            spans: None,
        };
        let out = run_world(4, opts, |c| {
            for step in 0..100u64 {
                c.begin_step(step);
            }
            c.rank()
        });
        for r in 0..4 {
            assert_eq!(out.results[r], Err(FailureKind::Cancelled));
        }
    }

    #[test]
    fn cancel_wakes_blocked_receiver() {
        // Rank 0 blocks forever on a receive nobody will satisfy; the
        // controller cancels after rank 1 signals readiness. The blocked
        // receive must unwind as Cancelled, not hang.
        let token = CancelToken::new();
        let controller = token.clone();
        let opts = WorldOptions {
            plan: None,
            cancel: Some(token),
            spans: None,
        };
        let out = run_world(2, opts, |c| {
            if c.rank() == 0 {
                c.recv(1, 99);
            } else {
                // Give rank 0 time to block, then pull the plug.
                std::thread::sleep(Duration::from_millis(5));
                controller.cancel();
                // This rank also unwinds at its next cancellation point.
                c.begin_step(0);
            }
        });
        assert_eq!(out.results[0], Err(FailureKind::Cancelled));
        assert_eq!(out.results[1], Err(FailureKind::Cancelled));
    }

    #[test]
    fn cancellation_does_not_leak_into_next_world() {
        // A cancelled world must not poison a later world: tokens are
        // per-launch, not process-global.
        let token = CancelToken::new();
        token.cancel();
        let opts = WorldOptions {
            plan: None,
            cancel: Some(token),
            spans: None,
        };
        let cancelled = run_world(2, opts, |c| {
            c.begin_step(0);
        });
        assert!(!cancelled.all_ok());
        let clean = run_world(2, WorldOptions::default(), |c| {
            c.begin_step(0);
            c.rank()
        });
        assert_eq!(clean.results, vec![Ok(0), Ok(1)]);
    }

    #[test]
    fn try_recv_paths() {
        let out = run_with_faults(2, None, |c| {
            if c.rank() == 0 {
                // Nothing sent yet: empty, not an error.
                assert!(matches!(c.try_recv(1, 5), Ok(None)));
                c.send(1, 3, Payload::Empty);
                // Wait for the reply to be in flight, then poll it out.
                loop {
                    match c.try_recv(1, 5) {
                        Ok(Some(pkt)) => return pkt.payload.into_i64()[0],
                        Ok(None) => std::thread::yield_now(),
                        Err(e) => panic!("unexpected {e}"),
                    }
                }
            } else {
                c.recv(0, 3);
                c.send(0, 5, Payload::I64(vec![17]));
                0
            }
        });
        assert_eq!(out.results[0], Ok(17));
    }
}
