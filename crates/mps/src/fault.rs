//! Deterministic fault injection for the message-passing substrate.
//!
//! A [`FaultPlan`] describes, ahead of time, how a run should be perturbed:
//! per-message drop / duplicate / delay probabilities, explicit targeted
//! message faults, and at most one planned rank kill. The plan is threaded
//! through the runtime ([`crate::runtime::run_with_faults`]) into every
//! [`crate::Comm`], so existing point-to-point calls and collectives
//! exercise the faults without any changes at the call site.
//!
//! Every decision is a pure function of `(seed, src, dst, seq)`. Sequence
//! numbers per (source, destination) pair are themselves deterministic —
//! each rank is single-threaded and sends in program order — so the same
//! plan applied to the same program yields the same fault trace every run.
//! The recorded [`FaultEvent`] log makes that property testable.

use crate::message::WirePacket;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// What the injector does to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass the message through untouched.
    Deliver,
    /// Silently discard the message.
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Hold the message back until after the sender's *next* message to the
    /// same destination (reordering the pair), or until the rank finishes.
    Delay,
}

/// A planned rank death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// World rank to kill.
    pub world_rank: usize,
    /// Step at which the rank dies: the kill fires when the rank calls
    /// [`crate::Comm::begin_step`] with this step number.
    pub at_step: u64,
}

/// An explicitly targeted message fault, keyed by the deterministic
/// (source, destination, sequence) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetedFault {
    /// Sending world rank.
    pub src: usize,
    /// Receiving world rank.
    pub dst: usize,
    /// Send sequence number on the (src, dst) pair.
    pub seq: u64,
    /// What to do with that message.
    pub action: FaultAction,
}

/// A deterministic, seeded fault plan.
///
/// Probabilities are expressed in parts per million of messages; a message's
/// fate is decided by hashing `(seed, src, dst, seq)` into [0, 1e6). The
/// default plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every per-message decision.
    pub seed: u64,
    /// Fraction of messages dropped, in parts per million.
    pub drop_ppm: u32,
    /// Fraction of messages duplicated, in parts per million.
    pub duplicate_ppm: u32,
    /// Fraction of messages delayed (reordered), in parts per million.
    pub delay_ppm: u32,
    /// Optional planned rank death.
    pub kill: Option<KillSpec>,
    /// Explicit per-message faults, consulted before the probabilistic ones.
    pub targeted: Vec<TargetedFault>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults; compose with the builders.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Set the message drop probability (parts per million).
    pub fn with_drop_ppm(mut self, ppm: u32) -> FaultPlan {
        self.drop_ppm = ppm;
        self
    }

    /// Set the message duplication probability (parts per million).
    pub fn with_duplicate_ppm(mut self, ppm: u32) -> FaultPlan {
        self.duplicate_ppm = ppm;
        self
    }

    /// Set the message delay/reorder probability (parts per million).
    pub fn with_delay_ppm(mut self, ppm: u32) -> FaultPlan {
        self.delay_ppm = ppm;
        self
    }

    /// Kill `world_rank` when it begins `step`.
    pub fn with_kill(mut self, world_rank: usize, at_step: u64) -> FaultPlan {
        self.kill = Some(KillSpec {
            world_rank,
            at_step,
        });
        self
    }

    /// Apply `action` to the `seq`-th message from `src` to `dst`.
    pub fn with_targeted(
        mut self,
        src: usize,
        dst: usize,
        seq: u64,
        action: FaultAction,
    ) -> FaultPlan {
        self.targeted.push(TargetedFault {
            src,
            dst,
            seq,
            action,
        });
        self
    }

    /// True if the plan perturbs messages at all (kills aside).
    pub fn perturbs_messages(&self) -> bool {
        self.drop_ppm > 0
            || self.duplicate_ppm > 0
            || self.delay_ppm > 0
            || !self.targeted.is_empty()
    }

    /// Decide the fate of the `seq`-th message from `src` to `dst`.
    /// Pure: same inputs, same answer.
    pub fn decide(&self, src: usize, dst: usize, seq: u64) -> FaultAction {
        for t in &self.targeted {
            if t.src == src && t.dst == dst && t.seq == seq {
                return t.action;
            }
        }
        let total = self.drop_ppm + self.duplicate_ppm + self.delay_ppm;
        if total == 0 {
            return FaultAction::Deliver;
        }
        let h = crate::comm::mix(self.seed, ((src as u64) << 32) ^ dst as u64, seq);
        let u = (h % 1_000_000) as u32;
        if u < self.drop_ppm {
            FaultAction::Drop
        } else if u < self.drop_ppm + self.duplicate_ppm {
            FaultAction::Duplicate
        } else if u < total {
            FaultAction::Delay
        } else {
            FaultAction::Deliver
        }
    }
}

/// One injected fault, as recorded in the per-rank fault log. Delivered
/// messages are not logged; the log is the run's fault trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A message fault was injected on the sender side.
    Message {
        /// Sending world rank.
        src: usize,
        /// Receiving world rank.
        dst: usize,
        /// Send sequence number on the (src, dst) pair.
        seq: u64,
        /// The injected action (never [`FaultAction::Deliver`]).
        action: FaultAction,
    },
    /// The rank was killed at the start of a step.
    Kill {
        /// The step at which it died.
        step: u64,
    },
}

/// Unwind payload raised when a communication call fails in a fault-aware
/// run; [`crate::runtime::run_with_faults`] catches it and converts the rank
/// into a typed failure instead of propagating a panic.
pub(crate) struct CommAbort(pub(crate) crate::error::Error);

/// Unwind payload raised by a planned kill ([`KillSpec`]); caught by
/// [`crate::runtime::run_with_faults`].
pub(crate) struct FaultKill {
    pub(crate) step: u64,
}

/// Per-rank injector state: the shared plan plus this rank's fault log and
/// held-back (delayed) packets.
pub(crate) struct FaultState {
    plan: Arc<FaultPlan>,
    events: Mutex<Vec<FaultEvent>>,
    /// Packets held back by [`FaultAction::Delay`], keyed by destination.
    held: Mutex<Vec<(usize, WirePacket)>>,
    killed: AtomicBool,
}

impl FaultState {
    pub(crate) fn new(plan: Arc<FaultPlan>) -> Arc<FaultState> {
        Arc::new(FaultState {
            plan,
            events: Mutex::new(Vec::new()),
            held: Mutex::new(Vec::new()),
            killed: AtomicBool::new(false),
        })
    }

    /// Decide and log the fate of an outgoing message.
    pub(crate) fn decide_send(&self, src: usize, dst: usize, seq: u64) -> FaultAction {
        let action = self.plan.decide(src, dst, seq);
        if action != FaultAction::Deliver {
            self.events.lock().push(FaultEvent::Message {
                src,
                dst,
                seq,
                action,
            });
        }
        action
    }

    /// Hold a delayed packet destined for world rank `dst`.
    pub(crate) fn hold(&self, dst: usize, pkt: WirePacket) {
        self.held.lock().push((dst, pkt));
    }

    /// Release every held packet for `dst` (called after a later send to
    /// `dst`, completing the reorder).
    pub(crate) fn release_for(&self, dst: usize) -> Vec<WirePacket> {
        let mut held = self.held.lock();
        let mut out = Vec::new();
        let mut i = 0;
        while i < held.len() {
            if held[i].0 == dst {
                out.push(held.remove(i).1);
            } else {
                i += 1;
            }
        }
        out
    }

    /// Drain every held packet (flushed when the rank finishes normally).
    pub(crate) fn drain_held(&self) -> Vec<(usize, WirePacket)> {
        std::mem::take(&mut *self.held.lock())
    }

    /// True if this rank should die at `step`; logs the kill on first ask.
    pub(crate) fn should_kill(&self, world_rank: usize, step: u64) -> bool {
        match self.plan.kill {
            Some(k) if k.world_rank == world_rank && k.at_step == step => {
                if !self.killed.swap(true, Ordering::Relaxed) {
                    self.events.lock().push(FaultEvent::Kill { step });
                }
                true
            }
            _ => false,
        }
    }

    /// Take the recorded fault log.
    pub(crate) fn take_events(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_delivers_everything() {
        let plan = FaultPlan::default();
        for seq in 0..1000 {
            assert_eq!(plan.decide(0, 1, seq), FaultAction::Deliver);
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::seeded(42)
            .with_drop_ppm(100_000)
            .with_delay_ppm(100_000);
        let b = a.clone();
        for src in 0..4 {
            for dst in 0..4 {
                for seq in 0..200 {
                    assert_eq!(a.decide(src, dst, seq), b.decide(src, dst, seq));
                }
            }
        }
    }

    #[test]
    fn seed_changes_decisions() {
        let a = FaultPlan::seeded(1).with_drop_ppm(500_000);
        let b = FaultPlan::seeded(2).with_drop_ppm(500_000);
        let differs = (0..200).any(|seq| a.decide(0, 1, seq) != b.decide(0, 1, seq));
        assert!(differs, "different seeds must produce different traces");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        // 20% drop: over 10k messages expect 2000 ± a wide margin.
        let plan = FaultPlan::seeded(7).with_drop_ppm(200_000);
        let drops = (0..10_000u64)
            .filter(|&seq| plan.decide(0, 1, seq) == FaultAction::Drop)
            .count();
        assert!((1500..2500).contains(&drops), "drops {drops}");
    }

    #[test]
    fn targeted_fault_overrides_probabilities() {
        let plan = FaultPlan::seeded(3).with_targeted(2, 0, 5, FaultAction::Drop);
        assert_eq!(plan.decide(2, 0, 5), FaultAction::Drop);
        assert_eq!(plan.decide(2, 0, 4), FaultAction::Deliver);
        assert_eq!(plan.decide(0, 2, 5), FaultAction::Deliver);
    }

    #[test]
    fn kill_spec_matches_only_its_rank_and_step() {
        let state = FaultState::new(Arc::new(FaultPlan::seeded(0).with_kill(2, 7)));
        assert!(!state.should_kill(2, 6));
        assert!(!state.should_kill(1, 7));
        assert!(state.should_kill(2, 7));
        assert_eq!(state.take_events(), vec![FaultEvent::Kill { step: 7 }]);
    }

    #[test]
    fn held_packets_release_by_destination() {
        use crate::message::Payload;
        let state = FaultState::new(Arc::new(FaultPlan::default()));
        let pkt = |tag| WirePacket {
            world_src: 0,
            ctx: 0,
            tag,
            seq: 0,
            payload: Payload::Empty,
        };
        state.hold(1, pkt(10));
        state.hold(2, pkt(20));
        state.hold(1, pkt(11));
        let for_1 = state.release_for(1);
        assert_eq!(
            for_1.iter().map(|p| p.tag).collect::<Vec<_>>(),
            vec![10, 11]
        );
        let rest = state.drain_held();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].0, 2);
    }
}
