//! Communicators: point-to-point messaging with tag matching.
//!
//! A [`Comm`] is a rank's handle on a group of peers. The world communicator
//! is created by [`crate::runtime::run`]; sub-communicators (rows/columns of
//! the processor mesh, filter groups) are derived with [`Comm::split`].
//!
//! Matching semantics follow MPI: a receive names a source rank (or
//! [`ANY_SRC`]) and a tag (or [`ANY_TAG`]); messages between the same
//! (source, destination, context) triple are non-overtaking. Sends are eager
//! and never block.

use crate::message::{Packet, Payload, WirePacket};
use crate::trace::{Event, RankTrace};
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wildcard source rank for [`Comm::recv`].
pub const ANY_SRC: usize = usize::MAX;
/// Wildcard tag for [`Comm::recv`].
pub const ANY_TAG: u64 = u64::MAX;

/// Tag bit reserved for internal collective traffic. User tags must leave
/// this bit clear; [`Comm::send`] asserts this.
pub(crate) const COLL_BIT: u64 = 1 << 63;

/// Shared routing table: one eager channel per world rank.
pub(crate) struct World {
    pub(crate) senders: Vec<Sender<WirePacket>>,
}

/// Per-rank state shared by every communicator this rank derives.
pub(crate) struct RankShared {
    pub(crate) world: Arc<World>,
    pub(crate) world_rank: usize,
    rx: Receiver<WirePacket>,
    /// Messages that arrived but did not match an outstanding receive.
    pending: Mutex<Vec<WirePacket>>,
    /// Per-destination send sequence numbers (for trace replay matching).
    send_seq: Vec<AtomicU64>,
    pub(crate) trace: Arc<RankTrace>,
}

impl RankShared {
    pub(crate) fn new(
        world: Arc<World>,
        world_rank: usize,
        rx: Receiver<WirePacket>,
        trace: Arc<RankTrace>,
    ) -> Arc<Self> {
        let n = world.senders.len();
        Arc::new(RankShared {
            world,
            world_rank,
            rx,
            pending: Mutex::new(Vec::new()),
            send_seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
            trace,
        })
    }
}

/// A communicator: this rank's view of an ordered group of world ranks.
pub struct Comm {
    shared: Arc<RankShared>,
    /// Context id separating traffic of different communicators.
    ctx: u64,
    /// This rank's position within `members`.
    rank: usize,
    /// World ranks of the members, in communicator order.
    members: Arc<Vec<usize>>,
    /// Inverse of `members`.
    world_to_local: Arc<HashMap<usize, usize>>,
    /// Number of `split` calls made on this communicator (kept consistent
    /// across members because `split` is collective).
    split_counter: AtomicU64,
}

fn mix(a: u64, b: u64, c: u64) -> u64 {
    // SplitMix64-style avalanche over the three inputs.
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ c.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Comm {
    /// Build the world communicator for one rank (runtime use).
    pub(crate) fn world(shared: Arc<RankShared>) -> Comm {
        let n = shared.world.senders.len();
        let members: Vec<usize> = (0..n).collect();
        let world_to_local = members.iter().map(|&w| (w, w)).collect();
        Comm {
            rank: shared.world_rank,
            shared,
            ctx: 0,
            members: Arc::new(members),
            world_to_local: Arc::new(world_to_local),
            split_counter: AtomicU64::new(0),
        }
    }

    /// This rank within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's world (global) rank.
    pub fn world_rank(&self) -> usize {
        self.shared.world_rank
    }

    /// World rank of communicator member `local`.
    pub fn world_rank_of(&self, local: usize) -> usize {
        assert!(local < self.size(), "rank {local} out of range for size {}", self.size());
        self.members[local]
    }

    /// Record `flops` floating-point operations of local work in the trace.
    pub fn record_flops(&self, flops: f64) {
        self.shared.trace.record_flops(flops);
    }

    /// Mark the beginning of a named phase in the trace.
    pub fn phase_begin(&self, name: &'static str) {
        self.shared.trace.record(Event::PhaseBegin(name));
    }

    /// Mark the end of a named phase in the trace.
    pub fn phase_end(&self, name: &'static str) {
        self.shared.trace.record(Event::PhaseEnd(name));
    }

    /// Run `body` inside a named phase.
    pub fn phase<R>(&self, name: &'static str, body: impl FnOnce() -> R) -> R {
        self.phase_begin(name);
        let r = body();
        self.phase_end(name);
        r
    }

    /// Eagerly send `payload` to rank `dst` with `tag`. Never blocks.
    pub fn send(&self, dst: usize, tag: u64, payload: Payload) {
        assert!(tag & COLL_BIT == 0, "user tags must leave bit 63 clear");
        self.send_internal(dst, tag, payload);
    }

    pub(crate) fn send_internal(&self, dst: usize, tag: u64, payload: Payload) {
        assert!(dst < self.size(), "send to rank {dst} out of range for size {}", self.size());
        let world_dst = self.members[dst];
        let seq = self.shared.send_seq[world_dst].fetch_add(1, Ordering::Relaxed);
        self.shared.trace.record(Event::Send {
            to: world_dst,
            bytes: payload.byte_len(),
            seq,
        });
        let pkt = WirePacket {
            world_src: self.shared.world_rank,
            ctx: self.ctx,
            tag,
            seq,
            payload,
        };
        // Receiver lives as long as the scope; failure means a peer panicked,
        // in which case the scope is already unwinding.
        let _ = self.shared.world.senders[world_dst].send(pkt);
    }

    fn matches(&self, pkt: &WirePacket, src: usize, tag: u64) -> bool {
        if pkt.ctx != self.ctx {
            return false;
        }
        if tag != ANY_TAG && pkt.tag != tag {
            return false;
        }
        if src == ANY_SRC {
            self.world_to_local.contains_key(&pkt.world_src)
        } else {
            pkt.world_src == self.members[src]
        }
    }

    /// Blocking receive of a message from `src` (or [`ANY_SRC`]) with `tag`
    /// (or [`ANY_TAG`]).
    pub fn recv(&self, src: usize, tag: u64) -> Packet {
        assert!(tag == ANY_TAG || tag & COLL_BIT == 0, "user tags must leave bit 63 clear");
        self.recv_internal(src, tag)
    }

    pub(crate) fn recv_internal(&self, src: usize, tag: u64) -> Packet {
        if src != ANY_SRC {
            assert!(src < self.size(), "recv from rank {src} out of range for size {}", self.size());
        }
        loop {
            {
                let mut pending = self.shared.pending.lock();
                if let Some(pos) = pending.iter().position(|p| self.matches(p, src, tag)) {
                    let pkt = pending.remove(pos);
                    return self.deliver(pkt);
                }
            }
            match self.shared.rx.recv() {
                Ok(pkt) => {
                    if self.matches(&pkt, src, tag) {
                        return self.deliver(pkt);
                    }
                    self.shared.pending.lock().push(pkt);
                }
                Err(_) => panic!("recv: all peers disconnected (a rank panicked?)"),
            }
        }
    }

    fn deliver(&self, pkt: WirePacket) -> Packet {
        self.shared.trace.record(Event::Recv {
            from: pkt.world_src,
            bytes: pkt.payload.byte_len(),
            seq: pkt.seq,
        });
        let src = *self
            .world_to_local
            .get(&pkt.world_src)
            .expect("matched packet has a source in this communicator");
        Packet { src, tag: pkt.tag, seq: pkt.seq, payload: pkt.payload }
    }

    /// Receive and unwrap a float buffer.
    pub fn recv_f64(&self, src: usize, tag: u64) -> Vec<f64> {
        self.recv(src, tag).payload.into_f64()
    }

    /// Receive and unwrap an integer buffer.
    pub fn recv_i64(&self, src: usize, tag: u64) -> Vec<i64> {
        self.recv(src, tag).payload.into_i64()
    }

    /// Combined send+receive (the classic shift pattern). Because sends are
    /// eager this is just `send` followed by `recv`, but the pairing makes
    /// call sites self-documenting.
    pub fn sendrecv(
        &self,
        dst: usize,
        send_tag: u64,
        payload: Payload,
        src: usize,
        recv_tag: u64,
    ) -> Packet {
        self.send(dst, send_tag, payload);
        self.recv(src, recv_tag)
    }

    /// Collectively split this communicator. Ranks supplying the same
    /// `color` land in the same sub-communicator, ordered by `key` (ties
    /// broken by parent rank). Every member of `self` must call `split`.
    pub fn split(&self, color: i64, key: i64) -> Comm {
        let seq = self.split_counter.fetch_add(1, Ordering::Relaxed);
        // Gather (color, key) from everyone.
        let mine = vec![color, key];
        let all = self.allgather_i64(&mine);
        let mut group: Vec<(i64, usize)> = Vec::new(); // (key, parent rank)
        for (r, ck) in all.chunks(2).enumerate() {
            if ck[0] == color {
                group.push((ck[1], r));
            }
        }
        group.sort();
        let members: Vec<usize> = group.iter().map(|&(_, r)| self.members[r]).collect();
        let world_to_local: HashMap<usize, usize> =
            members.iter().enumerate().map(|(l, &w)| (w, l)).collect();
        let rank = world_to_local[&self.shared.world_rank];
        Comm {
            shared: Arc::clone(&self.shared),
            ctx: mix(self.ctx, seq.wrapping_add(1), color as u64),
            rank,
            members: Arc::new(members),
            world_to_local: Arc::new(world_to_local),
            split_counter: AtomicU64::new(0),
        }
    }

    /// Duplicate this communicator with a fresh context (collective).
    pub fn dup(&self) -> Comm {
        self.split(0, self.rank as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run;

    #[test]
    fn ring_shift() {
        let out = run(5, |c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 1, Payload::I64(vec![c.rank() as i64]));
            c.recv_i64(left, 1)[0]
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 10, Payload::F64(vec![1.0]));
                c.send(1, 20, Payload::F64(vec![2.0]));
                0.0
            } else {
                // Receive in reverse tag order: the tag-20 message must be
                // matched even though tag-10 arrives first.
                let b = c.recv_f64(0, 20)[0];
                let a = c.recv_f64(0, 10)[0];
                a + 10.0 * b
            }
        });
        assert_eq!(out[1], 21.0);
    }

    #[test]
    fn any_source_any_tag() {
        let out = run(3, |c| {
            if c.rank() == 2 {
                let mut sum = 0;
                for _ in 0..2 {
                    let p = c.recv(ANY_SRC, ANY_TAG);
                    sum += p.payload.into_i64()[0];
                    assert!(p.src < 2);
                }
                sum
            } else {
                c.send(2, c.rank() as u64, Payload::I64(vec![1 + c.rank() as i64]));
                0
            }
        });
        assert_eq!(out[2], 3);
    }

    #[test]
    fn sendrecv_exchange() {
        let out = run(2, |c| {
            let other = 1 - c.rank();
            let p = c.sendrecv(other, 3, Payload::I64(vec![c.rank() as i64]), other, 3);
            p.payload.into_i64()[0]
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn split_rows() {
        // 2x3 mesh: color by row, key by column.
        let out = run(6, |c| {
            let (row, col) = (c.rank() / 3, c.rank() % 3);
            let rc = c.split(row as i64, col as i64);
            assert_eq!(rc.size(), 3);
            assert_eq!(rc.rank(), col);
            // Ring shift inside the row only.
            let right = (rc.rank() + 1) % rc.size();
            let left = (rc.rank() + rc.size() - 1) % rc.size();
            rc.send(right, 2, Payload::I64(vec![c.rank() as i64]));
            rc.recv_i64(left, 2)[0]
        });
        assert_eq!(out, vec![2, 0, 1, 5, 3, 4]);
    }

    #[test]
    fn split_isolates_contexts() {
        // Messages sent on the parent must not be visible on the child.
        let out = run(2, |c| {
            let sub = c.split(0, c.rank() as i64);
            if c.rank() == 0 {
                c.send(1, 5, Payload::I64(vec![111]));
                sub.send(1, 5, Payload::I64(vec![222]));
                0
            } else {
                let from_sub = sub.recv_i64(0, 5)[0];
                let from_parent = c.recv_i64(0, 5)[0];
                from_sub * 1000 + from_parent
            }
        });
        assert_eq!(out[1], 222_111);
    }

    #[test]
    fn world_rank_of_members() {
        run(4, |c| {
            let odd = c.split((c.rank() % 2) as i64, c.rank() as i64);
            if c.rank() % 2 == 1 {
                assert_eq!(odd.world_rank_of(0), 1);
                assert_eq!(odd.world_rank_of(1), 3);
            } else {
                assert_eq!(odd.world_rank_of(0), 0);
                assert_eq!(odd.world_rank_of(1), 2);
            }
        });
    }

    #[test]
    fn dup_preserves_layout() {
        run(3, |c| {
            let d = c.dup();
            assert_eq!(d.rank(), c.rank());
            assert_eq!(d.size(), c.size());
        });
    }

    #[test]
    fn non_overtaking_same_tag() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..10 {
                    c.send(1, 1, Payload::I64(vec![i]));
                }
                vec![]
            } else {
                (0..10).map(|_| c.recv_i64(0, 1)[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<i64>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_out_of_range_panics() {
        run(2, |c| {
            if c.rank() == 0 {
                c.send(5, 0, Payload::Empty);
            }
        });
    }
}
