//! Communicators: point-to-point messaging with tag matching.
//!
//! A [`Comm`] is a rank's handle on a group of peers. The world communicator
//! is created by [`crate::runtime::run`]; sub-communicators (rows/columns of
//! the processor mesh, filter groups) are derived with [`Comm::split`].
//!
//! Matching semantics follow MPI: a receive names a source rank (or
//! [`ANY_SRC`]) and a tag (or [`ANY_TAG`]); messages between the same
//! (source, destination, context) triple are non-overtaking. Sends are eager
//! and never block.

use crate::cancel::{CancelToken, CancelUnwind};
use crate::error::Error;
use crate::fault::{CommAbort, FaultAction, FaultKill, FaultState};
use crate::message::{Packet, Payload, WirePacket};
use crate::span::SpanObserver;
use crate::trace::{Event, RankTrace};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wildcard source rank for [`Comm::recv`].
pub const ANY_SRC: usize = usize::MAX;
/// Wildcard tag for [`Comm::recv`].
pub const ANY_TAG: u64 = u64::MAX;

/// Tag bit reserved for internal collective traffic. User tags must leave
/// this bit clear; [`Comm::send`] asserts this.
pub(crate) const COLL_BIT: u64 = 1 << 63;

/// How long a blocked receive sleeps between liveness checks.
const POLL_INTERVAL: Duration = Duration::from_millis(1);

/// Shared routing table: one eager channel per world rank, plus liveness
/// flags maintained by the runtime (a rank's flag drops when its thread
/// exits, normally or by unwinding).
pub(crate) struct World {
    pub(crate) senders: Vec<Sender<WirePacket>>,
    pub(crate) alive: Vec<AtomicBool>,
    /// True in fault-aware runs: recv failures raise a typed abort caught
    /// by the runtime instead of an opaque panic.
    pub(crate) faulty: bool,
}

/// Per-rank state shared by every communicator this rank derives.
pub(crate) struct RankShared {
    pub(crate) world: Arc<World>,
    pub(crate) world_rank: usize,
    rx: Receiver<WirePacket>,
    /// Messages that arrived but did not match an outstanding receive.
    pending: Mutex<Vec<WirePacket>>,
    /// Per-destination send sequence numbers (for trace replay matching).
    send_seq: Vec<AtomicU64>,
    pub(crate) trace: Arc<RankTrace>,
    /// Fault injector, present only in fault-aware runs.
    pub(crate) fault: Option<Arc<FaultState>>,
    /// Cooperative cancellation token, present only when the launcher
    /// supplied one ([`crate::runtime::run_world`]).
    pub(crate) cancel: Option<CancelToken>,
    /// Live span observer, present only when the launcher supplied one;
    /// sees phase boundaries as they happen.
    pub(crate) spans: Option<Arc<dyn SpanObserver>>,
}

impl RankShared {
    pub(crate) fn new(
        world: Arc<World>,
        world_rank: usize,
        rx: Receiver<WirePacket>,
        trace: Arc<RankTrace>,
        fault: Option<Arc<FaultState>>,
        cancel: Option<CancelToken>,
        spans: Option<Arc<dyn SpanObserver>>,
    ) -> Arc<Self> {
        let n = world.senders.len();
        Arc::new(RankShared {
            world,
            world_rank,
            rx,
            pending: Mutex::new(Vec::new()),
            send_seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
            trace,
            fault,
            cancel,
            spans,
        })
    }
}

/// A communicator: this rank's view of an ordered group of world ranks.
pub struct Comm {
    shared: Arc<RankShared>,
    /// Context id separating traffic of different communicators.
    ctx: u64,
    /// This rank's position within `members`.
    rank: usize,
    /// World ranks of the members, in communicator order.
    members: Arc<Vec<usize>>,
    /// Inverse of `members`.
    world_to_local: Arc<HashMap<usize, usize>>,
    /// Number of `split` calls made on this communicator (kept consistent
    /// across members because `split` is collective).
    split_counter: AtomicU64,
}

pub(crate) fn mix(a: u64, b: u64, c: u64) -> u64 {
    // SplitMix64-style avalanche over the three inputs.
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ c.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Comm {
    /// Build the world communicator for one rank (runtime use).
    pub(crate) fn world(shared: Arc<RankShared>) -> Comm {
        let n = shared.world.senders.len();
        let members: Vec<usize> = (0..n).collect();
        let world_to_local = members.iter().map(|&w| (w, w)).collect();
        Comm {
            rank: shared.world_rank,
            shared,
            ctx: 0,
            members: Arc::new(members),
            world_to_local: Arc::new(world_to_local),
            split_counter: AtomicU64::new(0),
        }
    }

    /// This rank within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's world (global) rank.
    pub fn world_rank(&self) -> usize {
        self.shared.world_rank
    }

    /// World rank of communicator member `local`.
    pub fn world_rank_of(&self, local: usize) -> usize {
        assert!(
            local < self.size(),
            "rank {local} out of range for size {}",
            self.size()
        );
        self.members[local]
    }

    /// Record `flops` floating-point operations of local work in the trace.
    pub fn record_flops(&self, flops: f64) {
        self.shared.trace.record_flops(flops);
    }

    /// Count one call of the named collective primitive in the trace.
    pub(crate) fn record_collective(&self, name: &'static str) {
        self.shared.trace.record_collective(name);
    }

    /// Mark the beginning of a named phase in the trace.
    pub fn phase_begin(&self, name: &'static str) {
        self.shared.trace.record(Event::PhaseBegin(name));
        if let Some(obs) = &self.shared.spans {
            obs.phase_begin(self.shared.world_rank, name);
        }
    }

    /// Mark the end of a named phase in the trace.
    pub fn phase_end(&self, name: &'static str) {
        self.shared.trace.record(Event::PhaseEnd(name));
        if let Some(obs) = &self.shared.spans {
            obs.phase_end(self.shared.world_rank, name);
        }
    }

    /// Run `body` inside a named phase.
    pub fn phase<R>(&self, name: &'static str, body: impl FnOnce() -> R) -> R {
        self.phase_begin(name);
        let r = body();
        self.phase_end(name);
        r
    }

    /// Eagerly send `payload` to rank `dst` with `tag`. Never blocks.
    pub fn send(&self, dst: usize, tag: u64, payload: Payload) {
        assert!(tag & COLL_BIT == 0, "user tags must leave bit 63 clear");
        self.send_internal(dst, tag, payload);
    }

    pub(crate) fn send_internal(&self, dst: usize, tag: u64, payload: Payload) {
        assert!(
            dst < self.size(),
            "send to rank {dst} out of range for size {}",
            self.size()
        );
        let world_dst = self.members[dst];
        let seq = self.shared.send_seq[world_dst].fetch_add(1, Ordering::Relaxed);
        self.shared.trace.record(Event::Send {
            to: world_dst,
            bytes: payload.byte_len(),
            seq,
        });
        let pkt = WirePacket {
            world_src: self.shared.world_rank,
            ctx: self.ctx,
            tag,
            seq,
            payload,
        };
        self.push_wire(world_dst, pkt);
    }

    /// Put a packet on the wire, letting the fault injector (if any) decide
    /// its fate. Channel send failures are ignored: a missing receiver means
    /// the peer is gone and the run is already unwinding or recovering.
    fn push_wire(&self, world_dst: usize, pkt: WirePacket) {
        let wire = &self.shared.world.senders[world_dst];
        let Some(fault) = &self.shared.fault else {
            let _ = wire.send(pkt);
            return;
        };
        match fault.decide_send(self.shared.world_rank, world_dst, pkt.seq) {
            FaultAction::Deliver => {
                let _ = wire.send(pkt);
            }
            FaultAction::Drop => return,
            FaultAction::Duplicate => {
                let _ = wire.send(pkt.clone());
                let _ = wire.send(pkt);
            }
            FaultAction::Delay => {
                // Held until the next message to the same destination (or
                // rank completion); nothing else to do now.
                fault.hold(world_dst, pkt);
                return;
            }
        }
        // A message actually went out, so any packets held back for this
        // destination are now out of order — release them behind it.
        for held in fault.release_for(world_dst) {
            let _ = wire.send(held);
        }
    }

    fn matches(&self, pkt: &WirePacket, src: usize, tag: u64) -> bool {
        if pkt.ctx != self.ctx {
            return false;
        }
        if tag != ANY_TAG && pkt.tag != tag {
            return false;
        }
        if src == ANY_SRC {
            self.world_to_local.contains_key(&pkt.world_src)
        } else {
            pkt.world_src == self.members[src]
        }
    }

    /// Blocking receive of a message from `src` (or [`ANY_SRC`]) with `tag`
    /// (or [`ANY_TAG`]).
    pub fn recv(&self, src: usize, tag: u64) -> Packet {
        assert!(
            tag == ANY_TAG || tag & COLL_BIT == 0,
            "user tags must leave bit 63 clear"
        );
        self.recv_internal(src, tag)
    }

    pub(crate) fn recv_internal(&self, src: usize, tag: u64) -> Packet {
        match self.recv_deadline(src, tag, None) {
            Ok(pkt) => pkt,
            Err(err) if self.shared.world.faulty => std::panic::panic_any(CommAbort(err)),
            Err(err) => panic!("recv: {err} (a rank panicked?)"),
        }
    }

    /// Blocking receive returning a typed error instead of panicking when
    /// the awaited peer dies before sending.
    pub fn recv_result(&self, src: usize, tag: u64) -> Result<Packet, Error> {
        assert!(
            tag == ANY_TAG || tag & COLL_BIT == 0,
            "user tags must leave bit 63 clear"
        );
        self.recv_deadline(src, tag, None)
    }

    /// Receive with a deadline: [`Error::Timeout`] if no matching message
    /// arrives within `timeout`, [`Error::PeerDisconnected`] if the awaited
    /// peer dies first.
    pub fn recv_timeout(&self, src: usize, tag: u64, timeout: Duration) -> Result<Packet, Error> {
        assert!(
            tag == ANY_TAG || tag & COLL_BIT == 0,
            "user tags must leave bit 63 clear"
        );
        self.recv_deadline(src, tag, Some(Instant::now() + timeout))
    }

    /// Non-blocking receive: `Ok(None)` if no matching message has arrived.
    pub fn try_recv(&self, src: usize, tag: u64) -> Result<Option<Packet>, Error> {
        assert!(
            tag == ANY_TAG || tag & COLL_BIT == 0,
            "user tags must leave bit 63 clear"
        );
        self.check_src(src);
        if let Some(pkt) = self.match_pending(src, tag) {
            return Ok(Some(pkt));
        }
        if let Some(pkt) = self.drain_rx(src, tag) {
            return Ok(Some(pkt));
        }
        if let Some(dead) = self.starved(src) {
            // Close the race between the peer's final send and its
            // liveness flag dropping (see recv_deadline).
            if let Some(pkt) = self.drain_rx(src, tag) {
                return Ok(Some(pkt));
            }
            return Err(Error::PeerDisconnected { world_rank: dead });
        }
        Ok(None)
    }

    /// Announce the start of model step `step` to the fault plane. In a
    /// fault-aware run a planned kill fires here, and a cancelled world
    /// unwinds here; otherwise this is a no-op.
    pub fn begin_step(&self, step: u64) {
        self.check_cancelled();
        if let Some(fault) = &self.shared.fault {
            if fault.should_kill(self.shared.world_rank, step) {
                std::panic::panic_any(FaultKill { step });
            }
        }
    }

    /// Cancellation point: unwind with the controlled payload if this
    /// world's token has been cancelled. Only worlds launched with a token
    /// ([`crate::runtime::run_world`]) ever unwind here, and those always
    /// run in faulty mode, so the runtime converts the payload into a
    /// typed [`crate::runtime::FailureKind::Cancelled`].
    fn check_cancelled(&self) {
        if let Some(token) = &self.shared.cancel {
            if token.is_cancelled() {
                std::panic::panic_any(CancelUnwind);
            }
        }
    }

    fn check_src(&self, src: usize) {
        if src != ANY_SRC {
            assert!(
                src < self.size(),
                "recv from rank {src} out of range for size {}",
                self.size()
            );
        }
    }

    /// Take the first matching packet already queued in `pending`.
    fn match_pending(&self, src: usize, tag: u64) -> Option<Packet> {
        let mut pending = self.shared.pending.lock();
        let pos = pending.iter().position(|p| self.matches(p, src, tag))?;
        let pkt = pending.remove(pos);
        drop(pending);
        Some(self.deliver(pkt))
    }

    /// Drain everything currently in the channel; return the first match
    /// (later arrivals stay in the channel), queueing non-matches.
    fn drain_rx(&self, src: usize, tag: u64) -> Option<Packet> {
        loop {
            match self.shared.rx.try_recv() {
                Ok(pkt) => {
                    if self.matches(&pkt, src, tag) {
                        return Some(self.deliver(pkt));
                    }
                    self.shared.pending.lock().push(pkt);
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return None,
            }
        }
    }

    /// If the receive on `src` can never complete because the awaited
    /// peer(s) died, return the world rank of a dead peer.
    fn starved(&self, src: usize) -> Option<usize> {
        let alive = &self.shared.world.alive;
        if src == ANY_SRC {
            // Starved only once every *other* member is gone.
            let mut dead = None;
            for &w in self.members.iter() {
                if w == self.shared.world_rank {
                    continue;
                }
                if alive[w].load(Ordering::SeqCst) {
                    return None;
                }
                dead = dead.or(Some(w));
            }
            dead
        } else {
            let w = self.members[src];
            (w != self.shared.world_rank && !alive[w].load(Ordering::SeqCst)).then_some(w)
        }
    }

    /// The receive core: pending queue, then channel, with bounded sleeps
    /// between liveness checks so a dead peer surfaces as
    /// [`Error::PeerDisconnected`] instead of a hang.
    fn recv_deadline(
        &self,
        src: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Packet, Error> {
        self.check_src(src);
        loop {
            // A blocked receiver must notice cancellation without waiting
            // for a message: the poll loop is the cancellation point, so a
            // cancelled rank wakes within one POLL_INTERVAL.
            self.check_cancelled();
            if let Some(pkt) = self.match_pending(src, tag) {
                return Ok(pkt);
            }
            if let Some(pkt) = self.drain_rx(src, tag) {
                return Ok(pkt);
            }
            if let Some(dead) = self.starved(src) {
                // A peer's final sends happen before its liveness flag
                // drops, but may land after our drain above — look once
                // more before declaring starvation.
                if let Some(pkt) = self.drain_rx(src, tag) {
                    return Ok(pkt);
                }
                return Err(Error::PeerDisconnected { world_rank: dead });
            }
            let wait = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(Error::Timeout);
                    }
                    (d - now).min(POLL_INTERVAL)
                }
                None => POLL_INTERVAL,
            };
            match self.shared.rx.recv_timeout(wait) {
                Ok(pkt) => {
                    if self.matches(&pkt, src, tag) {
                        return Ok(self.deliver(pkt));
                    }
                    self.shared.pending.lock().push(pkt);
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Err(Error::Disconnected),
            }
        }
    }

    fn deliver(&self, pkt: WirePacket) -> Packet {
        self.shared.trace.record(Event::Recv {
            from: pkt.world_src,
            bytes: pkt.payload.byte_len(),
            seq: pkt.seq,
        });
        let src = *self
            .world_to_local
            .get(&pkt.world_src)
            .expect("matched packet has a source in this communicator");
        Packet {
            src,
            tag: pkt.tag,
            seq: pkt.seq,
            payload: pkt.payload,
        }
    }

    /// Receive and unwrap a float buffer.
    pub fn recv_f64(&self, src: usize, tag: u64) -> Vec<f64> {
        self.recv(src, tag).payload.into_f64()
    }

    /// Receive and unwrap an integer buffer.
    pub fn recv_i64(&self, src: usize, tag: u64) -> Vec<i64> {
        self.recv(src, tag).payload.into_i64()
    }

    /// Combined send+receive (the classic shift pattern). Because sends are
    /// eager this is just `send` followed by `recv`, but the pairing makes
    /// call sites self-documenting.
    pub fn sendrecv(
        &self,
        dst: usize,
        send_tag: u64,
        payload: Payload,
        src: usize,
        recv_tag: u64,
    ) -> Packet {
        self.send(dst, send_tag, payload);
        self.recv(src, recv_tag)
    }

    /// Collectively split this communicator. Ranks supplying the same
    /// `color` land in the same sub-communicator, ordered by `key` (ties
    /// broken by parent rank). Every member of `self` must call `split`.
    pub fn split(&self, color: i64, key: i64) -> Comm {
        let seq = self.split_counter.fetch_add(1, Ordering::Relaxed);
        // Gather (color, key) from everyone.
        let mine = vec![color, key];
        let all = self.allgather_i64(&mine);
        let mut group: Vec<(i64, usize)> = Vec::new(); // (key, parent rank)
        for (r, ck) in all.chunks(2).enumerate() {
            if ck[0] == color {
                group.push((ck[1], r));
            }
        }
        group.sort();
        let members: Vec<usize> = group.iter().map(|&(_, r)| self.members[r]).collect();
        let world_to_local: HashMap<usize, usize> =
            members.iter().enumerate().map(|(l, &w)| (w, l)).collect();
        let rank = world_to_local[&self.shared.world_rank];
        Comm {
            shared: Arc::clone(&self.shared),
            ctx: mix(self.ctx, seq.wrapping_add(1), color as u64),
            rank,
            members: Arc::new(members),
            world_to_local: Arc::new(world_to_local),
            split_counter: AtomicU64::new(0),
        }
    }

    /// Duplicate this communicator with a fresh context (collective).
    pub fn dup(&self) -> Comm {
        self.split(0, self.rank as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run;

    #[test]
    fn ring_shift() {
        let out = run(5, |c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 1, Payload::I64(vec![c.rank() as i64]));
            c.recv_i64(left, 1)[0]
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 10, Payload::F64(vec![1.0]));
                c.send(1, 20, Payload::F64(vec![2.0]));
                0.0
            } else {
                // Receive in reverse tag order: the tag-20 message must be
                // matched even though tag-10 arrives first.
                let b = c.recv_f64(0, 20)[0];
                let a = c.recv_f64(0, 10)[0];
                a + 10.0 * b
            }
        });
        assert_eq!(out[1], 21.0);
    }

    #[test]
    fn any_source_any_tag() {
        let out = run(3, |c| {
            if c.rank() == 2 {
                let mut sum = 0;
                for _ in 0..2 {
                    let p = c.recv(ANY_SRC, ANY_TAG);
                    sum += p.payload.into_i64()[0];
                    assert!(p.src < 2);
                }
                sum
            } else {
                c.send(2, c.rank() as u64, Payload::I64(vec![1 + c.rank() as i64]));
                0
            }
        });
        assert_eq!(out[2], 3);
    }

    #[test]
    fn sendrecv_exchange() {
        let out = run(2, |c| {
            let other = 1 - c.rank();
            let p = c.sendrecv(other, 3, Payload::I64(vec![c.rank() as i64]), other, 3);
            p.payload.into_i64()[0]
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn split_rows() {
        // 2x3 mesh: color by row, key by column.
        let out = run(6, |c| {
            let (row, col) = (c.rank() / 3, c.rank() % 3);
            let rc = c.split(row as i64, col as i64);
            assert_eq!(rc.size(), 3);
            assert_eq!(rc.rank(), col);
            // Ring shift inside the row only.
            let right = (rc.rank() + 1) % rc.size();
            let left = (rc.rank() + rc.size() - 1) % rc.size();
            rc.send(right, 2, Payload::I64(vec![c.rank() as i64]));
            rc.recv_i64(left, 2)[0]
        });
        assert_eq!(out, vec![2, 0, 1, 5, 3, 4]);
    }

    #[test]
    fn split_isolates_contexts() {
        // Messages sent on the parent must not be visible on the child.
        let out = run(2, |c| {
            let sub = c.split(0, c.rank() as i64);
            if c.rank() == 0 {
                c.send(1, 5, Payload::I64(vec![111]));
                sub.send(1, 5, Payload::I64(vec![222]));
                0
            } else {
                let from_sub = sub.recv_i64(0, 5)[0];
                let from_parent = c.recv_i64(0, 5)[0];
                from_sub * 1000 + from_parent
            }
        });
        assert_eq!(out[1], 222_111);
    }

    #[test]
    fn world_rank_of_members() {
        run(4, |c| {
            let odd = c.split((c.rank() % 2) as i64, c.rank() as i64);
            if c.rank() % 2 == 1 {
                assert_eq!(odd.world_rank_of(0), 1);
                assert_eq!(odd.world_rank_of(1), 3);
            } else {
                assert_eq!(odd.world_rank_of(0), 0);
                assert_eq!(odd.world_rank_of(1), 2);
            }
        });
    }

    #[test]
    fn dup_preserves_layout() {
        run(3, |c| {
            let d = c.dup();
            assert_eq!(d.rank(), c.rank());
            assert_eq!(d.size(), c.size());
        });
    }

    #[test]
    fn non_overtaking_same_tag() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..10 {
                    c.send(1, 1, Payload::I64(vec![i]));
                }
                vec![]
            } else {
                (0..10).map(|_| c.recv_i64(0, 1)[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<i64>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_out_of_range_panics() {
        run(2, |c| {
            if c.rank() == 0 {
                c.send(5, 0, Payload::Empty);
            }
        });
    }
}
