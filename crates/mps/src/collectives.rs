//! Collective operations.
//!
//! All collectives are built from the point-to-point layer, so their cost is
//! visible to the trace replayer exactly as the algorithm performs it: a
//! binomial-tree broadcast on P ranks records ⌈log₂P⌉ rounds of messages,
//! a ring allgather records P−1, and so on. This mirrors the paper's
//! accounting, which counts messages and data volume per algorithm
//! (convolution ring: P·logP messages; binary tree: O(2P); transpose: O(P²)).

use crate::comm::{Comm, COLL_BIT};
use crate::message::Payload;

const TAG_BARRIER: u64 = COLL_BIT | 1;
const TAG_BCAST: u64 = COLL_BIT | 2;
const TAG_REDUCE: u64 = COLL_BIT | 3;
const TAG_GATHER: u64 = COLL_BIT | 4;
const TAG_ALLGATHER: u64 = COLL_BIT | 5;
const TAG_ALLTOALL: u64 = COLL_BIT | 6;
const TAG_SCAN: u64 = COLL_BIT | 7;
const TAG_SCATTER: u64 = COLL_BIT | 8;

/// Elementwise reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Elementwise product.
    Prod,
}

impl Op {
    /// Apply to a pair of floats.
    pub fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            Op::Sum => a + b,
            Op::Max => a.max(b),
            Op::Min => a.min(b),
            Op::Prod => a * b,
        }
    }

    /// Apply to a pair of integers.
    pub fn apply_i64(self, a: i64, b: i64) -> i64 {
        match self {
            Op::Sum => a + b,
            Op::Max => a.max(b),
            Op::Min => a.min(b),
            Op::Prod => a * b,
        }
    }
}

fn combine_f64(acc: &mut [f64], other: &[f64], op: Op) {
    assert_eq!(acc.len(), other.len(), "reduction buffer length mismatch");
    for (a, &b) in acc.iter_mut().zip(other) {
        *a = op.apply_f64(*a, b);
    }
}

fn combine_i64(acc: &mut [i64], other: &[i64], op: Op) {
    assert_eq!(acc.len(), other.len(), "reduction buffer length mismatch");
    for (a, &b) in acc.iter_mut().zip(other) {
        *a = op.apply_i64(*a, b);
    }
}

impl Comm {
    /// Dissemination barrier: ⌈log₂P⌉ rounds, each rank sends one empty
    /// message per round.
    pub fn barrier(&self) {
        self.record_collective("barrier");
        let size = self.size();
        let rank = self.rank();
        let mut step = 1;
        while step < size {
            let dst = (rank + step) % size;
            let src = (rank + size - step) % size;
            self.send_internal(dst, TAG_BARRIER, Payload::Empty);
            self.recv_internal(src, TAG_BARRIER);
            step <<= 1;
        }
    }

    /// Binomial-tree broadcast from `root`. The root passes the payload;
    /// every rank (including the root) gets a copy back.
    pub fn bcast(&self, root: usize, payload: Payload) -> Payload {
        self.record_collective("bcast");
        let size = self.size();
        let rank = self.rank();
        assert!(
            root < size,
            "bcast root {root} out of range for size {size}"
        );
        if size == 1 {
            return payload;
        }
        let vrank = (rank + size - root) % size;
        let mut data = payload;
        // Receive from the parent: the rank obtained by clearing our lowest
        // set bit. The root (vrank 0) has no parent and exits the loop with
        // `mask` at the first power of two ≥ size.
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                let src = (vrank - mask + root) % size;
                data = self.recv_internal(src, TAG_BCAST).payload;
                break;
            }
            mask <<= 1;
        }
        // Forward to children: vrank + m for every power of two m below our
        // lowest set bit (below size for the root).
        let mut m = mask >> 1;
        while m > 0 {
            if vrank + m < size {
                let dst = (vrank + m + root) % size;
                self.send_internal(dst, TAG_BCAST, data.clone());
            }
            m >>= 1;
        }
        data
    }

    /// Broadcast a float buffer from `root`; non-roots pass `&[]`.
    pub fn bcast_f64(&self, root: usize, data: &[f64]) -> Vec<f64> {
        let payload = if self.rank() == root {
            Payload::F64(data.to_vec())
        } else {
            Payload::Empty
        };
        self.bcast(root, payload).into_f64()
    }

    /// Broadcast an integer buffer from `root`; non-roots pass `&[]`.
    pub fn bcast_i64(&self, root: usize, data: &[i64]) -> Vec<i64> {
        let payload = if self.rank() == root {
            Payload::I64(data.to_vec())
        } else {
            Payload::Empty
        };
        self.bcast(root, payload).into_i64()
    }

    /// Binomial-tree reduction of float buffers to `root`.
    /// Returns `Some(result)` on the root, `None` elsewhere.
    pub fn reduce_f64(&self, root: usize, op: Op, data: &[f64]) -> Option<Vec<f64>> {
        self.record_collective("reduce");
        let size = self.size();
        let rank = self.rank();
        assert!(
            root < size,
            "reduce root {root} out of range for size {size}"
        );
        let vrank = (rank + size - root) % size;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask == 0 {
                let vsrc = vrank | mask;
                if vsrc < size {
                    let src = (vsrc + root) % size;
                    let other = self.recv_internal(src, TAG_REDUCE).payload.into_f64();
                    combine_f64(&mut acc, &other, op);
                    self.record_flops(acc.len() as f64);
                }
            } else {
                let vdst = vrank & !mask;
                let dst = (vdst + root) % size;
                self.send_internal(dst, TAG_REDUCE, Payload::F64(acc));
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Binomial-tree reduction of integer buffers to `root`.
    pub fn reduce_i64(&self, root: usize, op: Op, data: &[i64]) -> Option<Vec<i64>> {
        self.record_collective("reduce");
        let size = self.size();
        let rank = self.rank();
        assert!(
            root < size,
            "reduce root {root} out of range for size {size}"
        );
        let vrank = (rank + size - root) % size;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask == 0 {
                let vsrc = vrank | mask;
                if vsrc < size {
                    let src = (vsrc + root) % size;
                    let other = self.recv_internal(src, TAG_REDUCE).payload.into_i64();
                    combine_i64(&mut acc, &other, op);
                }
            } else {
                let vdst = vrank & !mask;
                let dst = (vdst + root) % size;
                self.send_internal(dst, TAG_REDUCE, Payload::I64(acc));
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Reduce-to-root-then-broadcast allreduce for float buffers.
    pub fn allreduce_f64(&self, op: Op, data: &[f64]) -> Vec<f64> {
        match self.reduce_f64(0, op, data) {
            Some(result) => self.bcast(0, Payload::F64(result)).into_f64(),
            None => self.bcast(0, Payload::Empty).into_f64(),
        }
    }

    /// Reduce-to-root-then-broadcast allreduce for integer buffers.
    pub fn allreduce_i64(&self, op: Op, data: &[i64]) -> Vec<i64> {
        match self.reduce_i64(0, op, data) {
            Some(result) => self.bcast(0, Payload::I64(result)).into_i64(),
            None => self.bcast(0, Payload::Empty).into_i64(),
        }
    }

    /// Gather variable-length float buffers to `root`. Returns
    /// `Some(per-rank buffers)` on the root, `None` elsewhere.
    pub fn gather_f64(&self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        self.record_collective("gather");
        let size = self.size();
        let rank = self.rank();
        assert!(
            root < size,
            "gather root {root} out of range for size {size}"
        );
        if rank == root {
            let mut out: Vec<Vec<f64>> = vec![Vec::new(); size];
            out[root] = data.to_vec();
            #[allow(clippy::needless_range_loop)] // index drives multiple buffers
            for r in 0..size {
                if r != root {
                    out[r] = self.recv_internal(r, TAG_GATHER).payload.into_f64();
                }
            }
            Some(out)
        } else {
            self.send_internal(root, TAG_GATHER, Payload::F64(data.to_vec()));
            None
        }
    }

    /// Scatter per-rank float buffers from `root`. The root passes one
    /// buffer per rank; everyone gets their own back.
    pub fn scatter_f64(&self, root: usize, data: Option<Vec<Vec<f64>>>) -> Vec<f64> {
        self.record_collective("scatter");
        let size = self.size();
        let rank = self.rank();
        assert!(
            root < size,
            "scatter root {root} out of range for size {size}"
        );
        if rank == root {
            let mut bufs = data.expect("root must supply scatter buffers");
            assert_eq!(bufs.len(), size, "scatter needs one buffer per rank");
            let mut own = Vec::new();
            for r in (0..size).rev() {
                let buf = bufs.pop().expect("length checked");
                if r == root {
                    own = buf;
                } else {
                    self.send_internal(r, TAG_SCATTER, Payload::F64(buf));
                }
            }
            own
        } else {
            self.recv_internal(root, TAG_SCATTER).payload.into_f64()
        }
    }

    /// Ring allgather of integer buffers; result is the concatenation in
    /// rank order. Buffers may have different lengths.
    pub fn allgather_i64(&self, data: &[i64]) -> Vec<i64> {
        let blocks = self.allgather_ring(Payload::I64(data.to_vec()));
        let mut out = Vec::new();
        for b in blocks {
            out.extend_from_slice(&b.into_i64());
        }
        out
    }

    /// Ring allgather of float buffers; result is the concatenation in rank
    /// order. Buffers may have different lengths.
    pub fn allgather_f64(&self, data: &[f64]) -> Vec<f64> {
        let blocks = self.allgather_ring(Payload::F64(data.to_vec()));
        let mut out = Vec::new();
        for b in blocks {
            out.extend_from_slice(&b.into_f64());
        }
        out
    }

    /// Ring allgather keeping per-rank payload boundaries.
    pub fn allgather_ring(&self, mine: Payload) -> Vec<Payload> {
        self.record_collective("allgather");
        let size = self.size();
        let rank = self.rank();
        let right = (rank + 1) % size;
        let left = (rank + size - 1) % size;
        let mut blocks: Vec<Option<Payload>> = (0..size).map(|_| None).collect();
        let mut current = mine.clone();
        blocks[rank] = Some(mine);
        for step in 1..size {
            self.send_internal(right, TAG_ALLGATHER, current);
            let from_idx = (rank + size - step) % size;
            current = self.recv_internal(left, TAG_ALLGATHER).payload;
            blocks[from_idx] = Some(current.clone());
        }
        blocks
            .into_iter()
            .map(|b| b.expect("ring fills every block"))
            .collect()
    }

    /// Personalized all-to-all: rank `i` passes `send[j]` for each rank `j`
    /// and receives what every rank addressed to it, indexed by source.
    /// This is the transpose primitive: P−1 messages per rank.
    pub fn alltoallv(&self, mut send: Vec<Payload>) -> Vec<Payload> {
        self.record_collective("alltoallv");
        let size = self.size();
        let rank = self.rank();
        assert_eq!(send.len(), size, "alltoallv needs one payload per rank");
        let mut recv: Vec<Option<Payload>> = (0..size).map(|_| None).collect();
        recv[rank] = Some(std::mem::replace(&mut send[rank], Payload::Empty));
        for offset in 1..size {
            let dst = (rank + offset) % size;
            let src = (rank + size - offset) % size;
            let payload = std::mem::replace(&mut send[dst], Payload::Empty);
            self.send_internal(dst, TAG_ALLTOALL, payload);
            recv[src] = Some(self.recv_internal(src, TAG_ALLTOALL).payload);
        }
        recv.into_iter()
            .map(|b| b.expect("all-to-all fills every slot"))
            .collect()
    }

    /// Inclusive prefix scan of float buffers (linear chain).
    pub fn scan_f64(&self, op: Op, data: &[f64]) -> Vec<f64> {
        self.record_collective("scan");
        let rank = self.rank();
        let size = self.size();
        let mut acc = data.to_vec();
        if rank > 0 {
            let prev = self.recv_internal(rank - 1, TAG_SCAN).payload.into_f64();
            let mut combined = prev;
            combine_f64(&mut combined, &acc, op);
            acc = combined;
        }
        if rank + 1 < size {
            self.send_internal(rank + 1, TAG_SCAN, Payload::F64(acc.clone()));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run;

    #[test]
    fn op_semantics() {
        assert_eq!(Op::Sum.apply_f64(2.0, 3.0), 5.0);
        assert_eq!(Op::Max.apply_f64(2.0, 3.0), 3.0);
        assert_eq!(Op::Min.apply_i64(2, 3), 2);
        assert_eq!(Op::Prod.apply_i64(2, 3), 6);
    }

    #[test]
    fn barrier_completes_various_sizes() {
        for p in [1, 2, 3, 4, 7, 8] {
            run(p, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
            });
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for p in [1, 2, 3, 5, 8] {
            for root in 0..p {
                let out = run(p, move |c| {
                    let data = if c.rank() == root {
                        vec![42.0, -1.0]
                    } else {
                        vec![]
                    };
                    c.bcast_f64(root, &data)
                });
                for r in out {
                    assert_eq!(r, vec![42.0, -1.0]);
                }
            }
        }
    }

    #[test]
    fn reduce_sum_every_root() {
        for p in [1, 2, 3, 6, 8] {
            for root in 0..p {
                let out = run(p, move |c| {
                    c.reduce_f64(root, Op::Sum, &[c.rank() as f64, 1.0])
                });
                let expect: f64 = (0..p).map(|r| r as f64).sum();
                for (r, res) in out.into_iter().enumerate() {
                    if r == root {
                        assert_eq!(res, Some(vec![expect, p as f64]));
                    } else {
                        assert_eq!(res, None);
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_max_min_i64() {
        let out = run(5, |c| {
            let x = [(c.rank() as i64) * 3 - 4];
            let mx = c.reduce_i64(0, Op::Max, &x);
            let mn = c.reduce_i64(0, Op::Min, &x);
            (mx, mn)
        });
        assert_eq!(out[0].0, Some(vec![8]));
        assert_eq!(out[0].1, Some(vec![-4]));
    }

    #[test]
    fn allreduce_consistency() {
        for p in [1, 3, 4, 7] {
            let out = run(p, |c| c.allreduce_f64(Op::Sum, &[1.0, c.rank() as f64]));
            let sum: f64 = (0..p).map(|r| r as f64).sum();
            for r in out {
                assert_eq!(r, vec![p as f64, sum]);
            }
        }
    }

    #[test]
    fn gather_variable_lengths() {
        let out = run(4, |c| {
            let mine: Vec<f64> = (0..c.rank()).map(|i| i as f64).collect();
            c.gather_f64(2, &mine)
        });
        let g = out[2].clone().unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g[0], Vec::<f64>::new());
        assert_eq!(g[3], vec![0.0, 1.0, 2.0]);
        assert!(out[0].is_none() && out[1].is_none() && out[3].is_none());
    }

    #[test]
    fn scatter_roundtrip() {
        let out = run(3, |c| {
            let data = if c.rank() == 1 {
                Some(vec![vec![0.0], vec![1.0, 1.5], vec![2.0]])
            } else {
                None
            };
            c.scatter_f64(1, data)
        });
        assert_eq!(out, vec![vec![0.0], vec![1.0, 1.5], vec![2.0]]);
    }

    #[test]
    fn allgather_flat_concat() {
        let out = run(4, |c| {
            c.allgather_i64(&[c.rank() as i64, 100 + c.rank() as i64])
        });
        for r in out {
            assert_eq!(r, vec![0, 100, 1, 101, 2, 102, 3, 103]);
        }
    }

    #[test]
    fn allgather_variable_lengths() {
        let out = run(3, |c| {
            let mine: Vec<f64> = vec![c.rank() as f64; c.rank() + 1];
            c.allgather_f64(&mine)
        });
        for r in out {
            assert_eq!(r, vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn alltoallv_transpose() {
        // Rank i sends value 10*i + j to rank j; rank j must end up with
        // column j of that matrix.
        let out = run(4, |c| {
            let send: Vec<Payload> = (0..4)
                .map(|j| Payload::I64(vec![(10 * c.rank() + j) as i64]))
                .collect();
            let recv = c.alltoallv(send);
            recv.into_iter()
                .map(|p| p.into_i64()[0])
                .collect::<Vec<_>>()
        });
        for (j, r) in out.into_iter().enumerate() {
            let expect: Vec<i64> = (0..4).map(|i| (10 * i + j) as i64).collect();
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn scan_inclusive_sum() {
        let out = run(5, |c| c.scan_f64(Op::Sum, &[1.0]));
        for (r, v) in out.into_iter().enumerate() {
            assert_eq!(v, vec![(r + 1) as f64]);
        }
    }

    #[test]
    fn single_rank_collectives() {
        run(1, |c| {
            c.barrier();
            assert_eq!(c.bcast_f64(0, &[5.0]), vec![5.0]);
            assert_eq!(c.allreduce_f64(Op::Sum, &[2.0]), vec![2.0]);
            assert_eq!(c.allgather_i64(&[9]), vec![9]);
            assert_eq!(c.scan_f64(Op::Sum, &[3.0]), vec![3.0]);
        });
    }
}
