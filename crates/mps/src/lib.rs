//! # agcm-mps — a message-passing substrate for the AGCM reproduction
//!
//! The original UCLA AGCM parallel code (Lou & Farrara, SC'96) was written
//! against message-passing libraries (NX on the Intel Paragon, shmem/MPI on
//! the Cray T3D). This crate provides the equivalent programming model as a
//! self-contained Rust library:
//!
//! * ranks are OS threads launched by [`runtime::run`];
//! * a [`Comm`] offers point-to-point [`Comm::send`]/[`Comm::recv`] with
//!   tag matching, plus the collectives the AGCM code needs (barrier,
//!   broadcast, reduce, allreduce, gather, allgather, all-to-all(v), scan);
//! * [`topology::CartComm`] builds the 2-D (latitude × longitude) processor
//!   mesh used by the AGCM grid decomposition, with row/column
//!   sub-communicators and periodic shifts;
//! * a deterministic fault-injection plane ([`fault::FaultPlan`] +
//!   [`runtime::run_with_faults`]) can drop, duplicate, delay or reorder
//!   messages and kill ranks at chosen steps, for exercising the
//!   checkpoint/restart machinery in `agcm-resilience`;
//! * every rank records a [`trace::RankTrace`] of sends, receives and
//!   floating-point work, which the `agcm-costmodel` crate replays against a
//!   machine profile (Paragon / T3D / SP-2) to produce the paper's
//!   seconds-per-simulated-day numbers.
//!
//! Sends are *eager*: `send` never blocks, so the classic shift/exchange
//! patterns (`send` then `recv`) are deadlock-free.
//!
//! ```
//! use agcm_mps::runtime::run;
//! use agcm_mps::message::Payload;
//!
//! // Four ranks compute a ring shift of their rank id.
//! let results = run(4, |comm| {
//!     let right = (comm.rank() + 1) % comm.size();
//!     let left = (comm.rank() + comm.size() - 1) % comm.size();
//!     comm.send(right, 7, Payload::I64(vec![comm.rank() as i64]));
//!     let pkt = comm.recv(left, 7);
//!     pkt.payload.into_i64()[0]
//! });
//! assert_eq!(results, vec![3, 0, 1, 2]);
//! ```

pub mod cancel;
pub mod collectives;
pub mod comm;
pub mod error;
pub mod fault;
pub mod message;
pub mod runtime;
pub mod span;
pub mod topology;
pub mod trace;

pub use cancel::CancelToken;
pub use collectives::Op;
pub use comm::{Comm, ANY_SRC, ANY_TAG};
pub use error::{Error, Result};
pub use fault::{FaultAction, FaultEvent, FaultPlan, KillSpec, TargetedFault};
pub use message::{Packet, Payload};
pub use runtime::{
    run, run_traced, run_with_faults, run_world, FailureKind, FaultyRun, WorldOptions,
};
pub use span::{FanoutObserver, SpanObserver};
pub use topology::CartComm;
pub use trace::{Event, PhaseFault, PhaseFaultKind, WorldTrace};
