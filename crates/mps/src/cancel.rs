//! Cooperative cancellation of a running world.
//!
//! A [`CancelToken`] is a cloneable flag shared between a controller (an
//! ensemble scheduler, a deadline watchdog, a user) and every rank of a
//! world launched with [`crate::runtime::run_world`]. Ranks observe the
//! token at well-defined points — [`crate::Comm::begin_step`] and inside
//! every blocking receive's poll loop — and unwind with a controlled
//! payload that the runtime converts into
//! [`crate::runtime::FailureKind::Cancelled`]. Because a cancelled rank's
//! liveness flag drops like any other death, peers blocked on it surface
//! as `Disconnected` and the whole world drains without hangs, exactly as
//! in the fault-injection kill path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation handle for a world of ranks.
///
/// Cheap to clone (an `Arc<AtomicBool>`); `cancel` is idempotent and
/// one-way — there is no un-cancel.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Every rank sharing this token unwinds at its
    /// next cancellation point (step boundary or blocked receive poll,
    /// within one poll interval).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Unwind payload raised when a rank observes its token cancelled; caught
/// by the runtime and converted into
/// [`crate::runtime::FailureKind::Cancelled`].
pub(crate) struct CancelUnwind;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the flag");
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }
}
