//! Error types for the message-passing substrate.

use std::fmt;

/// Errors surfaced by the substrate.
///
/// Most send/recv paths panic on programmer error (rank out of range) the
/// way an MPI implementation would abort; `Error` is reserved for conditions
/// a caller can meaningfully handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A receive was attempted after every peer hung up (a rank panicked).
    Disconnected,
    /// A receive was waiting on a peer that died (killed by fault injection,
    /// panicked, or exited without sending the awaited message).
    PeerDisconnected {
        /// World rank of the dead peer.
        world_rank: usize,
    },
    /// A timed receive expired without a matching message.
    Timeout,
    /// A payload was interpreted as the wrong element type.
    PayloadType {
        /// The variant that was expected (e.g. `"F64"`).
        expected: &'static str,
        /// The variant that was found.
        found: &'static str,
    },
    /// A rank index was outside the communicator.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
    /// Mismatched buffer lengths in a reduction.
    LengthMismatch {
        /// Length expected by the reduction.
        expected: usize,
        /// Length received.
        found: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Disconnected => write!(f, "all peers disconnected"),
            Error::PeerDisconnected { world_rank } => {
                write!(f, "peer world rank {world_rank} disconnected")
            }
            Error::Timeout => write!(f, "receive timed out"),
            Error::PayloadType { expected, found } => {
                write!(
                    f,
                    "payload type mismatch: expected {expected}, found {found}"
                )
            }
            Error::RankOutOfRange { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            Error::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "buffer length mismatch: expected {expected}, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Error::Disconnected.to_string(), "all peers disconnected");
        assert_eq!(
            Error::PeerDisconnected { world_rank: 3 }.to_string(),
            "peer world rank 3 disconnected"
        );
        assert_eq!(Error::Timeout.to_string(), "receive timed out");
        assert_eq!(
            Error::PayloadType {
                expected: "F64",
                found: "I64"
            }
            .to_string(),
            "payload type mismatch: expected F64, found I64"
        );
        assert_eq!(
            Error::RankOutOfRange { rank: 9, size: 4 }.to_string(),
            "rank 9 out of range for communicator of size 4"
        );
        assert_eq!(
            Error::LengthMismatch {
                expected: 3,
                found: 5
            }
            .to_string(),
            "buffer length mismatch: expected 3, found 5"
        );
    }
}
