//! 2-D Cartesian process topologies.
//!
//! The UCLA AGCM decomposes the horizontal (latitude × longitude) grid over
//! a 2-D processor mesh: "an M×N processor mesh, with M processors in the
//! latitudinal direction and N processors in the longitudinal direction"
//! (paper §3.3). [`CartComm`] wraps a [`Comm`] with that shape: coordinate
//! arithmetic, periodic/non-periodic shifts for halo exchange, and row and
//! column sub-communicators (processor rows are what the filtering transpose
//! and row redistribution operate on).
//!
//! Convention: dimension 0 is latitude (rows of the mesh), dimension 1 is
//! longitude (columns). Longitude is periodic on the sphere; latitude is not
//! (the poles are boundaries).

use crate::comm::Comm;

/// A communicator arranged as an `rows × cols` mesh, row-major.
pub struct CartComm {
    comm: Comm,
    rows: usize,
    cols: usize,
    periodic: (bool, bool),
}

impl CartComm {
    /// Arrange `comm` as a `rows × cols` mesh. `periodic.0` applies to the
    /// row (latitude) dimension, `periodic.1` to the column (longitude)
    /// dimension. The AGCM uses `(false, true)`.
    ///
    /// Collective: internally duplicates `comm` so mesh traffic gets its own
    /// context. Every rank of `comm` must call this.
    ///
    /// # Panics
    /// If `rows * cols != comm.size()`.
    pub fn new(comm: &Comm, rows: usize, cols: usize, periodic: (bool, bool)) -> CartComm {
        assert_eq!(
            rows * cols,
            comm.size(),
            "mesh {rows}x{cols} does not match communicator size {}",
            comm.size()
        );
        CartComm {
            comm: comm.dup(),
            rows,
            cols,
            periodic,
        }
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Mesh shape `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// This rank's `(row, col)` coordinates.
    pub fn coords(&self) -> (usize, usize) {
        self.coords_of(self.comm.rank())
    }

    /// Coordinates of an arbitrary rank.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.comm.size(), "rank {rank} out of range");
        (rank / self.cols, rank % self.cols)
    }

    /// Rank at `(row, col)`.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "coords ({row},{col}) out of range"
        );
        row * self.cols + col
    }

    /// Neighbour in `dim` (0 = row/latitude, 1 = col/longitude) at signed
    /// displacement `disp`. Returns `None` at a non-periodic boundary.
    pub fn neighbor(&self, dim: usize, disp: isize) -> Option<usize> {
        let (row, col) = self.coords();
        let (pos, extent, periodic) = match dim {
            0 => (row as isize, self.rows as isize, self.periodic.0),
            1 => (col as isize, self.cols as isize, self.periodic.1),
            _ => panic!("dimension {dim} out of range for a 2-D mesh"),
        };
        let raw = pos + disp;
        let wrapped = if periodic {
            raw.rem_euclid(extent)
        } else if raw < 0 || raw >= extent {
            return None;
        } else {
            raw
        };
        Some(match dim {
            0 => self.rank_of(wrapped as usize, col),
            _ => self.rank_of(row, wrapped as usize),
        })
    }

    /// Source and destination for a shift by `disp` along `dim`, MPI
    /// `Cart_shift` style: `(recv_from, send_to)`.
    pub fn shift(&self, dim: usize, disp: isize) -> (Option<usize>, Option<usize>) {
        (self.neighbor(dim, -disp), self.neighbor(dim, disp))
    }

    /// Sub-communicator of this rank's mesh row (all longitudes at one
    /// latitude band). Collective over the whole mesh.
    pub fn row_comm(&self) -> Comm {
        let (row, col) = self.coords();
        self.comm.split(row as i64, col as i64)
    }

    /// Sub-communicator of this rank's mesh column (all latitude bands at
    /// one longitude range). Collective over the whole mesh.
    pub fn col_comm(&self) -> Comm {
        let (row, col) = self.coords();
        self.comm.split(col as i64, row as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use crate::runtime::run;

    fn mesh_2x3(c: &Comm) -> CartComm {
        CartComm::new(c, 2, 3, (false, true))
    }

    #[test]
    fn coords_roundtrip() {
        run(6, |c| {
            let rank = c.rank();
            let m = mesh_2x3(c);
            let (r, q) = m.coords();
            assert_eq!(m.rank_of(r, q), rank);
            assert_eq!(m.coords_of(rank), (r, q));
        });
    }

    #[test]
    fn longitude_is_periodic() {
        run(6, |c| {
            let m = mesh_2x3(c);
            let (row, col) = m.coords();
            // +1 in longitude always exists and wraps.
            let east = m.neighbor(1, 1).unwrap();
            assert_eq!(m.coords_of(east), (row, (col + 1) % 3));
            // Wrap the long way round.
            let far = m.neighbor(1, -4).unwrap();
            assert_eq!(m.coords_of(far).1, (col + 3 - 1) % 3);
        });
    }

    #[test]
    fn latitude_is_bounded() {
        run(6, |c| {
            let m = mesh_2x3(c);
            let (row, _) = m.coords();
            if row == 0 {
                assert_eq!(m.neighbor(0, -1), None, "no neighbour past the pole");
                assert!(m.neighbor(0, 1).is_some());
            } else {
                assert!(m.neighbor(0, -1).is_some());
                assert_eq!(m.neighbor(0, 1), None);
            }
        });
    }

    #[test]
    fn shift_pairs_are_consistent() {
        // Every rank sends its id east; after the shift everyone must hold
        // their western neighbour's id.
        let out = run(6, |c| {
            let m = mesh_2x3(c);
            let (from, to) = m.shift(1, 1);
            let (from, to) = (from.unwrap(), to.unwrap());
            m.comm()
                .send(to, 9, Payload::I64(vec![m.comm().rank() as i64]));
            m.comm().recv_i64(from, 9)[0]
        });
        // rank layout: row-major 2x3; west of rank r (row-major) wraps in cols of 3
        let expect: Vec<i64> = (0..6)
            .map(|r| {
                let (row, col) = (r / 3, r % 3);
                (row * 3 + (col + 2) % 3) as i64
            })
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn row_and_col_comms() {
        run(6, |c| {
            let m = mesh_2x3(c);
            let (row, col) = m.coords();
            let rc = m.row_comm();
            assert_eq!(rc.size(), 3);
            assert_eq!(rc.rank(), col);
            let cc = m.col_comm();
            assert_eq!(cc.size(), 2);
            assert_eq!(cc.rank(), row);
        });
    }

    #[test]
    #[should_panic(expected = "does not match communicator size")]
    fn bad_mesh_shape_panics() {
        run(6, |c| {
            CartComm::new(c, 2, 2, (false, true));
        });
    }

    #[test]
    fn single_row_mesh() {
        run(4, |c| {
            let m = CartComm::new(c, 1, 4, (false, true));
            assert_eq!(m.neighbor(0, 1), None);
            assert_eq!(m.neighbor(1, 2), Some((m.coords().1 + 2) % 4));
        });
    }
}
