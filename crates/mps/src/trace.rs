//! Execution tracing.
//!
//! The paper reports execution time on machines we cannot run on (Intel
//! Paragon, Cray T3D). What *can* be measured faithfully is the algorithmic
//! behaviour of each parallel implementation: how many messages each rank
//! sends, how many bytes move, how much floating-point work each rank does,
//! and in what order. This module records exactly that, per rank, as a flat
//! event list. The `agcm-costmodel` crate replays these traces against a
//! calibrated machine profile to produce simulated seconds.
//!
//! Flop counts are *recorded by the algorithms themselves* (the kernels know
//! their operation counts); the tracer just accumulates them, so the replay
//! reflects real load imbalance, not an analytic guess.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One traced event on a rank.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A message was sent to `to` (world rank) carrying `bytes` bytes.
    Send {
        /// Destination world rank.
        to: usize,
        /// Wire size in bytes.
        bytes: usize,
        /// Per-(src, dst) send sequence number.
        seq: u64,
    },
    /// A message from `from` (world rank) was received.
    Recv {
        /// Source world rank.
        from: usize,
        /// Wire size in bytes.
        bytes: usize,
        /// Sequence number of the matching send.
        seq: u64,
    },
    /// `flops` floating-point operations of local work.
    Flops(f64),
    /// Beginning of a named phase (e.g. "dynamics", "filter", "physics").
    PhaseBegin(&'static str),
    /// End of the innermost open phase with this name.
    PhaseEnd(&'static str),
}

/// Per-rank trace storage. Shared (via `Arc`) by every communicator a rank
/// derives, so sub-communicator traffic lands in the same stream.
#[derive(Debug, Default)]
pub struct RankTrace {
    events: Mutex<Vec<Event>>,
    enabled: AtomicBool,
}

impl RankTrace {
    /// A new trace; recording is off until [`RankTrace::set_enabled`].
    pub fn new(enabled: bool) -> Arc<Self> {
        Arc::new(RankTrace {
            events: Mutex::new(Vec::new()),
            enabled: AtomicBool::new(enabled),
        })
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Append an event if recording is enabled.
    pub fn record(&self, ev: Event) {
        if self.enabled() {
            self.events.lock().push(ev);
        }
    }

    /// Accumulate floating-point work. Consecutive `Flops` events are merged
    /// to keep traces small for tight loops.
    pub fn record_flops(&self, flops: f64) {
        if !self.enabled() || flops <= 0.0 {
            return;
        }
        let mut ev = self.events.lock();
        if let Some(Event::Flops(acc)) = ev.last_mut() {
            *acc += flops;
        } else {
            ev.push(Event::Flops(flops));
        }
    }

    /// Snapshot the event list.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Drain the event list (used by the runtime when a rank finishes).
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }
}

/// Aggregate message statistics for one rank, derived from its trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankStats {
    /// Messages sent.
    pub sends: usize,
    /// Bytes sent.
    pub bytes_sent: usize,
    /// Messages received.
    pub recvs: usize,
    /// Bytes received.
    pub bytes_recvd: usize,
    /// Total recorded floating-point operations.
    pub flops: f64,
}

/// The complete trace of a traced run: one event stream per world rank.
#[derive(Debug, Clone, Default)]
pub struct WorldTrace {
    /// `ranks[r]` is the event stream of world rank `r`.
    pub ranks: Vec<Vec<Event>>,
}

impl WorldTrace {
    /// Number of ranks traced.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// Per-rank aggregate statistics.
    pub fn stats(&self) -> Vec<RankStats> {
        self.ranks
            .iter()
            .map(|evs| {
                let mut s = RankStats::default();
                for ev in evs {
                    match ev {
                        Event::Send { bytes, .. } => {
                            s.sends += 1;
                            s.bytes_sent += bytes;
                        }
                        Event::Recv { bytes, .. } => {
                            s.recvs += 1;
                            s.bytes_recvd += bytes;
                        }
                        Event::Flops(f) => s.flops += f,
                        _ => {}
                    }
                }
                s
            })
            .collect()
    }

    /// Total messages sent across all ranks.
    pub fn total_messages(&self) -> usize {
        self.stats().iter().map(|s| s.sends).sum()
    }

    /// Total bytes sent across all ranks.
    pub fn total_bytes(&self) -> usize {
        self.stats().iter().map(|s| s.bytes_sent).sum()
    }

    /// Total flops recorded across all ranks.
    pub fn total_flops(&self) -> f64 {
        self.stats().iter().map(|s| s.flops).sum()
    }

    /// Flop imbalance across ranks, using the paper's definition:
    /// `(max − average) / average`.
    pub fn flop_imbalance(&self) -> f64 {
        let stats = self.stats();
        if stats.is_empty() {
            return 0.0;
        }
        let total: f64 = stats.iter().map(|s| s.flops).sum();
        let avg = total / stats.len() as f64;
        if avg == 0.0 {
            return 0.0;
        }
        let max = stats.iter().map(|s| s.flops).fold(0.0, f64::max);
        (max - avg) / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = RankTrace::new(false);
        t.record(Event::Flops(10.0));
        t.record_flops(5.0);
        assert!(t.events().is_empty());
    }

    #[test]
    fn flops_merge() {
        let t = RankTrace::new(true);
        t.record_flops(1.0);
        t.record_flops(2.0);
        t.record(Event::PhaseBegin("x"));
        t.record_flops(4.0);
        assert_eq!(
            t.events(),
            vec![Event::Flops(3.0), Event::PhaseBegin("x"), Event::Flops(4.0)]
        );
    }

    #[test]
    fn nonpositive_flops_ignored() {
        let t = RankTrace::new(true);
        t.record_flops(0.0);
        t.record_flops(-3.0);
        assert!(t.events().is_empty());
    }

    #[test]
    fn stats_aggregation() {
        let wt = WorldTrace {
            ranks: vec![
                vec![
                    Event::Send {
                        to: 1,
                        bytes: 80,
                        seq: 0,
                    },
                    Event::Flops(100.0),
                    Event::Recv {
                        from: 1,
                        bytes: 40,
                        seq: 0,
                    },
                ],
                vec![
                    Event::Recv {
                        from: 0,
                        bytes: 80,
                        seq: 0,
                    },
                    Event::Send {
                        to: 0,
                        bytes: 40,
                        seq: 0,
                    },
                    Event::Flops(300.0),
                ],
            ],
        };
        let s = wt.stats();
        assert_eq!(s[0].sends, 1);
        assert_eq!(s[0].bytes_sent, 80);
        assert_eq!(s[1].bytes_recvd, 80);
        assert_eq!(wt.total_messages(), 2);
        assert_eq!(wt.total_bytes(), 120);
        assert_eq!(wt.total_flops(), 400.0);
        // avg = 200, max = 300 → imbalance 0.5
        assert!((wt.flop_imbalance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_imbalance_zero() {
        assert_eq!(WorldTrace::default().flop_imbalance(), 0.0);
        let wt = WorldTrace {
            ranks: vec![vec![], vec![]],
        };
        assert_eq!(wt.flop_imbalance(), 0.0);
    }

    #[test]
    fn take_drains() {
        let t = RankTrace::new(true);
        t.record_flops(1.0);
        assert_eq!(t.take().len(), 1);
        assert!(t.events().is_empty());
    }
}
