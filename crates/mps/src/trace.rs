//! Execution tracing.
//!
//! The paper reports execution time on machines we cannot run on (Intel
//! Paragon, Cray T3D). What *can* be measured faithfully is the algorithmic
//! behaviour of each parallel implementation: how many messages each rank
//! sends, how many bytes move, how much floating-point work each rank does,
//! and in what order. This module records exactly that, per rank, as a flat
//! event list. The `agcm-costmodel` crate replays these traces against a
//! calibrated machine profile to produce simulated seconds, and the
//! `agcm-telemetry` crate turns them into span timelines and structured
//! run metrics.
//!
//! Flop counts are *recorded by the algorithms themselves* (the kernels know
//! their operation counts); the tracer just accumulates them, so the replay
//! reflects real load imbalance, not an analytic guess.
//!
//! Besides the event list, a trace carries two sidecars:
//!
//! * **wall-clock stamps** — every phase event is stamped with seconds
//!   since a world-shared epoch, so a timeline viewer can show *this*
//!   machine's real phase spans next to the cost-model's virtual ones;
//! * **collective counters** — one counter per collective primitive
//!   (barrier, bcast, …), cheap enough to keep even where full event
//!   recording would be noise.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One traced event on a rank.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A message was sent to `to` (world rank) carrying `bytes` bytes.
    Send {
        /// Destination world rank.
        to: usize,
        /// Wire size in bytes.
        bytes: usize,
        /// Per-(src, dst) send sequence number.
        seq: u64,
    },
    /// A message from `from` (world rank) was received.
    Recv {
        /// Source world rank.
        from: usize,
        /// Wire size in bytes.
        bytes: usize,
        /// Sequence number of the matching send.
        seq: u64,
    },
    /// `flops` floating-point operations of local work.
    Flops(f64),
    /// Beginning of a named phase (e.g. "dynamics", "filter", "physics").
    PhaseBegin(&'static str),
    /// End of the innermost open phase with this name.
    PhaseEnd(&'static str),
}

impl Event {
    /// Whether this is a [`Event::PhaseBegin`] or [`Event::PhaseEnd`].
    pub fn is_phase(&self) -> bool {
        matches!(self, Event::PhaseBegin(_) | Event::PhaseEnd(_))
    }
}

/// Per-rank trace storage. Shared (via `Arc`) by every communicator a rank
/// derives, so sub-communicator traffic lands in the same stream.
#[derive(Debug)]
pub struct RankTrace {
    events: Mutex<Vec<Event>>,
    /// Wall-clock stamp (seconds since `epoch`) of each phase event, in
    /// the order the phase events appear in `events`.
    phase_walls: Mutex<Vec<f64>>,
    /// Per-primitive collective call counts, keyed by static name.
    collectives: Mutex<Vec<(&'static str, u64)>>,
    /// Shared time origin — the same `Instant` across all ranks of a
    /// world, so stamps are comparable between ranks.
    epoch: Instant,
    enabled: AtomicBool,
}

impl Default for RankTrace {
    fn default() -> RankTrace {
        RankTrace {
            events: Mutex::new(Vec::new()),
            phase_walls: Mutex::new(Vec::new()),
            collectives: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            enabled: AtomicBool::new(false),
        }
    }
}

impl RankTrace {
    /// A new trace; recording is off until [`RankTrace::set_enabled`].
    pub fn new(enabled: bool) -> Arc<Self> {
        RankTrace::with_epoch(enabled, Instant::now())
    }

    /// A new trace stamping wall clocks relative to `epoch` (the runtime
    /// passes one shared epoch to every rank of a world).
    pub fn with_epoch(enabled: bool, epoch: Instant) -> Arc<Self> {
        Arc::new(RankTrace {
            events: Mutex::new(Vec::new()),
            phase_walls: Mutex::new(Vec::new()),
            collectives: Mutex::new(Vec::new()),
            epoch,
            enabled: AtomicBool::new(enabled),
        })
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Append an event if recording is enabled. Phase events are also
    /// wall-clock stamped.
    pub fn record(&self, ev: Event) {
        if self.enabled() {
            if ev.is_phase() {
                self.phase_walls
                    .lock()
                    .push(self.epoch.elapsed().as_secs_f64());
            }
            self.events.lock().push(ev);
        }
    }

    /// Accumulate floating-point work. Consecutive `Flops` events are merged
    /// to keep traces small for tight loops.
    pub fn record_flops(&self, flops: f64) {
        if !self.enabled() || flops <= 0.0 {
            return;
        }
        let mut ev = self.events.lock();
        if let Some(Event::Flops(acc)) = ev.last_mut() {
            *acc += flops;
        } else {
            ev.push(Event::Flops(flops));
        }
    }

    /// Count one call of the named collective primitive. The set of
    /// primitives is small, so a linear scan beats a map here.
    pub fn record_collective(&self, name: &'static str) {
        if !self.enabled() {
            return;
        }
        let mut counts = self.collectives.lock();
        match counts.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => counts.push((name, 1)),
        }
    }

    /// Snapshot the event list.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Drain the event list (used by the runtime when a rank finishes).
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Drain the wall-clock stamps of the phase events.
    pub fn take_walls(&self) -> Vec<f64> {
        std::mem::take(&mut *self.phase_walls.lock())
    }

    /// Drain the collective counters.
    pub fn take_collectives(&self) -> Vec<(&'static str, u64)> {
        std::mem::take(&mut *self.collectives.lock())
    }
}

/// Aggregate message statistics for one rank, derived from its trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankStats {
    /// Messages sent.
    pub sends: usize,
    /// Bytes sent.
    pub bytes_sent: usize,
    /// Messages received.
    pub recvs: usize,
    /// Bytes received.
    pub bytes_recvd: usize,
    /// Total recorded floating-point operations.
    pub flops: f64,
}

/// A matched send/receive pair in a [`WorldTrace`].
///
/// The substrate stamps every send with a per-`(src, dst)` sequence number
/// and delivers it unchanged, so `(src, dst, seq)` identifies one message
/// end-to-end. The event indices point into `ranks[src]` / `ranks[dst]`,
/// which is what the analysis layer needs to look the pair up in a replay
/// schedule (per-event virtual timestamps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessagePair {
    /// Sending world rank.
    pub src: usize,
    /// Receiving world rank.
    pub dst: usize,
    /// Per-`(src, dst)` send sequence number.
    pub seq: u64,
    /// Wire size in bytes.
    pub bytes: usize,
    /// Index of the `Send` event in `ranks[src]`.
    pub send_event: usize,
    /// Index of the `Recv` event in `ranks[dst]`.
    pub recv_event: usize,
}

/// A malformed phase stream found by [`WorldTrace::validate_phases`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseFault {
    /// The rank whose stream is malformed.
    pub rank: usize,
    /// The phase name involved.
    pub name: &'static str,
    /// What is wrong.
    pub kind: PhaseFaultKind,
}

/// The ways a phase stream can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhaseFaultKind {
    /// A `PhaseEnd` arrived with no open phase at all.
    UnmatchedEnd,
    /// A `PhaseEnd` named a phase other than the innermost open one.
    MismatchedEnd {
        /// The innermost open phase at that point.
        open: &'static str,
    },
    /// A `PhaseBegin` was never closed by the end of the stream.
    UnclosedBegin,
}

impl fmt::Display for PhaseFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            PhaseFaultKind::UnmatchedEnd => write!(
                f,
                "rank {}: PhaseEnd({:?}) with no open phase",
                self.rank, self.name
            ),
            PhaseFaultKind::MismatchedEnd { open } => write!(
                f,
                "rank {}: PhaseEnd({:?}) while {:?} is the innermost open phase",
                self.rank, self.name, open
            ),
            PhaseFaultKind::UnclosedBegin => write!(
                f,
                "rank {}: PhaseBegin({:?}) never closed",
                self.rank, self.name
            ),
        }
    }
}

/// The complete trace of a traced run: one event stream per world rank,
/// plus the wall-clock stamps of the phase events and the collective call
/// counters.
#[derive(Debug, Clone, Default)]
pub struct WorldTrace {
    /// `ranks[r]` is the event stream of world rank `r`.
    pub ranks: Vec<Vec<Event>>,
    /// `walls[r][i]` is the wall-clock stamp (seconds since the shared
    /// epoch) of the `i`-th *phase* event in `ranks[r]`. Empty when the
    /// trace was built by hand rather than recorded.
    pub walls: Vec<Vec<f64>>,
    /// `collectives[r]` counts collective primitive calls on rank `r`.
    pub collectives: Vec<Vec<(&'static str, u64)>>,
}

impl WorldTrace {
    /// A trace from bare event streams (no wall stamps, no collective
    /// counters) — the hand-built form used by tests and replays.
    pub fn from_ranks(ranks: Vec<Vec<Event>>) -> WorldTrace {
        WorldTrace {
            ranks,
            ..WorldTrace::default()
        }
    }

    /// Number of ranks traced.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// Per-rank aggregate statistics.
    pub fn stats(&self) -> Vec<RankStats> {
        self.ranks
            .iter()
            .map(|evs| {
                let mut s = RankStats::default();
                for ev in evs {
                    match ev {
                        Event::Send { bytes, .. } => {
                            s.sends += 1;
                            s.bytes_sent += bytes;
                        }
                        Event::Recv { bytes, .. } => {
                            s.recvs += 1;
                            s.bytes_recvd += bytes;
                        }
                        Event::Flops(f) => s.flops += f,
                        _ => {}
                    }
                }
                s
            })
            .collect()
    }

    /// Total messages sent across all ranks.
    pub fn total_messages(&self) -> usize {
        self.stats().iter().map(|s| s.sends).sum()
    }

    /// Total bytes sent across all ranks.
    pub fn total_bytes(&self) -> usize {
        self.stats().iter().map(|s| s.bytes_sent).sum()
    }

    /// Total flops recorded across all ranks.
    pub fn total_flops(&self) -> f64 {
        self.stats().iter().map(|s| s.flops).sum()
    }

    /// Flop imbalance across ranks, using the paper's definition:
    /// `(max − average) / average`.
    pub fn flop_imbalance(&self) -> f64 {
        let stats = self.stats();
        if stats.is_empty() {
            return 0.0;
        }
        let total: f64 = stats.iter().map(|s| s.flops).sum();
        let avg = total / stats.len() as f64;
        if avg == 0.0 {
            return 0.0;
        }
        let max = stats.iter().map(|s| s.flops).fold(0.0, f64::max);
        (max - avg) / avg
    }

    /// Match every `Recv` event with its `Send` by `(src, dst, seq)`.
    ///
    /// Pairs are returned grouped by receiving rank, in receive order —
    /// the order a per-rank wait-state scan wants them in. Sends that were
    /// never received (and receives with no recorded send, which a replay
    /// would reject anyway) are simply absent; [`Self::unmatched_messages`]
    /// counts them.
    pub fn message_pairs(&self) -> Vec<MessagePair> {
        let sends = self.send_index();
        let mut pairs = Vec::new();
        for (dst, evs) in self.ranks.iter().enumerate() {
            for (i, ev) in evs.iter().enumerate() {
                if let Event::Recv { from, bytes, seq } = *ev {
                    if let Some(&send_event) = sends.get(&(from, dst, seq)) {
                        pairs.push(MessagePair {
                            src: from,
                            dst,
                            seq,
                            bytes,
                            send_event,
                            recv_event: i,
                        });
                    }
                }
            }
        }
        pairs
    }

    /// `(sends with no matching recv, recvs with no matching send)` — both
    /// zero on a complete trace of a clean run.
    pub fn unmatched_messages(&self) -> (usize, usize) {
        let sends = self.send_index();
        let mut matched = 0usize;
        let mut orphan_recvs = 0usize;
        for (dst, evs) in self.ranks.iter().enumerate() {
            for ev in evs {
                if let Event::Recv { from, seq, .. } = *ev {
                    if sends.contains_key(&(from, dst, seq)) {
                        matched += 1;
                    } else {
                        orphan_recvs += 1;
                    }
                }
            }
        }
        (sends.len() - matched, orphan_recvs)
    }

    /// Index of every `Send` event by `(src, dst, seq)`.
    fn send_index(&self) -> HashMap<(usize, usize, u64), usize> {
        let mut sends = HashMap::new();
        for (src, evs) in self.ranks.iter().enumerate() {
            for (i, ev) in evs.iter().enumerate() {
                if let Event::Send { to, seq, .. } = *ev {
                    sends.insert((src, to, seq), i);
                }
            }
        }
        sends
    }

    /// Check every rank's phase events for balance: each `PhaseEnd` must
    /// close the innermost open `PhaseBegin` of the same name, and every
    /// `PhaseBegin` must eventually be closed. Returns every fault found
    /// (scanning continues past the first so a corrupt trace reports all
    /// its problems at once).
    pub fn validate_phases(&self) -> Result<(), Vec<PhaseFault>> {
        let mut faults = Vec::new();
        for (rank, evs) in self.ranks.iter().enumerate() {
            let mut open: Vec<&'static str> = Vec::new();
            for ev in evs {
                match ev {
                    Event::PhaseBegin(name) => open.push(name),
                    Event::PhaseEnd(name) => match open.pop() {
                        Some(top) if top == *name => {}
                        Some(top) => faults.push(PhaseFault {
                            rank,
                            name,
                            kind: PhaseFaultKind::MismatchedEnd { open: top },
                        }),
                        None => faults.push(PhaseFault {
                            rank,
                            name,
                            kind: PhaseFaultKind::UnmatchedEnd,
                        }),
                    },
                    _ => {}
                }
            }
            for name in open {
                faults.push(PhaseFault {
                    rank,
                    name,
                    kind: PhaseFaultKind::UnclosedBegin,
                });
            }
        }
        if faults.is_empty() {
            Ok(())
        } else {
            Err(faults)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = RankTrace::new(false);
        t.record(Event::Flops(10.0));
        t.record_flops(5.0);
        t.record_collective("barrier");
        assert!(t.events().is_empty());
        assert!(t.take_walls().is_empty());
        assert!(t.take_collectives().is_empty());
    }

    #[test]
    fn flops_merge() {
        let t = RankTrace::new(true);
        t.record_flops(1.0);
        t.record_flops(2.0);
        t.record(Event::PhaseBegin("x"));
        t.record_flops(4.0);
        assert_eq!(
            t.events(),
            vec![Event::Flops(3.0), Event::PhaseBegin("x"), Event::Flops(4.0)]
        );
    }

    #[test]
    fn nonpositive_flops_ignored() {
        let t = RankTrace::new(true);
        t.record_flops(0.0);
        t.record_flops(-3.0);
        assert!(t.events().is_empty());
    }

    #[test]
    fn phase_events_get_wall_stamps() {
        let t = RankTrace::new(true);
        t.record(Event::PhaseBegin("a"));
        t.record_flops(1.0); // not a phase event, not stamped
        t.record(Event::PhaseEnd("a"));
        let walls = t.take_walls();
        assert_eq!(walls.len(), 2);
        assert!(walls[0] <= walls[1]);
    }

    #[test]
    fn collective_counts_accumulate() {
        let t = RankTrace::new(true);
        t.record_collective("barrier");
        t.record_collective("bcast");
        t.record_collective("barrier");
        let mut counts = t.take_collectives();
        counts.sort_unstable();
        assert_eq!(counts, vec![("barrier", 2), ("bcast", 1)]);
    }

    #[test]
    fn stats_aggregation() {
        let wt = WorldTrace::from_ranks(vec![
            vec![
                Event::Send {
                    to: 1,
                    bytes: 80,
                    seq: 0,
                },
                Event::Flops(100.0),
                Event::Recv {
                    from: 1,
                    bytes: 40,
                    seq: 0,
                },
            ],
            vec![
                Event::Recv {
                    from: 0,
                    bytes: 80,
                    seq: 0,
                },
                Event::Send {
                    to: 0,
                    bytes: 40,
                    seq: 0,
                },
                Event::Flops(300.0),
            ],
        ]);
        let s = wt.stats();
        assert_eq!(s[0].sends, 1);
        assert_eq!(s[0].bytes_sent, 80);
        assert_eq!(s[1].bytes_recvd, 80);
        assert_eq!(wt.total_messages(), 2);
        assert_eq!(wt.total_bytes(), 120);
        assert_eq!(wt.total_flops(), 400.0);
        // avg = 200, max = 300 → imbalance 0.5
        assert!((wt.flop_imbalance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_imbalance_zero() {
        assert_eq!(WorldTrace::default().flop_imbalance(), 0.0);
        let wt = WorldTrace::from_ranks(vec![vec![], vec![]]);
        assert_eq!(wt.flop_imbalance(), 0.0);
    }

    #[test]
    fn take_drains() {
        let t = RankTrace::new(true);
        t.record_flops(1.0);
        assert_eq!(t.take().len(), 1);
        assert!(t.events().is_empty());
    }

    #[test]
    fn message_pairs_match_by_src_dst_seq() {
        let wt = WorldTrace::from_ranks(vec![
            vec![
                Event::Send {
                    to: 1,
                    bytes: 8,
                    seq: 0,
                },
                Event::Send {
                    to: 1,
                    bytes: 16,
                    seq: 1,
                },
                Event::Recv {
                    from: 1,
                    bytes: 24,
                    seq: 0,
                },
            ],
            vec![
                Event::Send {
                    to: 0,
                    bytes: 24,
                    seq: 0,
                },
                // Receive out of order relative to the sends.
                Event::Recv {
                    from: 0,
                    bytes: 16,
                    seq: 1,
                },
                Event::Recv {
                    from: 0,
                    bytes: 8,
                    seq: 0,
                },
            ],
        ]);
        let pairs = wt.message_pairs();
        assert_eq!(pairs.len(), 3);
        // Grouped by receiving rank, in receive order.
        assert_eq!(
            pairs[0],
            MessagePair {
                src: 1,
                dst: 0,
                seq: 0,
                bytes: 24,
                send_event: 0,
                recv_event: 2,
            }
        );
        assert_eq!((pairs[1].src, pairs[1].seq, pairs[1].bytes), (0, 1, 16));
        assert_eq!(pairs[1].send_event, 1);
        assert_eq!((pairs[2].src, pairs[2].seq, pairs[2].send_event), (0, 0, 0));
        assert_eq!(wt.unmatched_messages(), (0, 0));
    }

    #[test]
    fn unmatched_messages_counted() {
        let wt = WorldTrace::from_ranks(vec![
            vec![Event::Send {
                to: 1,
                bytes: 8,
                seq: 0,
            }],
            vec![Event::Recv {
                from: 0,
                bytes: 8,
                seq: 7, // no such send
            }],
        ]);
        assert!(wt.message_pairs().is_empty());
        assert_eq!(wt.unmatched_messages(), (1, 1));
    }

    #[test]
    fn validate_accepts_balanced_nesting() {
        let wt = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("outer"),
            Event::PhaseBegin("inner"),
            Event::Flops(1.0),
            Event::PhaseEnd("inner"),
            Event::PhaseEnd("outer"),
        ]]);
        assert!(wt.validate_phases().is_ok());
    }

    #[test]
    fn validate_reports_unmatched_end() {
        let wt = WorldTrace::from_ranks(vec![vec![], vec![Event::PhaseEnd("ghost")]]);
        let faults = wt.validate_phases().unwrap_err();
        assert_eq!(
            faults,
            vec![PhaseFault {
                rank: 1,
                name: "ghost",
                kind: PhaseFaultKind::UnmatchedEnd,
            }]
        );
        assert!(faults[0].to_string().contains("no open phase"));
    }

    #[test]
    fn validate_reports_mismatched_end() {
        let wt = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("a"),
            Event::PhaseBegin("b"),
            Event::PhaseEnd("a"), // closes "a" while "b" is innermost
        ]]);
        let faults = wt.validate_phases().unwrap_err();
        // One mismatched end, and "b" stays open ("a" was popped for it).
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].kind, PhaseFaultKind::MismatchedEnd { open: "b" });
        assert_eq!(faults[1].kind, PhaseFaultKind::UnclosedBegin);
        assert_eq!(faults[1].name, "a");
    }

    #[test]
    fn validate_reports_unclosed_begin() {
        let wt = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("left-open"),
            Event::Flops(1.0),
        ]]);
        let faults = wt.validate_phases().unwrap_err();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, PhaseFaultKind::UnclosedBegin);
        assert_eq!(faults[0].name, "left-open");
    }
}
