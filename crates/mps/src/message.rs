//! Message payloads and packets.
//!
//! The AGCM exchanges three kinds of data: floating-point field sections
//! (halo rows, filter rows, physics columns), integer bookkeeping
//! (row counts, movement plans) and occasional raw bytes (history records).
//! [`Payload`] captures these without forcing a serialization round-trip —
//! an `F64` payload is moved, never copied element-by-element.

/// The body of a message.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// A buffer of 64-bit floats (field data).
    F64(Vec<f64>),
    /// A buffer of 64-bit signed integers (plans, counts, indices).
    I64(Vec<i64>),
    /// Raw bytes (history records, opaque blobs).
    Bytes(Vec<u8>),
    /// An empty message (pure synchronization).
    Empty,
}

impl Payload {
    /// Number of bytes this payload occupies on the wire.
    ///
    /// Used by the trace/cost model: the paper's machines charged per byte
    /// transferred, so the simulator needs wire sizes, not element counts.
    pub fn byte_len(&self) -> usize {
        match self {
            Payload::F64(v) => v.len() * 8,
            Payload::I64(v) => v.len() * 8,
            Payload::Bytes(v) => v.len(),
            Payload::Empty => 0,
        }
    }

    /// Variant name, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::F64(_) => "F64",
            Payload::I64(_) => "I64",
            Payload::Bytes(_) => "Bytes",
            Payload::Empty => "Empty",
        }
    }

    /// Unwrap as a float buffer; panics with a clear message otherwise.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, found {}", other.kind()),
        }
    }

    /// Unwrap as an integer buffer; panics with a clear message otherwise.
    pub fn into_i64(self) -> Vec<i64> {
        match self {
            Payload::I64(v) => v,
            other => panic!("expected I64 payload, found {}", other.kind()),
        }
    }

    /// Unwrap as raw bytes; panics with a clear message otherwise.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            other => panic!("expected Bytes payload, found {}", other.kind()),
        }
    }

    /// Borrow as a float slice if this is an `F64` payload.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Payload::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as an integer slice if this is an `I64` payload.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Payload::I64(v) => Some(v),
            _ => None,
        }
    }
}

/// A delivered message.
///
/// `src` is the rank *within the communicator the receive was posted on*;
/// `seq` is a per-(source → destination) sequence number assigned at send
/// time, which lets the trace replayer match each receive to the exact send
/// that produced it.
#[derive(Debug)]
pub struct Packet {
    /// Source rank in the receiving communicator.
    pub src: usize,
    /// User tag.
    pub tag: u64,
    /// Per-(world source, world destination) send sequence number.
    pub seq: u64,
    /// Message body.
    pub payload: Payload,
}

/// Internal wire format: addressed by world ranks and communicator context.
#[derive(Debug, Clone)]
pub(crate) struct WirePacket {
    pub world_src: usize,
    pub ctx: u64,
    pub tag: u64,
    pub seq: u64,
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_lengths() {
        assert_eq!(Payload::F64(vec![0.0; 10]).byte_len(), 80);
        assert_eq!(Payload::I64(vec![0; 3]).byte_len(), 24);
        assert_eq!(Payload::Bytes(vec![1, 2, 3]).byte_len(), 3);
        assert_eq!(Payload::Empty.byte_len(), 0);
    }

    #[test]
    fn unwrap_roundtrips() {
        assert_eq!(Payload::F64(vec![1.5, 2.5]).into_f64(), vec![1.5, 2.5]);
        assert_eq!(Payload::I64(vec![-4, 9]).into_i64(), vec![-4, 9]);
        assert_eq!(Payload::Bytes(vec![7]).into_bytes(), vec![7]);
    }

    #[test]
    fn borrow_accessors() {
        let p = Payload::F64(vec![3.0]);
        assert_eq!(p.as_f64(), Some(&[3.0][..]));
        assert_eq!(p.as_i64(), None);
        let q = Payload::I64(vec![8]);
        assert_eq!(q.as_i64(), Some(&[8][..]));
        assert_eq!(q.as_f64(), None);
    }

    #[test]
    #[should_panic(expected = "expected F64 payload")]
    fn wrong_unwrap_panics() {
        Payload::I64(vec![1]).into_f64();
    }

    #[test]
    fn kinds() {
        assert_eq!(Payload::Empty.kind(), "Empty");
        assert_eq!(Payload::Bytes(vec![]).kind(), "Bytes");
    }
}
