//! Regression test for `runtime::silence_controlled_unwinds`.
//!
//! The silencer is a process-global panic hook that must swallow the
//! runtime's controlled unwind payloads (planned kills, comm aborts,
//! cancellation) but forward every *genuine* panic to whatever hook was
//! installed before it. That forwarding was previously untested: a bug
//! that dropped genuine panics would silently eat assertion failures from
//! every fault-aware run in the process.
//!
//! The whole scenario lives in ONE `#[test]` in its own integration-test
//! binary: the silencer captures the previous hook once (`Once`), so the
//! recording hook must be installed first, and no other test in this
//! process may race the installation order.

use agcm_mps::runtime::{run_with_faults, run_world, silence_controlled_unwinds, WorldOptions};
use agcm_mps::{CancelToken, FailureKind, FaultPlan};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

#[test]
fn genuine_panics_reach_previous_hook_controlled_unwinds_do_not() {
    // 1. Install a recording hook, then the silencer on top of it.
    let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&seen);
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string payload>".to_string());
        recorder.lock().unwrap().push(msg);
    }));
    silence_controlled_unwinds();

    // 2. A planned kill and the abort it cascades to are controlled
    //    unwinds: the previous hook must stay silent.
    let plan = FaultPlan::seeded(0).with_kill(1, 0);
    let out = run_with_faults(2, Some(plan), |c| {
        if c.rank() == 1 {
            c.begin_step(0);
        }
        if c.rank() == 0 {
            c.recv(1, 7);
        }
    });
    assert!(!out.all_ok());
    assert!(
        seen.lock().unwrap().is_empty(),
        "kill/abort unwinds must not reach the previous hook: {:?}",
        seen.lock().unwrap()
    );

    // 3. Cancellation is also a controlled unwind.
    let token = CancelToken::new();
    token.cancel();
    let out = run_world(
        2,
        WorldOptions {
            plan: None,
            cancel: Some(token),
            spans: None,
        },
        |c| c.begin_step(0),
    );
    assert_eq!(out.results[0], Err(FailureKind::Cancelled));
    assert!(
        seen.lock().unwrap().is_empty(),
        "cancellation unwinds must not reach the previous hook: {:?}",
        seen.lock().unwrap()
    );

    // 4. A genuine panic in a rank body (a model bug) must BOTH reach the
    //    previous hook at throw time and propagate out of the launcher.
    let propagated = catch_unwind(AssertUnwindSafe(|| {
        run_with_faults(2, None, |c| {
            if c.rank() == 0 {
                panic!("genuine model bug");
            }
        });
    }));
    assert!(propagated.is_err(), "genuine panic must propagate");
    let recorded = seen.lock().unwrap();
    assert_eq!(
        recorded.as_slice(),
        &["genuine model bug".to_string()],
        "genuine panic must reach the previous hook exactly once"
    );
}
