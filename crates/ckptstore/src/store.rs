//! The content-addressed chunk store and its prefix index.
//!
//! ## On-disk layout
//!
//! ```text
//! root/
//!   chunks/<hash:016x>-<len>.chk   content-addressed chunk files
//!   index                          checksummed metadata index
//! ```
//!
//! Every encoded `ModelCheckpoint` record is split into fixed-size
//! chunks addressed by `(fnv1a(chunk), len)`. A *manifest* per
//! `(lineage, step, rank)` records the chunk list plus the whole-record
//! length and digest; a *commit* entry per `(lineage, step)` marks a
//! step durable once every rank's manifest is in place — the same
//! write-all-shards-then-publish protocol as the resilience
//! coordinator, with the `COMMIT` file replaced by an index entry.
//!
//! The index holds manifests and commits only, one checksummed line
//! each (`<fnv1a:016x> <payload>`, the server journal's line
//! discipline), and is rewritten atomically (tmp, fsync, rename) on
//! every mutation. Chunk **refcounts are derived**, not stored: on open
//! they are recomputed from the manifests, so the index can never
//! disagree with itself about liveness. Reopening reconciles both
//! directions — a chunk file no chunk list references is an orphan and
//! is swept; a manifest referencing a missing chunk file is dropped
//! (with the commits that depended on it), because a checkpoint that
//! cannot be reassembled must not be resumable.
//!
//! ## Leases and GC
//!
//! Jobs hold *leases* (`acquire`/`release`) on their lineage while they
//! run. [`Store::gc`] reclaims manifests and commits of unleased
//! lineages, decrementing refcounts and unlinking chunks that reach
//! zero. A leased lineage is never touched, so interleaving GC with
//! live writers is safe by construction; released lineages stay cached
//! until a GC pass actually runs, which is what makes resubmit-after-
//! completion reuse work. Leases are deliberately *not* persisted: they
//! describe live jobs of a live process, and a restarted server
//! re-acquires them for journal-recovered jobs before sweeping.

use agcm_resilience::checkpoint::CheckpointError;
use agcm_resilience::coordinator::StoreError;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Default chunk size: large enough that a smoke-grid shard is a few
/// chunks, small enough that shards sharing a prefix share chunks.
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

/// FNV-1a over a byte slice (the repo's standing checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn io_err(ctx: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{ctx} {}: {e}", path.display()))
}

/// Content address of one chunk: hash plus length (the length guards
/// the 64-bit hash against accidental collisions between different-
/// sized chunks; the whole-record digest guards the rest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct ChunkKey {
    hash: u64,
    len: u32,
}

impl ChunkKey {
    fn file_name(&self) -> String {
        format!("{:016x}-{}.chk", self.hash, self.len)
    }

    fn parse_file_name(name: &str) -> Option<ChunkKey> {
        let rest = name.strip_suffix(".chk")?;
        let (hash, len) = rest.split_once('-')?;
        Some(ChunkKey {
            hash: u64::from_str_radix(hash, 16).ok()?,
            len: len.parse().ok()?,
        })
    }
}

/// One rank's shard of one (lineage, step): how to reassemble it.
#[derive(Debug, Clone)]
struct Manifest {
    world: u32,
    len: u64,
    digest: u64,
    chunks: Vec<ChunkKey>,
}

#[derive(Debug, Default)]
struct Counters {
    bytes_ingested: u64,
    bytes_written: u64,
    bytes_deduped: u64,
    shard_dedup_hits: u64,
    prefix_hits: u64,
    prefix_misses: u64,
    gc_runs: u64,
    chunks_reclaimed: u64,
    bytes_reclaimed: u64,
    orphans_swept: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// (lineage, step, rank) → manifest.
    manifests: BTreeMap<(u64, u64, u32), Manifest>,
    /// lineage → committed steps.
    commits: BTreeMap<u64, BTreeSet<u64>>,
    /// Derived chunk refcounts (number of manifest references).
    refs: HashMap<ChunkKey, u64>,
    /// lineage → job ids holding a lease.
    leases: BTreeMap<u64, BTreeSet<u64>>,
    counters: Counters,
}

/// Session counters and live totals, for `/v1/metrics` and the smoke
/// scenario's machine checks. Counters are per-process (the index
/// persists state, not statistics).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreStats {
    /// Unique chunks currently stored.
    pub chunks: u64,
    /// Bytes of unique chunk content currently stored.
    pub live_bytes: u64,
    /// Shard manifests currently indexed.
    pub manifests: u64,
    /// Distinct lineages with any indexed state.
    pub lineages: u64,
    /// Lineages currently holding at least one lease.
    pub leased_lineages: u64,
    /// Logical shard bytes offered to the store this session.
    pub bytes_ingested: u64,
    /// Bytes actually written as new chunks this session.
    pub bytes_written: u64,
    /// Bytes satisfied by an existing chunk this session.
    pub bytes_deduped: u64,
    /// Whole shards skipped because an identical manifest existed.
    pub shard_dedup_hits: u64,
    /// `longest_prefix` queries that found a committed step.
    pub prefix_hits: u64,
    /// `longest_prefix` queries that found nothing.
    pub prefix_misses: u64,
    /// GC passes run this session.
    pub gc_runs: u64,
    /// Chunks reclaimed by GC this session.
    pub chunks_reclaimed: u64,
    /// Bytes reclaimed by GC this session.
    pub bytes_reclaimed: u64,
    /// Orphan chunk files swept at open.
    pub orphans_swept: u64,
}

/// What one [`Store::gc`] pass reclaimed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Lineages whose state was reclaimed (unleased at the time).
    pub lineages: Vec<u64>,
    /// Chunks whose refcount reached zero and were unlinked.
    pub chunks_reclaimed: u64,
    /// Bytes those chunks held.
    pub bytes_reclaimed: u64,
}

/// The shared, content-addressed checkpoint store. Thread-safe: one
/// instance (behind an `Arc`) serves every job in the process.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    chunk_size: usize,
    inner: Mutex<Inner>,
}

impl Store {
    /// Open (or create) a store rooted at `root`: load the index,
    /// recompute refcounts, sweep orphaned chunk files, and drop
    /// manifests whose chunks are missing.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        Store::open_with_chunk_size(root, DEFAULT_CHUNK_SIZE)
    }

    /// [`Store::open`] with an explicit chunk size (tests use small
    /// chunks to exercise multi-chunk shards on tiny grids).
    pub fn open_with_chunk_size(
        root: impl Into<PathBuf>,
        chunk_size: usize,
    ) -> Result<Store, StoreError> {
        let root = root.into();
        let chunks_dir = root.join("chunks");
        fs::create_dir_all(&chunks_dir).map_err(|e| io_err("create", &chunks_dir, e))?;
        let mut inner = load_index(&root.join("index"));
        let swept = reconcile(&root, &mut inner);
        inner.counters.orphans_swept = swept;
        let store = Store {
            root,
            chunk_size: chunk_size.max(512),
            inner: Mutex::new(inner),
        };
        {
            let inner = store.inner.lock().unwrap();
            store.persist(&inner)?;
        }
        Ok(store)
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn chunk_path(&self, key: &ChunkKey) -> PathBuf {
        self.root.join("chunks").join(key.file_name())
    }

    /// Store one rank's encoded shard under `(lineage, step, rank)`.
    /// Identical re-puts (same digest) are dedup hits and write
    /// nothing; a different record for an existing slot is refused —
    /// lineage is supposed to determine the trajectory, so a digest
    /// conflict means the lineage hash is lying and resuming from
    /// either record would be unsound.
    pub fn put_shard(
        &self,
        lineage: u64,
        step: u64,
        rank: u32,
        world: u32,
        record: &[u8],
    ) -> Result<(), StoreError> {
        let digest = fnv1a(record);
        let mut inner = self.inner.lock().unwrap();
        inner.counters.bytes_ingested += record.len() as u64;
        if let Some(m) = inner.manifests.get(&(lineage, step, rank)) {
            if m.digest == digest && m.len == record.len() as u64 {
                inner.counters.shard_dedup_hits += 1;
                inner.counters.bytes_deduped += record.len() as u64;
                return Ok(());
            }
            return Err(StoreError::Io(format!(
                "lineage {lineage:016x} step {step} rank {rank}: conflicting shard content \
                 (stored digest {:016x}, offered {digest:016x})",
                m.digest
            )));
        }

        // Write new chunks before touching the maps, so an I/O failure
        // leaves the index unchanged; creations are remembered for
        // cleanup on a later failure in the same call.
        let mut keys = Vec::with_capacity(record.len() / self.chunk_size + 1);
        let mut created: Vec<ChunkKey> = Vec::new();
        for chunk in record.chunks(self.chunk_size) {
            let key = ChunkKey {
                hash: fnv1a(chunk),
                len: chunk.len() as u32,
            };
            if inner.refs.contains_key(&key) || created.contains(&key) {
                inner.counters.bytes_deduped += chunk.len() as u64;
            } else {
                if let Err(e) = self.write_chunk(&key, chunk) {
                    for k in &created {
                        let _ = fs::remove_file(self.chunk_path(k));
                    }
                    return Err(e);
                }
                created.push(key);
                inner.counters.bytes_written += chunk.len() as u64;
            }
            keys.push(key);
        }
        for key in &keys {
            *inner.refs.entry(*key).or_insert(0) += 1;
        }
        inner.manifests.insert(
            (lineage, step, rank),
            Manifest {
                world,
                len: record.len() as u64,
                digest,
                chunks: keys.clone(),
            },
        );
        if let Err(e) = self.persist(&inner) {
            // Roll back so memory and disk agree about what exists.
            inner.manifests.remove(&(lineage, step, rank));
            for key in &keys {
                let emptied = match inner.refs.get_mut(key) {
                    Some(r) => {
                        *r -= 1;
                        *r == 0
                    }
                    None => false,
                };
                if emptied {
                    inner.refs.remove(key);
                }
            }
            for k in &created {
                let _ = fs::remove_file(self.chunk_path(k));
            }
            return Err(e);
        }
        Ok(())
    }

    fn write_chunk(&self, key: &ChunkKey, chunk: &[u8]) -> Result<(), StoreError> {
        let path = self.chunk_path(key);
        if path.exists() {
            return Ok(());
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            f.write_all(chunk).map_err(|e| io_err("write", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| io_err("rename", &tmp, e))
    }

    /// Publish `(lineage, step)` as committed: every rank `0..world`
    /// must have a manifest recording that world size.
    pub fn commit(&self, lineage: u64, step: u64, world: u32) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().unwrap();
        let present = (0..world)
            .filter(|r| {
                inner
                    .manifests
                    .get(&(lineage, step, *r))
                    .is_some_and(|m| m.world == world)
            })
            .count();
        if present != world as usize {
            return Err(StoreError::IncompleteCheckpoint {
                step,
                present,
                required: world as usize,
            });
        }
        let fresh = inner.commits.entry(lineage).or_default().insert(step);
        if fresh {
            self.persist(&inner)?;
        }
        Ok(())
    }

    /// Committed steps of `lineage`, ascending.
    pub fn committed_steps(&self, lineage: u64) -> Vec<u64> {
        let inner = self.inner.lock().unwrap();
        inner
            .commits
            .get(&lineage)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The longest committed prefix of `lineage` usable by a job whose
    /// horizon is `max_step`: the greatest committed step ≤ `max_step`.
    /// This is the dispatch-time reuse query; it keeps hit/miss
    /// counters.
    pub fn longest_prefix(&self, lineage: u64, max_step: u64) -> Option<u64> {
        let mut inner = self.inner.lock().unwrap();
        let hit = inner
            .commits
            .get(&lineage)
            .and_then(|s| s.range(..=max_step).next_back().copied());
        if hit.is_some() {
            inner.counters.prefix_hits += 1;
        } else {
            inner.counters.prefix_misses += 1;
        }
        hit
    }

    /// Manifests present for `(lineage, step)`.
    pub fn shard_count(&self, lineage: u64, step: u64) -> usize {
        let inner = self.inner.lock().unwrap();
        inner
            .manifests
            .range((lineage, step, 0)..=(lineage, step, u32::MAX))
            .count()
    }

    /// Reassemble the encoded shard for `(lineage, step, rank)`,
    /// verifying length and whole-record digest.
    pub fn get_shard(&self, lineage: u64, step: u64, rank: u32) -> Result<Vec<u8>, StoreError> {
        let inner = self.inner.lock().unwrap();
        let m = inner.manifests.get(&(lineage, step, rank)).ok_or_else(|| {
            StoreError::Io(format!(
                "no shard for lineage {lineage:016x} step {step} rank {rank}"
            ))
        })?;
        let mut record = Vec::with_capacity(m.len as usize);
        for key in &m.chunks {
            let path = self.chunk_path(key);
            let chunk = fs::read(&path).map_err(|e| io_err("read", &path, e))?;
            if chunk.len() != key.len as usize {
                return Err(StoreError::Io(format!(
                    "chunk {} is {} bytes, expected {}",
                    path.display(),
                    chunk.len(),
                    key.len
                )));
            }
            record.extend_from_slice(&chunk);
        }
        if record.len() as u64 != m.len {
            return Err(StoreError::Io(format!(
                "reassembled shard is {} bytes, manifest says {}",
                record.len(),
                m.len
            )));
        }
        let computed = fnv1a(&record);
        if computed != m.digest {
            return Err(StoreError::Format(CheckpointError::ChecksumMismatch {
                stored: m.digest,
                computed,
            }));
        }
        Ok(record)
    }

    /// Take a lease on `lineage` for `job`. Idempotent.
    pub fn acquire(&self, lineage: u64, job: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.leases.entry(lineage).or_default().insert(job);
    }

    /// Release `job`'s lease on `lineage`. Idempotent; the data stays
    /// cached until a [`Store::gc`] pass actually runs.
    pub fn release(&self, lineage: u64, job: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(jobs) = inner.leases.get_mut(&lineage) {
            jobs.remove(&job);
            if jobs.is_empty() {
                inner.leases.remove(&lineage);
            }
        }
    }

    /// Reclaim every unleased lineage: drop its manifests and commits,
    /// decrement chunk refcounts, unlink chunks that reach zero. Leased
    /// lineages — including chunks they share with reclaimed ones — are
    /// untouched.
    pub fn gc(&self) -> Result<GcReport, StoreError> {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.gc_runs += 1;
        let lineages: Vec<u64> = inner
            .manifests
            .keys()
            .map(|(l, _, _)| *l)
            .chain(inner.commits.keys().copied())
            .filter(|l| !inner.leases.contains_key(l))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        if lineages.is_empty() {
            return Ok(GcReport::default());
        }
        let mut report = GcReport {
            lineages: lineages.clone(),
            ..GcReport::default()
        };
        for lineage in &lineages {
            inner.commits.remove(lineage);
            let keys: Vec<(u64, u64, u32)> = inner
                .manifests
                .range((*lineage, 0, 0)..=(*lineage, u64::MAX, u32::MAX))
                .map(|(k, _)| *k)
                .collect();
            for key in keys {
                let m = inner.manifests.remove(&key).expect("key just enumerated");
                for ck in &m.chunks {
                    let emptied = match inner.refs.get_mut(ck) {
                        Some(r) => {
                            *r -= 1;
                            *r == 0
                        }
                        None => false,
                    };
                    if emptied {
                        inner.refs.remove(ck);
                        let _ = fs::remove_file(self.chunk_path(ck));
                        report.chunks_reclaimed += 1;
                        report.bytes_reclaimed += ck.len as u64;
                    }
                }
            }
        }
        inner.counters.chunks_reclaimed += report.chunks_reclaimed;
        inner.counters.bytes_reclaimed += report.bytes_reclaimed;
        self.persist(&inner)?;
        Ok(report)
    }

    /// Current stats snapshot.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().unwrap();
        let lineages: BTreeSet<u64> = inner
            .manifests
            .keys()
            .map(|(l, _, _)| *l)
            .chain(inner.commits.keys().copied())
            .collect();
        StoreStats {
            chunks: inner.refs.len() as u64,
            live_bytes: inner.refs.keys().map(|k| k.len as u64).sum(),
            manifests: inner.manifests.len() as u64,
            lineages: lineages.len() as u64,
            leased_lineages: inner.leases.len() as u64,
            bytes_ingested: inner.counters.bytes_ingested,
            bytes_written: inner.counters.bytes_written,
            bytes_deduped: inner.counters.bytes_deduped,
            shard_dedup_hits: inner.counters.shard_dedup_hits,
            prefix_hits: inner.counters.prefix_hits,
            prefix_misses: inner.counters.prefix_misses,
            gc_runs: inner.counters.gc_runs,
            chunks_reclaimed: inner.counters.chunks_reclaimed,
            bytes_reclaimed: inner.counters.bytes_reclaimed,
            orphans_swept: inner.counters.orphans_swept,
        }
    }

    /// Serialize manifests and commits to the checksummed index and
    /// publish it atomically.
    fn persist(&self, inner: &Inner) -> Result<(), StoreError> {
        let mut out = String::new();
        for ((lineage, step, rank), m) in &inner.manifests {
            let chunks: Vec<String> = m
                .chunks
                .iter()
                .map(|c| format!("{:016x}:{}", c.hash, c.len))
                .collect();
            let payload = format!(
                "manifest {lineage:016x} {step} {rank} {} {} {:016x} {}",
                m.world,
                m.len,
                m.digest,
                chunks.join(",")
            );
            out.push_str(&format!("{:016x} {payload}\n", fnv1a(payload.as_bytes())));
        }
        for (lineage, steps) in &inner.commits {
            for step in steps {
                let payload = format!("commit {lineage:016x} {step}");
                out.push_str(&format!("{:016x} {payload}\n", fnv1a(payload.as_bytes())));
            }
        }
        let path = self.root.join("index");
        let tmp = self.root.join("index.tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            f.write_all(out.as_bytes())
                .map_err(|e| io_err("write", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| io_err("rename", &tmp, e))
    }
}

/// Parse the index; checksum-mismatched or malformed lines are dropped
/// (reconciliation then restores consistency).
fn load_index(path: &Path) -> Inner {
    let mut inner = Inner::default();
    let Ok(text) = fs::read_to_string(path) else {
        return inner;
    };
    for line in text.lines() {
        let Some((sum, payload)) = line.split_once(' ') else {
            continue;
        };
        let Ok(stored) = u64::from_str_radix(sum, 16) else {
            continue;
        };
        if stored != fnv1a(payload.as_bytes()) {
            continue;
        }
        let fields: Vec<&str> = payload.split(' ').collect();
        match fields.as_slice() {
            ["manifest", lineage, step, rank, world, len, digest, chunks] => {
                let parsed = (|| {
                    let lineage = u64::from_str_radix(lineage, 16).ok()?;
                    let step: u64 = step.parse().ok()?;
                    let rank: u32 = rank.parse().ok()?;
                    let world: u32 = world.parse().ok()?;
                    let len: u64 = len.parse().ok()?;
                    let digest = u64::from_str_radix(digest, 16).ok()?;
                    let chunks = chunks
                        .split(',')
                        .map(|c| {
                            let (hash, len) = c.split_once(':')?;
                            Some(ChunkKey {
                                hash: u64::from_str_radix(hash, 16).ok()?,
                                len: len.parse().ok()?,
                            })
                        })
                        .collect::<Option<Vec<_>>>()?;
                    Some((
                        (lineage, step, rank),
                        Manifest {
                            world,
                            len,
                            digest,
                            chunks,
                        },
                    ))
                })();
                if let Some((key, m)) = parsed {
                    inner.manifests.insert(key, m);
                }
            }
            ["commit", lineage, step] => {
                if let (Ok(lineage), Ok(step)) =
                    (u64::from_str_radix(lineage, 16), step.parse::<u64>())
                {
                    inner.commits.entry(lineage).or_default().insert(step);
                }
            }
            _ => {}
        }
    }
    inner
}

/// Recompute refcounts from manifests, drop manifests whose chunk files
/// are missing (and the commits that relied on them), and sweep chunk
/// files nothing references. Returns the orphan count.
fn reconcile(root: &Path, inner: &mut Inner) -> u64 {
    let chunks_dir = root.join("chunks");
    let mut on_disk: BTreeSet<ChunkKey> = BTreeSet::new();
    let mut strays: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(&chunks_dir) {
        for e in entries.flatten() {
            let name = e.file_name();
            match ChunkKey::parse_file_name(&name.to_string_lossy()) {
                Some(key) => {
                    on_disk.insert(key);
                }
                // Unparseable names include interrupted `.tmp` writes.
                None => strays.push(e.path()),
            }
        }
    }

    // A manifest is loadable only if every chunk file exists; a broken
    // manifest un-commits its step (resume must never select it).
    let broken: Vec<(u64, u64, u32)> = inner
        .manifests
        .iter()
        .filter(|(_, m)| m.chunks.iter().any(|c| !on_disk.contains(c)))
        .map(|(k, _)| *k)
        .collect();
    for (lineage, step, rank) in broken {
        inner.manifests.remove(&(lineage, step, rank));
        if let Some(steps) = inner.commits.get_mut(&lineage) {
            steps.remove(&step);
            if steps.is_empty() {
                inner.commits.remove(&lineage);
            }
        }
    }
    // A commit whose manifests disappeared entirely is equally dead.
    let manifests = &inner.manifests;
    inner.commits.retain(|lineage, steps| {
        steps.retain(|step| {
            manifests
                .range((*lineage, *step, 0)..=(*lineage, *step, u32::MAX))
                .next()
                .is_some()
        });
        !steps.is_empty()
    });

    inner.refs.clear();
    for m in inner.manifests.values() {
        for c in &m.chunks {
            *inner.refs.entry(*c).or_insert(0) += 1;
        }
    }

    let mut swept = strays.len() as u64;
    for path in strays {
        let _ = fs::remove_file(path);
    }
    for key in on_disk {
        if !inner.refs.contains_key(&key) {
            let _ = fs::remove_file(chunks_dir.join(key.file_name()));
            swept += 1;
        }
    }
    swept
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("agcm-ckptstore-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Non-repeating pseudo-random content (a periodic pattern would
    /// dedupe chunks *within* one record and skew the counters).
    fn record(step: u64, rank: u32, salt: u8, len: usize) -> Vec<u8> {
        let mut x = (step << 32) ^ ((rank as u64) << 16) ^ (salt as u64) ^ 0x9E37_79B9;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn put_get_roundtrip_multichunk() {
        let store = Store::open_with_chunk_size(scratch("roundtrip"), 512).unwrap();
        let rec = record(1, 0, 7, 2000);
        store.put_shard(1, 1, 0, 1, &rec).unwrap();
        assert_eq!(store.get_shard(1, 1, 0).unwrap(), rec);
        let stats = store.stats();
        assert_eq!(stats.chunks, 4, "2000 bytes at 512-byte chunks");
        assert_eq!(stats.bytes_written, 2000);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn identical_shards_dedupe_across_lineages() {
        let store = Store::open_with_chunk_size(scratch("dedup"), 512).unwrap();
        let rec = record(2, 0, 3, 1500);
        store.put_shard(0xA, 2, 0, 1, &rec).unwrap();
        store.put_shard(0xB, 2, 0, 1, &rec).unwrap();
        let stats = store.stats();
        assert_eq!(stats.bytes_written, 1500, "second copy writes nothing");
        assert_eq!(stats.bytes_deduped, 1500);
        assert_eq!(stats.manifests, 2);
        // Same slot re-put is a whole-shard dedup hit.
        store.put_shard(0xA, 2, 0, 1, &rec).unwrap();
        assert_eq!(store.stats().shard_dedup_hits, 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn conflicting_content_for_a_slot_is_refused() {
        let store = Store::open(scratch("conflict")).unwrap();
        store.put_shard(5, 1, 0, 1, &record(1, 0, 1, 100)).unwrap();
        let err = store
            .put_shard(5, 1, 0, 1, &record(1, 0, 2, 100))
            .unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn commit_requires_every_rank_at_that_world() {
        let store = Store::open(scratch("commit")).unwrap();
        store.put_shard(9, 4, 0, 2, &record(4, 0, 0, 64)).unwrap();
        assert_eq!(
            store.commit(9, 4, 2),
            Err(StoreError::IncompleteCheckpoint {
                step: 4,
                present: 1,
                required: 2
            })
        );
        store.put_shard(9, 4, 1, 2, &record(4, 1, 0, 64)).unwrap();
        store.commit(9, 4, 2).unwrap();
        assert_eq!(store.committed_steps(9), vec![4]);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn longest_prefix_clamps_to_the_horizon() {
        let store = Store::open(scratch("prefix")).unwrap();
        for step in [10u64, 20, 40] {
            store
                .put_shard(7, step, 0, 1, &record(step, 0, 0, 64))
                .unwrap();
            store.commit(7, step, 1).unwrap();
        }
        assert_eq!(store.longest_prefix(7, 100), Some(40));
        assert_eq!(store.longest_prefix(7, 25), Some(20));
        assert_eq!(store.longest_prefix(7, 9), None);
        assert_eq!(store.longest_prefix(8, 100), None, "unknown lineage");
        let stats = store.stats();
        assert_eq!((stats.prefix_hits, stats.prefix_misses), (2, 2));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_spares_leased_lineages_and_shared_chunks() {
        let store = Store::open_with_chunk_size(scratch("gc"), 512).unwrap();
        let shared = record(1, 0, 9, 600);
        store.put_shard(0xAAA, 1, 0, 1, &shared).unwrap();
        store.commit(0xAAA, 1, 1).unwrap();
        store.put_shard(0xBBB, 1, 0, 1, &shared).unwrap();
        store.commit(0xBBB, 1, 1).unwrap();
        store
            .put_shard(0xBBB, 2, 0, 1, &record(2, 0, 9, 600))
            .unwrap();
        store.acquire(0xBBB, 42);

        let report = store.gc().unwrap();
        assert_eq!(report.lineages, vec![0xAAA]);
        assert_eq!(
            report.chunks_reclaimed, 0,
            "every chunk of AAA is shared with leased BBB"
        );
        assert_eq!(store.get_shard(0xBBB, 1, 0).unwrap(), shared);
        assert!(store.get_shard(0xAAA, 1, 0).is_err(), "AAA reclaimed");

        store.release(0xBBB, 42);
        let report = store.gc().unwrap();
        assert_eq!(report.lineages, vec![0xBBB]);
        assert!(report.chunks_reclaimed > 0);
        let stats = store.stats();
        assert_eq!((stats.chunks, stats.live_bytes, stats.manifests), (0, 0, 0));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn reopen_restores_index_and_sweeps_orphans() {
        let root = scratch("reopen");
        let rec = record(3, 0, 5, 900);
        {
            let store = Store::open_with_chunk_size(&root, 512).unwrap();
            store.put_shard(0xC, 3, 0, 1, &rec).unwrap();
            store.commit(0xC, 3, 1).unwrap();
        }
        // An orphan chunk (valid name, referenced by nothing) and an
        // interrupted tmp write, both swept at open.
        fs::write(root.join("chunks/00000000deadbeef-64.chk"), [0u8; 64]).unwrap();
        fs::write(root.join("chunks/00000000deadbeef-64.tmp"), [0u8; 64]).unwrap();
        let store = Store::open_with_chunk_size(&root, 512).unwrap();
        assert_eq!(store.stats().orphans_swept, 2);
        assert_eq!(store.get_shard(0xC, 3, 0).unwrap(), rec);
        assert_eq!(store.committed_steps(0xC), vec![3]);
        assert!(!root.join("chunks/00000000deadbeef-64.chk").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_chunk_file_uncommits_the_step_on_reopen() {
        let root = scratch("missing-chunk");
        {
            let store = Store::open_with_chunk_size(&root, 512).unwrap();
            store
                .put_shard(0xD, 2, 0, 1, &record(2, 0, 1, 900))
                .unwrap();
            store.commit(0xD, 2, 1).unwrap();
        }
        // Delete one chunk file behind the store's back.
        let victim = fs::read_dir(root.join("chunks"))
            .unwrap()
            .flatten()
            .next()
            .unwrap()
            .path();
        fs::remove_file(victim).unwrap();
        let store = Store::open_with_chunk_size(&root, 512).unwrap();
        assert!(store.committed_steps(0xD).is_empty(), "step un-committed");
        assert!(store.get_shard(0xD, 2, 0).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_index_line_is_dropped_not_fatal() {
        let root = scratch("corrupt-index");
        {
            let store = Store::open(&root).unwrap();
            store.put_shard(0xE, 1, 0, 1, &record(1, 0, 0, 64)).unwrap();
            store.commit(0xE, 1, 1).unwrap();
        }
        let index = root.join("index");
        let mut text = fs::read_to_string(&index).unwrap();
        text.push_str("0000000000000000 commit 000000000000000f 9\n");
        fs::write(&index, text).unwrap();
        let store = Store::open(&root).unwrap();
        assert!(
            store.committed_steps(0xF).is_empty(),
            "bad checksum dropped"
        );
        assert_eq!(store.committed_steps(0xE), vec![1]);
        let _ = fs::remove_dir_all(&root);
    }
}
