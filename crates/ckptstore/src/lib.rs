//! # agcm-ckptstore — content-addressed fleet-wide checkpoint store
//!
//! Every ensemble job used to checkpoint into a private directory and
//! recompute from step 0. At serving scale the dominant saving is not a
//! faster kernel but *reuse*: the fleet's workload is full of identical
//! retries and near-duplicate scenarios whose trajectories share a
//! prefix, and the paper's checkpoint/restart discipline (reproduced in
//! `agcm-resilience`) makes model state bit-identical and therefore
//! safe to key on. This crate turns those checkpoints into a shared,
//! deduplicated store:
//!
//! * [`store::Store`] — chunks each encoded `ModelCheckpoint` record
//!   into FNV-1a-addressed content chunks, refcounts them across jobs,
//!   and persists a checksummed metadata index with the same
//!   tmp-fsync-rename commit discipline as the resilience coordinator
//!   and the server journal;
//! * the **prefix index** — per config-lineage commit sets, so a job
//!   whose `AgcmConfig` lineage matches an earlier run resumes from the
//!   longest committed step at or below its own horizon instead of
//!   step 0 ([`store::Store::longest_prefix`]);
//! * **leases + GC** — live jobs hold leases on their lineage;
//!   [`store::Store::gc`] reclaims only unleased lineages, decrementing
//!   chunk refcounts and deleting chunks that reach zero, so terminal
//!   cleanup can never drop a chunk another job still references;
//! * [`backend::JobStoreBackend`] — the
//!   [`agcm_resilience::ShardBackend`] adapter that routes one job's
//!   shards into the shared store, clamping visible commits to the
//!   job's own horizon (the clamp *is* the longest-matching-prefix
//!   rule).
//!
//! The crate is std-only and speaks encoded checkpoint records, never
//! model types: its only upstream dependency is the resilience crate's
//! trait surface and error type.

pub mod backend;
pub mod store;

pub use backend::JobStoreBackend;
pub use store::{GcReport, Store, StoreStats};
