//! The [`ShardBackend`] adapter: one job's window onto the shared store.
//!
//! A `JobStoreBackend` binds a job's config lineage and horizon to the
//! fleet store. Shards route to `(lineage, step, rank)` slots; commits
//! publish into the lineage's prefix index. The crucial piece is
//! `committed_steps`: it reports commits *clamped to the job's own
//! horizon*, so when the recovery loop asks "what is the latest
//! committed step?" it receives the longest committed prefix another
//! job with the same lineage already paid for — never a step past this
//! job's end. Resuming exactly at the horizon means zero recomputed
//! steps; resuming below it recomputes only the tail.

use crate::store::Store;
use agcm_resilience::coordinator::{ShardBackend, StoreError};
use std::sync::Arc;

/// One job's view of the shared [`Store`], for wiring into
/// `CheckpointStore::with_backend`.
pub struct JobStoreBackend {
    store: Arc<Store>,
    lineage: u64,
    horizon: u64,
}

impl JobStoreBackend {
    /// A backend for a job whose config lineage is `lineage` and whose
    /// run ends at step `horizon` (`cfg.steps`).
    pub fn new(store: Arc<Store>, lineage: u64, horizon: u64) -> JobStoreBackend {
        JobStoreBackend {
            store,
            lineage,
            horizon,
        }
    }

    /// The lineage this backend reads and writes.
    pub fn lineage(&self) -> u64 {
        self.lineage
    }
}

impl ShardBackend for JobStoreBackend {
    fn put_shard(&self, step: u64, rank: u32, world: u32, record: &[u8]) -> Result<(), StoreError> {
        self.store
            .put_shard(self.lineage, step, rank, world, record)
    }

    fn commit(&self, step: u64, world: u32) -> Result<(), StoreError> {
        self.store.commit(self.lineage, step, world)
    }

    fn committed_steps(&self) -> Vec<u64> {
        self.store
            .committed_steps(self.lineage)
            .into_iter()
            .filter(|s| *s <= self.horizon)
            .collect()
    }

    fn get_shard(&self, step: u64, rank: u32) -> Result<Vec<u8>, StoreError> {
        self.store.get_shard(self.lineage, step, rank)
    }

    fn shard_count(&self, step: u64) -> usize {
        self.store.shard_count(self.lineage, step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "agcm-ckptstore-backend-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn horizon_clamps_visible_commits() {
        let store = Arc::new(Store::open(scratch("clamp")).unwrap());
        let writer = JobStoreBackend::new(store.clone(), 0x11, 40);
        for step in [10u64, 20, 40] {
            writer.put_shard(step, 0, 1, &[step as u8; 64]).unwrap();
            writer.commit(step, 1).unwrap();
        }
        // A shorter-horizon job with the same lineage sees only the
        // prefix it can use; the resume point is its own horizon when a
        // commit lands exactly there.
        let short = JobStoreBackend::new(store.clone(), 0x11, 20);
        assert_eq!(short.committed_steps(), vec![10, 20]);
        let mid = JobStoreBackend::new(store.clone(), 0x11, 25);
        assert_eq!(mid.committed_steps(), vec![10, 20]);
        let long = JobStoreBackend::new(store.clone(), 0x11, 100);
        assert_eq!(long.committed_steps(), vec![10, 20, 40]);
        // A different lineage sees nothing.
        let other = JobStoreBackend::new(store.clone(), 0x12, 100);
        assert!(other.committed_steps().is_empty());
        let _ = fs::remove_dir_all(store.root());
    }
}
