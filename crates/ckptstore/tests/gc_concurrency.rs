//! GC under concurrent writers: the store's central safety claim is
//! that a garbage-collection pass can interleave with live commits and
//! never drop a chunk a leased lineage references — even when the
//! leased and reclaimed lineages share chunks byte-for-byte.

use agcm_ckptstore::Store;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agcm-ckptstore-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Deterministic shard content. `salt == 0` content is shared across
/// every lineage, so dedup makes reclaimed and live lineages reference
/// the same chunk files.
fn record(step: u64, salt: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u64 ^ (step * 31) ^ (salt * 131)) as u8)
        .collect()
}

#[test]
fn interleaved_commit_and_reclaim_never_drops_a_referenced_chunk() {
    let store = Arc::new(Store::open_with_chunk_size(scratch("interleave"), 512).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    const WRITERS: u64 = 4;
    const STEPS: u64 = 30;

    // A background collector hammering gc() the whole time.
    let collector = {
        let store = store.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let mut passes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                store.gc().unwrap();
                passes += 1;
                thread::yield_now();
            }
            passes
        })
    };

    // Writers: each leases its own lineage, writes + commits STEPS
    // shards (half shared content, half private), reading back every
    // committed step after each commit — a dropped chunk surfaces as a
    // get_shard failure immediately.
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = store.clone();
            thread::spawn(move || {
                let lineage = 0x1000 + w;
                store.acquire(lineage, w);
                for step in 1..=STEPS {
                    let salt = if step % 2 == 0 { 0 } else { w + 1 };
                    let rec = record(step, salt, 1800);
                    store.put_shard(lineage, step, 0, 1, &rec).unwrap();
                    store.commit(lineage, step, 1).unwrap();
                    for back in store.committed_steps(lineage) {
                        let got = store.get_shard(lineage, back, 0).unwrap_or_else(|e| {
                            panic!("lineage {lineage:#x} step {back} lost under GC: {e}")
                        });
                        let salt = if back % 2 == 0 { 0 } else { w + 1 };
                        assert_eq!(got, record(back, salt, 1800));
                    }
                }
                // Terminal: release, like a finishing job.
                store.release(lineage, w);
            })
        })
        .collect();

    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let passes = collector.join().unwrap();
    assert!(passes > 0, "collector must actually have run");

    // Every lease is released now: one final pass empties the store.
    store.gc().unwrap();
    let stats = store.stats();
    assert_eq!(stats.manifests, 0, "all terminal lineages reclaimed");
    assert_eq!(stats.chunks, 0);
    assert_eq!(stats.live_bytes, 0);
    let leftover = fs::read_dir(store.root().join("chunks")).unwrap().count();
    assert_eq!(leftover, 0, "no chunk files survive full reclamation");
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn reclaiming_a_twin_lineage_mid_run_spares_shared_chunks() {
    let store = Arc::new(Store::open_with_chunk_size(scratch("twin"), 512).unwrap());
    // Twin lineages with identical content: every chunk is shared.
    for step in 1..=10u64 {
        let rec = record(step, 0, 1500);
        store.put_shard(0xA, step, 0, 1, &rec).unwrap();
        store.commit(0xA, step, 1).unwrap();
        store.put_shard(0xB, step, 0, 1, &rec).unwrap();
        store.commit(0xB, step, 1).unwrap();
    }
    store.acquire(0xB, 7);

    // Reclaim the unleased twin while a reader walks the leased one.
    let reader = {
        let store = store.clone();
        thread::spawn(move || {
            for _ in 0..50 {
                for step in 1..=10u64 {
                    assert_eq!(
                        store.get_shard(0xB, step, 0).unwrap(),
                        record(step, 0, 1500)
                    );
                }
                thread::yield_now();
            }
        })
    };
    let report = store.gc().unwrap();
    assert_eq!(report.lineages, vec![0xA]);
    assert_eq!(report.chunks_reclaimed, 0, "all of A's chunks are B's too");
    reader.join().unwrap();

    store.release(0xB, 7);
    let report = store.gc().unwrap();
    assert!(report.chunks_reclaimed > 0);
    assert_eq!(store.stats().chunks, 0);
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn orphan_sweep_on_reopen_after_simulated_crash() {
    let root = scratch("crash-reopen");
    {
        let store = Store::open_with_chunk_size(&root, 512).unwrap();
        store.put_shard(0xC, 5, 0, 1, &record(5, 3, 1200)).unwrap();
        store.commit(0xC, 5, 1).unwrap();
    }
    // Simulate a crash mid-put: a chunk file landed but its manifest
    // never reached the index, plus a torn tmp file.
    fs::write(root.join("chunks/0123456789abcdef-512.chk"), [7u8; 512]).unwrap();
    fs::write(root.join("chunks/fedcba9876543210-512.tmp"), [7u8; 100]).unwrap();

    let store = Store::open_with_chunk_size(&root, 512).unwrap();
    assert_eq!(store.stats().orphans_swept, 2);
    assert!(!root.join("chunks/0123456789abcdef-512.chk").exists());
    // The committed shard survived intact.
    assert_eq!(store.get_shard(0xC, 5, 0).unwrap(), record(5, 3, 1200));
    assert_eq!(store.committed_steps(0xC), vec![5]);
    let _ = fs::remove_dir_all(&root);
}
