//! # agcm-kernels — the paper's §4 single-node optimizations on the real
//! dynamics operators
//!
//! The source paper's second half (§3.4/§4) is about making one node
//! fast: eliminating redundant computation in nested loops, restructuring
//! loops so they stream through memory, the pointwise vector-multiply
//! primitive, and the block-array `f(m,i,j,k)` vs separate-array layout
//! comparison. This crate packages those techniques as flat-slice kernels
//! that the production dynamics (`agcm-dynamics`) runs through on every
//! timestep:
//!
//! * [`view`] — borrowed flat views over halo-padded storage;
//! * [`tendency`] — gradients, flux-form divergence, and the momentum /
//!   tracer updates, reading precomputed per-latitude
//!   [`agcm_grid::MetricTables`];
//! * [`advect`] — the upwind advection operator, in both the separate
//!   and block-interleaved layouts so the paper's layout study runs on
//!   the real operator;
//! * [`stencil`] — the 7-point Laplace stencil of the §3.4 cache
//!   experiment, separate vs block layout, over flat slices;
//! * [`pointwise`] — the pointwise vector-multiply primitive (Eq. 4);
//! * [`scratch`] — [`scratch::DynScratch`], a reusable workspace (the
//!   `FftWorkspace` pattern) so a warmed-up timestep allocates nothing.
//!
//! **Bit-identity contract.** Every kernel evaluates the *same*
//! floating-point expressions in the *same order* as the `from_fn`
//! reference implementations in `agcm-dynamics` (and the transliterated
//! study code in `agcm-singlenode`); hoisting a row-constant subexpression
//! out of the inner loop does not change its value, and divisions by
//! hoisted denominators stay divisions. The equivalence tests in
//! `tests/` enforce exact `f64` equality across mesh shapes, pole rows,
//! and both layouts.

pub mod advect;
pub mod pointwise;
pub mod scratch;
pub mod stencil;
pub mod tendency;
pub mod view;

pub use scratch::DynScratch;
pub use view::HaloView;
