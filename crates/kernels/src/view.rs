//! Borrowed flat views over halo-padded storage.
//!
//! The reference operators read ghosts through the bounds-checked signed
//! accessor `HaloField::get(isize, isize, usize)`, recomputing the padded
//! offset per call. The kernels instead walk the padded slice directly:
//! a [`HaloView`] captures the strides once, and each per-row slice the
//! kernels carve out is exact-length, so the compiler drops the bounds
//! checks and vectorizes the inner loops.

use agcm_grid::halo::HaloField;

/// A read-only flat view of a [`HaloField`]'s padded storage.
#[derive(Debug, Clone, Copy)]
pub struct HaloView<'a> {
    data: &'a [f64],
    /// Interior shape.
    pub ni: usize,
    /// Interior latitude rows.
    pub nj: usize,
    /// Levels.
    pub nk: usize,
    row: usize,
    plane: usize,
    origin: usize,
}

impl<'a> HaloView<'a> {
    /// View the padded storage of `h`. Requires halo width ≥ 1 (always
    /// true — `HaloField::zeros` rejects zero-width halos).
    pub fn of(h: &'a HaloField) -> HaloView<'a> {
        let (ni, nj, nk) = h.shape();
        HaloView {
            data: h.padded(),
            ni,
            nj,
            nk,
            row: h.row_stride(),
            plane: h.plane_stride(),
            origin: h.interior_origin(),
        }
    }

    /// The padded data.
    #[inline]
    pub fn data(&self) -> &'a [f64] {
        self.data
    }

    /// Padded row stride.
    #[inline]
    pub fn row(&self) -> usize {
        self.row
    }

    /// Flat index of interior point `(0, j, k)`.
    #[inline]
    pub fn row_base(&self, j: usize, k: usize) -> usize {
        self.origin + k * self.plane + j * self.row
    }

    /// True if `other` shares this view's interior shape (and therefore,
    /// with equal halo widths, its strides).
    #[inline]
    pub fn same_shape(&self, other: &HaloView) -> bool {
        self.ni == other.ni && self.nj == other.nj && self.nk == other.nk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_walks_the_interior_and_ghosts() {
        let mut h = HaloField::zeros(4, 3, 2, 1);
        h.fill_interior(|i, j, k| (i + 10 * j + 100 * k) as f64);
        h.set(-1, 0, 1, -7.0);
        let v = HaloView::of(&h);
        assert_eq!((v.ni, v.nj, v.nk), (4, 3, 2));
        for k in 0..2usize {
            for j in 0..3usize {
                let b = v.row_base(j, k);
                for i in 0..4usize {
                    assert_eq!(v.data()[b + i], h.get(i as isize, j as isize, k));
                }
            }
        }
        // West ghost of (0, 0, 1) is one step before the row base.
        assert_eq!(v.data()[v.row_base(0, 1) - 1], -7.0);
    }
}
