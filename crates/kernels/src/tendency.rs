//! Finite-difference tendency kernels: gradients, flux-form divergence,
//! momentum and field updates.
//!
//! Each `_into` kernel writes a caller-owned output buffer (no per-call
//! allocation) and is bit-identical to the corresponding `from_fn`
//! reference operator in `agcm-dynamics`: identical per-point expression,
//! identical evaluation order, with the row-constant factors (trig,
//! metric denominators, the Coriolis parameter) hoisted out of the inner
//! loop — the paper's redundant-computation elimination. Divisions by
//! hoisted denominators remain divisions; nothing is replaced by a
//! multiply-by-reciprocal on this path.

use crate::view::HaloView;
use agcm_grid::latlon::EARTH_RADIUS_M;
use agcm_grid::metrics::MetricTables;

fn check_shapes(q: &HaloView, t: &MetricTables, out: &[f64]) {
    assert_eq!(t.nj(), q.nj, "metric tables must cover the subdomain rows");
    assert_eq!(out.len(), q.ni * q.nj * q.nk, "output buffer mis-sized");
}

/// Zonal derivative `(1/(a cosφ)) ∂q/∂λ`, centred — the flat kernel
/// behind `tendencies::grad_x`.
pub fn grad_x_into(q: &HaloView, t: &MetricTables, out: &mut [f64]) {
    check_shapes(q, t, out);
    let (ni, nj, nk) = (q.ni, q.nj, q.nk);
    let d = q.data();
    for k in 0..nk {
        for j in 0..nj {
            // Hoisted per row; same expression the reference evaluates
            // per point.
            let denom = 2.0 * t.dlon * EARTH_RADIUS_M * t.cos_lat[j];
            let b = q.row_base(j, k);
            let e = &d[b + 1..b + 1 + ni];
            let w = &d[b - 1..b - 1 + ni];
            let o = &mut out[(k * nj + j) * ni..(k * nj + j) * ni + ni];
            for ((o, &e), &w) in o.iter_mut().zip(e).zip(w) {
                *o = (e - w) / denom;
            }
        }
    }
}

/// Meridional derivative `(1/a) ∂q/∂φ`, centred — the flat kernel behind
/// `tendencies::grad_y`.
pub fn grad_y_into(q: &HaloView, t: &MetricTables, out: &mut [f64]) {
    check_shapes(q, t, out);
    let (ni, nj, nk) = (q.ni, q.nj, q.nk);
    let d = q.data();
    let denom = 2.0 * t.dlat * EARTH_RADIUS_M;
    let row = q.row();
    for k in 0..nk {
        for j in 0..nj {
            let b = q.row_base(j, k);
            let n = &d[b + row..b + row + ni];
            let s = &d[b - row..b - row + ni];
            let o = &mut out[(k * nj + j) * ni..(k * nj + j) * ni + ni];
            for ((o, &n), &s) in o.iter_mut().zip(n).zip(s) {
                *o = (n - s) / denom;
            }
        }
    }
}

/// Flux-form divergence `∇·(h·u)` on the sphere — the flat kernel behind
/// `tendencies::flux_divergence`. Meridional flux is forced to zero
/// across the poles (row-level booleans from the tables, not per-point
/// index tests).
pub fn flux_divergence_into(
    h: &HaloView,
    u: &HaloView,
    v: &HaloView,
    t: &MetricTables,
    out: &mut [f64],
) {
    check_shapes(h, t, out);
    assert!(
        h.same_shape(u) && h.same_shape(v),
        "field shapes must match"
    );
    let (ni, nj, nk) = (h.ni, h.nj, h.nk);
    let (hd, ud, vd) = (h.data(), u.data(), v.data());
    let row = h.row();
    let a = EARTH_RADIUS_M;
    let (dlon, dlat) = (t.dlon, t.dlat);
    for k in 0..nk {
        for j in 0..nj {
            let acos = a * t.cos_lat[j];
            let chn = t.cos_half_north[j];
            let chs = t.cos_half_south[j];
            let north_pole = t.north_is_pole(j);
            let south_pole = t.south_is_pole(j);
            let b = h.row_base(j, k);
            let (hc, uc, vc) = (&hd[b..b + ni], &ud[b..b + ni], &vd[b..b + ni]);
            let (he, ue) = (&hd[b + 1..b + 1 + ni], &ud[b + 1..b + 1 + ni]);
            let (hw, uw) = (&hd[b - 1..b - 1 + ni], &ud[b - 1..b - 1 + ni]);
            let (hn, vn) = (&hd[b + row..b + row + ni], &vd[b + row..b + row + ni]);
            let (hs, vs) = (&hd[b - row..b - row + ni], &vd[b - row..b - row + ni]);
            let o = &mut out[(k * nj + j) * ni..(k * nj + j) * ni + ni];
            for i in 0..ni {
                let fe = 0.5 * (hc[i] * uc[i] + he[i] * ue[i]);
                let fw = 0.5 * (hw[i] * uw[i] + hc[i] * uc[i]);
                let gn = if north_pole {
                    0.0
                } else {
                    0.5 * (hc[i] * vc[i] + hn[i] * vn[i]) * chn
                };
                let gs = if south_pole {
                    0.0
                } else {
                    0.5 * (hs[i] * vs[i] + hc[i] * vc[i]) * chs
                };
                o[i] = ((fe - fw) / dlon + (gn - gs) / dlat) / acos;
            }
        }
    }
}

/// In-place momentum update: Coriolis + pressure gradient on `h*` +
/// advection, forward-backward. Per point, reading the old `(u, v)` pair
/// before writing either:
///
/// ```text
/// u += dt·( f·v − g·∂h*/∂x + adv_u)
/// v += dt·(−f·u − g·∂h*/∂y + adv_v)
/// ```
///
/// `f_cor` is the per-row Coriolis parameter (one entry per latitude).
#[allow(clippy::too_many_arguments)] // mirrors the operator's real arity
pub fn momentum_update(
    u: &mut [f64],
    v: &mut [f64],
    dhdx: &[f64],
    dhdy: &[f64],
    adv_u: &[f64],
    adv_v: &[f64],
    f_cor: &[f64],
    shape: (usize, usize, usize),
    dt: f64,
    g: f64,
) {
    let (ni, nj, nk) = shape;
    let n = ni * nj * nk;
    assert!(
        u.len() == n && v.len() == n && dhdx.len() == n && dhdy.len() == n,
        "momentum buffers mis-sized"
    );
    assert!(adv_u.len() == n && adv_v.len() == n && f_cor.len() == nj);
    for k in 0..nk {
        for (j, &f) in f_cor.iter().enumerate() {
            let b = (k * nj + j) * ni;
            let (ur, vr) = (&mut u[b..b + ni], &mut v[b..b + ni]);
            let (gx, gy) = (&dhdx[b..b + ni], &dhdy[b..b + ni]);
            let (au, av) = (&adv_u[b..b + ni], &adv_v[b..b + ni]);
            for i in 0..ni {
                let (uu, vv) = (ur[i], vr[i]);
                ur[i] = uu + dt * (f * vv - g * gx[i] + au[i]);
                vr[i] = vv + dt * (-f * uu - g * gy[i] + av[i]);
            }
        }
    }
}

/// In-place explicit update `q += dt · tendency`. Pass a negative `dt`
/// for the continuity form `h −= dt·∇·(h·u)` — the sign flip is exact in
/// IEEE arithmetic, so both calls stay bit-identical to the reference
/// zip loops.
pub fn advance_in_place(field: &mut [f64], tendency: &[f64], dt: f64) {
    assert_eq!(field.len(), tendency.len(), "tendency buffer mis-sized");
    for (fv, &tv) in field.iter_mut().zip(tendency) {
        *fv += dt * tv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_grid::halo::HaloField;
    use agcm_grid::latlon::GridSpec;

    fn halo(ni: usize, nj: usize, nk: usize, seed: usize) -> HaloField {
        let mut h = HaloField::zeros(ni, nj, nk, 1);
        h.fill_interior(|i, j, k| ((i * 7 + j * 3 + k * 11 + seed) as f64 * 0.19).sin());
        // Deterministic non-zero ghosts (physical realism is the caller's
        // concern; the kernels just read what is there).
        for k in 0..nk {
            for j in -1..=nj as isize {
                for i in [-1isize, ni as isize] {
                    h.set(i, j.clamp(0, nj as isize - 1), k, 0.0);
                }
            }
        }
        h
    }

    #[test]
    fn grad_x_of_constant_is_zero() {
        let grid = GridSpec::new(8, 6, 2);
        let mut h = HaloField::zeros(8, 6, 2, 1);
        h.fill_interior(|_, _, _| 3.0);
        // Constant ghosts too.
        for k in 0..2 {
            for j in -1..7isize {
                h.set(-1, j.clamp(0, 5), k, 3.0);
                h.set(8, j.clamp(0, 5), k, 3.0);
            }
        }
        let t = MetricTables::new(&grid, 0, 6);
        let mut out = vec![1.0; 8 * 6 * 2];
        grad_x_into(&HaloView::of(&h), &t, &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn advance_in_place_signs() {
        let mut f = vec![1.0, 2.0];
        advance_in_place(&mut f, &[10.0, 20.0], 0.5);
        assert_eq!(f, vec![6.0, 12.0]);
        advance_in_place(&mut f, &[10.0, 20.0], -0.5);
        assert_eq!(f, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "mis-sized")]
    fn output_size_checked() {
        let grid = GridSpec::new(8, 6, 1);
        let h = halo(8, 6, 1, 0);
        let t = MetricTables::new(&grid, 0, 6);
        let mut out = vec![0.0; 7];
        grad_x_into(&HaloView::of(&h), &t, &mut out);
    }
}
