//! Upwind advection kernels, layout-parameterized.
//!
//! [`upwind_into`] is the production operator: bit-identical to
//! `advection::upwind_tendency` with the metric factors hoisted per row.
//! [`upwind_block_into`] runs the *same* operator over `m` tracers stored
//! block-interleaved `q(m,i,j,k)` — the transformation the paper applied
//! to the advection routine ("about a dozen three-dimensional arrays were
//! combined into one single array") — so the §4 layout study measures the
//! real operator rather than a toy field. Per tracer the arithmetic is
//! identical, so both layouts produce bit-identical tendencies.

use crate::view::HaloView;
use agcm_grid::halo::HaloField;
use agcm_grid::latlon::EARTH_RADIUS_M;
use agcm_grid::metrics::MetricTables;

/// First-order upwind advective tendency `−(u ∂q/∂x + v ∂q/∂y)` into a
/// caller-owned buffer. Flat-kernel twin of `upwind_tendency`.
pub fn upwind_into(q: &HaloView, u: &HaloView, v: &HaloView, t: &MetricTables, out: &mut [f64]) {
    assert!(
        q.same_shape(u) && q.same_shape(v),
        "field shapes must match"
    );
    assert_eq!(t.nj(), q.nj, "metric tables must cover the subdomain rows");
    assert_eq!(out.len(), q.ni * q.nj * q.nk, "output buffer mis-sized");
    let (ni, nj, nk) = (q.ni, q.nj, q.nk);
    let (qd, ud, vd) = (q.data(), u.data(), v.data());
    let row = q.row();
    for k in 0..nk {
        for j in 0..nj {
            // Hoisted per row; identical expressions to the reference.
            let dx = EARTH_RADIUS_M * t.cos_lat[j] * t.dlon;
            let dy = EARTH_RADIUS_M * t.dlat;
            let b = q.row_base(j, k);
            let qc = &qd[b..b + ni];
            let qe = &qd[b + 1..b + 1 + ni];
            let qw = &qd[b - 1..b - 1 + ni];
            let qn = &qd[b + row..b + row + ni];
            let qs = &qd[b - row..b - row + ni];
            let (uc, vc) = (&ud[b..b + ni], &vd[b..b + ni]);
            let o = &mut out[(k * nj + j) * ni..(k * nj + j) * ni + ni];
            for i in 0..ni {
                let (uu, vv) = (uc[i], vc[i]);
                let dqdx = if uu >= 0.0 {
                    (qc[i] - qw[i]) / dx
                } else {
                    (qe[i] - qc[i]) / dx
                };
                let dqdy = if vv >= 0.0 {
                    (qc[i] - qs[i]) / dy
                } else {
                    (qn[i] - qc[i]) / dy
                };
                o[i] = -(uu * dqdx + vv * dqdy);
            }
        }
    }
}

/// `m` halo fields packed block-interleaved, ghosts included:
/// `data[(padded point) · m + v]` — the Fortran `q(m,i,j,k)` layout of the
/// paper's block-array experiment, with the halo margins kept so the
/// upwind stencil reads ghosts exactly like the separate layout does.
#[derive(Debug, Clone)]
pub struct BlockHalo {
    m: usize,
    ni: usize,
    nj: usize,
    nk: usize,
    row: usize,
    plane: usize,
    origin: usize,
    data: Vec<f64>,
}

impl BlockHalo {
    /// Interleave `m` same-shaped halo fields.
    pub fn from_halos(halos: &[&HaloField]) -> BlockHalo {
        assert!(!halos.is_empty(), "need at least one field");
        let shape = halos[0].shape();
        let m = halos.len();
        for h in halos {
            assert_eq!(h.shape(), shape, "all fields must share a shape");
            assert_eq!(
                h.halo_width(),
                halos[0].halo_width(),
                "all fields must share a halo width"
            );
        }
        let padded = halos[0].padded().len();
        let mut data = vec![0.0; padded * m];
        for (v, h) in halos.iter().enumerate() {
            for (p, &x) in h.padded().iter().enumerate() {
                data[p * m + v] = x;
            }
        }
        let (ni, nj, nk) = shape;
        BlockHalo {
            m,
            ni,
            nj,
            nk,
            row: halos[0].row_stride(),
            plane: halos[0].plane_stride(),
            origin: halos[0].interior_origin(),
            data,
        }
    }

    /// Number of interleaved fields.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Interior shape.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.ni, self.nj, self.nk)
    }
}

/// Upwind-advect all `m` tracers of a [`BlockHalo`] by the winds
/// `(u, v)` in one traversal. `out` is block-interleaved over interior
/// points: `out[((k·nj + j)·ni + i) · m + v]`. Per tracer, bit-identical
/// to [`upwind_into`].
pub fn upwind_block_into(
    q: &BlockHalo,
    u: &HaloView,
    v: &HaloView,
    t: &MetricTables,
    out: &mut [f64],
) {
    let (ni, nj, nk) = q.shape();
    assert_eq!((u.ni, u.nj, u.nk), (ni, nj, nk), "wind shape must match");
    assert!(u.same_shape(v));
    assert_eq!(t.nj(), nj, "metric tables must cover the subdomain rows");
    let m = q.m;
    assert_eq!(out.len(), ni * nj * nk * m, "output buffer mis-sized");
    let (ud, vd) = (u.data(), v.data());
    let qd = &q.data[..];
    let (qrow, qm) = (q.row * m, m);
    for k in 0..nk {
        for j in 0..nj {
            let dx = EARTH_RADIUS_M * t.cos_lat[j] * t.dlon;
            let dy = EARTH_RADIUS_M * t.dlat;
            let wb = u.row_base(j, k);
            let (uc, vc) = (&ud[wb..wb + ni], &vd[wb..wb + ni]);
            let qb = (q.origin + k * q.plane + j * q.row) * m;
            let ob = (k * nj + j) * ni * m;
            for i in 0..ni {
                let (uu, vv) = (uc[i], vc[i]);
                let p = qb + i * qm;
                let c = &qd[p..p + m];
                let e = &qd[p + qm..p + qm + m];
                let w = &qd[p - qm..p - qm + m];
                let n = &qd[p + qrow..p + qrow + m];
                let s = &qd[p - qrow..p - qrow + m];
                let o = &mut out[ob + i * m..ob + i * m + m];
                if uu >= 0.0 {
                    if vv >= 0.0 {
                        for v in 0..m {
                            o[v] = -(uu * ((c[v] - w[v]) / dx) + vv * ((c[v] - s[v]) / dy));
                        }
                    } else {
                        for v in 0..m {
                            o[v] = -(uu * ((c[v] - w[v]) / dx) + vv * ((n[v] - c[v]) / dy));
                        }
                    }
                } else if vv >= 0.0 {
                    for v in 0..m {
                        o[v] = -(uu * ((e[v] - c[v]) / dx) + vv * ((c[v] - s[v]) / dy));
                    }
                } else {
                    for v in 0..m {
                        o[v] = -(uu * ((e[v] - c[v]) / dx) + vv * ((n[v] - c[v]) / dy));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_grid::latlon::GridSpec;

    fn halo(ni: usize, nj: usize, nk: usize, seed: usize) -> HaloField {
        let mut h = HaloField::zeros(ni, nj, nk, 1);
        h.fill_interior(|i, j, k| ((i * 13 + j * 5 + k * 29 + seed * 3) as f64 * 0.23).cos());
        h
    }

    #[test]
    fn block_layout_matches_separate_per_tracer() {
        let grid = GridSpec::new(10, 8, 2);
        let t = MetricTables::new(&grid, 0, 8);
        let u = halo(10, 8, 2, 90);
        let v = halo(10, 8, 2, 91);
        let tracers: Vec<HaloField> = (0..3).map(|s| halo(10, 8, 2, s)).collect();
        let refs: Vec<&HaloField> = tracers.iter().collect();
        let blk = BlockHalo::from_halos(&refs);

        let n = 10 * 8 * 2;
        let mut blk_out = vec![0.0; n * 3];
        upwind_block_into(&blk, &HaloView::of(&u), &HaloView::of(&v), &t, &mut blk_out);

        for (vix, q) in tracers.iter().enumerate() {
            let mut sep = vec![0.0; n];
            upwind_into(
                &HaloView::of(q),
                &HaloView::of(&u),
                &HaloView::of(&v),
                &t,
                &mut sep,
            );
            for c in 0..n {
                assert_eq!(
                    blk_out[c * 3 + vix],
                    sep[c],
                    "tracer {vix} point {c}: layouts must agree bit-for-bit"
                );
            }
        }
    }

    #[test]
    fn zero_wind_zero_tendency() {
        let grid = GridSpec::new(6, 4, 1);
        let t = MetricTables::new(&grid, 0, 4);
        let q = halo(6, 4, 1, 1);
        let zero = HaloField::zeros(6, 4, 1, 1);
        let mut out = vec![1.0; 24];
        upwind_into(
            &HaloView::of(&q),
            &HaloView::of(&zero),
            &HaloView::of(&zero),
            &t,
            &mut out,
        );
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn mismatched_block_rejected() {
        let a = HaloField::zeros(4, 4, 1, 1);
        let b = HaloField::zeros(5, 4, 1, 1);
        BlockHalo::from_halos(&[&a, &b]);
    }
}
