//! The pointwise vector-multiply primitive (paper §3.4, Eq. 4).
//!
//! `C(i,j) = A(i,j) × B(i)` — the shape "a large part of the computations
//! in our selected routines can be converted into". The `_into` variants
//! here are the allocation-free library routines the paper proposed;
//! `agcm-singlenode`'s allocating demonstrators are pinned bit-identically
//! to them by equivalence tests.

/// `c[j·m + i] = a[j·m + i] · b[i]` for an `m × n` slab (`i` fastest).
pub fn pv_multiply_into(c: &mut [f64], a: &[f64], b: &[f64], m: usize) {
    assert_eq!(a.len(), c.len(), "output slab mis-sized");
    assert_eq!(a.len() % m.max(1), 0, "slab not a multiple of m");
    assert_eq!(b.len(), m, "b must have one entry per column");
    for (crow, arow) in c.chunks_exact_mut(m).zip(a.chunks_exact(m)) {
        for ((cv, &av), &bv) in crow.iter_mut().zip(arow).zip(b) {
            *cv = av * bv;
        }
    }
}

/// Eq. (4): cyclic product `a ⊛ b` with `a.len()` divisible by `b.len()`,
/// written into `c` — the same tiling as `pv_multiply_into` row by row.
pub fn cyclic_multiply_into(c: &mut [f64], a: &[f64], b: &[f64]) {
    assert!(!b.is_empty(), "b must be non-empty");
    assert_eq!(a.len() % b.len(), 0, "n must be divisible by m (Eq. 4)");
    pv_multiply_into(c, a, b, b.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_semantics() {
        let mut c = vec![0.0; 4];
        pv_multiply_into(&mut c, &[1.0, 2.0, 3.0, 4.0], &[10.0, 100.0], 2);
        assert_eq!(c, vec![10.0, 200.0, 30.0, 400.0]);
    }

    #[test]
    fn cyclic_tiles_b() {
        let mut c = vec![0.0; 6];
        cyclic_multiply_into(&mut c, &[1.0; 6], &[1.0, 2.0, 3.0]);
        assert_eq!(c, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn cyclic_divisibility_checked() {
        cyclic_multiply_into(&mut [0.0; 5], &[0.0; 5], &[1.0, 2.0]);
    }
}
