//! The reusable dynamics workspace — the `FftWorkspace` pattern applied
//! to the timestep.
//!
//! The reference path allocates six fresh [`HaloField`]s, one `h*` halo,
//! and seven tendency `Field3D`s *per timestep*. A [`DynScratch`] owns all
//! of those buffers plus the per-latitude [`MetricTables`]; after the
//! first step on a given subdomain shape every buffer is reused, and the
//! warmed-up compute path performs **zero** heap allocations (enforced by
//! `agcm-dynamics`'s counting-allocator test).

use agcm_grid::halo::HaloField;
use agcm_grid::latlon::GridSpec;
use agcm_grid::metrics::MetricTables;

/// Reusable buffers for one rank's dynamics timestep.
#[derive(Debug, Clone)]
pub struct DynScratch {
    /// `(ni, nj, nk, j0, n_vars)` the buffers are currently sized for.
    shape: (usize, usize, usize, usize, usize),
    /// One exchanged halo per prognostic variable, in variable order.
    pub halos: Vec<HaloField>,
    /// Halo of the updated thickness (the backward half-step).
    pub hstar: HaloField,
    /// Per-latitude metric tables for the subdomain.
    pub tables: MetricTables,
    /// Per-latitude Coriolis parameter (filled by the dynamical core,
    /// which owns Ω).
    pub f_cor: Vec<f64>,
    /// `∇·(h·u)` tendency buffer.
    pub div: Vec<f64>,
    /// `∂h*/∂x` buffer.
    pub dhdx: Vec<f64>,
    /// `∂h*/∂y` buffer.
    pub dhdy: Vec<f64>,
    /// Upwind tendency of `u`.
    pub adv_u: Vec<f64>,
    /// Upwind tendency of `v`.
    pub adv_v: Vec<f64>,
    /// Upwind tendency of the tracer being advected.
    pub adv_q: Vec<f64>,
}

impl DynScratch {
    /// An empty scratch; buffers grow on the first [`DynScratch::ensure`].
    pub fn new() -> DynScratch {
        DynScratch {
            shape: (0, 0, 0, 0, 0),
            halos: Vec::new(),
            hstar: HaloField::zeros(1, 1, 1, 1),
            tables: MetricTables::empty(),
            f_cor: Vec::new(),
            div: Vec::new(),
            dhdx: Vec::new(),
            dhdy: Vec::new(),
            adv_u: Vec::new(),
            adv_v: Vec::new(),
            adv_q: Vec::new(),
        }
    }

    /// Size every buffer for an `ni × nj × n_lev` subdomain starting at
    /// global row `j0` with `n_vars` prognostic variables. Returns `true`
    /// when the buffers were (re)built — the caller should then refresh
    /// anything it derives (e.g. the Coriolis table). A no-op (and
    /// allocation-free) when the shape is unchanged.
    pub fn ensure(
        &mut self,
        grid: &GridSpec,
        j0: usize,
        ni: usize,
        nj: usize,
        n_vars: usize,
    ) -> bool {
        let nk = grid.n_lev;
        let shape = (ni, nj, nk, j0, n_vars);
        if self.shape == shape {
            return false;
        }
        self.halos = (0..n_vars)
            .map(|_| HaloField::zeros(ni, nj, nk, 1))
            .collect();
        self.hstar = HaloField::zeros(ni, nj, nk, 1);
        self.tables = MetricTables::new(grid, j0, nj);
        self.f_cor = vec![0.0; nj];
        let n = ni * nj * nk;
        self.div = vec![0.0; n];
        self.dhdx = vec![0.0; n];
        self.dhdy = vec![0.0; n];
        self.adv_u = vec![0.0; n];
        self.adv_v = vec![0.0; n];
        self.adv_q = vec![0.0; n];
        self.shape = shape;
        true
    }
}

impl Default for DynScratch {
    fn default() -> DynScratch {
        DynScratch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_builds_once_per_shape() {
        let grid = GridSpec::new(16, 8, 2);
        let mut s = DynScratch::new();
        assert!(s.ensure(&grid, 0, 16, 8, 6));
        assert_eq!(s.halos.len(), 6);
        assert_eq!(s.halos[0].shape(), (16, 8, 2));
        assert_eq!(s.div.len(), 16 * 8 * 2);
        assert_eq!(s.tables.nj(), 8);
        // Same shape: nothing rebuilt.
        assert!(!s.ensure(&grid, 0, 16, 8, 6));
        // New subdomain: rebuilt.
        assert!(s.ensure(&grid, 4, 16, 4, 6));
        assert_eq!(s.tables.j0, 4);
        assert_eq!(s.f_cor.len(), 4);
    }
}
