//! The §3.4 cache experiment's 7-point Laplace stencil over flat slices.
//!
//! `r(i,j,k) = Σ_m (Σ_neighbours f_m − 6·f_m)` evaluated for `m` fields
//! stored either separately or block-interleaved `f(m,i,j,k)`. These are
//! the optimized twins of `agcm_singlenode::blockarray::{laplace_separate,
//! laplace_block}`: same accumulation order (bit-identical results), but
//! the per-point bounds-checked `get`/`set` offset arithmetic is replaced
//! by exact-length row slices the compiler vectorizes. On x86-64 each
//! kernel runtime-dispatches to an AVX-512F/AVX compilation of the same
//! loop body where the CPU supports it — wider lanes, identical per-point
//! arithmetic order. Interior points only; the boundary ring of `out` is
//! zeroed.

/// Sum of 7-point Laplacians over fields stored separately, accumulated
/// field-by-field into `out` (the reference's order).
///
/// Dispatches at runtime to the widest SIMD compilation of the same loop
/// body the CPU supports. Vector width cannot change results: each output
/// point's addition chain lives entirely within one lane, so AVX lanes
/// perform exactly the scalar sequence — bit-identical by construction.
pub fn laplace_separate_into(fields: &[&[f64]], shape: (usize, usize, usize), out: &mut [f64]) {
    let (ni, nj, nk) = shape;
    let n = ni * nj * nk;
    assert!(!fields.is_empty(), "need at least one field");
    assert!(ni >= 2 && nj >= 2 && nk >= 2, "stencil needs 3D interior");
    assert_eq!(out.len(), n, "output buffer mis-sized");
    for f in fields {
        assert_eq!(f.len(), n, "field mis-sized");
    }
    out.fill(0.0);
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            // SAFETY: same safe body, compiled with AVX-512F enabled;
            // gated on runtime detection above.
            unsafe { separate_rows_avx512(fields, shape, out) };
            return;
        }
        if is_x86_feature_detected!("avx") {
            // SAFETY: as above, for AVX.
            unsafe { separate_rows_avx(fields, shape, out) };
            return;
        }
    }
    separate_rows(fields, shape, out);
}

/// The separate-layout loop body, shared verbatim by every dispatch
/// target (`inline(always)` so each `#[target_feature]` wrapper gets its
/// own vectorized compilation).
#[inline(always)]
fn separate_rows(fields: &[&[f64]], shape: (usize, usize, usize), out: &mut [f64]) {
    let (ni, nj, nk) = shape;
    if nj < 3 {
        return; // no interior rows — out stays zeroed
    }
    let (rj, rk) = (ni, ni * nj);
    // Fused-plane traversal: within each k-plane the interior rows form
    // one contiguous span (the neighbour-offset formulas stay valid at the
    // i-boundary columns in between — they just compute wrap-around
    // garbage there, re-zeroed below). One long vector loop per
    // (plane, field) instead of one short one per (row, field). Every
    // interior point still accumulates its fields in reference order, so
    // results stay bit-identical.
    let span = (nj - 2) * ni - 2; // (1,1,k) ..= (ni-2,nj-2,k), contiguous
    for k in 1..nk - 1 {
        let b = (k * nj + 1) * ni + 1; // first interior point of the plane
        let o = &mut out[b..b + span];
        for f in fields {
            let c = &f[b..b + span];
            let w = &f[b - 1..b - 1 + span];
            let e = &f[b + 1..b + 1 + span];
            let s = &f[b - rj..b - rj + span];
            let nn = &f[b + rj..b + rj + span];
            let d = &f[b - rk..b - rk + span];
            let u = &f[b + rk..b + rk + span];
            for i in 0..span {
                // Same chain as the reference: W + E + S + N + D + U − 6C.
                let lap = w[i] + e[i] + s[i] + nn[i] + d[i] + u[i] - 6.0 * c[i];
                o[i] += lap;
            }
        }
        // Re-zero the i-boundary columns the fused span swept through.
        for j in 1..nj - 1 {
            let row = (k * nj + j) * ni;
            out[row] = 0.0;
            out[row + ni - 1] = 0.0;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn separate_rows_avx(fields: &[&[f64]], shape: (usize, usize, usize), out: &mut [f64]) {
    separate_rows(fields, shape, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn separate_rows_avx512(fields: &[&[f64]], shape: (usize, usize, usize), out: &mut [f64]) {
    separate_rows(fields, shape, out)
}

/// The same sum over a block-interleaved array (variable index fastest):
/// one traversal of the grid, the `m` values of a point adjacent in
/// memory. Accumulation order over `v` matches the separate kernel, so
/// both layouts stay bit-identical.
pub fn laplace_block_into(block: &[f64], m: usize, shape: (usize, usize, usize), out: &mut [f64]) {
    let (ni, nj, nk) = shape;
    assert!(m >= 1, "need at least one field");
    assert!(ni >= 2 && nj >= 2 && nk >= 2, "stencil needs 3D interior");
    assert_eq!(block.len(), m * ni * nj * nk, "block mis-sized");
    assert_eq!(out.len(), ni * nj * nk, "output buffer mis-sized");
    out.fill(0.0);
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            // SAFETY: same safe body compiled with AVX-512F; gated on
            // runtime detection. Lane-independent chains — bit-identical.
            unsafe { block_rows_avx512(block, m, shape, out) };
            return;
        }
        if is_x86_feature_detected!("avx") {
            // SAFETY: as above, for AVX.
            unsafe { block_rows_avx(block, m, shape, out) };
            return;
        }
    }
    block_rows(block, m, shape, out);
}

/// The block-layout loop body, shared by every dispatch target.
#[inline(always)]
fn block_rows(block: &[f64], m: usize, shape: (usize, usize, usize), out: &mut [f64]) {
    let (ni, nj, nk) = shape;
    let (rj, rk) = (ni * m, ni * nj * m);
    for k in 1..nk - 1 {
        for j in 1..nj - 1 {
            let ob = (k * nj + j) * ni;
            let o = &mut out[ob + 1..ob + ni - 1];
            let bb = ob * m;
            #[allow(clippy::needless_range_loop)] // o and block advance differently
            for i in 0..ni - 2 {
                let p = bb + (i + 1) * m;
                let c = &block[p..p + m];
                let w = &block[p - m..p];
                let e = &block[p + m..p + 2 * m];
                let s = &block[p - rj..p - rj + m];
                let nn = &block[p + rj..p + rj + m];
                let d = &block[p - rk..p - rk + m];
                let u = &block[p + rk..p + rk + m];
                let mut acc = 0.0;
                for v in 0..m {
                    acc += w[v] + e[v] + s[v] + nn[v] + d[v] + u[v] - 6.0 * c[v];
                }
                o[i] = acc;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn block_rows_avx(block: &[f64], m: usize, shape: (usize, usize, usize), out: &mut [f64]) {
    block_rows(block, m, shape, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn block_rows_avx512(
    block: &[f64],
    m: usize,
    shape: (usize, usize, usize),
    out: &mut [f64],
) {
    block_rows(block, m, shape, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(shape: (usize, usize, usize), seed: usize) -> Vec<f64> {
        let n = shape.0 * shape.1 * shape.2;
        (0..n)
            .map(|x| ((x * 31 + seed * 7) as f64 * 0.11).sin())
            .collect()
    }

    #[test]
    fn layouts_agree_bit_for_bit() {
        let shape = (9, 7, 5);
        let fields: Vec<Vec<f64>> = (0..4).map(|s| field(shape, s)).collect();
        let refs: Vec<&[f64]> = fields.iter().map(|f| f.as_slice()).collect();
        let n = shape.0 * shape.1 * shape.2;
        // Interleave by hand.
        let mut block = vec![0.0; 4 * n];
        for (v, f) in fields.iter().enumerate() {
            for (p, &x) in f.iter().enumerate() {
                block[p * 4 + v] = x;
            }
        }
        let mut sep = vec![0.0; n];
        let mut blk = vec![0.0; n];
        laplace_separate_into(&refs, shape, &mut sep);
        laplace_block_into(&block, 4, shape, &mut blk);
        assert_eq!(sep, blk, "layouts must agree bit-for-bit");
    }

    #[test]
    fn linear_field_has_zero_laplacian() {
        let (ni, nj, nk) = (8, 8, 8);
        let f: Vec<f64> = (0..ni * nj * nk)
            .map(|p| {
                let (k, r) = (p / (ni * nj), p % (ni * nj));
                let (j, i) = (r / ni, r % ni);
                (i + 2 * j + 3 * k) as f64
            })
            .collect();
        let mut out = vec![0.0; ni * nj * nk];
        laplace_separate_into(&[&f], (ni, nj, nk), &mut out);
        for k in 1..nk - 1 {
            for j in 1..nj - 1 {
                for i in 1..ni - 1 {
                    assert!(out[(k * nj + j) * ni + i].abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn boundary_ring_zeroed() {
        let shape = (6, 6, 6);
        let f = field(shape, 0);
        let mut out = vec![7.0; 216];
        laplace_separate_into(&[&f], shape, &mut out);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[(5 * 6 + 3) * 6 + 3], 0.0, "j boundary");
    }
}
