//! Property tests pinning every kernel bit-identically to its `from_fn`
//! reference operator, over randomized mesh shapes — including subdomains
//! that own a pole row — and both storage layouts.
//!
//! Ghost values are filled with the same pseudo-random stream as the
//! interior (no exchange needed: reference and kernel read the *same*
//! `HaloField`, so whatever is in the margins, agreement must be exact).

use agcm_dynamics::advection::upwind_tendency;
use agcm_dynamics::tendencies::{flux_divergence, grad_x, grad_y};
use agcm_grid::halo::HaloField;
use agcm_grid::latlon::GridSpec;
use agcm_grid::metrics::MetricTables;
use agcm_kernels::advect::{upwind_block_into, upwind_into, BlockHalo};
use agcm_kernels::tendency::{flux_divergence_into, grad_x_into, grad_y_into};
use agcm_kernels::HaloView;

/// Deterministic LCG (numerical recipes constants) — no external crates.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Map the top bits into roughly [-1, 1].
        ((self.0 >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    fn pick(&mut self, lo: usize, hi: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lo + (self.0 >> 33) as usize % (hi - lo + 1)
    }
}

/// A halo field with random interior *and* random ghost margins.
fn random_halo(rng: &mut Lcg, ni: usize, nj: usize, nk: usize, scale: f64) -> HaloField {
    let mut h = HaloField::zeros(ni, nj, nk, 1);
    for k in 0..nk {
        for j in -1..=nj as isize {
            for i in -1..=ni as isize {
                h.set(i, j, k, scale * rng.next_f64());
            }
        }
    }
    h
}

fn assert_bits_eq(kernel: &[f64], reference: &[f64], what: &str, case: &str) {
    assert_eq!(kernel.len(), reference.len(), "{what} {case}: length");
    for (p, (a, b)) in kernel.iter().zip(reference).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "{what} {case} point {p}: kernel {a:e} != reference {b:e}"
        );
    }
}

/// Random subdomain geometries, always including both pole rows and a
/// pole-free interior strip.
fn cases(rng: &mut Lcg) -> Vec<(GridSpec, usize, usize, usize, usize)> {
    let mut out = Vec::new();
    for t in 0..12 {
        let ni = rng.pick(4, 20);
        let nk = rng.pick(1, 4);
        let n_lat = rng.pick(4, 14);
        let nj = rng.pick(2, n_lat);
        let j0 = match t % 3 {
            0 => 0,                       // owns the south pole row
            1 => n_lat - nj,              // owns the north pole row
            _ => rng.pick(0, n_lat - nj), // anywhere (often interior)
        };
        out.push((GridSpec::new(ni, n_lat, nk), j0, ni, nj, nk));
    }
    out
}

#[test]
fn tendency_kernels_match_reference_bitwise() {
    let mut rng = Lcg(0x5eed1);
    for (grid, j0, ni, nj, nk) in cases(&mut rng) {
        let case = format!("ni={ni} nj={nj} nk={nk} n_lat={} j0={j0}", grid.n_lat);
        let t = MetricTables::new(&grid, j0, nj);
        let h = random_halo(&mut rng, ni, nj, nk, 100.0);
        let u = random_halo(&mut rng, ni, nj, nk, 30.0);
        let v = random_halo(&mut rng, ni, nj, nk, 30.0);
        let mut out = vec![0.0; ni * nj * nk];

        grad_x_into(&HaloView::of(&h), &t, &mut out);
        assert_bits_eq(&out, grad_x(&h, &grid, j0).as_slice(), "grad_x", &case);

        grad_y_into(&HaloView::of(&h), &t, &mut out);
        assert_bits_eq(&out, grad_y(&h, &grid, j0).as_slice(), "grad_y", &case);

        flux_divergence_into(
            &HaloView::of(&h),
            &HaloView::of(&u),
            &HaloView::of(&v),
            &t,
            &mut out,
        );
        assert_bits_eq(
            &out,
            flux_divergence(&h, &u, &v, &grid, j0).as_slice(),
            "flux_divergence",
            &case,
        );

        upwind_into(
            &HaloView::of(&h),
            &HaloView::of(&u),
            &HaloView::of(&v),
            &t,
            &mut out,
        );
        assert_bits_eq(
            &out,
            upwind_tendency(&h, &u, &v, &grid, j0).as_slice(),
            "upwind",
            &case,
        );
    }
}

#[test]
fn stencil_kernels_match_singlenode_references_bitwise() {
    use agcm_grid::field::{BlockField, Field3D};
    use agcm_kernels::stencil::{laplace_block_into, laplace_separate_into};
    use agcm_singlenode::blockarray::{laplace_block, laplace_separate};

    let mut rng = Lcg(0x5eed3);
    for _ in 0..8 {
        let (ni, nj, nk) = (rng.pick(3, 16), rng.pick(3, 12), rng.pick(3, 8));
        let m = rng.pick(1, 6);
        let case = format!("m={m} ni={ni} nj={nj} nk={nk}");
        let fields: Vec<Field3D> = (0..m)
            .map(|_| {
                let mut f = Field3D::zeros(ni, nj, nk);
                for x in f.as_mut_slice() {
                    *x = rng.next_f64();
                }
                f
            })
            .collect();
        let refs: Vec<&[f64]> = fields.iter().map(|f| f.as_slice()).collect();
        let mut out = vec![0.0; ni * nj * nk];

        laplace_separate_into(&refs, (ni, nj, nk), &mut out);
        assert_bits_eq(
            &out,
            laplace_separate(&fields).as_slice(),
            "laplace_sep",
            &case,
        );

        let block = BlockField::from_fields(&fields);
        laplace_block_into(block.as_slice(), m, (ni, nj, nk), &mut out);
        assert_bits_eq(&out, laplace_block(&block).as_slice(), "laplace_blk", &case);
    }
}

#[test]
fn block_layout_matches_separate_on_random_shapes() {
    let mut rng = Lcg(0x5eed2);
    for (grid, j0, ni, nj, nk) in cases(&mut rng) {
        let case = format!("ni={ni} nj={nj} nk={nk} j0={j0}");
        let t = MetricTables::new(&grid, j0, nj);
        let u = random_halo(&mut rng, ni, nj, nk, 30.0);
        let v = random_halo(&mut rng, ni, nj, nk, 30.0);
        let m = rng.pick(1, 5);
        let tracers: Vec<HaloField> = (0..m)
            .map(|_| random_halo(&mut rng, ni, nj, nk, 10.0))
            .collect();
        let refs: Vec<&HaloField> = tracers.iter().collect();
        let blk = BlockHalo::from_halos(&refs);

        let n = ni * nj * nk;
        let mut blk_out = vec![0.0; n * m];
        upwind_block_into(&blk, &HaloView::of(&u), &HaloView::of(&v), &t, &mut blk_out);

        for (vix, q) in tracers.iter().enumerate() {
            // Per tracer, the block traversal must equal both the separate
            // kernel and the dynamics reference, bit for bit.
            let reference = upwind_tendency(q, &u, &v, &grid, j0);
            for (p, r) in reference.as_slice().iter().enumerate() {
                assert!(
                    blk_out[p * m + vix].to_bits() == r.to_bits(),
                    "{case} tracer {vix} point {p}: block layout diverged"
                );
            }
        }
    }
}
