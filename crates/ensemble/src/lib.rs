//! Ensemble serving: many AGCM runs on a bounded rank-thread budget.
//!
//! The paper measures one model on a dedicated processor mesh. Real
//! forecast production runs *ensembles* — many perturbed configurations
//! competing for one machine. This crate is the serving layer for that
//! workload, built entirely on the repo's existing machinery:
//!
//! - **Admission control**: a bounded queue; [`Ensemble::try_submit`]
//!   bounces with [`SubmitError::QueueFull`] when it is at capacity,
//!   [`Ensemble::submit`] blocks (backpressure). Degenerate configs are
//!   rejected at the door via `AgcmConfig::validate`.
//! - **Rank-thread budget**: the scheduler caps concurrent *ranks*, not
//!   jobs. A 2×2 job charges 4; jobs dispatch when they fit, with
//!   priority-then-FIFO ordering and work-conserving backfill.
//! - **Deadlines & cancellation**: soft deadlines from submission; expiry
//!   (or [`Ensemble::cancel`]) fires a cooperative
//!   [`agcm_mps::CancelToken`] that unwinds the job's whole world through
//!   the controlled-unwind machinery shared with fault injection. A
//!   cancelled job is a verdict — never retried — and never poisons the
//!   jobs after it.
//! - **Retries**: each job runs under
//!   [`agcm_core::run_model_resilient`], so a fault-injected attempt
//!   restarts from the last committed checkpoint.
//! - **Telemetry**: each job can route its own step/run records to a
//!   per-job [`agcm_telemetry::TelemetrySink`]; the fleet aggregates
//!   queue depth, rank occupancy, throughput and p50/p95 job latency in
//!   [`FleetSnapshot`].
//! - **Multi-tenancy** (optional): a [`TenantPolicy`] adds per-tenant
//!   in-flight quotas ([`SubmitError::QuotaExceeded`]), per-tenant rank
//!   caps, and weighted fair-share dispatch for a network-facing serving
//!   layer (`agcm-server`).
//! - **Journal hooks**: a [`JobObserver`] sees every dispatch and
//!   terminal record synchronously, so a serving layer can keep a
//!   durable job journal; [`Ensemble::resubmit`] re-admits
//!   journal-recovered jobs past capacity and quota checks.
//!
//! The scheduler is deterministic in *outcomes*: scheduling order varies
//! with timing, but every completed job's per-rank results are
//! bit-identical to a solo `run_model` of the same configuration (the
//! model is a pure function of its config; see the `serving` integration
//! test).

pub mod fleet;
pub mod job;
pub mod scheduler;

pub use fleet::{FleetMetrics, FleetSnapshot};
pub use job::{CancelReason, JobId, JobRecord, JobSpec, JobStatus, Priority};
pub use scheduler::{
    Ensemble, EnsembleConfig, JobObserver, JobView, SubmitError, TenantPolicy, TenantQuota,
    ANONYMOUS_TENANT,
};
