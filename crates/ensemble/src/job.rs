//! Job descriptions and terminal records.
//!
//! A [`JobSpec`] is everything the scheduler needs to run one AGCM
//! configuration as a managed job: the config itself, a [`Priority`], an
//! optional soft deadline (measured from submission), a retry budget
//! delegated to `agcm-resilience`, an optional fault plan (for injection
//! experiments), and an optional per-job [`TelemetrySink`]. A finished job
//! — completed, cancelled, or failed — is summarized as a [`JobRecord`].

use agcm_core::{AgcmConfig, RankOutcome};
use agcm_mps::FaultPlan;
use agcm_telemetry::{RunSummary, TelemetrySink, TraceContext};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Identifier assigned at submission, unique within an ensemble.
pub type JobId = u64;

/// Scheduling priority. Higher priorities dispatch first; within a
/// priority, submission order wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Background work; runs when nothing better fits.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Jumps the queue.
    High,
}

impl Priority {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// Why a job was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The soft deadline expired (queued or mid-run).
    Deadline,
    /// [`crate::Ensemble::cancel`] was called.
    Explicit,
}

/// Terminal status of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Every rank finished; outcomes are available.
    Completed,
    /// The job's world was unwound (or the job dequeued) by cancellation.
    Cancelled(CancelReason),
    /// Retries exhausted, store failure, or a genuine panic in the model.
    Failed(String),
}

impl JobStatus {
    /// Short label for reports (`completed`, `cancelled(deadline)`, ...).
    pub fn label(&self) -> String {
        match self {
            JobStatus::Completed => "completed".to_string(),
            JobStatus::Cancelled(CancelReason::Deadline) => "cancelled(deadline)".to_string(),
            JobStatus::Cancelled(CancelReason::Explicit) => "cancelled(explicit)".to_string(),
            JobStatus::Failed(_) => "failed".to_string(),
        }
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Everything needed to run one AGCM configuration as a managed job.
#[derive(Clone)]
pub struct JobSpec {
    /// Name for reports (not required to be unique).
    pub name: String,
    /// Tenant the job is accounted to under the ensemble's
    /// [`TenantPolicy`](crate::TenantPolicy); `None` is the anonymous
    /// tenant. Quotas and fair-share dispatch key on this.
    pub tenant: Option<String>,
    /// Opaque caller correlation id, carried unchanged into the
    /// [`JobRecord`] and every [`JobObserver`](crate::JobObserver)
    /// callback. A serving layer uses it to map the ensemble's internal
    /// [`JobId`] (which changes across restarts) to its own durable id.
    pub tag: Option<u64>,
    /// The model configuration; `config.size()` is the job's rank cost
    /// against the ensemble's thread budget.
    pub config: AgcmConfig,
    /// Scheduling priority.
    pub priority: Priority,
    /// Soft deadline measured from submission; expiry cancels the job
    /// whether it is still queued or already running.
    pub deadline: Option<Duration>,
    /// Restarts allowed after a faulted attempt (checkpoint/restart via
    /// `agcm-resilience`); 0 = fail on first fault.
    pub max_restarts: usize,
    /// Fault plan injected on the job's first attempt.
    pub plan: Option<FaultPlan>,
    /// Checkpoint directory; `None` uses an ephemeral per-job temp dir
    /// removed after the run.
    pub checkpoint_dir: Option<PathBuf>,
    /// Fleet-wide content-addressed checkpoint store. When set, the
    /// job's shards route into the shared store under its config
    /// lineage instead of `checkpoint_dir`, and the job resumes from
    /// the longest committed prefix any same-lineage job already paid
    /// for. The job holds a lease on its lineage while it runs, so the
    /// store's GC cannot reclaim state under it.
    pub shared_store: Option<Arc<agcm_ckptstore::Store>>,
    /// Per-job telemetry sink; fed this job's step and run records.
    pub sink: Option<Arc<dyn TelemetrySink>>,
    /// Distributed-tracing context minted by the submitter (e.g. the
    /// serving layer at `POST /v1/jobs`). Attempt spans are derived from
    /// it deterministically (`trace.child(attempt)`), so the same trace
    /// id links the original request, every retry, and the rank-level
    /// phase spans — even across a server restart.
    pub trace: Option<TraceContext>,
    /// Sampling frequency for an in-process wall-clock profile of the
    /// job's run. `None` disables profiling (the default). Requires a
    /// `sink` to receive the report (`TelemetrySink::record_profile`).
    pub profile_hz: Option<f64>,
}

// `Arc<dyn TelemetrySink>` has no `Debug`; render the spec without it.
impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("tenant", &self.tenant)
            .field("tag", &self.tag)
            .field("ranks", &self.config.size())
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .field("max_restarts", &self.max_restarts)
            .field("has_plan", &self.plan.is_some())
            .field("has_shared_store", &self.shared_store.is_some())
            .field("has_sink", &self.sink.is_some())
            .field("trace", &self.trace.as_ref().map(|t| t.trace_hex()))
            .field("profile_hz", &self.profile_hz)
            .finish()
    }
}

impl JobSpec {
    /// A job with defaults: normal priority, no deadline, no retries, no
    /// faults, ephemeral checkpoints, no per-job sink.
    pub fn new(name: impl Into<String>, config: AgcmConfig) -> JobSpec {
        JobSpec {
            name: name.into(),
            tenant: None,
            tag: None,
            config,
            priority: Priority::Normal,
            deadline: None,
            max_restarts: 0,
            plan: None,
            checkpoint_dir: None,
            shared_store: None,
            sink: None,
            trace: None,
            profile_hz: None,
        }
    }

    /// Builder-style: account the job to `tenant`.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> JobSpec {
        self.tenant = Some(tenant.into());
        self
    }

    /// Builder-style: attach a caller correlation id.
    pub fn with_tag(mut self, tag: u64) -> JobSpec {
        self.tag = Some(tag);
        self
    }

    /// Builder-style: set the priority.
    pub fn with_priority(mut self, priority: Priority) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Builder-style: set a soft deadline from submission.
    pub fn with_deadline(mut self, deadline: Duration) -> JobSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Builder-style: allow `max_restarts` checkpoint/restart retries.
    pub fn with_retries(mut self, max_restarts: usize) -> JobSpec {
        self.max_restarts = max_restarts;
        self
    }

    /// Builder-style: inject this fault plan on the first attempt.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> JobSpec {
        self.plan = Some(plan);
        self
    }

    /// Builder-style: keep checkpoints under `dir` instead of a temp dir.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> JobSpec {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Builder-style: checkpoint into (and resume from) the fleet-wide
    /// content-addressed store.
    pub fn with_shared_store(mut self, store: Arc<agcm_ckptstore::Store>) -> JobSpec {
        self.shared_store = Some(store);
        self
    }

    /// Builder-style: route this job's telemetry to `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> JobSpec {
        self.sink = Some(sink);
        self
    }

    /// Builder-style: attach a distributed-tracing context.
    pub fn with_trace(mut self, trace: TraceContext) -> JobSpec {
        self.trace = Some(trace);
        self
    }

    /// Builder-style: sample a wall-clock profile of the run at `hz`,
    /// delivered to the job's sink when the run finishes.
    pub fn with_profile_hz(mut self, hz: f64) -> JobSpec {
        self.profile_hz = Some(hz);
        self
    }
}

/// Terminal record of one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Identifier assigned at submission.
    pub id: JobId,
    /// The spec's name.
    pub name: String,
    /// The spec's tenant.
    pub tenant: Option<String>,
    /// The spec's caller correlation id.
    pub tag: Option<u64>,
    /// Rank cost charged against the thread budget.
    pub ranks: usize,
    /// Scheduling priority it ran (or queued) at.
    pub priority: Priority,
    /// How the job ended.
    pub status: JobStatus,
    /// Model attempts made (0 = never dispatched).
    pub attempts: usize,
    /// Wall seconds spent queued before dispatch (or before terminal
    /// cancellation for jobs that never dispatched).
    pub queue_seconds: f64,
    /// Wall seconds from dispatch to completion (0 for undispatched jobs).
    pub run_seconds: f64,
    /// Config lineage hash, recorded when the job used the fleet-wide
    /// checkpoint store (reuse provenance, hex in wire views).
    pub lineage: Option<u64>,
    /// Step the job's first attempt resumed from via the shared store's
    /// prefix index; `None` means it started from step 0 (or did not
    /// use the store). `Some(s)` with `s == config.steps` means the
    /// whole run was satisfied from the store with zero recomputation.
    pub resumed_from: Option<u64>,
    /// Per-rank model outcomes (completed jobs only) — byte-for-byte the
    /// same values a solo `run_model` of the same config produces.
    pub outcome: Option<Vec<RankOutcome>>,
    /// Per-job virtual-time run summary from the trace (completed jobs
    /// with a valid trace only).
    pub summary: Option<RunSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
    }

    #[test]
    fn status_labels() {
        assert_eq!(JobStatus::Completed.label(), "completed");
        assert_eq!(
            JobStatus::Cancelled(CancelReason::Deadline).label(),
            "cancelled(deadline)"
        );
        assert_eq!(JobStatus::Failed("x".into()).label(), "failed");
    }
}
