//! The ensemble scheduler: many AGCM runs on a bounded rank-thread budget.
//!
//! An [`Ensemble`] owns a bounded admission queue and a **rank budget**:
//! the cap is on concurrent *ranks* (model threads), not jobs, mirroring
//! how the paper's runs shared a fixed processor allocation. A dispatcher
//! thread picks the highest-priority queued job that *fits* the free
//! budget — work-conserving backfill, so a wide job waiting at the head
//! does not idle ranks a narrow job could use. Each dispatched job runs in
//! its own runner thread through `agcm_core::run_model_resilient`, which
//! gives every job, for free: checkpoint/restart retries on injected
//! faults, and a cooperative [`CancelToken`] threaded down into
//! `mps::Comm` so deadline expiry or [`Ensemble::cancel`] unwinds the
//! job's whole world at the next cancellation point.
//!
//! Deadlines are *soft* and measured from submission: a job still queued
//! when its deadline passes is dequeued and recorded as
//! `Cancelled(Deadline)`; a running job has its token cancelled and
//! unwinds within one poll interval. Cancellation is a verdict, not a
//! fault — the resilience layer never retries it.
//!
//! **Multi-tenant serving.** An ensemble can optionally enforce a
//! [`TenantPolicy`]: per-tenant caps on in-flight jobs (admission-time
//! backpressure, [`SubmitError::QuotaExceeded`]) and on concurrently
//! occupied ranks (dispatch-time shaping — an over-cap job stays queued,
//! it is not rejected), plus weighted fair-share dispatch: within a
//! priority class the tenant with the lowest `occupied_ranks / weight`
//! dispatches first. Without a policy the scheduler behaves exactly as
//! before (priority then FIFO).
//!
//! **Journal hooks.** A [`JobObserver`] passed to
//! [`Ensemble::start_with_observer`] sees every dispatch and every
//! terminal record, synchronously, in commit order. A serving layer uses
//! this to keep a durable job journal; [`Ensemble::resubmit`] is the
//! matching re-admission path that bypasses capacity and quota checks
//! for jobs that were already admitted once before a restart.

use crate::fleet::{FleetMetrics, FleetSnapshot};
use crate::job::{CancelReason, JobId, JobRecord, JobSpec, JobStatus, Priority};
use agcm_ckptstore::JobStoreBackend;
use agcm_core::{run_model_resilient, ConfigError, ResilienceOpts};
use agcm_costmodel::machine::MachineProfile;
use agcm_mps::{CancelToken, FanoutObserver, SpanObserver};
use agcm_resilience::recovery::RecoveryError;
use agcm_resilience::{CheckpointStore, RunProgress};
use agcm_telemetry::{
    skew_report, ProfileConfig, Profiler, ResilienceCounters, RunMetrics, TelemetrySink,
};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tenant name used for jobs whose [`JobSpec::tenant`] is `None`.
pub const ANONYMOUS_TENANT: &str = "anonymous";

/// Per-tenant admission quota and fair-share weight.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Maximum non-terminal (queued + running) jobs the tenant may have
    /// at once; submissions beyond this bounce with
    /// [`SubmitError::QuotaExceeded`].
    pub max_in_flight: usize,
    /// Maximum ranks the tenant may occupy concurrently. This shapes
    /// *dispatch*, not admission: an over-cap job waits in the queue
    /// until the tenant's running jobs free ranks.
    pub max_running_ranks: usize,
    /// Fair-share weight: within a priority class, the tenant with the
    /// lowest `occupied_ranks / weight` dispatches first.
    pub weight: f64,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota {
            max_in_flight: 16,
            max_running_ranks: usize::MAX,
            weight: 1.0,
        }
    }
}

/// Multi-tenant admission and fair-share policy.
#[derive(Debug, Clone, Default)]
pub struct TenantPolicy {
    /// Quota applied to tenants not named in [`TenantPolicy::tenants`].
    /// `None` makes the policy *strict*: unknown tenants are rejected
    /// with [`SubmitError::UnknownTenant`].
    pub default_quota: Option<TenantQuota>,
    /// Named tenant quotas.
    pub tenants: Vec<(String, TenantQuota)>,
}

impl TenantPolicy {
    /// Add a named tenant, builder-style.
    pub fn with_tenant(mut self, name: impl Into<String>, quota: TenantQuota) -> TenantPolicy {
        self.tenants.push((name.into(), quota));
        self
    }

    /// Accept unknown tenants under `quota`, builder-style.
    pub fn with_default(mut self, quota: TenantQuota) -> TenantPolicy {
        self.default_quota = Some(quota);
        self
    }

    /// Resolve the quota a tenant is subject to; `None` means the tenant
    /// is not admissible at all (strict policy, unknown name).
    pub fn quota_for(&self, tenant: &str) -> Option<&TenantQuota> {
        self.tenants
            .iter()
            .find(|(n, _)| n == tenant)
            .map(|(_, q)| q)
            .or(self.default_quota.as_ref())
    }
}

/// Synchronous lifecycle hooks, called with the scheduler lock held —
/// implementations must be fast and must not call back into the
/// [`Ensemble`]. Events arrive in commit order: a job's dispatch always
/// precedes its terminal record, and a terminal record is delivered
/// exactly once per job.
pub trait JobObserver: Send + Sync {
    /// A job left the queue and its world is about to start.
    fn on_dispatch(&self, id: JobId, tag: Option<u64>) {
        let _ = (id, tag);
    }
    /// A job reached a terminal state (completed, cancelled, or failed —
    /// whether or not it was ever dispatched).
    fn on_terminal(&self, record: &JobRecord) {
        let _ = record;
    }
}

/// Ensemble-wide knobs.
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// Maximum concurrent *ranks* (model threads) across all running
    /// jobs. A job of `config.size()` ranks charges that many against
    /// the budget for its whole run.
    pub rank_budget: usize,
    /// Maximum queued (admitted, not yet dispatched) jobs; submissions
    /// beyond this bounce with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Machine profile used to derive each completed job's virtual-time
    /// [`agcm_telemetry::RunSummary`].
    pub machine: MachineProfile,
    /// Dispatcher poll interval: bounds how late a deadline can fire.
    pub poll: Duration,
    /// Optional multi-tenant quotas and fair-share weights. `None`
    /// disables all tenant accounting (single-tenant behavior).
    pub tenancy: Option<TenantPolicy>,
}

impl Default for EnsembleConfig {
    fn default() -> EnsembleConfig {
        EnsembleConfig {
            rank_budget: 8,
            queue_capacity: 64,
            machine: MachineProfile::t3d(),
            poll: Duration::from_millis(2),
            tenancy: None,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity (backpressure).
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// The job needs more ranks than the budget can ever grant.
    TooLarge {
        /// Ranks the job needs.
        ranks: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The job's model configuration is degenerate.
    InvalidConfig(ConfigError),
    /// The tenant is at its in-flight job quota (per-tenant
    /// backpressure; other tenants are unaffected).
    QuotaExceeded {
        /// Tenant being throttled.
        tenant: String,
        /// The tenant's non-terminal jobs at the time of submission.
        in_flight: usize,
        /// The configured [`TenantQuota::max_in_flight`].
        max_in_flight: usize,
    },
    /// The policy is strict and does not know this tenant.
    UnknownTenant {
        /// The tenant name that was presented.
        tenant: String,
    },
    /// [`Ensemble::join`] has begun; no new work is admitted.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            SubmitError::TooLarge { ranks, budget } => {
                write!(f, "job needs {ranks} ranks but the budget is {budget}")
            }
            SubmitError::InvalidConfig(e) => write!(f, "invalid config: {e}"),
            SubmitError::QuotaExceeded {
                tenant,
                in_flight,
                max_in_flight,
            } => write!(
                f,
                "tenant '{tenant}' is at its quota ({in_flight} of {max_in_flight} jobs in flight)"
            ),
            SubmitError::UnknownTenant { tenant } => {
                write!(f, "unknown tenant '{tenant}'")
            }
            SubmitError::ShuttingDown => write!(f, "ensemble is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::InvalidConfig(e) => Some(e),
            _ => None,
        }
    }
}

/// A job admitted but not yet dispatched.
struct PendingJob {
    id: JobId,
    spec: JobSpec,
    submitted: Instant,
    /// Admission order; ties within a priority dispatch FIFO.
    seq: u64,
}

impl PendingJob {
    fn tenant(&self) -> &str {
        self.spec.tenant.as_deref().unwrap_or(ANONYMOUS_TENANT)
    }

    /// Terminal record for a job that never dispatched.
    fn undispatched_record(&self, status: JobStatus) -> JobRecord {
        JobRecord {
            id: self.id,
            name: self.spec.name.clone(),
            tenant: self.spec.tenant.clone(),
            tag: self.spec.tag,
            ranks: self.spec.config.size(),
            priority: self.spec.priority,
            status,
            attempts: 0,
            queue_seconds: self.submitted.elapsed().as_secs_f64(),
            run_seconds: 0.0,
            lineage: None,
            resumed_from: None,
            outcome: None,
            summary: None,
        }
    }

    /// Lease key the job holds on its lineage in the shared store: the
    /// caller's durable tag when present, else the ensemble id. Using
    /// the tag lets a serving layer release the same lease later by the
    /// only identifier *it* persists across restarts.
    fn lease_key(&self) -> u64 {
        self.spec.tag.unwrap_or(self.id)
    }
}

/// A job currently occupying ranks.
struct RunningJob {
    id: JobId,
    ranks: usize,
    tenant: String,
    token: CancelToken,
    deadline: Option<Instant>,
    /// Set (before the token fires) when the cancellation came from the
    /// deadline watchdog, so the terminal record can name the reason.
    deadline_hit: Arc<AtomicBool>,
    /// Committed prefix step the shared checkpoint store promised at
    /// dispatch (`None` = cold start or no store) — surfaced live in
    /// [`JobView::Running`].
    resumed_from: Option<u64>,
}

struct SchedState {
    next_seq: u64,
    pending: Vec<PendingJob>,
    running: Vec<RunningJob>,
    records: Vec<JobRecord>,
    free_ranks: usize,
    shutdown: bool,
}

struct Shared {
    cfg: EnsembleConfig,
    state: Mutex<SchedState>,
    /// New work, a finished job, or shutdown — wakes the dispatcher.
    work: Condvar,
    /// Queue space freed — wakes blocking [`Ensemble::submit`] callers.
    space: Condvar,
    /// A job reached a terminal state — wakes [`Ensemble::join`].
    done: Condvar,
    fleet: FleetMetrics,
    next_id: AtomicU64,
    observer: Option<Arc<dyn JobObserver>>,
}

impl Shared {
    /// Record a terminal state: observer first (journal write-ahead),
    /// then the in-memory record. Called with the scheduler lock held.
    fn commit_terminal(&self, st: &mut SchedState, record: JobRecord) {
        if let Some(obs) = &self.observer {
            obs.on_terminal(&record);
        }
        st.records.push(record);
    }
}

/// Point-in-time view of one job, from [`Ensemble::status`].
#[derive(Debug, Clone)]
pub enum JobView {
    /// Admitted, not yet dispatched. `position` is 1-based in dispatch
    /// order (priority, then FIFO) — the job's place in the fleet queue.
    Queued {
        /// 1-based dispatch position among queued jobs.
        position: usize,
        /// Ranks the job will charge when dispatched.
        ranks: usize,
    },
    /// Dispatched and occupying ranks.
    Running {
        /// Ranks currently charged against the budget.
        ranks: usize,
        /// Step the shared checkpoint store resumed the job from at
        /// dispatch (`None` = cold start or no store) — reuse
        /// provenance, visible while the job runs.
        resumed_from: Option<u64>,
    },
    /// Terminal; the full record.
    Done(Box<JobRecord>),
}

/// A running ensemble: submit jobs, cancel them, then [`join`] for the
/// terminal records.
///
/// [`join`]: Ensemble::join
pub struct Ensemble {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Ensemble {
    /// Start an ensemble: spawns the dispatcher thread.
    pub fn start(cfg: EnsembleConfig) -> Ensemble {
        Ensemble::start_inner(cfg, None)
    }

    /// Start an ensemble with a [`JobObserver`] receiving dispatch and
    /// terminal events (e.g. a serving layer's durable job journal).
    pub fn start_with_observer(cfg: EnsembleConfig, observer: Arc<dyn JobObserver>) -> Ensemble {
        Ensemble::start_inner(cfg, Some(observer))
    }

    fn start_inner(cfg: EnsembleConfig, observer: Option<Arc<dyn JobObserver>>) -> Ensemble {
        assert!(cfg.rank_budget > 0, "rank budget must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                next_seq: 0,
                pending: Vec::new(),
                running: Vec::new(),
                records: Vec::new(),
                free_ranks: cfg.rank_budget,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            done: Condvar::new(),
            fleet: FleetMetrics::new(),
            next_id: AtomicU64::new(1),
            observer,
            cfg,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ensemble-dispatcher".into())
                .spawn(move || dispatcher_loop(&shared))
                .expect("spawn dispatcher")
        };
        Ensemble {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Validate admissibility without touching the queue.
    fn admissible(&self, spec: &JobSpec) -> Result<usize, SubmitError> {
        if let Err(e) = spec.config.validate() {
            return Err(SubmitError::InvalidConfig(e));
        }
        let ranks = spec.config.size();
        if ranks > self.shared.cfg.rank_budget {
            return Err(SubmitError::TooLarge {
                ranks,
                budget: self.shared.cfg.rank_budget,
            });
        }
        Ok(ranks)
    }

    /// Would `spec` be admitted right now? Applies every
    /// [`Ensemble::try_submit`] verdict (validity, rank budget, shutdown,
    /// queue capacity, tenant quota) without enqueuing anything; a
    /// rejection counts against the fleet's rejected counter. The answer
    /// can go stale the moment the lock drops, so callers doing durable
    /// work between this check and `try_submit` (e.g. a write-ahead
    /// journal record) must still handle a `try_submit` rejection.
    pub fn admission_check(&self, spec: &JobSpec) -> Result<(), SubmitError> {
        let check = self.admissible(spec);
        let st = self.shared.state.lock().unwrap();
        let verdict = check.and_then(|_| {
            if st.shutdown {
                Err(SubmitError::ShuttingDown)
            } else if st.pending.len() >= self.shared.cfg.queue_capacity {
                Err(SubmitError::QueueFull {
                    capacity: self.shared.cfg.queue_capacity,
                })
            } else {
                self.tenant_admission(&st, spec)
            }
        });
        if let Err(e) = verdict {
            self.shared.fleet.on_reject();
            return Err(e);
        }
        Ok(())
    }

    /// Admit `spec` without blocking; bounces with
    /// [`SubmitError::QueueFull`] when the queue is at capacity.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let check = self.admissible(&spec);
        let mut st = self.shared.state.lock().unwrap();
        let verdict = check.and_then(|_| {
            if st.shutdown {
                Err(SubmitError::ShuttingDown)
            } else if st.pending.len() >= self.shared.cfg.queue_capacity {
                Err(SubmitError::QueueFull {
                    capacity: self.shared.cfg.queue_capacity,
                })
            } else {
                self.tenant_admission(&st, &spec)
            }
        });
        if let Err(e) = verdict {
            self.shared.fleet.on_reject();
            return Err(e);
        }
        Ok(self.enqueue(&mut st, spec))
    }

    /// Admit `spec`, blocking while the queue is full (backpressure).
    /// Still fails fast on the conditions waiting cannot fix — including
    /// a tenant at its in-flight quota, which must drain its *own* jobs.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        if let Err(e) = self.admissible(&spec) {
            self.shared.fleet.on_reject();
            return Err(e);
        }
        let mut st = self.shared.state.lock().unwrap();
        while !st.shutdown && st.pending.len() >= self.shared.cfg.queue_capacity {
            st = self.shared.space.wait(st).unwrap();
        }
        if st.shutdown {
            self.shared.fleet.on_reject();
            return Err(SubmitError::ShuttingDown);
        }
        if let Err(e) = self.tenant_admission(&st, &spec) {
            self.shared.fleet.on_reject();
            return Err(e);
        }
        Ok(self.enqueue(&mut st, spec))
    }

    /// Re-admission path for journal recovery: the job was admitted once
    /// before a restart, so queue capacity and tenant quotas are
    /// bypassed — only config validity and the hard rank budget apply.
    pub fn resubmit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let check = self.admissible(&spec);
        let mut st = self.shared.state.lock().unwrap();
        let verdict = check.and_then(|_| {
            if st.shutdown {
                Err(SubmitError::ShuttingDown)
            } else {
                Ok(())
            }
        });
        if let Err(e) = verdict {
            self.shared.fleet.on_reject();
            return Err(e);
        }
        Ok(self.enqueue(&mut st, spec))
    }

    /// Enforce the tenant policy at admission. Called with the lock held.
    fn tenant_admission(&self, st: &SchedState, spec: &JobSpec) -> Result<(), SubmitError> {
        let Some(policy) = &self.shared.cfg.tenancy else {
            return Ok(());
        };
        let tenant = spec.tenant.as_deref().unwrap_or(ANONYMOUS_TENANT);
        let Some(quota) = policy.quota_for(tenant) else {
            return Err(SubmitError::UnknownTenant {
                tenant: tenant.to_string(),
            });
        };
        let in_flight = st.pending.iter().filter(|p| p.tenant() == tenant).count()
            + st.running.iter().filter(|r| r.tenant == tenant).count();
        if in_flight >= quota.max_in_flight {
            return Err(SubmitError::QuotaExceeded {
                tenant: tenant.to_string(),
                in_flight,
                max_in_flight: quota.max_in_flight,
            });
        }
        Ok(())
    }

    /// Point-in-time view of one job: queued (with its 1-based dispatch
    /// position), running, or terminal. `None` if the id was never
    /// assigned or its record was already drained by [`Ensemble::join`].
    pub fn status(&self, id: JobId) -> Option<JobView> {
        let st = self.shared.state.lock().unwrap();
        if let Some(p) = st.pending.iter().find(|p| p.id == id) {
            let key = (p.spec.priority, std::cmp::Reverse(p.seq));
            let position = 1 + st
                .pending
                .iter()
                .filter(|q| (q.spec.priority, std::cmp::Reverse(q.seq)) > key)
                .count();
            return Some(JobView::Queued {
                position,
                ranks: p.spec.config.size(),
            });
        }
        if let Some(r) = st.running.iter().find(|r| r.id == id) {
            return Some(JobView::Running {
                ranks: r.ranks,
                resumed_from: r.resumed_from,
            });
        }
        st.records
            .iter()
            .find(|r| r.id == id)
            .map(|r| JobView::Done(Box::new(r.clone())))
    }

    fn enqueue(&self, st: &mut SchedState, spec: JobSpec) -> JobId {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let seq = st.next_seq;
        st.next_seq += 1;
        st.pending.push(PendingJob {
            id,
            spec,
            submitted: Instant::now(),
            seq,
        });
        self.shared.fleet.on_submit(st.pending.len());
        self.shared.work.notify_all();
        id
    }

    /// Cancel a job. A queued job is dequeued and recorded
    /// `Cancelled(Explicit)` immediately; a running job has its token
    /// cancelled and unwinds cooperatively. Returns `false` if the id is
    /// unknown or already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.shared.state.lock().unwrap();
        if let Some(i) = st.pending.iter().position(|p| p.id == id) {
            let p = st.pending.remove(i);
            let record = p.undispatched_record(JobStatus::Cancelled(CancelReason::Explicit));
            self.shared.commit_terminal(&mut st, record);
            self.shared.fleet.on_cancel();
            self.shared.space.notify_all();
            self.shared.done.notify_all();
            return true;
        }
        if let Some(r) = st.running.iter().find(|r| r.id == id) {
            r.token.cancel();
            return true;
        }
        false
    }

    /// Current fleet-level metrics.
    pub fn fleet(&self) -> FleetSnapshot {
        self.shared.fleet.snapshot()
    }

    /// Stop admitting, drain everything queued and running, and return
    /// all terminal records sorted by job id.
    pub fn join(mut self) -> Vec<JobRecord> {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
            self.shared.space.notify_all();
            while !st.pending.is_empty() || !st.running.is_empty() {
                st = self.shared.done.wait(st).unwrap();
            }
        }
        if let Some(h) = self.dispatcher.take() {
            self.shared.work.notify_all();
            let _ = h.join();
        }
        let mut records = std::mem::take(&mut self.shared.state.lock().unwrap().records);
        records.sort_by_key(|r| r.id);
        records
    }
}

impl Drop for Ensemble {
    /// Dropping without [`Ensemble::join`] aborts: queued jobs are
    /// recorded `Cancelled(Explicit)`, running jobs have their tokens
    /// cancelled, and the drop blocks until the world threads unwind.
    fn drop(&mut self) {
        let Some(h) = self.dispatcher.take() else {
            return;
        };
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            while let Some(p) = st.pending.pop() {
                let record = p.undispatched_record(JobStatus::Cancelled(CancelReason::Explicit));
                self.shared.commit_terminal(&mut st, record);
                self.shared.fleet.on_cancel();
            }
            for r in &st.running {
                r.token.cancel();
            }
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        let _ = h.join();
    }
}

/// The dispatcher: deadline watchdog + work-conserving backfill.
fn dispatcher_loop(shared: &Arc<Shared>) {
    let mut runners: Vec<JoinHandle<()>> = Vec::new();
    let mut st = shared.state.lock().unwrap();
    loop {
        let now = Instant::now();

        // Queued jobs whose deadline already passed never dispatch.
        let mut i = 0;
        while i < st.pending.len() {
            let expired = st.pending[i]
                .spec
                .deadline
                .is_some_and(|d| now.duration_since(st.pending[i].submitted) >= d);
            if expired {
                let p = st.pending.remove(i);
                let record = p.undispatched_record(JobStatus::Cancelled(CancelReason::Deadline));
                shared.commit_terminal(&mut st, record);
                shared.fleet.on_cancel();
                shared.space.notify_all();
                shared.done.notify_all();
            } else {
                i += 1;
            }
        }

        // Running jobs past deadline: mark the reason, then fire the token.
        for r in &st.running {
            if let Some(dl) = r.deadline {
                if now >= dl && !r.deadline_hit.load(Ordering::SeqCst) {
                    r.deadline_hit.store(true, Ordering::SeqCst);
                    r.token.cancel();
                }
            }
        }

        // Work-conserving backfill: repeatedly dispatch the best eligible
        // job that fits the free budget, even if a wider, better-priority
        // job is stuck waiting for space. With a tenant policy, "best"
        // also folds in per-tenant rank caps and weighted fair share.
        while let Some(i) = pick_next(shared, &st) {
            let p = st.pending.remove(i);
            dispatch(shared, &mut st, p, &mut runners);
        }

        if st.shutdown && st.pending.is_empty() && st.running.is_empty() {
            break;
        }
        // Poll: bounds deadline-firing latency; work/done also wake us.
        let (guard, _) = shared.work.wait_timeout(st, shared.cfg.poll).unwrap();
        st = guard;
    }
    drop(st);
    // `running` is empty, so every runner is past its finalize section.
    for h in runners {
        let _ = h.join();
    }
}

/// Choose the next pending job to dispatch, or `None` if nothing fits.
///
/// Without a tenant policy: highest priority, then FIFO, among jobs that
/// fit the free budget — identical to the pre-tenancy scheduler. With a
/// policy: jobs whose tenant would exceed its running-rank cap are
/// skipped (they stay queued), and priority ties break by weighted fair
/// share — the tenant with the lowest `occupied_ranks / weight` wins,
/// then FIFO.
fn pick_next(shared: &Shared, st: &SchedState) -> Option<usize> {
    let policy = shared.cfg.tenancy.as_ref();
    // (index, priority, fair-share usage, seq) of the best candidate.
    let mut best: Option<(usize, Priority, f64, u64)> = None;
    for (i, p) in st.pending.iter().enumerate() {
        let ranks = p.spec.config.size();
        if ranks > st.free_ranks {
            continue;
        }
        let mut usage = 0.0;
        if let Some(policy) = policy {
            let tenant = p.tenant();
            // Unknown tenants (possible via `resubmit` after a policy
            // change) carry no cap and usage 0.
            if let Some(q) = policy.quota_for(tenant) {
                let occupied: usize = st
                    .running
                    .iter()
                    .filter(|r| r.tenant == tenant)
                    .map(|r| r.ranks)
                    .sum();
                if occupied + ranks > q.max_running_ranks {
                    continue;
                }
                usage = occupied as f64 / q.weight.max(1e-9);
            }
        }
        let better = match best {
            None => true,
            Some((_, bp, bu, bs)) => {
                p.spec.priority > bp
                    || (p.spec.priority == bp && (usage < bu || (usage == bu && p.seq < bs)))
            }
        };
        if better {
            best = Some((i, p.spec.priority, usage, p.seq));
        }
    }
    best.map(|(i, _, _, _)| i)
}

/// Move one job from pending to running and spawn its runner thread.
fn dispatch(
    shared: &Arc<Shared>,
    st: &mut SchedState,
    p: PendingJob,
    runners: &mut Vec<JoinHandle<()>>,
) {
    let ranks = p.spec.config.size();
    debug_assert!(ranks <= st.free_ranks);
    st.free_ranks -= ranks;
    let token = CancelToken::new();
    let deadline_hit = Arc::new(AtomicBool::new(false));
    // Fleet checkpoint store: consult the prefix index under the
    // scheduler lock and take the lineage lease *now*, before the runner
    // thread exists — a concurrent GC between dispatch and the first
    // shard read must not reclaim the prefix the job is about to resume
    // from. `(lineage, planned_resume)` travels to the runner so the
    // terminal record can carry reuse provenance.
    let store_ctx = p.spec.shared_store.as_ref().map(|store| {
        let lineage = p.spec.config.lineage();
        let planned = store.longest_prefix(lineage, p.spec.config.steps as u64);
        store.acquire(lineage, p.lease_key());
        (lineage, planned)
    });
    st.running.push(RunningJob {
        id: p.id,
        ranks,
        tenant: p.tenant().to_string(),
        token: token.clone(),
        deadline: p.spec.deadline.map(|d| p.submitted + d),
        deadline_hit: Arc::clone(&deadline_hit),
        resumed_from: store_ctx.and_then(|(_, planned)| planned),
    });
    let queue_seconds = p.submitted.elapsed().as_secs_f64();
    shared.fleet.on_dispatch(
        queue_seconds,
        shared.cfg.rank_budget - st.free_ranks,
        st.pending.len(),
    );
    if let Some(obs) = &shared.observer {
        obs.on_dispatch(p.id, p.spec.tag);
    }
    let shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("ensemble-job-{}", p.id))
        .spawn(move || run_job(&shared, p, store_ctx, queue_seconds, token, deadline_hit))
        .expect("spawn job runner");
    runners.push(handle);
}

/// Bridges the resilience layer's progress hooks and the mps substrate's
/// phase spans to a job's per-job [`TelemetrySink`], so a live telemetry
/// plane sees attempts, checkpoint commits and per-rank phase timings
/// *while the job runs*, not just from the post-hoc trace.
///
/// Phase pairing is done here: `phase_begin`/`phase_end` arrive on the
/// rank's own thread, and nesting is strict (the mps `Comm` guarantees
/// balanced begin/end per rank), so a per-rank stack of open phases with
/// wall-clock start instants suffices. Unbalanced ends (possible only if
/// a rank's world unwinds mid-phase) are dropped, never mispaired.
struct SinkBridge {
    sink: Arc<dyn TelemetrySink>,
    /// Per-rank stacks of `(phase, begin_instant)`.
    open: Mutex<Vec<Vec<(&'static str, Instant)>>>,
}

impl SinkBridge {
    fn new(sink: Arc<dyn TelemetrySink>) -> SinkBridge {
        SinkBridge {
            sink,
            open: Mutex::new(Vec::new()),
        }
    }
}

impl RunProgress for SinkBridge {
    fn on_attempt(&self, attempt: usize, resumed_from: Option<u64>) {
        // A retry re-enters every rank's world from scratch: any phases
        // left open by the faulted attempt will never see their end.
        self.open.lock().unwrap().clear();
        self.sink.record_attempt(attempt as u64, resumed_from);
    }

    fn on_checkpoint(&self, step: u64) {
        self.sink.record_checkpoint(step);
    }
}

impl SpanObserver for SinkBridge {
    fn phase_begin(&self, rank: usize, name: &'static str) {
        let mut open = self.open.lock().unwrap();
        if open.len() <= rank {
            open.resize_with(rank + 1, Vec::new);
        }
        open[rank].push((name, Instant::now()));
    }

    fn phase_end(&self, rank: usize, name: &'static str) {
        let begun = {
            let mut open = self.open.lock().unwrap();
            match open.get_mut(rank) {
                Some(stack) if stack.last().is_some_and(|(n, _)| *n == name) => stack.pop(),
                _ => None,
            }
        };
        if let Some((_, begin)) = begun {
            self.sink
                .record_live_phase(rank as u32, name, begin.elapsed().as_secs_f64());
        }
    }
}

/// Observes the first attempt's resume step so the terminal
/// [`JobRecord`] can report where the shared store actually picked the
/// run up — as opposed to the prefix *planned* at dispatch, which a
/// concurrent same-lineage job may have extended in the meantime.
/// Forwards every hook to an optional inner progress sink unchanged.
struct ResumeRecorder {
    seen_first: AtomicBool,
    /// First attempt's resume step; `u64::MAX` = cold start (steps are
    /// far below that, so the sentinel is unambiguous).
    first_resume: AtomicU64,
    inner: Option<Arc<dyn RunProgress>>,
}

impl ResumeRecorder {
    fn new(inner: Option<Arc<dyn RunProgress>>) -> ResumeRecorder {
        ResumeRecorder {
            seen_first: AtomicBool::new(false),
            first_resume: AtomicU64::new(u64::MAX),
            inner,
        }
    }

    fn first(&self) -> Option<u64> {
        match self.first_resume.load(Ordering::SeqCst) {
            u64::MAX => None,
            step => Some(step),
        }
    }
}

impl RunProgress for ResumeRecorder {
    fn on_attempt(&self, attempt: usize, resumed_from: Option<u64>) {
        if !self.seen_first.swap(true, Ordering::SeqCst) {
            self.first_resume
                .store(resumed_from.unwrap_or(u64::MAX), Ordering::SeqCst);
        }
        if let Some(inner) = &self.inner {
            inner.on_attempt(attempt, resumed_from);
        }
    }

    fn on_checkpoint(&self, step: u64) {
        if let Some(inner) = &self.inner {
            inner.on_checkpoint(step);
        }
    }
}

/// Runner thread body: run the model resiliently, summarize, finalize.
fn run_job(
    shared: &Arc<Shared>,
    p: PendingJob,
    store_ctx: Option<(u64, Option<u64>)>,
    queue_seconds: f64,
    token: CancelToken,
    deadline_hit: Arc<AtomicBool>,
) {
    let lease_key = p.lease_key();
    let spec = p.spec;
    let dispatched = Instant::now();
    let (dir, ephemeral) = match &spec.checkpoint_dir {
        Some(d) => (d.clone(), false),
        None => (
            std::env::temp_dir().join(format!("agcm-ensemble-{}-{}", std::process::id(), p.id)),
            true,
        ),
    };
    // With a shared store the directory store is only a shell: every
    // shard routes through the content-addressed backend, clamped to
    // this job's horizon so a longer-lived lineage never hands back a
    // checkpoint past `config.steps`.
    let mut opts = match (&spec.shared_store, store_ctx) {
        (Some(store), Some((lineage, _))) => {
            let backend =
                JobStoreBackend::new(Arc::clone(store), lineage, spec.config.steps as u64);
            ResilienceOpts::from_store(CheckpointStore::new(&dir).with_backend(Arc::new(backend)))
        }
        _ => ResilienceOpts::new(&dir),
    }
    .with_cancel(token);
    opts.max_restarts = spec.max_restarts;
    opts.plan = spec.plan.clone();
    let mut span_obs: Vec<Arc<dyn SpanObserver>> = Vec::new();
    let mut profiler: Option<Profiler> = None;
    let mut progress_inner: Option<Arc<dyn RunProgress>> = None;
    if let Some(sink) = spec.sink.as_ref().filter(|s| s.enabled()) {
        let bridge = Arc::new(SinkBridge::new(Arc::clone(sink)));
        progress_inner = Some(Arc::clone(&bridge) as Arc<dyn RunProgress>);
        span_obs.push(bridge as Arc<dyn SpanObserver>);
        // Profiling needs a sink to deliver the report to, so it is
        // gated on the same condition as the live bridge.
        if let Some(hz) = spec.profile_hz {
            let p = Profiler::start(ProfileConfig::at_hz(hz));
            span_obs.push(p.observer());
            profiler = Some(p);
        }
    }
    let recorder = Arc::new(ResumeRecorder::new(progress_inner));
    opts = opts.with_progress(Arc::clone(&recorder) as Arc<dyn RunProgress>);
    opts = match span_obs.len() {
        0 => opts,
        1 => opts.with_spans(span_obs.pop().expect("one observer")),
        _ => opts.with_spans(Arc::new(FanoutObserver::new(span_obs)) as Arc<dyn SpanObserver>),
    };

    let result = catch_unwind(AssertUnwindSafe(|| run_model_resilient(spec.config, opts)));
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Give back the lineage lease taken at dispatch — on every terminal
    // path, including cancellation and panic. Release does not reclaim:
    // the committed prefix stays cached for a resubmission until an
    // explicit GC sweeps unleased lineages.
    if let (Some(store), Some((lineage, _))) = (&spec.shared_store, store_ctx) {
        store.release(lineage, lease_key);
    }
    let run_seconds = dispatched.elapsed().as_secs_f64();

    // Deliver the sampled profile (if any) to the job's sink, joined
    // against the cost model when the run completed with a usable trace.
    if let Some(p) = profiler.take() {
        let report = p.stop();
        if let Some(sink) = spec.sink.as_ref().filter(|s| s.enabled()) {
            let skew = match &result {
                Ok(Ok(run)) => skew_report(&report, &run.trace, &shared.cfg.machine).ok(),
                _ => None,
            };
            sink.record_profile(&report, skew.as_ref());
        }
    }

    let (status, attempts, outcome, summary) = match result {
        Ok(Ok(run)) => {
            // Per-job telemetry: derive virtual-time metrics from the
            // successful attempt's trace and feed this job's own sink —
            // deliberately bypassing the process-global telemetry
            // pipeline, which is shared by every job.
            let summary = RunMetrics::from_trace_with_timeline(&run.trace, &shared.cfg.machine)
                .ok()
                .map(|(metrics, timeline)| {
                    let mut summary = metrics.summary.clone();
                    summary.resilience = Some(ResilienceCounters {
                        attempts: run.attempts as u64,
                        failures: run.failures.len() as u64,
                        fault_events: run.fault_events.iter().map(|e| e.len() as u64).sum(),
                    });
                    if let Some(sink) = spec.sink.as_ref().filter(|s| s.enabled()) {
                        // Authoritative per-(rank, phase) virtual totals,
                        // streamed pre-summed so a live collector taking
                        // max-over-ranks reproduces `summary.phase_seconds`
                        // bit-for-bit (same values, same reduction).
                        let mut span_counts: std::collections::HashMap<(usize, &str), u64> =
                            std::collections::HashMap::new();
                        for s in &timeline.spans {
                            *span_counts.entry((s.rank, s.name)).or_insert(0) += 1;
                        }
                        for (rank, phases) in timeline.phase_seconds_per_rank().iter().enumerate() {
                            for (phase, secs) in phases {
                                let spans = span_counts.get(&(rank, *phase)).copied().unwrap_or(0);
                                sink.record_rank_phase(rank as u32, phase, *secs, spans);
                            }
                        }
                        for step in &metrics.steps {
                            sink.record_step(step);
                        }
                        sink.record_run(&summary);
                    }
                    summary
                });
            (JobStatus::Completed, run.attempts, Some(run.ranks), summary)
        }
        Ok(Err(RecoveryError::Cancelled { attempts })) => {
            let reason = if deadline_hit.load(Ordering::SeqCst) {
                CancelReason::Deadline
            } else {
                CancelReason::Explicit
            };
            (JobStatus::Cancelled(reason), attempts, None, None)
        }
        Ok(Err(e)) => {
            let attempts = match &e {
                RecoveryError::RestartsExhausted { attempts, .. } => *attempts,
                _ => 0,
            };
            (JobStatus::Failed(e.to_string()), attempts, None, None)
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            (JobStatus::Failed(format!("panic: {msg}")), 1, None, None)
        }
    };

    let mut st = shared.state.lock().unwrap();
    let pos = st
        .running
        .iter()
        .position(|r| r.id == p.id)
        .expect("finished job is in the running set");
    let r = st.running.remove(pos);
    st.free_ranks += r.ranks;
    shared
        .fleet
        .on_release(shared.cfg.rank_budget - st.free_ranks);
    match &status {
        JobStatus::Completed => shared
            .fleet
            .on_complete(queue_seconds + run_seconds, attempts.saturating_sub(1)),
        JobStatus::Cancelled(_) => shared.fleet.on_cancel(),
        JobStatus::Failed(_) => shared.fleet.on_fail(),
    }
    let record = JobRecord {
        id: p.id,
        name: spec.name,
        tenant: spec.tenant,
        tag: spec.tag,
        ranks: r.ranks,
        priority: spec.priority,
        status,
        attempts,
        queue_seconds,
        run_seconds,
        lineage: store_ctx.map(|(lineage, _)| lineage),
        resumed_from: recorder.first(),
        outcome,
        summary,
    };
    shared.commit_terminal(&mut st, record);
    drop(st);
    shared.work.notify_all();
    shared.space.notify_all();
    shared.done.notify_all();
}
