//! Fleet-level telemetry: one registry for the whole ensemble.
//!
//! Each job routes its own step/run records to its own
//! [`agcm_telemetry::TelemetrySink`]; the fleet registry aggregates the
//! serving-level view — jobs by terminal state, queue depth, rank-budget
//! occupancy, and job latency through the existing log-bucketed
//! [`agcm_telemetry::Histogram`]s (p50/p95 via
//! [`HistogramSnapshot::quantile`]). The registry here is **owned**, not
//! the process-global `agcm_telemetry::registry()`: an ensemble is an
//! object, and two ensembles in one process must not share counters.

use agcm_telemetry::json::Value;
use agcm_telemetry::{HistogramSnapshot, MetricsRegistry};
use std::time::Instant;

/// Fleet-level metrics over an owned [`MetricsRegistry`]. All update
/// methods are called with the scheduler lock held, so the peak gauges'
/// read-modify-write is race-free.
pub struct FleetMetrics {
    registry: MetricsRegistry,
    started: Instant,
}

impl FleetMetrics {
    pub(crate) fn new() -> FleetMetrics {
        FleetMetrics {
            registry: MetricsRegistry::new(),
            started: Instant::now(),
        }
    }

    fn bump_peak(&self, gauge: &str, peak: &str, value: f64) {
        self.registry.gauge(gauge).set(value);
        let p = self.registry.gauge(peak);
        if value > p.get() {
            p.set(value);
        }
    }

    pub(crate) fn on_submit(&self, queue_depth: usize) {
        self.registry.counter("fleet.jobs_submitted").inc();
        self.bump_peak(
            "fleet.queue_depth",
            "fleet.queue_depth_peak",
            queue_depth as f64,
        );
    }

    pub(crate) fn on_reject(&self) {
        self.registry.counter("fleet.jobs_rejected").inc();
    }

    pub(crate) fn on_dispatch(&self, queue_wait_seconds: f64, ranks_busy: usize, depth: usize) {
        self.registry
            .histogram("fleet.queue_wait_seconds")
            .observe(queue_wait_seconds);
        self.bump_peak(
            "fleet.ranks_busy",
            "fleet.ranks_busy_peak",
            ranks_busy as f64,
        );
        self.registry.gauge("fleet.queue_depth").set(depth as f64);
    }

    pub(crate) fn on_release(&self, ranks_busy: usize) {
        self.registry
            .gauge("fleet.ranks_busy")
            .set(ranks_busy as f64);
    }

    pub(crate) fn on_complete(&self, latency_seconds: f64, retries: usize) {
        self.registry.counter("fleet.jobs_completed").inc();
        self.registry
            .counter("fleet.job_retries")
            .add(retries as u64);
        self.registry
            .histogram("fleet.job_seconds")
            .observe(latency_seconds);
    }

    pub(crate) fn on_cancel(&self) {
        self.registry.counter("fleet.jobs_cancelled").inc();
    }

    pub(crate) fn on_fail(&self) {
        self.registry.counter("fleet.jobs_failed").inc();
    }

    /// Point-in-time derived view.
    pub fn snapshot(&self) -> FleetSnapshot {
        let snap = self.registry.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        let gauge = |name: &str| {
            snap.gauges
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0.0, |(_, v)| *v)
        };
        let histogram = |name: &str| {
            snap.histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.clone())
                .unwrap_or(HistogramSnapshot {
                    count: 0,
                    sum: 0.0,
                    buckets: Vec::new(),
                })
        };
        let job_seconds = histogram("fleet.job_seconds");
        let elapsed = self.started.elapsed().as_secs_f64();
        let completed = counter("fleet.jobs_completed");
        FleetSnapshot {
            jobs_submitted: counter("fleet.jobs_submitted"),
            jobs_completed: completed,
            jobs_cancelled: counter("fleet.jobs_cancelled"),
            jobs_failed: counter("fleet.jobs_failed"),
            jobs_rejected: counter("fleet.jobs_rejected"),
            job_retries: counter("fleet.job_retries"),
            queue_depth: gauge("fleet.queue_depth"),
            queue_depth_peak: gauge("fleet.queue_depth_peak"),
            ranks_busy: gauge("fleet.ranks_busy"),
            ranks_busy_peak: gauge("fleet.ranks_busy_peak"),
            elapsed_seconds: elapsed,
            throughput_jobs_per_second: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            latency_p50: job_seconds.quantile(0.50),
            latency_p95: job_seconds.quantile(0.95),
            queue_wait: histogram("fleet.queue_wait_seconds"),
            job_seconds,
        }
    }
}

/// Derived fleet metrics at one instant.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs that completed every rank.
    pub jobs_completed: u64,
    /// Jobs cancelled (deadline or explicit), queued or running.
    pub jobs_cancelled: u64,
    /// Jobs that failed (retries exhausted, panic, store error).
    pub jobs_failed: u64,
    /// Submissions bounced by backpressure ([`crate::SubmitError`]).
    pub jobs_rejected: u64,
    /// Restart attempts beyond each job's first, summed.
    pub job_retries: u64,
    /// Queue depth at the last scheduler event.
    pub queue_depth: f64,
    /// Maximum queue depth observed.
    pub queue_depth_peak: f64,
    /// Ranks occupied at the last scheduler event.
    pub ranks_busy: f64,
    /// Maximum ranks occupied at once — never exceeds the budget.
    pub ranks_busy_peak: f64,
    /// Wall seconds since the ensemble started.
    pub elapsed_seconds: f64,
    /// Completed jobs per wall second.
    pub throughput_jobs_per_second: f64,
    /// Median job latency (submission → completion), seconds.
    pub latency_p50: f64,
    /// 95th-percentile job latency, seconds.
    pub latency_p95: f64,
    /// Queue-wait distribution (log-bucketed).
    pub queue_wait: HistogramSnapshot,
    /// Job-latency distribution (log-bucketed).
    pub job_seconds: HistogramSnapshot,
}

impl FleetSnapshot {
    /// Serialize for `ensemble.json`.
    pub fn to_json(&self) -> Value {
        let hist = |h: &HistogramSnapshot| {
            Value::obj(vec![
                ("count", Value::Num(h.count as f64)),
                ("sum", Value::Num(h.sum)),
                (
                    "buckets",
                    Value::Arr(
                        h.buckets
                            .iter()
                            .map(|&(lo, n)| Value::Arr(vec![Value::Num(lo), Value::Num(n as f64)]))
                            .collect(),
                    ),
                ),
            ])
        };
        Value::obj(vec![
            ("jobs_submitted", Value::Num(self.jobs_submitted as f64)),
            ("jobs_completed", Value::Num(self.jobs_completed as f64)),
            ("jobs_cancelled", Value::Num(self.jobs_cancelled as f64)),
            ("jobs_failed", Value::Num(self.jobs_failed as f64)),
            ("jobs_rejected", Value::Num(self.jobs_rejected as f64)),
            ("job_retries", Value::Num(self.job_retries as f64)),
            ("queue_depth", Value::Num(self.queue_depth)),
            ("queue_depth_peak", Value::Num(self.queue_depth_peak)),
            ("ranks_busy", Value::Num(self.ranks_busy)),
            ("ranks_busy_peak", Value::Num(self.ranks_busy_peak)),
            ("elapsed_seconds", Value::Num(self.elapsed_seconds)),
            (
                "throughput_jobs_per_second",
                Value::Num(self.throughput_jobs_per_second),
            ),
            ("latency_p50_seconds", Value::Num(self.latency_p50)),
            ("latency_p95_seconds", Value::Num(self.latency_p95)),
            ("queue_wait_seconds", hist(&self.queue_wait)),
            ("job_seconds", hist(&self.job_seconds)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_latch_and_throughput_derives() {
        let fleet = FleetMetrics::new();
        fleet.on_submit(1);
        fleet.on_submit(2);
        fleet.on_dispatch(0.001, 6, 1);
        fleet.on_dispatch(0.002, 4, 0);
        fleet.on_complete(0.01, 1);
        fleet.on_complete(0.02, 0);
        fleet.on_release(0);
        let s = fleet.snapshot();
        assert_eq!(s.jobs_submitted, 2);
        assert_eq!(s.jobs_completed, 2);
        assert_eq!(s.job_retries, 1);
        assert_eq!(s.queue_depth_peak, 2.0);
        assert_eq!(s.ranks_busy_peak, 6.0);
        assert_eq!(s.ranks_busy, 0.0);
        assert!(s.throughput_jobs_per_second > 0.0);
        assert!(s.latency_p95 >= s.latency_p50);
        assert!(s.latency_p50 > 0.0);
        assert_eq!(s.job_seconds.count, 2);
    }
}
