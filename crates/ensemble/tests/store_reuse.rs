//! Fleet checkpoint store wired through the scheduler: a resubmitted
//! identical job resumes from the committed prefix instead of step 0,
//! an extended-horizon near-duplicate starts from the shorter run's
//! last commit, and reuse provenance lands in the terminal records.

use agcm_ckptstore::Store;
use agcm_core::AgcmConfig;
use agcm_ensemble::{Ensemble, EnsembleConfig, JobSpec, JobStatus, JobView};
use agcm_filtering::driver::FilterVariant;
use agcm_grid::latlon::GridSpec;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn config(steps: usize) -> AgcmConfig {
    AgcmConfig::for_grid(GridSpec::new(24, 12, 2), 1, 2, FilterVariant::LbFft)
        .with_steps(steps)
        .with_checkpointing(2)
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("agcm-store-reuse-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Block until `id` is terminal, then return its record.
fn wait_done(ensemble: &Ensemble, id: u64) -> agcm_ensemble::JobRecord {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match ensemble.status(id) {
            Some(JobView::Done(record)) => return *record,
            _ => {
                assert!(Instant::now() < deadline, "job {id} should finish");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

#[test]
fn resubmitted_and_extended_jobs_resume_from_the_fleet_prefix() {
    let dir = scratch("resume");
    let store = Arc::new(Store::open(dir.join("store")).unwrap());
    let ensemble = Ensemble::start(EnsembleConfig {
        rank_budget: 2,
        ..EnsembleConfig::default()
    });

    // Cold run: pays for every step and seeds the lineage's prefix.
    let a = ensemble
        .try_submit(JobSpec::new("cold", config(6)).with_shared_store(Arc::clone(&store)))
        .unwrap();
    let rec_a = wait_done(&ensemble, a);
    assert_eq!(rec_a.status, JobStatus::Completed);
    assert_eq!(rec_a.resumed_from, None, "nothing to reuse on a cold run");
    let lineage = rec_a.lineage.expect("store-backed job records lineage");
    assert_eq!(lineage, config(6).lineage());

    // Identical resubmission: the whole horizon is already committed, so
    // the run resumes at step 6 and recomputes nothing.
    let b = ensemble
        .try_submit(JobSpec::new("retry", config(6)).with_shared_store(Arc::clone(&store)))
        .unwrap();
    let rec_b = wait_done(&ensemble, b);
    assert_eq!(rec_b.status, JobStatus::Completed);
    assert_eq!(rec_b.resumed_from, Some(6), "full-prefix resume");
    assert_eq!(
        rec_b.outcome, rec_a.outcome,
        "reused run reproduces the original outcomes bit-for-bit"
    );

    // Extended horizon, same lineage: starts from the 6-step commit and
    // only pays for the extension.
    let c = ensemble
        .try_submit(JobSpec::new("extend", config(10)).with_shared_store(Arc::clone(&store)))
        .unwrap();
    let rec_c = wait_done(&ensemble, c);
    assert_eq!(rec_c.status, JobStatus::Completed);
    assert_eq!(rec_c.resumed_from, Some(6), "extension reuses the prefix");
    assert_eq!(
        rec_c.lineage,
        Some(lineage),
        "same trajectory, same lineage"
    );

    // A different trajectory shares nothing.
    let d = ensemble
        .try_submit(
            JobSpec::new("other", config(6).with_physics_balancing())
                .with_shared_store(Arc::clone(&store)),
        )
        .unwrap();
    let rec_d = wait_done(&ensemble, d);
    assert_eq!(rec_d.resumed_from, None, "different lineage is a cold run");

    ensemble.join();
    // Every lease was released at job end, so a GC drains the store.
    let stats = store.stats();
    assert_eq!(stats.leased_lineages, 0, "terminal jobs hold no leases");
    assert!(stats.prefix_hits >= 2 && stats.prefix_misses >= 2);
    store.gc().unwrap();
    assert_eq!(store.stats().chunks, 0, "unleased lineages fully reclaim");
    let _ = std::fs::remove_dir_all(&dir);
}
