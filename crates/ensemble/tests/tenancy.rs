//! Multi-tenant admission, fair-share dispatch shaping, observer hooks,
//! status queries, and the journal-recovery resubmit path — the ensemble
//! surface `agcm-server` builds on.

use agcm_core::AgcmConfig;
use agcm_ensemble::{
    Ensemble, EnsembleConfig, JobObserver, JobRecord, JobSpec, JobStatus, JobView, SubmitError,
    TenantPolicy, TenantQuota,
};
use agcm_filtering::driver::FilterVariant;
use agcm_grid::latlon::GridSpec;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn small_grid() -> GridSpec {
    GridSpec::new(24, 12, 2)
}

fn job(name: &str, mesh_lat: usize, mesh_lon: usize, steps: usize) -> JobSpec {
    JobSpec::new(
        name,
        AgcmConfig::for_grid(small_grid(), mesh_lat, mesh_lon, FilterVariant::LbFft)
            .with_steps(steps),
    )
}

fn tenant_config(policy: TenantPolicy) -> EnsembleConfig {
    EnsembleConfig {
        rank_budget: 4,
        queue_capacity: 32,
        tenancy: Some(policy),
        ..EnsembleConfig::default()
    }
}

#[test]
fn in_flight_quota_rejects_with_typed_error_and_other_tenants_unaffected() {
    let policy = TenantPolicy::default()
        .with_tenant(
            "capped",
            TenantQuota {
                max_in_flight: 2,
                ..TenantQuota::default()
            },
        )
        .with_default(TenantQuota::default());
    let ensemble = Ensemble::start(tenant_config(policy));

    // Two in-flight jobs fill the quota; the third bounces typed.
    ensemble
        .try_submit(job("c1", 1, 1, 40).with_tenant("capped"))
        .unwrap();
    ensemble
        .try_submit(job("c2", 1, 1, 40).with_tenant("capped"))
        .unwrap();
    let err = ensemble
        .try_submit(job("c3", 1, 1, 2).with_tenant("capped"))
        .unwrap_err();
    match err {
        SubmitError::QuotaExceeded {
            tenant,
            in_flight,
            max_in_flight,
        } => {
            assert_eq!(tenant, "capped");
            assert_eq!(in_flight, 2);
            assert_eq!(max_in_flight, 2);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }

    // A different tenant (under the default quota) is unaffected.
    ensemble
        .try_submit(job("other", 1, 1, 2).with_tenant("roomy"))
        .unwrap();

    let records = ensemble.join();
    let completed = records
        .iter()
        .filter(|r| r.status == JobStatus::Completed)
        .count();
    assert_eq!(completed, 3, "admitted jobs all complete");
}

#[test]
fn strict_policy_rejects_unknown_tenants() {
    let policy = TenantPolicy::default().with_tenant("known", TenantQuota::default());
    let ensemble = Ensemble::start(tenant_config(policy));
    let err = ensemble
        .try_submit(job("j", 1, 1, 2).with_tenant("stranger"))
        .unwrap_err();
    assert_eq!(
        err,
        SubmitError::UnknownTenant {
            tenant: "stranger".to_string()
        }
    );
    // Anonymous submissions (no tenant header) are unknown too.
    let err = ensemble.try_submit(job("anon", 1, 1, 2)).unwrap_err();
    assert!(matches!(err, SubmitError::UnknownTenant { tenant } if tenant == "anonymous"));
    ensemble.join();
}

#[test]
fn running_rank_cap_shapes_dispatch_without_rejecting() {
    // Tenant capped at 1 concurrent rank on a 4-rank budget: all three
    // 1-rank jobs are admitted, but they must run one after another —
    // the fleet's busy-rank peak stays at 1.
    let policy = TenantPolicy::default().with_default(TenantQuota {
        max_running_ranks: 1,
        ..TenantQuota::default()
    });
    let ensemble = Ensemble::start(tenant_config(policy));
    for i in 0..3 {
        ensemble
            .try_submit(job(&format!("s{i}"), 1, 1, 30).with_tenant("shaped"))
            .unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while ensemble.fleet().jobs_completed < 3 {
        assert!(std::time::Instant::now() < deadline, "jobs should finish");
        std::thread::sleep(Duration::from_millis(2));
    }
    let fleet = ensemble.fleet();
    assert_eq!(
        fleet.ranks_busy_peak, 1.0,
        "rank cap of 1 must serialize dispatch"
    );
    let records = ensemble.join();
    assert_eq!(records.len(), 3);
    assert!(records.iter().all(|r| r.status == JobStatus::Completed));
}

/// Observer recording dispatch tags and terminal records.
#[derive(Default)]
struct Recorder {
    dispatched: Mutex<Vec<(u64, Option<u64>)>>,
    terminal: Mutex<Vec<(Option<u64>, String)>>,
}

impl JobObserver for Recorder {
    fn on_dispatch(&self, id: u64, tag: Option<u64>) {
        self.dispatched.lock().unwrap().push((id, tag));
    }
    fn on_terminal(&self, record: &JobRecord) {
        self.terminal
            .lock()
            .unwrap()
            .push((record.tag, record.status.label()));
    }
}

#[test]
fn observer_sees_dispatch_then_terminal_with_tags() {
    let recorder = Arc::new(Recorder::default());
    let ensemble = Ensemble::start_with_observer(
        EnsembleConfig {
            rank_budget: 4,
            ..EnsembleConfig::default()
        },
        Arc::clone(&recorder) as Arc<dyn JobObserver>,
    );
    let id = ensemble
        .try_submit(job("tagged", 1, 1, 2).with_tag(7001))
        .unwrap();
    let records = ensemble.join();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].tag, Some(7001));
    assert_eq!(records[0].tenant, None);

    let dispatched = recorder.dispatched.lock().unwrap();
    assert_eq!(dispatched.as_slice(), &[(id, Some(7001))]);
    let terminal = recorder.terminal.lock().unwrap();
    assert_eq!(
        terminal.as_slice(),
        &[(Some(7001), "completed".to_string())]
    );
}

#[test]
fn observer_sees_undispatched_cancellations() {
    let recorder = Arc::new(Recorder::default());
    let ensemble = Ensemble::start_with_observer(
        EnsembleConfig {
            rank_budget: 1,
            ..EnsembleConfig::default()
        },
        Arc::clone(&recorder) as Arc<dyn JobObserver>,
    );
    // Occupy the budget, then cancel a queued job before it dispatches.
    let runner = ensemble
        .try_submit(job("runner", 1, 1, 60).with_tag(1))
        .unwrap();
    let queued = ensemble
        .try_submit(job("queued", 1, 1, 2).with_tag(2))
        .unwrap();
    assert!(ensemble.cancel(queued));
    ensemble.join();
    let _ = runner;

    let terminal = recorder.terminal.lock().unwrap();
    let cancelled = terminal
        .iter()
        .find(|(tag, _)| *tag == Some(2))
        .expect("queued job reaches a terminal record");
    assert_eq!(cancelled.1, "cancelled(explicit)");
    // The cancelled job never dispatched.
    let dispatched = recorder.dispatched.lock().unwrap();
    assert!(dispatched.iter().all(|(_, tag)| *tag != Some(2)));
}

#[test]
fn status_reports_queue_position_running_and_done() {
    let ensemble = Ensemble::start(EnsembleConfig {
        rank_budget: 1,
        ..EnsembleConfig::default()
    });
    let running = ensemble.try_submit(job("r", 1, 1, 60)).unwrap();
    // Give the dispatcher time to start the first job.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !matches!(ensemble.status(running), Some(JobView::Running { .. })) {
        assert!(std::time::Instant::now() < deadline, "job should dispatch");
        std::thread::sleep(Duration::from_millis(1));
    }
    let q1 = ensemble.try_submit(job("q1", 1, 1, 2)).unwrap();
    let q2 = ensemble.try_submit(job("q2", 1, 1, 2)).unwrap();
    match ensemble.status(q1) {
        Some(JobView::Queued { position, ranks }) => {
            assert_eq!(position, 1);
            assert_eq!(ranks, 1);
        }
        other => panic!("q1 should be queued, got {other:?}"),
    }
    match ensemble.status(q2) {
        Some(JobView::Queued { position, .. }) => assert_eq!(position, 2),
        other => panic!("q2 should be queued at position 2, got {other:?}"),
    }
    assert!(ensemble.status(9999).is_none(), "unknown id is None");
    let records = ensemble.join();
    assert_eq!(records.len(), 3);
}

#[test]
fn resubmit_bypasses_capacity_and_quota() {
    // Queue capacity 1 and a strict policy that knows nobody: try_submit
    // bounces, resubmit (the journal-recovery path) does not.
    let cfg = EnsembleConfig {
        rank_budget: 1,
        queue_capacity: 1,
        tenancy: Some(TenantPolicy::default()),
        ..EnsembleConfig::default()
    };
    let ensemble = Ensemble::start(cfg);
    let err = ensemble
        .try_submit(job("denied", 1, 1, 2).with_tenant("ghost"))
        .unwrap_err();
    assert!(matches!(err, SubmitError::UnknownTenant { .. }));

    for i in 0..3 {
        ensemble
            .resubmit(job(&format!("recovered-{i}"), 1, 1, 2).with_tenant("ghost"))
            .unwrap();
    }
    let records = ensemble.join();
    assert_eq!(records.len(), 3);
    assert!(records.iter().all(|r| r.status == JobStatus::Completed));
    assert!(records.iter().all(|r| r.tenant.as_deref() == Some("ghost")));
}
