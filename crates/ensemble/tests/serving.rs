//! End-to-end serving behaviour: admission control, budget enforcement,
//! bit-identical outcomes, deadlines, explicit cancellation, fault
//! retries, and per-job telemetry routing.

use agcm_core::{run_model, AgcmConfig};
use agcm_ensemble::{
    CancelReason, Ensemble, EnsembleConfig, JobSpec, JobStatus, Priority, SubmitError,
};
use agcm_filtering::driver::FilterVariant;
use agcm_grid::latlon::GridSpec;
use agcm_mps::fault::FaultPlan;
use agcm_telemetry::{LiveCollector, MemorySink, TraceContext};
use std::sync::Arc;
use std::time::Duration;

fn small_grid() -> GridSpec {
    GridSpec::new(24, 12, 2)
}

fn job(name: &str, mesh_lat: usize, mesh_lon: usize, steps: usize) -> JobSpec {
    JobSpec::new(
        name,
        AgcmConfig::for_grid(small_grid(), mesh_lat, mesh_lon, FilterVariant::LbFft)
            .with_steps(steps),
    )
}

fn quick_config() -> EnsembleConfig {
    EnsembleConfig {
        rank_budget: 4,
        queue_capacity: 32,
        ..EnsembleConfig::default()
    }
}

#[test]
fn jobs_complete_bit_identical_to_solo_runs() {
    let ensemble = Ensemble::start(quick_config());
    let specs = [
        job("a-1x1", 1, 1, 2),
        job("b-2x1", 2, 1, 2),
        job("c-1x2", 1, 2, 3),
        job("d-2x2", 2, 2, 2),
        job("e-1x1", 1, 1, 3),
    ];
    for spec in &specs {
        ensemble.submit(spec.clone()).unwrap();
    }
    let records = ensemble.join();
    assert_eq!(records.len(), specs.len());
    for (record, spec) in records.iter().zip(&specs) {
        assert_eq!(record.status, JobStatus::Completed, "{}", record.name);
        assert_eq!(record.attempts, 1);
        let solo = run_model(spec.config);
        assert_eq!(
            record.outcome.as_ref().unwrap(),
            &solo.ranks,
            "{} must match its solo run exactly",
            record.name
        );
        let summary = record.summary.as_ref().unwrap();
        assert_eq!(summary.ranks, spec.config.size());
        assert_eq!(summary.steps, spec.config.steps);
    }
}

#[test]
fn budget_is_never_exceeded_and_fleet_observes_the_queue() {
    let ensemble = Ensemble::start(quick_config());
    // 6 jobs of up to 4 ranks on a 4-rank budget: they cannot all run at
    // once, so the queue must be observed non-empty at some point.
    for i in 0..6 {
        let (lat, lon) = [(2, 2), (1, 2), (2, 1)][i % 3];
        ensemble.submit(job(&format!("j{i}"), lat, lon, 2)).unwrap();
    }
    // Poll the live fleet view until everything is terminal, checking the
    // budget invariant at every sample.
    let fleet = loop {
        let f = ensemble.fleet();
        assert!(
            f.ranks_busy_peak <= 4.0,
            "budget exceeded: {} ranks busy",
            f.ranks_busy_peak
        );
        if f.jobs_completed + f.jobs_cancelled + f.jobs_failed == 6 {
            break f;
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!(fleet.jobs_submitted, 6);
    assert_eq!(fleet.jobs_completed, 6);
    assert!(fleet.ranks_busy_peak >= 1.0);
    assert!(fleet.queue_depth_peak >= 1.0, "contention must queue jobs");
    assert!(fleet.latency_p95 >= fleet.latency_p50);
    assert!(fleet.latency_p50 > 0.0);
    assert!(fleet.throughput_jobs_per_second > 0.0);
    let records = ensemble.join();
    assert!(records.iter().all(|r| r.status == JobStatus::Completed));
}

#[test]
fn deadline_cancels_a_running_job_without_poisoning_later_ones() {
    let ensemble = Ensemble::start(EnsembleConfig {
        rank_budget: 4,
        queue_capacity: 8,
        ..EnsembleConfig::default()
    });
    // Plenty of steps so the deadline fires mid-run.
    let doomed = ensemble
        .submit(job("doomed", 2, 2, 500).with_deadline(Duration::from_millis(30)))
        .unwrap();
    let survivor = ensemble.submit(job("survivor", 2, 2, 2)).unwrap();
    let records = ensemble.join();
    let doomed = records.iter().find(|r| r.id == doomed).unwrap();
    assert_eq!(
        doomed.status,
        JobStatus::Cancelled(CancelReason::Deadline),
        "deadline must cancel the running world"
    );
    assert!(doomed.attempts >= 1, "job was dispatched before expiry");
    let survivor = records.iter().find(|r| r.id == survivor).unwrap();
    assert_eq!(survivor.status, JobStatus::Completed);
}

#[test]
fn queued_job_past_deadline_never_dispatches() {
    let ensemble = Ensemble::start(EnsembleConfig {
        rank_budget: 2,
        queue_capacity: 8,
        ..EnsembleConfig::default()
    });
    // Occupy the whole budget, then queue a job whose deadline expires
    // while it waits.
    let blocker = ensemble.submit(job("blocker", 1, 2, 200)).unwrap();
    let starved = ensemble
        .submit(job("starved", 1, 2, 2).with_deadline(Duration::from_millis(5)))
        .unwrap();
    let records = ensemble.join();
    let starved = records.iter().find(|r| r.id == starved).unwrap();
    assert_eq!(starved.status, JobStatus::Cancelled(CancelReason::Deadline));
    assert_eq!(starved.attempts, 0, "never dispatched");
    assert!(starved.outcome.is_none());
    let blocker = records.iter().find(|r| r.id == blocker).unwrap();
    assert_eq!(blocker.status, JobStatus::Completed);
}

#[test]
fn explicit_cancel_of_queued_and_running_jobs() {
    let ensemble = Ensemble::start(EnsembleConfig {
        rank_budget: 2,
        queue_capacity: 8,
        ..EnsembleConfig::default()
    });
    let running = ensemble.submit(job("running", 1, 2, 500)).unwrap();
    let queued = ensemble.submit(job("queued", 1, 2, 2)).unwrap();
    // The first job occupies the whole budget; the second is queued.
    assert!(ensemble.cancel(queued));
    std::thread::sleep(Duration::from_millis(10));
    assert!(ensemble.cancel(running));
    assert!(!ensemble.cancel(9999), "unknown id");
    let records = ensemble.join();
    let queued = records.iter().find(|r| r.id == queued).unwrap();
    assert_eq!(queued.status, JobStatus::Cancelled(CancelReason::Explicit));
    assert_eq!(queued.attempts, 0);
    let running = records.iter().find(|r| r.id == running).unwrap();
    assert_eq!(
        running.status,
        JobStatus::Cancelled(CancelReason::Explicit),
        "running job unwinds with the explicit reason, not deadline"
    );
}

#[test]
fn fault_injected_job_retries_to_success_via_checkpoints() {
    let ensemble = Ensemble::start(quick_config());
    let spec = JobSpec::new(
        "faulty",
        AgcmConfig::for_grid(small_grid(), 2, 2, FilterVariant::LbFft)
            .with_steps(4)
            .with_checkpointing(1),
    )
    .with_fault_plan(FaultPlan::seeded(7).with_kill(1, 2))
    .with_retries(2);
    let id = ensemble.submit(spec.clone()).unwrap();
    let records = ensemble.join();
    let rec = records.iter().find(|r| r.id == id).unwrap();
    assert_eq!(rec.status, JobStatus::Completed);
    assert!(rec.attempts >= 2, "the injected kill forces a restart");
    // Recovered run still matches the uninterrupted solo run.
    let mut clean = spec.config;
    clean.checkpoint_every = 0;
    let solo = run_model(clean);
    assert_eq!(rec.outcome.as_ref().unwrap(), &solo.ranks);
    let resilience = rec.summary.as_ref().unwrap().resilience.unwrap();
    assert!(resilience.attempts >= 2);
    assert!(resilience.fault_events >= 1);
}

#[test]
fn admission_control_rejects_what_cannot_run() {
    let ensemble = Ensemble::start(EnsembleConfig {
        rank_budget: 2,
        queue_capacity: 1,
        ..EnsembleConfig::default()
    });
    // Too large for the budget, ever.
    let err = ensemble.try_submit(job("wide", 2, 2, 2)).unwrap_err();
    assert_eq!(
        err,
        SubmitError::TooLarge {
            ranks: 4,
            budget: 2
        }
    );
    // Degenerate config.
    let err = ensemble.try_submit(job("no-steps", 1, 1, 0)).unwrap_err();
    assert!(matches!(err, SubmitError::InvalidConfig(_)));
    // Backpressure: fill the 1-slot queue behind a long runner.
    ensemble.submit(job("head", 1, 2, 300)).unwrap();
    ensemble.submit(job("queued", 1, 1, 1)).unwrap();
    let mut bounced = false;
    for i in 0..50 {
        match ensemble.try_submit(job(&format!("extra{i}"), 1, 1, 1)) {
            Err(SubmitError::QueueFull { capacity: 1 }) => {
                bounced = true;
                break;
            }
            Ok(_) => continue,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(bounced, "a full queue must bounce try_submit");
    let records = ensemble.join();
    assert!(
        records.iter().all(|r| r.status == JobStatus::Completed),
        "bounced submissions must not corrupt admitted ones"
    );
}

#[test]
fn per_job_sinks_receive_only_their_jobs_records() {
    let sink_a = Arc::new(MemorySink::new());
    let sink_b = Arc::new(MemorySink::new());
    let ensemble = Ensemble::start(quick_config());
    ensemble
        .submit(job("a", 1, 2, 2).with_sink(sink_a.clone()))
        .unwrap();
    ensemble
        .submit(job("b", 2, 2, 3).with_sink(sink_b.clone()))
        .unwrap();
    let records = ensemble.join();
    assert!(records.iter().all(|r| r.status == JobStatus::Completed));
    assert_eq!(sink_a.steps().len(), 2);
    assert_eq!(sink_b.steps().len(), 3);
    assert_eq!(sink_a.runs().len(), 1);
    assert_eq!(sink_b.runs().len(), 1);
    assert_eq!(sink_a.runs()[0].ranks, 2);
    assert_eq!(sink_b.runs()[0].ranks, 4);
}

#[test]
fn profiled_job_delivers_profile_and_skew_to_its_sink() {
    let collector = Arc::new(LiveCollector::new());
    collector.begin_job(1, TraceContext::new_root(), "alice");
    let ensemble = Ensemble::start(quick_config());
    let id = ensemble
        .submit(
            job("profiled", 2, 2, 4)
                .with_sink(collector.sink(1))
                .with_profile_hz(4000.0),
        )
        .unwrap();
    let records = ensemble.join();
    assert_eq!(records[0].id, id);
    assert_eq!(records[0].status, JobStatus::Completed);
    let view = collector
        .job_profile(1)
        .expect("profiled job stored a profile");
    let data = view.get("data").unwrap();
    let profile = data.get("profile").unwrap();
    // The fold is always conservative, even if the smoke job ran too
    // fast for any sample to land.
    let total = profile
        .get("total_samples")
        .and_then(|v| v.as_f64())
        .unwrap();
    let stacks = profile.get("stacks").unwrap().as_arr().unwrap();
    let folded: f64 = stacks
        .iter()
        .map(|s| s.get("samples").and_then(|v| v.as_f64()).unwrap_or(0.0))
        .sum();
    assert_eq!(folded, total, "folded stacks must sum to total samples");
    // The skew join ran against the completed run's trace.
    let skew = data.get("skew").expect("skew present");
    let rows = skew.get("rows").unwrap().as_arr().unwrap();
    assert!(!rows.is_empty(), "skew join produced rows");
    let traced = skew.get("traced_phases").and_then(|v| v.as_f64()).unwrap();
    assert!(traced >= 3.0, "step/dynamics/physics all traced: {traced}");
    // An unprofiled job stores nothing.
    assert!(collector.job_profile(999).is_none());
}

#[test]
fn priorities_dispatch_high_before_low_when_contended() {
    // One rank of budget so jobs run strictly one at a time, and the
    // queue drains by priority.
    let ensemble = Ensemble::start(EnsembleConfig {
        rank_budget: 1,
        queue_capacity: 16,
        ..EnsembleConfig::default()
    });
    let head = ensemble.submit(job("head", 1, 1, 50)).unwrap();
    let low = ensemble
        .submit(job("low", 1, 1, 1).with_priority(Priority::Low))
        .unwrap();
    let high = ensemble
        .submit(job("high", 1, 1, 1).with_priority(Priority::High))
        .unwrap();
    let records = ensemble.join();
    assert_eq!(records.len(), 3);
    assert!(records.iter().all(|r| r.status == JobStatus::Completed));
    let queue_of = |id| records.iter().find(|r| r.id == id).unwrap().queue_seconds;
    // High overtook low in the queue behind the head job.
    assert!(
        queue_of(high) < queue_of(low),
        "high ({}) should dispatch before low ({})",
        queue_of(high),
        queue_of(low)
    );
    let _ = head;
}
