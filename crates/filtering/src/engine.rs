//! The redistribute → filter → restore engine (Figures 2–3).
//!
//! Both FFT variants share the same three-phase structure; they differ only
//! in the *assignment* of lines to processors:
//!
//! 1. **Forward movement** — every rank packs, for each filterable line
//!    whose latitude it owns, its longitude chunk, addressed to the line's
//!    assigned filterer. One message per communicating pair; pairs with
//!    nothing to exchange send nothing (a transpose within a processor row
//!    costs O(row²) messages, not O(mesh²) — Figure 3's row transpose is
//!    the row-local special case). Chunks a rank assigns to itself move by
//!    local copy.
//! 2. **Local filtering** — the assignee reassembles complete longitude
//!    lines back to back in one contiguous buffer, groups them by latitude
//!    (one spectral multiplier per latitude), and filters them through the
//!    batched FFT engine: two real lines per complex transform, the odd
//!    tail through the half-size real transform, all scratch reused from a
//!    [`FilterScratch`].
//! 3. **Inverse movement** — filtered lines are split back into the
//!    original chunks and returned; "inverse data movements … restore the
//!    data layout which existed prior to the filtering."
//!
//! Packing order is the canonical line order on both sides, so no indices
//! travel with the data — the set-up bookkeeping makes the streams
//! self-describing.
//!
//! With `only_var: None` (the production organization) one pass moves
//! *every* variable of a filter class, so a filtered step costs at most one
//! forward and one backward message per communicating rank pair per class —
//! the aggregation the paper's §3.3 reorganization allows. `Some(var)`
//! reproduces the original one-variable-at-a-time organization for the
//! paper-faithful runs.

use crate::filterfn::FilterKind;
use crate::lines::FilterSetup;
use agcm_fft::batch::filter_lines;
use agcm_fft::ops::{pair_filter_flops, real_filter_flops};
use agcm_fft::FftWorkspace;
use agcm_grid::field::Field3D;
use agcm_mps::message::Payload;
use agcm_mps::topology::CartComm;
use std::collections::{BTreeMap, BTreeSet};

const TAG_FWD: u64 = 401;
const TAG_BWD: u64 = 402;

/// Reusable per-rank state of the redistribute engine.
///
/// Everything the engine needs across timesteps lives here — FFT
/// workspace, line-assembly buffer, receive staging, pack cursors — so a
/// long simulation stops paying the allocator on the filter's critical
/// path. Buffers grow to the high-water mark on the first filtered step
/// and are reused verbatim afterwards. (Outgoing message buffers are the
/// one exception: the transport takes ownership of each sent `Vec`, so
/// those are built fresh per send.)
#[derive(Default)]
pub struct FilterScratch {
    /// Workspace for the allocation-free FFT executor.
    ws: FftWorkspace,
    /// Complete owned lines, back to back in canonical line order.
    assembled: Vec<f64>,
    /// Latitude of each assembled line (parallel to the chunks of
    /// `assembled`).
    lats: Vec<usize>,
    /// Receive staging, indexed by source rank.
    bufs: Vec<Vec<f64>>,
    /// Return-path staging, indexed by owner rank.
    ret_bufs: Vec<Vec<f64>>,
    /// Per-rank consumption cursors (reset per phase).
    cursors: Vec<usize>,
}

impl FilterScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> FilterScratch {
        FilterScratch::default()
    }

    fn reset(&mut self, p: usize) {
        self.assembled.clear();
        self.lats.clear();
        self.bufs.iter_mut().for_each(Vec::clear);
        self.bufs.resize(p, Vec::new());
        self.ret_bufs.iter_mut().for_each(Vec::clear);
        self.ret_bufs.resize(p, Vec::new());
        self.cursors.clear();
        self.cursors.resize(p, 0);
    }

    fn reset_cursors(&mut self) {
        self.cursors.iter_mut().for_each(|c| *c = 0);
    }
}

/// Run one filter class through the redistribute/filter/restore engine.
///
/// `owners[l]` names the rank that filters line `l` (indices into
/// `setup.lines(kind)`). `only_var` restricts the pass to a single variable
/// — the original code's one-variable-at-a-time organization; `None`
/// moves every variable of the class concurrently (the §3.3
/// reorganization).
pub(crate) fn redistribute_filter(
    setup: &FilterSetup,
    cart: &CartComm,
    fields: &mut [Field3D],
    kind: FilterKind,
    owners: &[usize],
    only_var: Option<usize>,
    scratch: &mut FilterScratch,
) {
    let comm = cart.comm();
    let p = comm.size();
    let rank = comm.rank();
    let (my_row, my_col) = cart.coords();
    let sub = setup.decomp.subdomain(my_row, my_col);
    let lines = setup.lines(kind);
    assert_eq!(owners.len(), lines.len(), "one owner per line");
    let n_lon = setup.grid.n_lon;
    let mesh_lon = setup.decomp.mesh_lon;
    let selected = |var: usize| only_var.is_none_or(|v| v == var);
    let holds = |lat: usize| sub.lats().contains(&lat);
    scratch.reset(p);

    // --- Phase 1: forward movement (skip empty pairs, self by copy). -----
    // Send buffers are freshly allocated: `Payload::F64` hands the Vec to
    // the transport, which owns it until the receiver drains it.
    comm.phase_begin("redist_fwd");
    let mut send: Vec<Vec<f64>> = vec![Vec::new(); p];
    for (idx, line) in lines.iter().enumerate() {
        if selected(line.var) && holds(line.lat) {
            let row = fields[line.var].row(line.lat - sub.j0, line.lev);
            send[owners[idx]].extend_from_slice(&row);
        }
    }
    scratch.bufs[rank] = std::mem::take(&mut send[rank]);
    for (dst, buf) in send.into_iter().enumerate() {
        if dst != rank && !buf.is_empty() {
            comm.send(dst, TAG_FWD, Payload::F64(buf));
        }
    }
    // Sources: every column of the mesh row owning the latitude of each
    // line assigned to us (all hold a non-empty chunk).
    let mut fwd_sources: BTreeSet<usize> = BTreeSet::new();
    for (idx, line) in lines.iter().enumerate() {
        if owners[idx] == rank && selected(line.var) {
            let src_row = setup.decomp.row_of_lat(line.lat);
            for c in 0..mesh_lon {
                fwd_sources.insert(src_row * mesh_lon + c);
            }
        }
    }
    for &src in &fwd_sources {
        if src != rank {
            scratch.bufs[src] = comm.recv_f64(src, TAG_FWD);
        }
    }

    comm.phase_end("redist_fwd");

    // --- Phase 2: assemble contiguously, batch-filter per latitude. ------
    comm.phase_begin("filter_local");
    for (idx, line) in lines.iter().enumerate() {
        if owners[idx] != rank || !selected(line.var) {
            continue;
        }
        let src_row = setup.decomp.row_of_lat(line.lat);
        let start = scratch.assembled.len();
        scratch.assembled.resize(start + n_lon, 0.0);
        for c in 0..mesh_lon {
            let src = src_row * mesh_lon + c;
            let (i0, ni) = setup.col_chunk(c);
            let cur = scratch.cursors[src];
            scratch.assembled[start + i0..start + i0 + ni]
                .copy_from_slice(&scratch.bufs[src][cur..cur + ni]);
            scratch.cursors[src] += ni;
        }
        scratch.lats.push(line.lat);
    }
    // All lines at one latitude share one multiplier, so they batch into
    // pair-packed transforms (two lines per FFT; the odd line goes through
    // the half-size real transform).
    let mut groups: BTreeMap<usize, Vec<&mut [f64]>> = BTreeMap::new();
    for (chunk, &lat) in scratch
        .assembled
        .chunks_exact_mut(n_lon)
        .zip(scratch.lats.iter())
    {
        groups.entry(lat).or_default().push(chunk);
    }
    let mut flops = 0.0;
    for (lat, mut rows) in groups {
        let mult = setup.multiplier(kind, lat);
        let (pairs, tail) = (rows.len() / 2, rows.len() % 2);
        filter_lines(&setup.fft, &mut rows, mult, &mut scratch.ws);
        flops += pairs as f64 * pair_filter_flops(n_lon) + tail as f64 * real_filter_flops(n_lon);
    }
    comm.record_flops(flops);
    agcm_telemetry::registry()
        .counter("filter.lines_filtered")
        .add(scratch.lats.len() as u64);
    comm.phase_end("filter_local");

    // --- Phase 3: inverse movement (same sparsity, reversed). ------------
    comm.phase_begin("redist_bwd");
    let mut back: Vec<Vec<f64>> = vec![Vec::new(); p];
    let mut assembled_pos = 0;
    for (idx, line) in lines.iter().enumerate() {
        if owners[idx] != rank || !selected(line.var) {
            continue;
        }
        let out = &scratch.assembled[assembled_pos..assembled_pos + n_lon];
        assembled_pos += n_lon;
        let dst_row = setup.decomp.row_of_lat(line.lat);
        for c in 0..mesh_lon {
            let (i0, ni) = setup.col_chunk(c);
            back[dst_row * mesh_lon + c].extend_from_slice(&out[i0..i0 + ni]);
        }
    }
    scratch.ret_bufs[rank] = std::mem::take(&mut back[rank]);
    for (dst, buf) in back.into_iter().enumerate() {
        if dst != rank && !buf.is_empty() {
            comm.send(dst, TAG_BWD, Payload::F64(buf));
        }
    }
    // Sources of returned data: the owners of the lines whose chunks we
    // hold.
    let mut bwd_sources: BTreeSet<usize> = BTreeSet::new();
    for (idx, line) in lines.iter().enumerate() {
        if selected(line.var) && holds(line.lat) {
            bwd_sources.insert(owners[idx]);
        }
    }
    for &src in &bwd_sources {
        if src != rank {
            scratch.ret_bufs[src] = comm.recv_f64(src, TAG_BWD);
        }
    }
    scratch.reset_cursors();
    for (idx, line) in lines.iter().enumerate() {
        if selected(line.var) && holds(line.lat) {
            let o = owners[idx];
            let cur = scratch.cursors[o];
            let chunk = &scratch.ret_bufs[o][cur..cur + sub.ni];
            fields[line.var].set_row(line.lat - sub.j0, line.lev, chunk);
            scratch.cursors[o] += sub.ni;
        }
    }
    // Every returned byte must have been consumed.
    for (o, buf) in scratch.ret_bufs.iter().enumerate() {
        debug_assert_eq!(scratch.cursors[o], buf.len(), "stray data from owner {o}");
    }
    comm.phase_end("redist_bwd");
}
