//! The redistribute → filter → restore engine (Figures 2–3).
//!
//! Both FFT variants share the same three-phase structure; they differ only
//! in the *assignment* of lines to processors:
//!
//! 1. **Forward movement** — every rank packs, for each filterable line
//!    whose latitude it owns, its longitude chunk, addressed to the line's
//!    assigned filterer. One message per communicating pair; pairs with
//!    nothing to exchange send nothing (a transpose within a processor row
//!    costs O(row²) messages, not O(mesh²) — Figure 3's row transpose is
//!    the row-local special case). Chunks a rank assigns to itself move by
//!    local copy.
//! 2. **Local filtering** — the assignee reassembles complete longitude
//!    lines, applies the spectral multiplier through the shared FFT plan,
//!    and records the flop count.
//! 3. **Inverse movement** — filtered lines are split back into the
//!    original chunks and returned; "inverse data movements … restore the
//!    data layout which existed prior to the filtering."
//!
//! Packing order is the canonical line order on both sides, so no indices
//! travel with the data — the set-up bookkeeping makes the streams
//! self-describing.

use crate::filterfn::FilterKind;
use crate::lines::FilterSetup;
use agcm_fft::convolution::apply_spectral_multiplier;
use agcm_fft::ops::spectral_filter_flops;
use agcm_grid::field::Field3D;
use agcm_mps::message::Payload;
use agcm_mps::topology::CartComm;
use std::collections::BTreeSet;

const TAG_FWD: u64 = 401;
const TAG_BWD: u64 = 402;

/// Run one filter class through the redistribute/filter/restore engine.
///
/// `owners[l]` names the rank that filters line `l` (indices into
/// `setup.lines(kind)`). `only_var` restricts the pass to a single variable
/// — the original code's one-variable-at-a-time organization; `None`
/// moves every variable of the class concurrently (the §3.3
/// reorganization).
pub(crate) fn redistribute_filter(
    setup: &FilterSetup,
    cart: &CartComm,
    fields: &mut [Field3D],
    kind: FilterKind,
    owners: &[usize],
    only_var: Option<usize>,
) {
    let comm = cart.comm();
    let p = comm.size();
    let rank = comm.rank();
    let (my_row, my_col) = cart.coords();
    let sub = setup.decomp.subdomain(my_row, my_col);
    let lines = setup.lines(kind);
    assert_eq!(owners.len(), lines.len(), "one owner per line");
    let n_lon = setup.grid.n_lon;
    let mesh_lon = setup.decomp.mesh_lon;
    let selected = |var: usize| only_var.is_none_or(|v| v == var);
    let holds = |lat: usize| sub.lats().contains(&lat);

    // --- Phase 1: forward movement (skip empty pairs, self by copy). -----
    let mut send: Vec<Vec<f64>> = vec![Vec::new(); p];
    for (idx, line) in lines.iter().enumerate() {
        if selected(line.var) && holds(line.lat) {
            let row = fields[line.var].row(line.lat - sub.j0, line.lev);
            send[owners[idx]].extend_from_slice(&row);
        }
    }
    let mut bufs: Vec<Vec<f64>> = vec![Vec::new(); p];
    bufs[rank] = std::mem::take(&mut send[rank]);
    for (dst, buf) in send.into_iter().enumerate() {
        if dst != rank && !buf.is_empty() {
            comm.send(dst, TAG_FWD, Payload::F64(buf));
        }
    }
    // Sources: every column of the mesh row owning the latitude of each
    // line assigned to us (all hold a non-empty chunk).
    let mut fwd_sources: BTreeSet<usize> = BTreeSet::new();
    for (idx, line) in lines.iter().enumerate() {
        if owners[idx] == rank && selected(line.var) {
            let src_row = setup.decomp.row_of_lat(line.lat);
            for c in 0..mesh_lon {
                fwd_sources.insert(src_row * mesh_lon + c);
            }
        }
    }
    for &src in &fwd_sources {
        if src != rank {
            bufs[src] = comm.recv_f64(src, TAG_FWD);
        }
    }

    // --- Phase 2: assemble, filter, count the work. ----------------------
    let mut cursors = vec![0usize; p];
    let mut filtered: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut flops = 0.0;
    for (idx, line) in lines.iter().enumerate() {
        if owners[idx] != rank || !selected(line.var) {
            continue;
        }
        let src_row = setup.decomp.row_of_lat(line.lat);
        let mut full = vec![0.0; n_lon];
        for c in 0..mesh_lon {
            let src = src_row * mesh_lon + c;
            let (i0, ni) = setup.col_chunk(c);
            full[i0..i0 + ni].copy_from_slice(&bufs[src][cursors[src]..cursors[src] + ni]);
            cursors[src] += ni;
        }
        let mult = setup.multiplier(kind, line.lat);
        let out = apply_spectral_multiplier(&setup.fft, &full, mult);
        flops += spectral_filter_flops(n_lon);
        filtered.push((idx, out));
    }
    comm.record_flops(flops);

    // --- Phase 3: inverse movement (same sparsity, reversed). ------------
    let mut back: Vec<Vec<f64>> = vec![Vec::new(); p];
    for (idx, out) in &filtered {
        let line = lines[*idx];
        let dst_row = setup.decomp.row_of_lat(line.lat);
        for c in 0..mesh_lon {
            let (i0, ni) = setup.col_chunk(c);
            back[dst_row * mesh_lon + c].extend_from_slice(&out[i0..i0 + ni]);
        }
    }
    let mut ret_bufs: Vec<Vec<f64>> = vec![Vec::new(); p];
    ret_bufs[rank] = std::mem::take(&mut back[rank]);
    for (dst, buf) in back.into_iter().enumerate() {
        if dst != rank && !buf.is_empty() {
            comm.send(dst, TAG_BWD, Payload::F64(buf));
        }
    }
    // Sources of returned data: the owners of the lines whose chunks we
    // hold.
    let mut bwd_sources: BTreeSet<usize> = BTreeSet::new();
    for (idx, line) in lines.iter().enumerate() {
        if selected(line.var) && holds(line.lat) {
            bwd_sources.insert(owners[idx]);
        }
    }
    for &src in &bwd_sources {
        if src != rank {
            ret_bufs[src] = comm.recv_f64(src, TAG_BWD);
        }
    }
    let mut cursors = vec![0usize; p];
    for (idx, line) in lines.iter().enumerate() {
        if selected(line.var) && holds(line.lat) {
            let o = owners[idx];
            let chunk = &ret_bufs[o][cursors[o]..cursors[o] + sub.ni];
            fields[line.var].set_row(line.lat - sub.j0, line.lev, chunk);
            cursors[o] += sub.ni;
        }
    }
    // Every returned byte must have been consumed.
    for (o, buf) in ret_bufs.iter().enumerate() {
        debug_assert_eq!(cursors[o], buf.len(), "stray data from owner {o}");
    }
}
