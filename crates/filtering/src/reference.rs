//! Sequential reference filter and global↔local field plumbing.
//!
//! [`filter_global`] applies the spectral filter to *global* fields on one
//! processor — the correctness oracle that every parallel implementation
//! must reproduce to rounding error. The scatter/gather helpers move
//! between a global field and the per-rank subdomain fields used by the
//! parallel code, so tests and examples can compare end states directly.

use crate::filterfn::FilterKind;
use crate::lines::FilterSetup;
use agcm_fft::convolution::apply_spectral_multiplier;
use agcm_fft::FftPlan;
use agcm_grid::decomp::{Decomp, Subdomain};
use agcm_grid::field::Field3D;
use agcm_grid::latlon::GridSpec;

/// Apply one filter class to the given variables of a set of global
/// fields, sequentially.
pub fn filter_global_kind(
    grid: &GridSpec,
    fields: &mut [Field3D],
    kind: FilterKind,
    vars: &[usize],
) {
    let plan = FftPlan::new(grid.n_lon);
    for &var in vars {
        let field = &mut fields[var];
        assert_eq!(field.shape(), (grid.n_lon, grid.n_lat, grid.n_lev));
        for lat in kind.filtered_lats(grid) {
            let mult = kind.multiplier(grid, lat);
            for lev in 0..grid.n_lev {
                let row = field.row(lat, lev);
                let filtered = apply_spectral_multiplier(&plan, &row, &mult);
                field.set_row(lat, lev, &filtered);
            }
        }
    }
}

/// Apply the full filtering step (strong then weak classes) to global
/// fields using the variable sets of `setup`.
pub fn filter_global(setup: &FilterSetup, fields: &mut [Field3D]) {
    filter_global_kind(&setup.grid, fields, FilterKind::Strong, &setup.strong_vars);
    filter_global_kind(&setup.grid, fields, FilterKind::Weak, &setup.weak_vars);
}

/// Extract the local subdomain of a global field.
pub fn local_from_global(global: &Field3D, sub: &Subdomain) -> Field3D {
    let (_, _, nk) = global.shape();
    Field3D::from_fn(sub.ni, sub.nj, nk, |i, j, k| {
        global.get(sub.i0 + i, sub.j0 + j, k)
    })
}

/// Reassemble a global field from per-rank locals (rank-major order
/// matching [`Decomp::subdomain_of_rank`]).
pub fn global_from_locals(locals: &[Field3D], decomp: &Decomp) -> Field3D {
    assert_eq!(locals.len(), decomp.size(), "one local field per rank");
    let g = decomp.grid;
    let mut out = Field3D::zeros(g.n_lon, g.n_lat, g.n_lev);
    for (rank, local) in locals.iter().enumerate() {
        let sub = decomp.subdomain_of_rank(rank);
        assert_eq!(
            local.shape(),
            (sub.ni, sub.nj, g.n_lev),
            "local shape mismatch at rank {rank}"
        );
        for k in 0..g.n_lev {
            for j in 0..sub.nj {
                for i in 0..sub.ni {
                    out.set(sub.i0 + i, sub.j0 + j, k, local.get(i, j, k));
                }
            }
        }
    }
    out
}

/// A deterministic synthetic atmosphere used across tests, examples and
/// benches: smooth large-scale structure plus short-wave polar noise that
/// the filter visibly damps.
pub fn synthetic_field(grid: &GridSpec, var: usize) -> Field3D {
    Field3D::from_fn(grid.n_lon, grid.n_lat, grid.n_lev, |i, j, k| {
        let lon = grid.longitude(i);
        let lat = grid.latitude(j);
        let smooth = (lon * (1.0 + var as f64)).sin() * lat.cos() + 0.3 * (k as f64);
        // Short zonal waves, strongest near the poles — the CFL offenders.
        let noisy = 0.5 * (lon * 24.0 + var as f64).sin() * lat.sin().powi(2);
        smooth + noisy
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_fft::real::rfft;

    fn grid() -> GridSpec {
        GridSpec::new(48, 30, 2)
    }

    #[test]
    fn filter_damps_short_waves_near_pole() {
        let g = GridSpec::paper_9_layer();
        let mut f = synthetic_field(&g, 0);
        let before = f.row(0, 0); // most southern (polar) row
        filter_global_kind(&g, std::slice::from_mut(&mut f), FilterKind::Strong, &[0]);
        let after = f.row(0, 0);
        let plan = FftPlan::new(g.n_lon);
        let spec_before = rfft(&plan, &before);
        let spec_after = rfft(&plan, &after);
        // High-wavenumber energy must drop; the zonal mean must not move.
        assert!((spec_before[0].re - spec_after[0].re).abs() < 1e-9);
        let hi_before: f64 = spec_before[48..].iter().map(|c| c.norm_sqr()).sum();
        let hi_after: f64 = spec_after[48..].iter().map(|c| c.norm_sqr()).sum();
        assert!(
            hi_after < 0.05 * hi_before,
            "short waves {hi_before} -> {hi_after}"
        );
    }

    #[test]
    fn filter_leaves_equatorial_rows_untouched() {
        let g = grid();
        let mut f = synthetic_field(&g, 1);
        let equator_row = f.row(15, 0);
        filter_global_kind(&g, std::slice::from_mut(&mut f), FilterKind::Strong, &[0]);
        assert_eq!(f.row(15, 0), equator_row);
    }

    #[test]
    fn filter_is_idempotent_only_approximately_but_stable() {
        // Applying twice must damp at least as much, never blow up.
        let g = grid();
        let mut once = synthetic_field(&g, 0);
        filter_global_kind(
            &g,
            std::slice::from_mut(&mut once),
            FilterKind::Strong,
            &[0],
        );
        let mut twice = once.clone();
        filter_global_kind(
            &g,
            std::slice::from_mut(&mut twice),
            FilterKind::Strong,
            &[0],
        );
        let norm = |f: &Field3D| f.as_slice().iter().map(|v| v * v).sum::<f64>();
        assert!(norm(&twice) <= norm(&once) + 1e-9);
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let g = grid();
        let d = Decomp::new(g, 3, 4);
        let global = synthetic_field(&g, 2);
        let locals: Vec<Field3D> = (0..d.size())
            .map(|r| local_from_global(&global, &d.subdomain_of_rank(r)))
            .collect();
        let back = global_from_locals(&locals, &d);
        assert_eq!(back.max_abs_diff(&global), 0.0);
    }

    #[test]
    fn full_filter_touches_only_classified_vars() {
        let g = grid();
        let d = Decomp::new(g, 1, 1);
        let setup = FilterSetup::with_vars(g, d, vec![0], vec![1]);
        let mut fields = vec![
            synthetic_field(&g, 0),
            synthetic_field(&g, 1),
            synthetic_field(&g, 2),
        ];
        let untouched = fields[2].clone();
        filter_global(&setup, &mut fields);
        assert_eq!(
            fields[2].max_abs_diff(&untouched),
            0.0,
            "unclassified var must not change"
        );
        assert!(
            fields[0].max_abs_diff(&synthetic_field(&g, 0)) > 0.0,
            "strong var must change"
        );
    }
}
