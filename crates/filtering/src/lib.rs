//! # agcm-filtering — the polar spectral filter, three ways
//!
//! This crate is the core contribution of the reproduction: the UCLA AGCM's
//! high-latitude spectral filtering (paper §3.1–3.3) in the three
//! implementations whose comparison makes up Tables 8–11:
//!
//! 1. [`convolution`] — the **original** module: the filter evaluated as a
//!    physical-space circular convolution (paper Eq. 2), parallelized with
//!    ring or binary-tree communication around each processor row;
//! 2. [`fft`] — **FFT without load balance**: each processor row transposes
//!    its filtered lines among its own processors, applies a local FFT
//!    filter (paper Eq. 1), and transposes back — polar rows still do all
//!    the work;
//! 3. [`lb_fft`] — **load-balanced FFT**: the generic row-redistribution
//!    module of §3.3 (Figures 2–3) first spreads complete filter lines over
//!    *all* processors (each gets ⌈ΣR_j/N⌉ lines, Eq. 3), the FFT filter
//!    runs perfectly balanced, and inverse data movement restores the
//!    original layout. All variables of a filter class are moved
//!    concurrently, as the paper's reorganization allows.
//!
//! Supporting modules: [`filterfn`] defines the filter response S(s,φ) and
//! the strong/weak latitude sets; [`lines`] is the bookkeeping ("some
//! non-trivial set-up code", §3.3) that enumerates filterable lines and
//! plans the data movement once per run; [`reference`] is the sequential
//! oracle every parallel variant must match bit-for-bit in the tests.

pub mod convolution;
pub mod driver;
pub mod engine;
pub mod fft;
pub mod filterfn;
pub mod lb_fft;
pub mod lines;
pub mod reference;

pub use driver::{FilterOrganization, FilterVariant, PolarFilter};
pub use engine::FilterScratch;
pub use filterfn::FilterKind;
pub use lines::{FilterSetup, Line};
