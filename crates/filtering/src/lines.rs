//! Filter-line bookkeeping: the "non-trivial set-up code" of §3.3.
//!
//! A **line** is the unit the filter operates on: one variable at one
//! filtered latitude and one vertical level — a complete circle of
//! longitude points. Initially a line is scattered over the processor row
//! that owns its latitude (each processor holds a longitude chunk). The
//! set-up phase enumerates all lines per filter class, decides who filters
//! which line under each strategy, and precomputes the spectral
//! multipliers. "Its cost is not an issue for a long AGCM simulation since
//! it is done only once, and its cost is also nearly independent of AGCM
//! problem size."

use crate::filterfn::FilterKind;
use agcm_fft::{shared_plan, FftPlan};
use agcm_grid::arakawa::Variable;
use agcm_grid::decomp::{block_partition, Decomp};
use agcm_grid::latlon::GridSpec;
use std::collections::HashMap;
use std::sync::Arc;

/// One filterable line: variable × latitude × level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Line {
    /// Index into [`Variable::ALL`] / the caller's field slice.
    pub var: usize,
    /// Global latitude row.
    pub lat: usize,
    /// Vertical level.
    pub lev: usize,
}

/// Precomputed bookkeeping shared by all three filter implementations.
pub struct FilterSetup {
    /// The global grid.
    pub grid: GridSpec,
    /// The processor-mesh decomposition.
    pub decomp: Decomp,
    /// Field indices subject to strong filtering.
    pub strong_vars: Vec<usize>,
    /// Field indices subject to weak filtering.
    pub weak_vars: Vec<usize>,
    strong_lines: Vec<Line>,
    weak_lines: Vec<Line>,
    multipliers: HashMap<(FilterKind, usize), Vec<f64>>,
    /// FFT plan for whole longitude lines, shared through the process-wide
    /// per-size plan cache (every rank and every setup of one run reuses
    /// the same plan — the paper's once-per-run setup cost, done once per
    /// *process*).
    pub fft: Arc<FftPlan>,
}

impl FilterSetup {
    /// Build the setup for a grid/decomposition with the standard variable
    /// classification from [`Variable`].
    pub fn new(grid: GridSpec, decomp: Decomp) -> FilterSetup {
        let strong_vars: Vec<usize> = Variable::strongly_filtered()
            .iter()
            .map(|v| v.index())
            .collect();
        let weak_vars: Vec<usize> = Variable::weakly_filtered()
            .iter()
            .map(|v| v.index())
            .collect();
        FilterSetup::with_vars(grid, decomp, strong_vars, weak_vars)
    }

    /// Build the setup with explicit variable sets (levels default to the
    /// grid's; pressure etc. are treated as full 3-D fields for filtering
    /// cost purposes, as the per-layer filter applies "on every vertical
    /// layer").
    pub fn with_vars(
        grid: GridSpec,
        decomp: Decomp,
        strong_vars: Vec<usize>,
        weak_vars: Vec<usize>,
    ) -> FilterSetup {
        assert_eq!(
            grid, decomp.grid,
            "setup grid must match the decomposition grid"
        );
        let enumerate = |kind: FilterKind, vars: &[usize]| -> Vec<Line> {
            let lats = kind.filtered_lats(&grid);
            let mut lines = Vec::with_capacity(vars.len() * lats.len() * grid.n_lev);
            for &var in vars {
                for &lat in &lats {
                    for lev in 0..grid.n_lev {
                        lines.push(Line { var, lat, lev });
                    }
                }
            }
            lines
        };
        let strong_lines = enumerate(FilterKind::Strong, &strong_vars);
        let weak_lines = enumerate(FilterKind::Weak, &weak_vars);
        let mut multipliers = HashMap::new();
        for kind in [FilterKind::Strong, FilterKind::Weak] {
            for lat in kind.filtered_lats(&grid) {
                multipliers.insert((kind, lat), kind.multiplier(&grid, lat));
            }
        }
        FilterSetup {
            grid,
            decomp,
            strong_vars,
            weak_vars,
            strong_lines,
            weak_lines,
            multipliers,
            fft: shared_plan(grid.n_lon),
        }
    }

    /// All lines of one filter class, in canonical (var, lat, lev) order.
    pub fn lines(&self, kind: FilterKind) -> &[Line] {
        match kind {
            FilterKind::Strong => &self.strong_lines,
            FilterKind::Weak => &self.weak_lines,
        }
    }

    /// Variable indices of one filter class.
    pub fn vars(&self, kind: FilterKind) -> &[usize] {
        match kind {
            FilterKind::Strong => &self.strong_vars,
            FilterKind::Weak => &self.weak_vars,
        }
    }

    /// The precomputed spectral multiplier for a filtered latitude.
    pub fn multiplier(&self, kind: FilterKind, lat: usize) -> &[f64] {
        self.multipliers
            .get(&(kind, lat))
            .unwrap_or_else(|| panic!("latitude {lat} is not filtered by {kind:?}"))
    }

    /// Longitude chunk `(i0, ni)` held by mesh column `c`.
    pub fn col_chunk(&self, c: usize) -> (usize, usize) {
        block_partition(self.grid.n_lon, self.decomp.mesh_lon, c)
    }

    /// **Load-balanced assignment** (paper Eq. 3 / Figure 2): line `l` of
    /// `kind` is filtered by rank `owner[l]`, with every rank receiving
    /// ⌈L/P⌉ or ⌊L/P⌋ complete lines regardless of how many lines each
    /// hemisphere contributes.
    pub fn balanced_owners(&self, kind: FilterKind) -> Vec<usize> {
        let n_lines = self.lines(kind).len();
        let p = self.decomp.size();
        let mut owners = vec![0usize; n_lines];
        for rank in 0..p {
            let (start, len) = block_partition(n_lines, p, rank);
            for o in owners.iter_mut().skip(start).take(len) {
                *o = rank;
            }
        }
        owners
    }

    /// **Row-local assignment** (FFT *without* load balance): each line
    /// stays within the mesh row owning its latitude; lines of a row are
    /// dealt round-robin over that row's columns, so the assignment stays
    /// balanced within the row even when a single variable is processed at
    /// a time (any contiguous run of lines spreads across all columns).
    /// Polar rows stay overloaded relative to mid-latitude rows — that is
    /// the point of the comparison.
    pub fn row_local_owners(&self, kind: FilterKind) -> Vec<usize> {
        let lines = self.lines(kind);
        let mut per_row: HashMap<usize, Vec<usize>> = HashMap::new();
        for (idx, line) in lines.iter().enumerate() {
            per_row
                .entry(self.decomp.row_of_lat(line.lat))
                .or_default()
                .push(idx);
        }
        let mut owners = vec![0usize; lines.len()];
        let n_cols = self.decomp.mesh_lon;
        for (row, idxs) in per_row {
            for (pos, &line_idx) in idxs.iter().enumerate() {
                owners[line_idx] = row * n_cols + pos % n_cols;
            }
        }
        owners
    }

    /// Per-rank line counts for an assignment — used by tests and by the
    /// Figure 2 demonstration.
    pub fn owner_counts(&self, owners: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.decomp.size()];
        for &o in owners {
            counts[o] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(mesh_lat: usize, mesh_lon: usize) -> FilterSetup {
        let grid = GridSpec::paper_9_layer();
        FilterSetup::new(grid, Decomp::new(grid, mesh_lat, mesh_lon))
    }

    #[test]
    fn line_counts() {
        let s = setup(4, 4);
        // Strong: 4 vars × 46 lats × 9 levels.
        assert_eq!(s.lines(FilterKind::Strong).len(), 4 * 46 * 9);
        // Weak: 2 vars × 30 lats × 9 levels.
        assert_eq!(s.lines(FilterKind::Weak).len(), 2 * 30 * 9);
    }

    #[test]
    fn balanced_owners_match_eq3() {
        let s = setup(4, 8);
        let owners = s.balanced_owners(FilterKind::Strong);
        let counts = s.owner_counts(&owners);
        let total: usize = counts.iter().sum();
        assert_eq!(total, s.lines(FilterKind::Strong).len());
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        // Eq. (3): every processor gets ⌈ΣR/N⌉ (or one fewer).
        assert!(
            max - min <= 1,
            "balanced counts must differ by at most 1: {counts:?}"
        );
        assert_eq!(max, s.lines(FilterKind::Strong).len().div_ceil(32));
    }

    #[test]
    fn row_local_owners_stay_in_their_row() {
        let s = setup(6, 4);
        let lines = s.lines(FilterKind::Weak);
        let owners = s.row_local_owners(FilterKind::Weak);
        for (line, &owner) in lines.iter().zip(&owners) {
            let owner_row = owner / 4;
            assert_eq!(owner_row, s.decomp.row_of_lat(line.lat));
        }
    }

    #[test]
    fn row_local_assignment_is_imbalanced_balanced_is_not() {
        // The entire motivation for §3.3: equatorial rows idle under the
        // row-local scheme.
        let s = setup(8, 4);
        let row_counts = s.owner_counts(&s.row_local_owners(FilterKind::Strong));
        let lb_counts = s.owner_counts(&s.balanced_owners(FilterKind::Strong));
        assert_eq!(
            row_counts.iter().copied().min().unwrap(),
            0,
            "some ranks must be idle"
        );
        assert!(
            lb_counts.iter().copied().min().unwrap() > 0,
            "LB leaves nobody idle"
        );
        let row_max = row_counts.iter().copied().max().unwrap();
        let lb_max = lb_counts.iter().copied().max().unwrap();
        assert!(
            row_max > 2 * lb_max,
            "polar rows carry a large excess: row {row_max} vs lb {lb_max}"
        );
    }

    #[test]
    fn multipliers_precomputed_for_all_filtered_lats() {
        let s = setup(2, 2);
        for kind in [FilterKind::Strong, FilterKind::Weak] {
            for lat in kind.filtered_lats(&s.grid) {
                assert_eq!(s.multiplier(kind, lat).len(), 144);
            }
        }
    }

    #[test]
    fn col_chunks_tile_longitude() {
        let s = setup(2, 30);
        let mut next = 0;
        for c in 0..30 {
            let (i0, ni) = s.col_chunk(c);
            assert_eq!(i0, next);
            next = i0 + ni;
        }
        assert_eq!(next, 144);
    }

    #[test]
    #[should_panic(expected = "not filtered")]
    fn multiplier_for_unfiltered_lat_panics() {
        let s = setup(2, 2);
        s.multiplier(FilterKind::Strong, 45); // equatorial row
    }

    #[test]
    fn canonical_line_order() {
        let s = setup(2, 2);
        let lines = s.lines(FilterKind::Weak);
        // var-major, then lat, then lev.
        assert!(lines
            .windows(2)
            .all(|w| { (w[0].var, w[0].lat, w[0].lev) < (w[1].var, w[1].lat, w[1].lev) }));
    }
}
