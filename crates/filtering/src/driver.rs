//! Uniform dispatch over the three filter implementations.
//!
//! The AGCM driver and the benchmark harness select a variant by value —
//! the comparison across variants is the paper's Tables 8–11.

use crate::convolution::{ConvMode, ConvolutionFilter};
use crate::engine::FilterScratch;
use crate::lines::FilterSetup;
use agcm_grid::field::Field3D;
use agcm_mps::topology::CartComm;
use std::cell::RefCell;

/// How the FFT variants move variables through the redistribute engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterOrganization {
    /// One redistribute pass per filter class moves **all** its variables
    /// — at most one forward + one backward message per rank pair per
    /// class. The production organization (§3.3: "all weakly filtered
    /// variables are filtered concurrently…").
    #[default]
    Aggregated,
    /// One redistribute pass per variable, as the original code was
    /// organized — kept for paper-faithful Tables 8–11 comparison runs.
    PerVariable,
}

/// Which polar-filter implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterVariant {
    /// Original physical-space convolution, ring assembly.
    ConvolutionRing,
    /// Original physical-space convolution, tree assembly.
    ConvolutionTree,
    /// Transpose + local FFT, no load balancing.
    FftNoLb,
    /// Load-balanced FFT (the paper's final design).
    LbFft,
}

impl FilterVariant {
    /// All variants, in the order of the paper's table columns.
    pub const ALL: [FilterVariant; 4] = [
        FilterVariant::ConvolutionRing,
        FilterVariant::ConvolutionTree,
        FilterVariant::FftNoLb,
        FilterVariant::LbFft,
    ];

    /// Column label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FilterVariant::ConvolutionRing => "Convolution (ring)",
            FilterVariant::ConvolutionTree => "Convolution (tree)",
            FilterVariant::FftNoLb => "FFT without load balance",
            FilterVariant::LbFft => "FFT with load balance",
        }
    }
}

/// A ready-to-apply filter: variant plus any precomputed state.
pub struct PolarFilter {
    variant: FilterVariant,
    organization: FilterOrganization,
    conv: Option<ConvolutionFilter>,
    /// Reusable engine buffers, kept across timesteps so the filter stops
    /// allocating on its hot path. `RefCell`: `apply` takes `&self` (the
    /// filter is logically immutable) and each rank owns its own filter.
    scratch: RefCell<FilterScratch>,
}

impl PolarFilter {
    /// Prepare the chosen variant (kernel precomputation for the
    /// convolution forms — the "setup" cost paid once per run) with the
    /// default aggregated organization.
    pub fn new(setup: &FilterSetup, variant: FilterVariant) -> PolarFilter {
        PolarFilter::with_organization(setup, variant, FilterOrganization::default())
    }

    /// Prepare the chosen variant with an explicit organization (only the
    /// FFT variants distinguish them; the convolution forms ignore it).
    pub fn with_organization(
        setup: &FilterSetup,
        variant: FilterVariant,
        organization: FilterOrganization,
    ) -> PolarFilter {
        let conv = match variant {
            FilterVariant::ConvolutionRing => Some(ConvolutionFilter::new(setup, ConvMode::Ring)),
            FilterVariant::ConvolutionTree => Some(ConvolutionFilter::new(setup, ConvMode::Tree)),
            _ => None,
        };
        PolarFilter {
            variant,
            organization,
            conv,
            scratch: RefCell::new(FilterScratch::new()),
        }
    }

    /// The variant this filter runs.
    pub fn variant(&self) -> FilterVariant {
        self.variant
    }

    /// The variable organization of the FFT variants.
    pub fn organization(&self) -> FilterOrganization {
        self.organization
    }

    /// Apply the full filtering step (both classes) to the local fields.
    pub fn apply(&self, setup: &FilterSetup, cart: &CartComm, fields: &mut [Field3D]) {
        match self.variant {
            FilterVariant::ConvolutionRing | FilterVariant::ConvolutionTree => self
                .conv
                .as_ref()
                .expect("prepared in new")
                .apply(setup, cart, fields),
            FilterVariant::FftNoLb => crate::fft::apply_with(
                setup,
                cart,
                fields,
                self.organization,
                &mut self.scratch.borrow_mut(),
            ),
            FilterVariant::LbFft => crate::lb_fft::apply_with(
                setup,
                cart,
                fields,
                self.organization,
                &mut self.scratch.borrow_mut(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{filter_global, global_from_locals, local_from_global, synthetic_field};
    use agcm_grid::decomp::Decomp;
    use agcm_grid::latlon::GridSpec;
    use agcm_mps::runtime::run;

    #[test]
    fn all_variants_agree_with_reference() {
        let grid = GridSpec::new(36, 16, 2);
        let mesh = (2usize, 3usize);
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        let globals: Vec<Field3D> = (0..6).map(|v| synthetic_field(&grid, v)).collect();

        let setup0 = FilterSetup::new(grid, decomp);
        let mut expect = globals.clone();
        filter_global(&setup0, &mut expect);

        for variant in FilterVariant::ALL {
            let locals = run(decomp.size(), |c| {
                let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
                let setup = FilterSetup::new(grid, decomp);
                let filter = PolarFilter::new(&setup, variant);
                let sub = decomp.subdomain_of_rank(c.rank());
                let mut fields: Vec<Field3D> =
                    globals.iter().map(|g| local_from_global(g, &sub)).collect();
                filter.apply(&setup, &cart, &mut fields);
                fields
            });
            for v in 0..6 {
                let got = global_from_locals(
                    &locals.iter().map(|l| l[v].clone()).collect::<Vec<_>>(),
                    &decomp,
                );
                let err = got.max_abs_diff(&expect[v]);
                assert!(err < 1e-8, "{variant:?} variable {v}: err {err}");
            }
        }
    }

    #[test]
    fn labels_distinct() {
        let mut labels: Vec<&str> = FilterVariant::ALL.iter().map(|v| v.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }
}
