//! The original convolution filtering module (paper Eq. 2, §3.1; Tables
//! 8–11 left column).
//!
//! "In the original AGCM code, filtering was performed using the
//! convolution form … the summation defined in (2) was implemented in
//! several ways, involving either communications around processor rings in
//! the longitudinal direction, or communications in binary trees."
//!
//! Each processor row assembles its filtered lines (one variable at a
//! time) via either a **ring** pass or a **binary-tree**
//! gather-and-broadcast, then every processor computes the physical-space
//! convolution for its own longitude chunk: O(N²) work per line, plus the
//! load imbalance of polar rows doing everything — both of which the FFT
//! variants then remove.

use crate::filterfn::FilterKind;
use crate::lines::FilterSetup;
use agcm_fft::convolution::kernel_from_multiplier;
use agcm_grid::field::Field3D;
use agcm_mps::message::Payload;
use agcm_mps::topology::CartComm;
use std::collections::HashMap;

/// How full lines are assembled within a processor row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvMode {
    /// Ring passes: P−1 steps, every chunk visits every processor.
    Ring,
    /// Binomial-tree gather to the row root, then broadcast.
    Tree,
}

/// The convolution filter with its precomputed physical-space kernels —
/// the inverse transforms of the spectral multipliers ("setup" cost, paid
/// once).
pub struct ConvolutionFilter {
    kernels: HashMap<(FilterKind, usize), Vec<f64>>,
    mode: ConvMode,
}

impl ConvolutionFilter {
    /// Precompute kernels for every filtered latitude.
    pub fn new(setup: &FilterSetup, mode: ConvMode) -> ConvolutionFilter {
        let mut kernels = HashMap::new();
        for kind in [FilterKind::Strong, FilterKind::Weak] {
            for lat in kind.filtered_lats(&setup.grid) {
                let mult = setup.multiplier(kind, lat);
                kernels.insert((kind, lat), kernel_from_multiplier(&setup.fft, mult));
            }
        }
        ConvolutionFilter { kernels, mode }
    }

    /// The assembly mode in use.
    pub fn mode(&self) -> ConvMode {
        self.mode
    }

    /// Apply both filter classes.
    pub fn apply(&self, setup: &FilterSetup, cart: &CartComm, fields: &mut [Field3D]) {
        // The row split is collective over the whole mesh, so it must
        // happen before any rank decides it has no filtering to do.
        let row_comm = cart.row_comm();
        for kind in [FilterKind::Strong, FilterKind::Weak] {
            for &var in setup.vars(kind) {
                self.apply_var(setup, cart, &row_comm, fields, kind, var);
            }
        }
    }

    /// Filter one variable of one class — the original one-at-a-time
    /// organization.
    fn apply_var(
        &self,
        setup: &FilterSetup,
        cart: &CartComm,
        row_comm: &agcm_mps::Comm,
        fields: &mut [Field3D],
        kind: FilterKind,
        var: usize,
    ) {
        let (my_row, my_col) = cart.coords();
        let sub = setup.decomp.subdomain(my_row, my_col);
        let filtered_lats: Vec<usize> = kind
            .filtered_lats(&setup.grid)
            .into_iter()
            .filter(|j| sub.lats().contains(j))
            .collect();
        // Rows with no filtered latitudes sit this variable out entirely
        // (every member of the row agrees, so the row-local collectives
        // below are safe to skip): that is the load imbalance of the
        // original code.
        if filtered_lats.is_empty() {
            return;
        }
        let nk = setup.grid.n_lev;
        let n_lon = setup.grid.n_lon;
        let mesh_lon = setup.decomp.mesh_lon;

        // Bundle all (lat, lev) chunks of this variable, lat-major.
        let mut bundle = Vec::with_capacity(filtered_lats.len() * nk * sub.ni);
        for &lat in &filtered_lats {
            for lev in 0..nk {
                bundle.extend_from_slice(&fields[var].row(lat - sub.j0, lev));
            }
        }

        // Assemble the full-longitude bundle on every row member.
        let blocks: Vec<Vec<f64>> = match self.mode {
            ConvMode::Ring => row_comm
                .allgather_ring(Payload::F64(bundle))
                .into_iter()
                .map(Payload::into_f64)
                .collect(),
            ConvMode::Tree => {
                // Binomial gather (concatenation keyed by column) + bcast.
                let gathered = row_comm.gather_f64(0, &bundle);
                let flat: Vec<f64> = match gathered {
                    Some(parts) => parts.into_iter().flatten().collect(),
                    None => Vec::new(),
                };
                let all = row_comm.bcast(0, Payload::F64(flat)).into_f64();
                // Split back into per-column blocks by known chunk sizes.
                let mut blocks = Vec::with_capacity(mesh_lon);
                let mut off = 0;
                for c in 0..mesh_lon {
                    let (_, ni_c) = setup.col_chunk(c);
                    let len = filtered_lats.len() * nk * ni_c;
                    blocks.push(all[off..off + len].to_vec());
                    off += len;
                }
                blocks
            }
        };

        // Convolve for our own chunk, line by line.
        let mut flops = 0.0;
        for (l_idx, &lat) in filtered_lats.iter().enumerate() {
            let kernel = &self.kernels[&(kind, lat)];
            for lev in 0..nk {
                // Reassemble the full line for this (lat, lev).
                let mut full = vec![0.0; n_lon];
                for (c, block) in blocks.iter().enumerate() {
                    let (i0, ni_c) = setup.col_chunk(c);
                    let start = (l_idx * nk + lev) * ni_c;
                    full[i0..i0 + ni_c].copy_from_slice(&block[start..start + ni_c]);
                }
                // out[i] = Σ_s kernel[s] · x[(i−s) mod n], for our chunk.
                let mut out = vec![0.0; sub.ni];
                for (di, slot) in out.iter_mut().enumerate() {
                    let i = sub.i0 + di;
                    let mut acc = 0.0;
                    for (s, &kv) in kernel.iter().enumerate() {
                        acc += kv * full[(i + n_lon - s) % n_lon];
                    }
                    *slot = acc;
                }
                flops += 2.0 * (sub.ni * n_lon) as f64;
                fields[var].set_row(lat - sub.j0, lev, &out);
            }
        }
        cart.comm().record_flops(flops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{filter_global, global_from_locals, local_from_global, synthetic_field};
    use agcm_grid::decomp::Decomp;
    use agcm_grid::latlon::GridSpec;
    use agcm_mps::runtime::{run, run_traced};

    fn check_matches_reference(grid: GridSpec, mesh: (usize, usize), mode: ConvMode) {
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        let n_vars = 6;
        let globals: Vec<Field3D> = (0..n_vars).map(|v| synthetic_field(&grid, v)).collect();

        let locals = run(decomp.size(), |c| {
            let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
            let setup = FilterSetup::new(grid, decomp);
            let filter = ConvolutionFilter::new(&setup, mode);
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut fields: Vec<Field3D> =
                globals.iter().map(|g| local_from_global(g, &sub)).collect();
            filter.apply(&setup, &cart, &mut fields);
            fields
        });

        let setup = FilterSetup::new(grid, decomp);
        let mut expect = globals.clone();
        filter_global(&setup, &mut expect);

        for v in 0..n_vars {
            let per_rank: Vec<Field3D> = locals.iter().map(|l| l[v].clone()).collect();
            let got = global_from_locals(&per_rank, &decomp);
            let err = got.max_abs_diff(&expect[v]);
            assert!(
                err < 1e-8,
                "variable {v} differs from reference by {err} ({mode:?})"
            );
        }
    }

    #[test]
    fn ring_matches_reference_2x2() {
        check_matches_reference(GridSpec::new(36, 20, 2), (2, 2), ConvMode::Ring);
    }

    #[test]
    fn tree_matches_reference_2x2() {
        check_matches_reference(GridSpec::new(36, 20, 2), (2, 2), ConvMode::Tree);
    }

    #[test]
    fn ring_matches_reference_uneven() {
        check_matches_reference(GridSpec::new(45, 22, 2), (3, 4), ConvMode::Ring);
    }

    #[test]
    fn tree_matches_reference_uneven() {
        check_matches_reference(GridSpec::new(45, 22, 2), (3, 4), ConvMode::Tree);
    }

    #[test]
    fn single_rank_needs_no_messages() {
        let grid = GridSpec::new(24, 10, 1);
        let decomp = Decomp::new(grid, 1, 1);
        let (_, trace) = run_traced(1, |c| {
            let cart = CartComm::new(c, 1, 1, (false, true));
            let setup = FilterSetup::new(grid, decomp);
            let filter = ConvolutionFilter::new(&setup, ConvMode::Ring);
            let sub = decomp.subdomain_of_rank(0);
            let mut fields: Vec<Field3D> = (0..6)
                .map(|v| local_from_global(&synthetic_field(&grid, v), &sub))
                .collect();
            filter.apply(&setup, &cart, &mut fields);
        });
        // The only traffic is the CartComm/row_comm setup (empty splits).
        assert_eq!(trace.stats()[0].bytes_sent, 0);
    }

    #[test]
    fn convolution_does_more_work_than_fft() {
        // O(N²) vs O(N log N): at the paper's longitude count (N = 144)
        // the convolution variant must record far more flops than LB-FFT.
        let grid = GridSpec::new(144, 24, 1);
        let mesh = (2usize, 2usize);
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        let run_flops = |conv: bool| {
            let (_, trace) = run_traced(decomp.size(), |c| {
                let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
                let setup = FilterSetup::new(grid, decomp);
                let sub = decomp.subdomain_of_rank(c.rank());
                let mut fields: Vec<Field3D> = (0..6)
                    .map(|v| local_from_global(&synthetic_field(&grid, v), &sub))
                    .collect();
                if conv {
                    ConvolutionFilter::new(&setup, ConvMode::Ring).apply(
                        &setup,
                        &cart,
                        &mut fields,
                    );
                } else {
                    crate::lb_fft::apply(&setup, &cart, &mut fields);
                }
            });
            trace.total_flops()
        };
        let conv = run_flops(true);
        let fft = run_flops(false);
        assert!(conv > 3.0 * fft, "convolution {conv} vs fft {fft}");
    }

    #[test]
    fn ring_needs_more_messages_than_tree() {
        // The paper's accounting (§3.1): the ring costs ~P·logP messages,
        // the binary tree O(2P) — fewer messages, at the price of moving
        // O(N·P + N·logP) data (more than the ring's N·P).
        let grid = GridSpec::new(48, 24, 1);
        let mesh = (2usize, 4usize);
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        let observe = |mode: ConvMode| {
            let (_, trace) = run_traced(decomp.size(), |c| {
                let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
                let setup = FilterSetup::new(grid, decomp);
                let filter = ConvolutionFilter::new(&setup, mode);
                let sub = decomp.subdomain_of_rank(c.rank());
                let mut fields: Vec<Field3D> = (0..6)
                    .map(|v| local_from_global(&synthetic_field(&grid, v), &sub))
                    .collect();
                filter.apply(&setup, &cart, &mut fields);
            });
            (trace.total_messages(), trace.total_bytes())
        };
        // Subtract the setup traffic (CartComm dup + row split), identical
        // for both modes, by comparing the two directly.
        let (ring_msgs, ring_bytes) = observe(ConvMode::Ring);
        let (tree_msgs, tree_bytes) = observe(ConvMode::Tree);
        assert!(
            ring_msgs > tree_msgs,
            "ring messages {ring_msgs} must exceed tree messages {tree_msgs}"
        );
        assert!(
            tree_bytes >= ring_bytes,
            "tree data {tree_bytes} must be at least the ring's {ring_bytes}"
        );
    }
}
