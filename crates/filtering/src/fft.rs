//! FFT filtering **without** load balance (paper §3.2, Tables 8–11 middle
//! column).
//!
//! Each filtered line stays within the processor row that owns its
//! latitude: the row's processors transpose the lines among themselves so
//! each holds complete longitude lines, run the local FFT filter, and
//! transpose back. Asymptotically this replaces the O(N²) convolution with
//! O(N log N) — but the polar processor rows still do *all* the filtering
//! while mid-latitude rows idle, which is the load imbalance the next
//! variant removes.
//!
//! By default all variables of a filter class move in one aggregated pass
//! (the organization §3.3 allows); `FilterOrganization::PerVariable`
//! restores the original one-variable-at-a-time processing for
//! paper-faithful Tables 8–11 runs.

use crate::driver::FilterOrganization;
use crate::engine::{redistribute_filter, FilterScratch};
use crate::filterfn::FilterKind;
use crate::lines::FilterSetup;
use agcm_grid::field::Field3D;
use agcm_mps::topology::CartComm;

/// Apply both filter classes with row-local FFT filtering (aggregated
/// organization, transient scratch).
pub fn apply(setup: &FilterSetup, cart: &CartComm, fields: &mut [Field3D]) {
    let mut scratch = FilterScratch::new();
    apply_with(
        setup,
        cart,
        fields,
        FilterOrganization::Aggregated,
        &mut scratch,
    );
}

/// Apply both filter classes with an explicit organization and reusable
/// scratch (the driver's entry point).
pub fn apply_with(
    setup: &FilterSetup,
    cart: &CartComm,
    fields: &mut [Field3D],
    organization: FilterOrganization,
    scratch: &mut FilterScratch,
) {
    for kind in [FilterKind::Strong, FilterKind::Weak] {
        apply_kind(setup, cart, fields, kind, organization, scratch);
    }
}

/// Apply one filter class: one aggregated pass moving every variable
/// (default), or one pass per variable (paper-faithful).
pub fn apply_kind(
    setup: &FilterSetup,
    cart: &CartComm,
    fields: &mut [Field3D],
    kind: FilterKind,
    organization: FilterOrganization,
    scratch: &mut FilterScratch,
) {
    let owners = setup.row_local_owners(kind);
    match organization {
        FilterOrganization::Aggregated => {
            redistribute_filter(setup, cart, fields, kind, &owners, None, scratch);
        }
        FilterOrganization::PerVariable => {
            for &var in setup.vars(kind) {
                redistribute_filter(setup, cart, fields, kind, &owners, Some(var), scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{filter_global, global_from_locals, local_from_global, synthetic_field};
    use agcm_grid::decomp::Decomp;
    use agcm_grid::latlon::GridSpec;
    use agcm_mps::runtime::{run, run_traced};

    fn check_matches_reference(grid: GridSpec, mesh: (usize, usize)) {
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        let n_vars = 6;
        let globals: Vec<Field3D> = (0..n_vars).map(|v| synthetic_field(&grid, v)).collect();

        // Parallel run.
        let locals = run(decomp.size(), |c| {
            let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
            let setup = FilterSetup::new(grid, decomp);
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut fields: Vec<Field3D> =
                globals.iter().map(|g| local_from_global(g, &sub)).collect();
            apply(&setup, &cart, &mut fields);
            fields
        });

        // Sequential oracle.
        let setup = FilterSetup::new(grid, decomp);
        let mut expect = globals.clone();
        filter_global(&setup, &mut expect);

        for v in 0..n_vars {
            let per_rank: Vec<Field3D> = locals.iter().map(|l| l[v].clone()).collect();
            let got = global_from_locals(&per_rank, &decomp);
            let err = got.max_abs_diff(&expect[v]);
            assert!(err < 1e-9, "variable {v} differs from reference by {err}");
        }
    }

    #[test]
    fn matches_reference_2x2() {
        check_matches_reference(GridSpec::new(36, 20, 2), (2, 2));
    }

    #[test]
    fn matches_reference_4x3() {
        check_matches_reference(GridSpec::new(48, 24, 3), (4, 3));
    }

    #[test]
    fn matches_reference_uneven_mesh() {
        // Non-divisible grid/mesh: 45 lons over 4 cols, 22 lats over 3 rows.
        check_matches_reference(GridSpec::new(45, 22, 2), (3, 4));
    }

    #[test]
    fn matches_reference_single_rank() {
        check_matches_reference(GridSpec::new(24, 10, 2), (1, 1));
    }

    #[test]
    fn work_concentrates_on_polar_rows() {
        // The defining property of the unbalanced variant: mid-latitude
        // mesh rows record (almost) no filter flops.
        let grid = GridSpec::new(48, 24, 2);
        let mesh = (4usize, 2usize);
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        let (_, trace) = run_traced(decomp.size(), |c| {
            let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
            let setup = FilterSetup::new(grid, decomp);
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut fields: Vec<Field3D> = (0..6)
                .map(|v| local_from_global(&synthetic_field(&grid, v), &sub))
                .collect();
            apply(&setup, &cart, &mut fields);
        });
        let stats = trace.stats();
        // Mesh rows 0 and 3 are polar (lats 0-5 and 18-23 of 24 → |φ|>45°),
        // rows 1 and 2 are mid-latitude.
        let polar: f64 = (0..2).chain(6..8).map(|r| stats[r].flops).sum();
        let mid: f64 = (2..6).map(|r| stats[r].flops).sum();
        assert!(polar > 10.0 * mid.max(1.0), "polar {polar} vs mid {mid}");
    }
}
