//! FFT filtering **without** load balance (paper §3.2, Tables 8–11 middle
//! column).
//!
//! Each filtered line stays within the processor row that owns its
//! latitude: the row's processors transpose the lines among themselves so
//! each holds complete longitude lines, run the local FFT filter, and
//! transpose back. Asymptotically this replaces the O(N²) convolution with
//! O(N log N) — but the polar processor rows still do *all* the filtering
//! while mid-latitude rows idle, which is the load imbalance the next
//! variant removes.
//!
//! Faithful to the original organization, variables are processed one at a
//! time.

use crate::engine::redistribute_filter;
use crate::filterfn::FilterKind;
use crate::lines::FilterSetup;
use agcm_grid::field::Field3D;
use agcm_mps::topology::CartComm;

/// Apply both filter classes with row-local FFT filtering.
pub fn apply(setup: &FilterSetup, cart: &CartComm, fields: &mut [Field3D]) {
    for kind in [FilterKind::Strong, FilterKind::Weak] {
        apply_kind(setup, cart, fields, kind);
    }
}

/// Apply one filter class (each variable separately, as the original code
/// did).
pub fn apply_kind(setup: &FilterSetup, cart: &CartComm, fields: &mut [Field3D], kind: FilterKind) {
    let owners = setup.row_local_owners(kind);
    for &var in setup.vars(kind) {
        redistribute_filter(setup, cart, fields, kind, &owners, Some(var));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{filter_global, global_from_locals, local_from_global, synthetic_field};
    use agcm_grid::decomp::Decomp;
    use agcm_grid::latlon::GridSpec;
    use agcm_mps::runtime::{run, run_traced};

    fn check_matches_reference(grid: GridSpec, mesh: (usize, usize)) {
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        let n_vars = 6;
        let globals: Vec<Field3D> = (0..n_vars).map(|v| synthetic_field(&grid, v)).collect();

        // Parallel run.
        let locals = run(decomp.size(), |c| {
            let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
            let setup = FilterSetup::new(grid, decomp);
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut fields: Vec<Field3D> =
                globals.iter().map(|g| local_from_global(g, &sub)).collect();
            apply(&setup, &cart, &mut fields);
            fields
        });

        // Sequential oracle.
        let setup = FilterSetup::new(grid, decomp);
        let mut expect = globals.clone();
        filter_global(&setup, &mut expect);

        for v in 0..n_vars {
            let per_rank: Vec<Field3D> = locals.iter().map(|l| l[v].clone()).collect();
            let got = global_from_locals(&per_rank, &decomp);
            let err = got.max_abs_diff(&expect[v]);
            assert!(err < 1e-9, "variable {v} differs from reference by {err}");
        }
    }

    #[test]
    fn matches_reference_2x2() {
        check_matches_reference(GridSpec::new(36, 20, 2), (2, 2));
    }

    #[test]
    fn matches_reference_4x3() {
        check_matches_reference(GridSpec::new(48, 24, 3), (4, 3));
    }

    #[test]
    fn matches_reference_uneven_mesh() {
        // Non-divisible grid/mesh: 45 lons over 4 cols, 22 lats over 3 rows.
        check_matches_reference(GridSpec::new(45, 22, 2), (3, 4));
    }

    #[test]
    fn matches_reference_single_rank() {
        check_matches_reference(GridSpec::new(24, 10, 2), (1, 1));
    }

    #[test]
    fn work_concentrates_on_polar_rows() {
        // The defining property of the unbalanced variant: mid-latitude
        // mesh rows record (almost) no filter flops.
        let grid = GridSpec::new(48, 24, 2);
        let mesh = (4usize, 2usize);
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        let (_, trace) = run_traced(decomp.size(), |c| {
            let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
            let setup = FilterSetup::new(grid, decomp);
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut fields: Vec<Field3D> = (0..6)
                .map(|v| local_from_global(&synthetic_field(&grid, v), &sub))
                .collect();
            apply(&setup, &cart, &mut fields);
        });
        let stats = trace.stats();
        // Mesh rows 0 and 3 are polar (lats 0-5 and 18-23 of 24 → |φ|>45°),
        // rows 1 and 2 are mid-latitude.
        let polar: f64 = (0..2).chain(6..8).map(|r| stats[r].flops).sum();
        let mid: f64 = (2..6).map(|r| stats[r].flops).sum();
        assert!(polar > 10.0 * mid.max(1.0), "polar {polar} vs mid {mid}");
    }
}
