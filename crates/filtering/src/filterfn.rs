//! The filter response S(s, φ) and the filtered latitude sets.
//!
//! "The filtering algorithm … is basically a set of discrete Fourier
//! filters specifically designed to damp fast-moving inertia-gravity waves
//! near the poles. … Ŝ(s) is a prescribed function of wavenumber and
//! latitude, but is independent of time and height" (paper §3.1).
//!
//! We use an Arakawa–Lamb-style form. The effective zonal phase speed of
//! wavenumber `s` at latitude φ scales as `sin(sπ/N) / (a·cosφ·Δλ)`, so the
//! base response restoring the cutoff latitude's CFL margin is
//!
//! ```text
//! r(s, φ) = min( 1, cos φ / (cos φ_c · sin(s·π/N)) )
//! ```
//!
//! The **strong** filter applies `r²` (poles to 45°): the amplification
//! factor of an explicit step grows *linearly* in `sin(sπ/N)`, so a `1/sin`
//! response only neutralizes it — the squared response guarantees every
//! CFL-violating mode decays, with margin. The **weak** filter applies `r`
//! itself (poles to 60°) — exactly the square root of the strong response,
//! gentler damping for the slower tracers. Both leave long waves (small
//! `s`, where `r = 1`) untouched and damp short waves increasingly toward
//! the pole.

use agcm_grid::latlon::GridSpec;

/// Which of the two filter classes is being applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterKind {
    /// Strong filtering: poles to 45°, full damping.
    Strong,
    /// Weak filtering: poles to 60°, square-root damping.
    Weak,
}

impl FilterKind {
    /// Equatorward cutoff latitude of this class, degrees.
    pub fn cutoff_deg(self) -> f64 {
        match self {
            FilterKind::Strong => 45.0,
            FilterKind::Weak => 60.0,
        }
    }

    /// Response for zonal wavenumber `s` (1 ≤ s ≤ N/2) at latitude
    /// `lat_rad` on an `n_lon`-point circle. Returns a damping factor in
    /// (0, 1]; wavenumber 0 (the zonal mean) is never damped.
    pub fn response(self, s: usize, n_lon: usize, lat_rad: f64) -> f64 {
        assert!(
            s <= n_lon / 2,
            "wavenumber {s} beyond Nyquist for N={n_lon}"
        );
        if s == 0 {
            return 1.0;
        }
        let cutoff = self.cutoff_deg().to_radians();
        let ratio = lat_rad.cos().abs()
            / (cutoff.cos() * (std::f64::consts::PI * s as f64 / n_lon as f64).sin());
        let base = ratio.min(1.0);
        match self {
            FilterKind::Strong => base * base,
            FilterKind::Weak => base,
        }
    }

    /// The full-length spectral multiplier for one latitude row: entry `k`
    /// damps FFT bin `k`, symmetric so real signals stay real
    /// (`mult[k] == mult[N−k]`).
    pub fn multiplier(self, grid: &GridSpec, lat_row: usize) -> Vec<f64> {
        let n = grid.n_lon;
        let lat = grid.latitude(lat_row);
        let mut m = vec![1.0; n];
        #[allow(clippy::needless_range_loop)] // index drives multiple buffers
        for k in 1..n {
            let s = k.min(n - k);
            m[k] = self.response(s, n, lat);
        }
        m
    }

    /// Global latitude rows filtered by this class: all rows poleward of
    /// the cutoff. (Strong: "about one half of the latitudes"; weak:
    /// "about one third", §3.1.)
    pub fn filtered_lats(self, grid: &GridSpec) -> Vec<usize> {
        grid.rows_poleward_of(self.cutoff_deg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zonal_mean_never_damped() {
        for kind in [FilterKind::Strong, FilterKind::Weak] {
            assert_eq!(kind.response(0, 144, 1.4), 1.0);
        }
    }

    #[test]
    fn response_decreases_with_wavenumber() {
        let lat = 80f64.to_radians();
        let mut prev = 1.0;
        for s in 1..=72 {
            let r = FilterKind::Strong.response(s, 144, lat);
            assert!(r <= prev + 1e-12, "response must be non-increasing in s");
            assert!(r > 0.0 && r <= 1.0);
            prev = r;
        }
    }

    #[test]
    fn damping_stronger_toward_pole() {
        let s = 36;
        let r70 = FilterKind::Strong.response(s, 144, 70f64.to_radians());
        let r85 = FilterKind::Strong.response(s, 144, 85f64.to_radians());
        assert!(r85 < r70, "pole {r85} must be damped more than {r70}");
    }

    #[test]
    fn no_damping_equatorward_of_cutoff() {
        // At the cutoff latitude itself, cosφ/cosφ_c = 1 and every
        // wavenumber's response is min(1, 1/sin(·)) = 1 for all s with
        // sin ≤ 1 … exactly 1 only where sin(sπ/N) ≤ 1, i.e. everywhere.
        let r = FilterKind::Strong.response(72, 144, 45f64.to_radians());
        assert!((r - 1.0).abs() < 1e-12);
        // Equatorward rows would have response 1 too (they are simply not
        // in the filtered set).
        let r_eq = FilterKind::Strong.response(72, 144, 10f64.to_radians());
        assert_eq!(r_eq, 1.0);
    }

    #[test]
    fn weak_is_gentler_than_strong() {
        let lat = 85f64.to_radians();
        for s in [10, 36, 72] {
            let strong = FilterKind::Strong.response(s, 144, lat);
            let weak = FilterKind::Weak.response(s, 144, lat);
            assert!(
                weak >= strong,
                "weak {weak} must damp less than strong {strong}"
            );
        }
    }

    #[test]
    fn multiplier_is_symmetric() {
        let grid = GridSpec::paper_9_layer();
        let m = FilterKind::Strong.multiplier(&grid, 0); // most polar row
        assert_eq!(m.len(), 144);
        assert_eq!(m[0], 1.0);
        for k in 1..144 {
            assert!(
                (m[k] - m[144 - k]).abs() < 1e-15,
                "multiplier must be symmetric"
            );
        }
        // The polar row must damp its Nyquist mode hard.
        assert!(m[72] < 0.05, "polar Nyquist damping {}", m[72]);
    }

    #[test]
    fn filtered_sets_nest() {
        let grid = GridSpec::paper_9_layer();
        let strong = FilterKind::Strong.filtered_lats(&grid);
        let weak = FilterKind::Weak.filtered_lats(&grid);
        assert_eq!(strong.len(), 46);
        assert_eq!(weak.len(), 30);
        // Weak rows are a subset of strong rows (closer to the poles).
        for j in &weak {
            assert!(strong.contains(j));
        }
    }

    #[test]
    fn southern_and_northern_hemispheres_symmetric() {
        let grid = GridSpec::paper_9_layer();
        let m_south = FilterKind::Strong.multiplier(&grid, 0);
        let m_north = FilterKind::Strong.multiplier(&grid, 89);
        for (a, b) in m_south.iter().zip(&m_north) {
            // Row latitudes are not exact negations in floating point.
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "beyond Nyquist")]
    fn wavenumber_beyond_nyquist_rejected() {
        FilterKind::Strong.response(73, 144, 1.0);
    }
}
