//! Load-balanced FFT filtering (paper §3.3, Tables 8–11 right column).
//!
//! The generic load-balancing module: filter lines are redistributed over
//! *all* P processors so each ends up with ⌈ΣR_j/N⌉ complete lines
//! (Eq. 3, Figure 2), the row transpose completes the movement (Figure 3),
//! every processor runs the same number of local FFT filters, and inverse
//! data movement restores the original layout. "All weakly filtered
//! variables are filtered concurrently, as are all strongly filtered
//! variables" — each class moves in a single collective exchange.

use crate::driver::FilterOrganization;
use crate::engine::{redistribute_filter, FilterScratch};
use crate::filterfn::FilterKind;
use crate::lines::FilterSetup;
use agcm_grid::field::Field3D;
use agcm_mps::topology::CartComm;

/// Apply both filter classes with globally load-balanced FFT filtering
/// (aggregated organization, transient scratch).
pub fn apply(setup: &FilterSetup, cart: &CartComm, fields: &mut [Field3D]) {
    let mut scratch = FilterScratch::new();
    apply_with(
        setup,
        cart,
        fields,
        FilterOrganization::Aggregated,
        &mut scratch,
    );
}

/// Apply both filter classes with an explicit organization and reusable
/// scratch (the driver's entry point).
pub fn apply_with(
    setup: &FilterSetup,
    cart: &CartComm,
    fields: &mut [Field3D],
    organization: FilterOrganization,
    scratch: &mut FilterScratch,
) {
    for kind in [FilterKind::Strong, FilterKind::Weak] {
        apply_kind(setup, cart, fields, kind, organization, scratch);
    }
}

/// Apply one filter class: all variables concurrently (default), or one
/// pass per variable (the pre-reorganization layout, for comparison runs).
pub fn apply_kind(
    setup: &FilterSetup,
    cart: &CartComm,
    fields: &mut [Field3D],
    kind: FilterKind,
    organization: FilterOrganization,
    scratch: &mut FilterScratch,
) {
    let owners = setup.balanced_owners(kind);
    match organization {
        FilterOrganization::Aggregated => {
            redistribute_filter(setup, cart, fields, kind, &owners, None, scratch);
        }
        FilterOrganization::PerVariable => {
            for &var in setup.vars(kind) {
                redistribute_filter(setup, cart, fields, kind, &owners, Some(var), scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{filter_global, global_from_locals, local_from_global, synthetic_field};
    use agcm_grid::decomp::Decomp;
    use agcm_grid::latlon::GridSpec;
    use agcm_mps::runtime::{run, run_traced};

    fn check_matches_reference(grid: GridSpec, mesh: (usize, usize)) {
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        let n_vars = 6;
        let globals: Vec<Field3D> = (0..n_vars).map(|v| synthetic_field(&grid, v)).collect();

        let locals = run(decomp.size(), |c| {
            let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
            let setup = FilterSetup::new(grid, decomp);
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut fields: Vec<Field3D> =
                globals.iter().map(|g| local_from_global(g, &sub)).collect();
            apply(&setup, &cart, &mut fields);
            fields
        });

        let setup = FilterSetup::new(grid, decomp);
        let mut expect = globals.clone();
        filter_global(&setup, &mut expect);

        for v in 0..n_vars {
            let per_rank: Vec<Field3D> = locals.iter().map(|l| l[v].clone()).collect();
            let got = global_from_locals(&per_rank, &decomp);
            let err = got.max_abs_diff(&expect[v]);
            assert!(err < 1e-9, "variable {v} differs from reference by {err}");
        }
    }

    #[test]
    fn matches_reference_2x2() {
        check_matches_reference(GridSpec::new(36, 20, 2), (2, 2));
    }

    #[test]
    fn matches_reference_4x3() {
        check_matches_reference(GridSpec::new(48, 24, 3), (4, 3));
    }

    #[test]
    fn matches_reference_uneven() {
        check_matches_reference(GridSpec::new(45, 22, 2), (3, 4));
    }

    #[test]
    fn matches_reference_row_mesh() {
        // Degenerate mesh: one processor row.
        check_matches_reference(GridSpec::new(36, 12, 2), (1, 4));
    }

    #[test]
    fn agrees_with_unbalanced_fft() {
        // Both FFT variants are exact: they must agree with each other to
        // rounding error even on the paper-size grid.
        let grid = GridSpec::new(72, 30, 2);
        let mesh = (3usize, 2usize);
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        let globals: Vec<Field3D> = (0..6).map(|v| synthetic_field(&grid, v)).collect();
        let run_variant = |lb: bool| {
            run(decomp.size(), |c| {
                let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
                let setup = FilterSetup::new(grid, decomp);
                let sub = decomp.subdomain_of_rank(c.rank());
                let mut fields: Vec<Field3D> =
                    globals.iter().map(|g| local_from_global(g, &sub)).collect();
                if lb {
                    apply(&setup, &cart, &mut fields);
                } else {
                    crate::fft::apply(&setup, &cart, &mut fields);
                }
                fields
            })
        };
        let a = run_variant(true);
        let b = run_variant(false);
        for v in 0..6 {
            let ga =
                global_from_locals(&a.iter().map(|l| l[v].clone()).collect::<Vec<_>>(), &decomp);
            let gb =
                global_from_locals(&b.iter().map(|l| l[v].clone()).collect::<Vec<_>>(), &decomp);
            assert!(ga.max_abs_diff(&gb) < 1e-9);
        }
    }

    #[test]
    fn work_is_balanced_across_all_ranks() {
        // The defining property: filter flops spread evenly, even though
        // only polar rows hold filterable latitudes.
        let grid = GridSpec::new(48, 24, 2);
        let mesh = (4usize, 2usize);
        let decomp = Decomp::new(grid, mesh.0, mesh.1);
        let (_, trace) = run_traced(decomp.size(), |c| {
            let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
            let setup = FilterSetup::new(grid, decomp);
            let sub = decomp.subdomain_of_rank(c.rank());
            let mut fields: Vec<Field3D> = (0..6)
                .map(|v| local_from_global(&synthetic_field(&grid, v), &sub))
                .collect();
            apply(&setup, &cart, &mut fields);
        });
        let imbalance = trace.flop_imbalance();
        assert!(
            imbalance < 0.20,
            "flop imbalance {imbalance} should be small under LB"
        );
    }
}
