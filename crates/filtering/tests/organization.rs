//! Satellite + acceptance tests for the variable organization of the
//! redistribute engine:
//!
//! * aggregated (all variables of a class in one pass — production) and
//!   per-variable (paper-faithful) organizations produce the same fields;
//! * one aggregated filtered step sends at most one forward + one backward
//!   message per communicating rank pair **per filter class** (asserted
//!   from `WorldTrace` send counts against a no-filter baseline);
//! * aggregation strictly reduces total message count versus the
//!   one-variable-at-a-time organization.

use agcm_filtering::reference::{global_from_locals, local_from_global, synthetic_field};
use agcm_filtering::{FilterOrganization, FilterSetup, FilterVariant, PolarFilter};
use agcm_grid::decomp::Decomp;
use agcm_grid::field::Field3D;
use agcm_grid::latlon::GridSpec;
use agcm_mps::runtime::{run, run_traced};
use agcm_mps::topology::CartComm;
use agcm_mps::trace::{Event, WorldTrace};

const GRID: (usize, usize, usize) = (48, 24, 2);
const MESH: (usize, usize) = (3, 2);

fn run_filtered(
    variant: FilterVariant,
    organization: FilterOrganization,
    mesh: (usize, usize),
    traced: bool,
) -> (Vec<Vec<Field3D>>, WorldTrace) {
    let grid = GridSpec::new(GRID.0, GRID.1, GRID.2);
    let decomp = Decomp::new(grid, mesh.0, mesh.1);
    let globals: Vec<Field3D> = (0..6).map(|v| synthetic_field(&grid, v)).collect();
    let body = move |c: &agcm_mps::comm::Comm| {
        let cart = CartComm::new(c, mesh.0, mesh.1, (false, true));
        let setup = FilterSetup::new(grid, decomp);
        let filter = PolarFilter::with_organization(&setup, variant, organization);
        let sub = decomp.subdomain_of_rank(c.rank());
        let mut fields: Vec<Field3D> = globals.iter().map(|g| local_from_global(g, &sub)).collect();
        filter.apply(&setup, &cart, &mut fields);
        fields
    };
    if traced {
        run_traced(decomp.size(), body)
    } else {
        (run(decomp.size(), body), WorldTrace::default())
    }
}

/// Sends of the whole trace as ordered `(src, dst) → count`.
fn send_counts(trace: &WorldTrace) -> Vec<Vec<usize>> {
    let p = trace.size();
    let mut counts = vec![vec![0usize; p]; p];
    for (src, events) in trace.ranks.iter().enumerate() {
        for ev in events {
            if let Event::Send { to, .. } = ev {
                counts[src][*to] += 1;
            }
        }
    }
    counts
}

/// Trace a run that only sets up the communicator — the message floor any
/// filtered run sits on.
fn baseline_counts() -> Vec<Vec<usize>> {
    let grid = GridSpec::new(GRID.0, GRID.1, GRID.2);
    let decomp = Decomp::new(grid, MESH.0, MESH.1);
    let (_, trace) = run_traced(decomp.size(), move |c| {
        let _cart = CartComm::new(c, MESH.0, MESH.1, (false, true));
    });
    send_counts(&trace)
}

#[test]
fn organizations_produce_identical_fields() {
    for variant in [FilterVariant::FftNoLb, FilterVariant::LbFft] {
        let grid = GridSpec::new(GRID.0, GRID.1, GRID.2);
        let decomp = Decomp::new(grid, MESH.0, MESH.1);
        let (agg, _) = run_filtered(variant, FilterOrganization::Aggregated, MESH, false);
        let (per, _) = run_filtered(variant, FilterOrganization::PerVariable, MESH, false);
        for v in 0..6 {
            let ga = global_from_locals(
                &agg.iter().map(|l| l[v].clone()).collect::<Vec<_>>(),
                &decomp,
            );
            let gp = global_from_locals(
                &per.iter().map(|l| l[v].clone()).collect::<Vec<_>>(),
                &decomp,
            );
            let err = ga.max_abs_diff(&gp);
            assert!(
                err < 1e-9,
                "{variant:?} variable {v}: aggregated vs per-variable differ by {err}"
            );
        }
    }
}

#[test]
fn aggregated_step_sends_at_most_one_message_pair_per_class() {
    let base = baseline_counts();
    for variant in [FilterVariant::FftNoLb, FilterVariant::LbFft] {
        let (_, trace) = run_filtered(variant, FilterOrganization::Aggregated, MESH, true);
        let counts = send_counts(&trace);
        for (src, row) in counts.iter().enumerate() {
            for (dst, &c) in row.iter().enumerate() {
                let extra = c.saturating_sub(base[src][dst]);
                // 2 filter classes × (1 forward + 1 backward) at most.
                assert!(
                    extra <= 4,
                    "{variant:?}: rank {src}→{dst} sent {extra} filter messages (max 4)"
                );
            }
        }
    }
}

#[test]
fn aggregation_strictly_reduces_messages() {
    // Merging only has material when one rank pair exchanges chunks of
    // more than one variable. Under row-local owners that happens on any
    // mesh (round-robin interleaves all variables within a row); under
    // balanced owners the variable blocks of a 2-D mesh can land in
    // disjoint source rows, so the LbFft case uses a single-row mesh where
    // every variable's sources share the row.
    let cases = [
        (FilterVariant::FftNoLb, MESH),
        (FilterVariant::LbFft, (1, 6)),
    ];
    for (variant, mesh) in cases {
        let (_, agg) = run_filtered(variant, FilterOrganization::Aggregated, mesh, true);
        let (_, per) = run_filtered(variant, FilterOrganization::PerVariable, mesh, true);
        assert!(
            agg.total_messages() < per.total_messages(),
            "{variant:?}: aggregated {} vs per-variable {}",
            agg.total_messages(),
            per.total_messages()
        );
    }
}
