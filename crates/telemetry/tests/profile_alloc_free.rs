//! Acceptance-criterion test: the profiler's *publication* path — what a
//! rank thread executes at every `PhaseBegin`/`PhaseEnd` — performs
//! **zero heap allocations** once phase names are interned, and so does
//! the disabled path (no observer at all, just the substrate's `Option`
//! check). A counting global allocator gates the whole binary, so this
//! file holds exactly one test.

use agcm_telemetry::profile::{ProfileConfig, Profiler};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

// Per-thread flag: libtest's harness threads (and the sampler thread)
// allocate concurrently with the test body, so a process-wide flag would
// over-count. Const-init Cell has no lazy allocation or destructor, so
// reading it inside `alloc` is safe.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

fn counting() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn phase_publication_allocates_nothing() {
    let profiler = Profiler::start(ProfileConfig {
        hz: 2000.0,
        max_ranks: 8,
    });
    let obs = profiler.observer();

    // Warm-up: intern every name once, mark slots live.
    for rank in 0..4 {
        obs.rank_started(rank);
        obs.phase_begin(rank, "step");
        obs.phase_begin(rank, "dynamics");
        obs.phase_end(rank, "dynamics");
        obs.phase_begin(rank, "physics");
        obs.phase_end(rank, "physics");
        obs.phase_end(rank, "step");
    }

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..5_000 {
        for rank in 0..4 {
            obs.phase_begin(rank, "step");
            obs.phase_begin(rank, "dynamics");
            obs.phase_begin(rank, "filter");
            obs.phase_end(rank, "filter");
            obs.phase_end(rank, "dynamics");
            obs.phase_begin(rank, "physics");
            obs.phase_end(rank, "physics");
            obs.phase_end(rank, "step");
        }
    }
    COUNTING.with(|c| c.set(false));
    let count = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        count, 0,
        "profiler publication path performed {count} heap allocations"
    );

    // The sampler ran throughout; the fold must still be conservative.
    for rank in 0..4 {
        obs.rank_finished(rank);
    }
    let report = profiler.stop();
    assert!(report.conservation_ok());
    assert_eq!(report.dropped_phases, 0);
}
