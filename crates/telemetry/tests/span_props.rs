//! Property test: for *random balanced* phase-event streams, the extracted
//! spans always nest correctly — matching names, contained event ranges,
//! monotone virtual intervals, depths consistent with containment — and
//! there are exactly as many spans as `PhaseBegin` events. Randomness comes
//! from a hand-rolled LCG so the test is deterministic and dependency-free.

use agcm_costmodel::machine::MachineProfile;
use agcm_mps::trace::{Event, WorldTrace};
use agcm_telemetry::timeline::Timeline;

/// Minimal deterministic PRNG (Numerical Recipes LCG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const NAMES: [&str; 6] = ["step", "dynamics", "physics", "filter", "halo", "balance"];

/// Generate a random *balanced* event stream: at each point, either open a
/// phase, close the innermost open one, or do some work. Closes everything
/// at the end.
fn balanced_stream(rng: &mut Lcg, len: usize) -> Vec<Event> {
    let mut events = Vec::new();
    let mut open: Vec<&'static str> = Vec::new();
    for _ in 0..len {
        match rng.below(4) {
            // Open (bounded depth so streams stay interesting, not towers).
            0 | 1 if open.len() < 5 => {
                let name = NAMES[rng.below(NAMES.len() as u64) as usize];
                open.push(name);
                events.push(Event::PhaseBegin(name));
            }
            2 if !open.is_empty() => {
                events.push(Event::PhaseEnd(open.pop().unwrap()));
            }
            _ => events.push(Event::Flops((1 + rng.below(1000)) as f64 * 1.0e3)),
        }
    }
    while let Some(name) = open.pop() {
        events.push(Event::PhaseEnd(name));
    }
    events
}

fn machine() -> MachineProfile {
    MachineProfile {
        name: "prop",
        flops_per_sec: 1.0e6,
        latency_s: 1.0e-3,
        bytes_per_sec: 1.0e6,
        send_overhead_s: 1.0e-6,
        recv_overhead_s: 1.0e-6,
    }
}

#[test]
fn random_balanced_streams_yield_correctly_nested_spans() {
    let mut rng = Lcg(0x5eed_cafe);
    for case in 0..200 {
        let n_ranks = 1 + (rng.below(4) as usize);
        let ranks: Vec<Vec<Event>> = (0..n_ranks)
            .map(|_| {
                let len = 10 + rng.below(60) as usize;
                balanced_stream(&mut rng, len)
            })
            .collect();
        let begins: usize = ranks
            .iter()
            .flatten()
            .filter(|e| matches!(e, Event::PhaseBegin(_)))
            .count();
        let trace = WorldTrace::from_ranks(ranks);
        assert!(
            trace.validate_phases().is_ok(),
            "case {case}: generator bug"
        );

        let tl = Timeline::from_trace(&trace, &machine())
            .unwrap_or_else(|e| panic!("case {case}: {e:?}"));

        // One span per PhaseBegin.
        assert_eq!(tl.spans.len(), begins, "case {case}");

        for (i, s) in tl.spans.iter().enumerate() {
            // Sanity per span.
            assert!(s.begin_event < s.end_event, "case {case} span {i}");
            assert!(
                s.virt_start <= s.virt_end,
                "case {case} span {i}: {} > {}",
                s.virt_start,
                s.virt_end
            );
            assert_eq!(
                trace.ranks[s.rank][s.begin_event],
                Event::PhaseBegin(s.name),
                "case {case} span {i}"
            );
            assert_eq!(
                trace.ranks[s.rank][s.end_event],
                Event::PhaseEnd(s.name),
                "case {case} span {i}"
            );
        }

        // Pairwise nesting: same-rank spans either nest or are disjoint,
        // and nesting in event ranges implies nesting in virtual time and
        // a strictly greater depth.
        for a in &tl.spans {
            for b in &tl.spans {
                if a.rank != b.rank || std::ptr::eq(a, b) {
                    continue;
                }
                let disjoint = a.end_event < b.begin_event || b.end_event < a.begin_event;
                if disjoint {
                    continue;
                }
                let a_contains_b = a.contains(b);
                let b_contains_a = b.contains(a);
                assert!(
                    a_contains_b ^ b_contains_a,
                    "case {case}: overlapping spans must nest: {a:?} vs {b:?}"
                );
                let (outer, inner) = if a_contains_b { (a, b) } else { (b, a) };
                assert!(
                    outer.depth < inner.depth,
                    "case {case}: {outer:?} {inner:?}"
                );
                assert!(
                    outer.virt_start <= inner.virt_start && inner.virt_end <= outer.virt_end,
                    "case {case}: virtual interval must contain nested span"
                );
            }
        }
    }
}

#[test]
fn streams_with_communication_still_nest() {
    // Balanced phases around a send/recv pair across ranks: the recv-side
    // span is stretched by the wait but still nests.
    let mut rng = Lcg(0xfeed);
    for case in 0..50 {
        let pre = rng.below(5) as f64;
        let trace = WorldTrace::from_ranks(vec![
            vec![
                Event::PhaseBegin("step"),
                Event::Flops(1.0e6 * (1.0 + pre)),
                Event::Send {
                    to: 1,
                    bytes: 500,
                    seq: 0,
                },
                Event::PhaseEnd("step"),
            ],
            vec![
                Event::PhaseBegin("step"),
                Event::PhaseBegin("halo"),
                Event::Recv {
                    from: 0,
                    bytes: 500,
                    seq: 0,
                },
                Event::PhaseEnd("halo"),
                Event::PhaseEnd("step"),
            ],
        ]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let step1 = tl
            .spans
            .iter()
            .find(|s| s.rank == 1 && s.name == "step")
            .unwrap();
        let halo = tl
            .spans
            .iter()
            .find(|s| s.rank == 1 && s.name == "halo")
            .unwrap();
        assert!(step1.contains(halo), "case {case}");
        // The halo span absorbs the wait for rank 0's send.
        assert!(halo.virt_end >= 1.0 * (1.0 + pre), "case {case}");
    }
}
