//! Edge-case coverage for the Prometheus text exposition: label-value
//! escaping, empty histograms, and `# HELP`/`# TYPE` presence for every
//! exported family — all pushed through the strict [`prom::validate`]
//! parser, so the renderer and the validator are held to the same spec.

use agcm_telemetry::metrics::MetricsRegistry;
use agcm_telemetry::prom::{escape_label_value, render, sanitize, validate};

#[test]
fn label_value_escaping_covers_quotes_backslashes_and_newlines() {
    assert_eq!(escape_label_value("plain"), "plain");
    assert_eq!(escape_label_value(r#"say "hi""#), r#"say \"hi\""#);
    assert_eq!(escape_label_value(r"C:\temp"), r"C:\\temp");
    assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
    // Compound: every special char in one value, escaped independently.
    assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    // The escaped form never contains a raw newline or unescaped quote,
    // so embedding it inside label="..." keeps the line well-formed.
    let hostile = escape_label_value("evil\"} 99\ninjected_metric 1");
    let line = format!("m{{tenant=\"{hostile}\"}} 1\n");
    assert_eq!(
        line.lines().count(),
        1,
        "escaping must keep one line: {line:?}"
    );
    validate(&format!("# HELP m doc\n# TYPE m counter\n{line}"))
        .expect("escaped label value must parse");
}

#[test]
fn empty_histogram_exposes_inf_bucket_zero_sum_and_count() {
    let r = MetricsRegistry::new();
    let _ = r.histogram("latency.empty");
    let text = render(&r.snapshot(), &[]);
    let stats = validate(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
    assert_eq!(stats.histograms, 1);
    assert!(
        text.contains("latency_empty_bucket{le=\"+Inf\"} 0"),
        "{text}"
    );
    assert!(text.contains("latency_empty_sum 0"), "{text}");
    assert!(text.contains("latency_empty_count 0"), "{text}");
}

#[test]
fn every_exported_family_carries_help_and_type() {
    let r = MetricsRegistry::new();
    r.counter("http.requests.jobs").add(3);
    r.counter("jobs.completed").inc();
    r.gauge("fleet.ranks_busy").set(4.0);
    let h = r.histogram("http.latency_seconds.jobs");
    h.observe(0.002);
    h.observe(3.0);
    let text = render(&r.snapshot(), &[("uptime_seconds".to_string(), 12.5)]);
    let stats = validate(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
    assert_eq!(stats.families(), 5, "{stats:?}");
    assert_eq!(stats.helps, 5, "{stats:?}");
    assert!(stats.fully_documented());
    // HELP precedes TYPE for each family, on the sanitized name.
    for dotted in [
        "http.requests.jobs",
        "jobs.completed",
        "fleet.ranks_busy",
        "http.latency_seconds.jobs",
        "uptime_seconds",
    ] {
        let n = sanitize(dotted);
        let help_at = text
            .find(&format!("# HELP {n} "))
            .unwrap_or_else(|| panic!("no HELP for {n}:\n{text}"));
        let type_at = text
            .find(&format!("# TYPE {n} "))
            .unwrap_or_else(|| panic!("no TYPE for {n}:\n{text}"));
        assert!(help_at < type_at, "HELP must precede TYPE for {n}");
    }
}

#[test]
fn validator_rejects_malformed_help_lines() {
    assert!(validate("# HELP\n").is_err(), "HELP without a name");
    assert!(
        validate("# HELP bad-name doc\n").is_err(),
        "HELP with an invalid name"
    );
    // HELP text containing escaped newline/backslash parses fine.
    validate("# HELP m doc with \\n and \\\\ inside\n# TYPE m counter\nm 1\n").unwrap();
}
