//! Golden-file test for the Chrome trace exporter: the emitted JSON is
//! byte-stable, parses with the crate's own parser, carries the fields the
//! trace-event format requires (`ph`/`ts`/`dur`/`pid`/`tid`), and
//! round-trips parse → serialize → parse unchanged.

use agcm_costmodel::machine::MachineProfile;
use agcm_mps::trace::{Event, WorldTrace};
use agcm_telemetry::chrome::{to_chrome_json, VIRTUAL_PID, WALL_PID};
use agcm_telemetry::json::Value;
use agcm_telemetry::timeline::Timeline;

const GOLDEN: &str = include_str!("golden/trace_small.json");

/// The exact machine used to generate the golden file: round numbers so
/// every virtual timestamp is exact in f64.
fn golden_machine() -> MachineProfile {
    MachineProfile {
        name: "golden",
        flops_per_sec: 1.0e6,
        latency_s: 1.0e-3,
        bytes_per_sec: 1.0e6,
        send_overhead_s: 0.0,
        recv_overhead_s: 0.0,
    }
}

/// The exact trace behind the golden file: two ranks, one step each with
/// nested dynamics/filter phases, one message, and wall stamps.
fn golden_trace() -> WorldTrace {
    let mut trace = WorldTrace::from_ranks(vec![
        vec![
            Event::PhaseBegin("step"),
            Event::PhaseBegin("dynamics"),
            Event::Flops(2.0e6),
            Event::Send {
                to: 1,
                bytes: 1000,
                seq: 0,
            },
            Event::PhaseEnd("dynamics"),
            Event::PhaseBegin("filter"),
            Event::Flops(1.0e6),
            Event::PhaseEnd("filter"),
            Event::PhaseEnd("step"),
        ],
        vec![
            Event::PhaseBegin("step"),
            Event::PhaseBegin("dynamics"),
            Event::Flops(1.0e6),
            Event::Recv {
                from: 0,
                bytes: 1000,
                seq: 0,
            },
            Event::PhaseEnd("dynamics"),
            Event::PhaseEnd("step"),
        ],
    ]);
    trace.walls = vec![
        vec![0.0, 0.001, 0.005, 0.006, 0.009, 0.010],
        vec![0.0005, 0.0015, 0.0075, 0.0085],
    ];
    trace
}

#[test]
fn golden_file_is_reproduced_exactly() {
    let timeline = Timeline::from_trace(&golden_trace(), &golden_machine()).unwrap();
    let text = to_chrome_json(&timeline).to_string();
    assert_eq!(
        text,
        GOLDEN.trim_end(),
        "Chrome trace output drifted from tests/golden/trace_small.json; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn golden_file_parses_and_round_trips() {
    let doc = Value::parse(GOLDEN.trim_end()).expect("golden trace must parse");
    // Round-trip: parse → serialize → parse is a fixed point.
    let text = doc.to_string();
    assert_eq!(Value::parse(&text).unwrap(), doc);
    assert_eq!(text, GOLDEN.trim_end());

    let events = doc
        .get("traceEvents")
        .expect("traceEvents array")
        .as_arr()
        .unwrap();
    assert!(!events.is_empty());

    let mut complete = 0;
    let mut wall = 0;
    for ev in events {
        let ph = ev.get("ph").expect("every event has ph").as_str().unwrap();
        let pid = ev
            .get("pid")
            .expect("every event has pid")
            .as_f64()
            .unwrap();
        let tid = ev
            .get("tid")
            .expect("every event has tid")
            .as_f64()
            .unwrap();
        assert!((0.0..2.0).contains(&tid), "tid is a rank: {tid}");
        match ph {
            "X" => {
                complete += 1;
                let ts = ev
                    .get("ts")
                    .expect("complete events have ts")
                    .as_f64()
                    .unwrap();
                let dur = ev
                    .get("dur")
                    .expect("complete events have dur")
                    .as_f64()
                    .unwrap();
                assert!(ts >= 0.0 && dur >= 0.0, "ts={ts} dur={dur}");
                assert!(ev.get("name").unwrap().as_str().is_some());
                if pid == WALL_PID as f64 {
                    wall += 1;
                } else {
                    assert_eq!(pid, VIRTUAL_PID as f64);
                }
            }
            "M" => {
                assert!(ev.get("args").unwrap().get("name").is_some());
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    // 5 spans on each timeline (3 on rank 0, 2 on rank 1), both tracks.
    assert_eq!(complete, 10);
    assert_eq!(wall, 5);
}

#[test]
fn virtual_timestamps_reflect_the_cost_model() {
    let timeline = Timeline::from_trace(&golden_trace(), &golden_machine()).unwrap();
    let doc = to_chrome_json(&timeline);
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    // Rank 1's dynamics span ends when the 1000-byte message arrives:
    // max(compute 1 s, send done 2.001 s + latency 0.001 s) = 2.002 s.
    let r1_dyn = events
        .iter()
        .find(|e| {
            e.get("ph").unwrap().as_str() == Some("X")
                && e.get("pid").unwrap().as_f64() == Some(VIRTUAL_PID as f64)
                && e.get("tid").unwrap().as_f64() == Some(1.0)
                && e.get("name").unwrap().as_str() == Some("dynamics")
        })
        .unwrap();
    let ts = r1_dyn.get("ts").unwrap().as_f64().unwrap();
    let dur = r1_dyn.get("dur").unwrap().as_f64().unwrap();
    assert!((ts + dur - 2.002e6).abs() < 1e-6, "end = {}", ts + dur);
}
