//! Acceptance-criterion test: with the default null sink, every
//! instrumented code path performs **zero heap allocations** — counter,
//! gauge and histogram updates, the enabled-gate, the end-of-run
//! `observe_trace` call, null-sink record delivery (including the live
//! tracing hooks: attempts, checkpoints, live and rank phases), and
//! trace-context derivation plus stack-buffer hex encoding. A counting
//! global allocator gates the whole binary, so this file holds exactly
//! one test.

use agcm_telemetry::run::StepMetrics;
use agcm_telemetry::sink::{NullSink, TelemetrySink};
use agcm_telemetry::tracectx::{hex16, hex32};
use agcm_telemetry::{registry, telemetry, TraceContext};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_telemetry_allocates_nothing() {
    use agcm_mps::trace::{Event, WorldTrace};

    // Registration (allocating) happens once, before the counted region —
    // exactly how call sites are written.
    let counter = registry().counter("model.steps");
    let gauge = registry().gauge("model.imbalance");
    let histogram = registry().histogram("model.step_seconds");
    let trace = WorldTrace::from_ranks(vec![vec![
        Event::PhaseBegin("step"),
        Event::Flops(1.0e6),
        Event::PhaseEnd("step"),
    ]]);
    let prebuilt = StepMetrics {
        step: 0,
        virt_start: 0.0,
        virt_seconds: 1.0,
        phase_seconds: vec![("step", 1.0)],
        messages: vec![0],
        bytes: vec![0],
        flops: vec![1.0e6],
        flop_imbalance: 0.0,
        phase_flop_imbalance: vec![],
    };
    let null = NullSink;
    // Root minting allocates (RandomState); it happens once per request,
    // outside the hot loop — exactly how `submit` is written.
    let root = TraceContext::new_root();
    let mut b32 = [0u8; 32];
    let mut b16 = [0u8; 16];

    // Warm-up (also faults in the lazily-created global handle state).
    assert!(!telemetry().enabled());
    assert!(telemetry().observe_trace(&trace, None).is_none());

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for i in 0..1000 {
        counter.inc();
        gauge.set(i as f64 * 0.25);
        histogram.observe(i as f64 * 1e-3);
        // The gate every instrumented call site checks first:
        if telemetry().enabled() {
            unreachable!("null sink must report disabled");
        }
        // End-of-run hook with nothing installed: returns immediately.
        assert!(telemetry().observe_trace(&trace, None).is_none());
        // Direct null-sink delivery is also free, including the live
        // tracing hooks a disabled scheduler still invokes through the
        // trait's default no-op bodies.
        null.record_step(&prebuilt);
        null.record_attempt(i as u64, Some(i as u64));
        null.record_checkpoint(i as u64);
        null.record_live_phase(0, "fd", 1e-3);
        null.record_rank_phase(0, "fd", 1e-3, 1);
        // Span-context derivation and hex encoding on the disabled path:
        // deterministic child ids and fixed stack buffers, no heap.
        let attempt_span = root.child(i as u64);
        assert_ne!(attempt_span.span_id, 0);
        assert_eq!(hex32(attempt_span.trace_id, &mut b32).len(), 32);
        assert_eq!(hex16(attempt_span.span_id, &mut b16).len(), 16);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let count = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        count, 0,
        "disabled telemetry performed {count} heap allocations"
    );
}
