//! Edge cases for `HistogramSnapshot::quantile`. `/v1/metrics` now
//! exposes these estimates externally (fleet latency, per-endpoint
//! request latency), so the boundary behaviour is API: empty snapshots,
//! a single sample, the q=0/q=1 extremes, out-of-range q, and
//! non-finite observations must all return something sane.

use agcm_telemetry::metrics::Histogram;

#[test]
fn empty_histogram_is_zero_at_every_q() {
    let snap = Histogram::new().snapshot();
    assert_eq!(snap.count, 0);
    for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
        assert_eq!(snap.quantile(q), 0.0, "q={q}");
    }
}

#[test]
fn single_sample_brackets_the_observation_at_every_q() {
    let h = Histogram::new();
    h.observe(3.0);
    let snap = h.snapshot();
    assert_eq!(snap.count, 1);
    // One sample in the [2, 4) bucket: every quantile interpolates inside
    // that bucket — within one power of two of the true value.
    for q in [0.0, 0.5, 1.0] {
        let est = snap.quantile(q);
        assert!((2.0..=4.0).contains(&est), "q={q} gave {est}");
    }
}

#[test]
fn q_zero_and_q_one_hit_the_extreme_buckets() {
    let h = Histogram::new();
    for v in [0.001, 1.5, 1000.0] {
        h.observe(v);
    }
    let snap = h.snapshot();
    // q=0 targets the first observation: at or below the smallest
    // sample's bucket ceiling.
    assert!(snap.quantile(0.0) <= 0.002, "q=0: {}", snap.quantile(0.0));
    // q=1 targets the last: within the largest sample's bucket [512, 2048).
    let p100 = snap.quantile(1.0);
    assert!((512.0..=2048.0).contains(&p100), "q=1: {p100}");
    // The estimate brackets the true max to one power of two.
    assert!((1000.0 / 2.0..=1000.0 * 2.0).contains(&p100));
}

#[test]
fn out_of_range_q_is_clamped_not_garbage() {
    let h = Histogram::new();
    h.observe(8.0);
    h.observe(9.0);
    let snap = h.snapshot();
    assert_eq!(snap.quantile(-3.0), snap.quantile(0.0));
    assert_eq!(snap.quantile(7.5), snap.quantile(1.0));
    assert_eq!(snap.quantile(f64::NAN), snap.quantile(0.0), "NaN q clamps");
}

#[test]
fn quantile_is_monotone_in_q() {
    let h = Histogram::new();
    for i in 1..=200 {
        h.observe(i as f64 * 0.01);
    }
    let snap = h.snapshot();
    let mut prev = f64::NEG_INFINITY;
    for i in 0..=20 {
        let q = i as f64 / 20.0;
        let est = snap.quantile(q);
        assert!(
            est >= prev,
            "quantile must be monotone: q={q} {est} < {prev}"
        );
        prev = est;
    }
}

#[test]
fn non_finite_and_negative_observations_land_in_the_underflow_bucket() {
    let h = Histogram::new();
    h.observe(f64::NAN);
    h.observe(f64::INFINITY);
    h.observe(-5.0);
    h.observe(0.0);
    let snap = h.snapshot();
    assert_eq!(snap.count, 4);
    // All four land in the underflow bucket; quantiles stay in its span.
    for q in [0.0, 0.5, 1.0] {
        let est = snap.quantile(q);
        assert!(est.is_finite() && est >= 0.0, "q={q} gave {est}");
    }
    // Non-finite values are excluded from the sum (NaN would poison it).
    assert_eq!(snap.sum, -5.0);
}
