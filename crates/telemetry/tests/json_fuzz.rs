//! Malformed-body edge cases for the hardened JSON parser. These bytes
//! now arrive off a socket (`agcm-server` request bodies), so every
//! rejection must be typed — the HTTP layer branches on
//! [`ParseErrorKind`] — and no input may panic, hang, or blow the stack.

use agcm_telemetry::json::{ParseErrorKind, ParseLimits, Value};

fn kind_of(text: &str) -> ParseErrorKind {
    Value::parse(text)
        .expect_err(&format!("{text:?} must be rejected"))
        .kind
}

#[test]
fn unterminated_strings_are_typed() {
    for bad in ["\"", "\"abc", "{\"key", "[\"a\", \"b"] {
        assert_eq!(kind_of(bad), ParseErrorKind::UnterminatedString, "{bad:?}");
    }
}

#[test]
fn bad_escapes_are_typed() {
    // The last case is a string ending mid-escape: the parser sees the
    // backslash, finds end-of-input where the escape code should be.
    for bad in [
        "\"\\x\"",
        "\"\\u12\"",
        "\"\\uZZZZ\"",
        "\"\\ud800\"",
        "\"ends with escape\\",
    ] {
        assert_eq!(kind_of(bad), ParseErrorKind::BadEscape, "{bad:?}");
    }
}

#[test]
fn raw_control_characters_in_strings_are_rejected() {
    // A raw newline, tab, and NUL inside a string: RFC 8259 requires the
    // escaped forms. (The serializer always escapes, so round-trips are
    // unaffected.)
    for bad in ["\"a\nb\"", "\"a\tb\"", "\"a\u{0}b\"", "\"\u{1f}\""] {
        assert_eq!(kind_of(bad), ParseErrorKind::ControlCharacter, "{bad:?}");
    }
    // The escaped forms still parse.
    assert_eq!(Value::parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
}

#[test]
fn overflowing_numbers_are_rejected_not_infinity() {
    for bad in ["1e999", "-1e999", "1e308999"] {
        assert_eq!(kind_of(bad), ParseErrorKind::BadNumber, "{bad:?}");
    }
    // The largest finite double still parses.
    assert_eq!(
        Value::parse("1.7976931348623157e308").unwrap().as_f64(),
        Some(f64::MAX)
    );
}

#[test]
fn depth_bomb_is_rejected_without_stack_overflow() {
    // 100k unclosed brackets: far past any real document, must return a
    // typed TooDeep error rather than recurse to a crash.
    let bomb = "[".repeat(100_000);
    assert_eq!(kind_of(&bomb), ParseErrorKind::TooDeep);
    let obj_bomb = "{\"k\":".repeat(100_000);
    assert_eq!(kind_of(&obj_bomb), ParseErrorKind::TooDeep);

    // Depth just under the default limit still parses.
    let mut ok = "1".to_string();
    for _ in 0..500 {
        ok = format!("[{ok}]");
    }
    assert!(Value::parse(&ok).is_ok());
}

#[test]
fn tight_limits_for_request_bodies() {
    let limits = ParseLimits {
        max_depth: 8,
        max_bytes: 64,
    };
    // Depth 9 under a depth-8 limit.
    let deep = "[[[[[[[[[1]]]]]]]]]";
    assert_eq!(
        Value::parse_untrusted(deep, limits).unwrap_err().kind,
        ParseErrorKind::TooDeep
    );
    // 65 bytes under a 64-byte limit — rejected before parsing.
    let big = format!("\"{}\"", "x".repeat(63));
    let err = Value::parse_untrusted(&big, limits).unwrap_err();
    assert_eq!(err.kind, ParseErrorKind::TooLarge);
    assert_eq!(err.offset, 0);
    // Within both limits: fine.
    assert!(Value::parse_untrusted("{\"a\":[1,2]}", limits).is_ok());
}

#[test]
fn trailing_and_syntax_garbage_are_typed() {
    assert_eq!(kind_of("{} {}"), ParseErrorKind::Trailing);
    assert_eq!(kind_of("1 2"), ParseErrorKind::Trailing);
    for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "nulL", "[1;2]", ","] {
        assert_eq!(kind_of(bad), ParseErrorKind::Syntax, "{bad:?}");
    }
}

#[test]
fn error_offsets_point_into_the_input() {
    let err = Value::parse("{\"a\": 1, \"b\": tru}").unwrap_err();
    assert_eq!(err.kind, ParseErrorKind::Syntax);
    assert_eq!(err.offset, 14, "offset names the bad token");
    // And Display carries both.
    let text = err.to_string();
    assert!(text.contains("byte 14"), "{text}");
}

#[test]
fn fuzz_grab_bag_never_panics() {
    // Structured garbage a fuzzer would find in the first minute. The
    // assertion is simply "returns", Ok or Err — no panic, no hang.
    let cases: &[&str] = &[
        "\u{feff}{}", // BOM prefix
        "[,]",
        "[1,]",
        "{\"a\":}",
        "{:1}",
        "--1",
        "+1",
        "01e",
        ".5",
        "\"\\u0000\"", // escaped NUL is legal
        "[\"\\\"\"]",
        "{\"\":null}",
        "[[]]",
        "{\"a\":{\"a\":{\"a\":null}}}",
        "9007199254740993", // beyond 2^53: parses lossily, fine
        "1e-999",           // underflows to 0.0: finite, fine
    ];
    for case in cases {
        let _ = Value::parse(case);
    }
    // Escaped NUL round-trips as a string containing NUL.
    assert_eq!(Value::parse("\"\\u0000\"").unwrap().as_str(), Some("\u{0}"));
    // Underflow to zero is accepted (finite).
    assert_eq!(Value::parse("1e-999").unwrap().as_f64(), Some(0.0));
}
