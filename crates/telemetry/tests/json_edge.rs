//! Edge-case tests for `agcm_telemetry::json`: non-finite floats, deeply
//! nested documents, and duplicate object keys. These are the shapes real
//! telemetry hits — NaN from a 0/0 imbalance on an idle rank, deep nesting
//! from recursive phase structure — and must never produce invalid JSON.

use agcm_telemetry::json::Value;

#[test]
fn non_finite_numbers_serialize_as_null_everywhere() {
    // Top level.
    assert_eq!(Value::Num(f64::NAN).to_string(), "null");
    assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
    assert_eq!(Value::Num(f64::NEG_INFINITY).to_string(), "null");

    // Inside arrays: neighbours unaffected.
    let arr = Value::Arr(vec![
        Value::Num(1.0),
        Value::Num(f64::NAN),
        Value::Num(f64::NEG_INFINITY),
        Value::Num(2.5),
    ]);
    assert_eq!(arr.to_string(), "[1,null,null,2.5]");

    // Inside objects: the key survives, the value degrades to null.
    let obj = Value::obj(vec![
        ("ok", Value::Num(3.0)),
        ("imbalance", Value::Num(f64::NAN)),
    ]);
    assert_eq!(obj.to_string(), "{\"ok\":3,\"imbalance\":null}");

    // And the round trip parses back as real null.
    let back = Value::parse(&obj.to_string()).unwrap();
    assert!(matches!(back.get("imbalance"), Some(Value::Null)));
    assert_eq!(back.get("ok").unwrap().as_f64(), Some(3.0));
}

#[test]
fn negative_zero_and_tiny_magnitudes_stay_finite() {
    // Adjacent edge: values near the finite/non-finite border must not be
    // nulled. MIN_POSITIVE and MAX are finite and round-trip.
    for v in [f64::MIN_POSITIVE, f64::MAX, -0.0, 5e-324] {
        let text = Value::Num(v).to_string();
        assert_ne!(text, "null", "{v} must serialize as a number");
        let back = Value::parse(&text).unwrap();
        assert_eq!(back.as_f64(), Some(v), "{v} must round-trip");
    }
}

#[test]
fn deeply_nested_arrays_round_trip() {
    // 200 levels of [[[...[42]...]]] — enough to catch accidental O(depth²)
    // blowups or recursion limits well below realistic document depth.
    const DEPTH: usize = 200;
    let mut v = Value::Num(42.0);
    for _ in 0..DEPTH {
        v = Value::Arr(vec![v]);
    }
    let text = v.to_string();
    assert!(text.starts_with("[[[") && text.ends_with("]]]"));
    let parsed = Value::parse(&text).unwrap();
    assert_eq!(parsed, v);

    // Unwrap all the way back down.
    let mut cur = &parsed;
    for _ in 0..DEPTH {
        cur = &cur.as_arr().unwrap()[0];
    }
    assert_eq!(cur.as_f64(), Some(42.0));
}

#[test]
fn deeply_nested_objects_round_trip() {
    const DEPTH: usize = 100;
    let mut v = Value::Str("leaf".to_string());
    for _ in 0..DEPTH {
        v = Value::obj(vec![("k", v)]);
    }
    let parsed = Value::parse(&v.to_string()).unwrap();
    let mut cur = &parsed;
    for _ in 0..DEPTH {
        cur = cur.get("k").unwrap();
    }
    assert_eq!(cur.as_str(), Some("leaf"));
}

#[test]
fn duplicate_keys_are_kept_and_get_returns_the_first() {
    let parsed = Value::parse("{\"a\":1,\"b\":2,\"a\":3}").unwrap();
    // All pairs preserved in input order — the parser does not silently
    // drop or overwrite duplicates.
    let pairs = parsed.as_obj().unwrap();
    assert_eq!(pairs.len(), 3);
    assert_eq!(pairs[0].0, "a");
    assert_eq!(pairs[0].1.as_f64(), Some(1.0));
    assert_eq!(pairs[2].0, "a");
    assert_eq!(pairs[2].1.as_f64(), Some(3.0));
    // Lookup is first-wins, and re-serialization preserves the duplicates.
    assert_eq!(parsed.get("a").unwrap().as_f64(), Some(1.0));
    assert_eq!(parsed.to_string(), "{\"a\":1,\"b\":2,\"a\":3}");
}

#[test]
fn duplicate_keys_nested_inside_arrays() {
    let parsed = Value::parse("[{\"x\":true,\"x\":false}]").unwrap();
    let inner = &parsed.as_arr().unwrap()[0];
    assert_eq!(inner.as_obj().unwrap().len(), 2);
    assert!(matches!(inner.get("x"), Some(Value::Bool(true))));
}
