//! Metrics primitives: counters, gauges, log-bucketed histograms.
//!
//! The paper's measurement discipline (§3.4) is "count what the code
//! actually did on every processor" — messages, bytes, seconds per
//! component. These primitives are the process-local generalization: all
//! are lock-free atomics, safe to update from every rank thread, and —
//! critically for the hot path — **allocation-free to update**. Allocation
//! happens only at registration time, which call sites do once.
//!
//! Histograms bucket by the binary exponent of the observed value (one
//! bucket per power of two), the classic trick for latency-style
//! distributions: constant-time insert, fixed memory, relative-error
//! bounded by 2×.

use crate::json::Value;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64` (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at 0.0.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: exponents −32..=30 plus an underflow bucket
/// (index 0, values < 2⁻³²  or ≤ 0) and an overflow bucket (index 63).
const BUCKETS: usize = 64;
/// Bias added to a value's binary exponent to get its bucket index.
const EXP_BIAS: i32 = 33;

/// A log-bucketed histogram of non-negative `f64` observations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum of observations, as `f64` bits, updated by CAS.
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: 0 for ≤ 0 / tiny, 63 for huge, else one
    /// bucket per binary exponent.
    fn bucket_of(v: f64) -> usize {
        if v.is_nan() || v <= 0.0 || !v.is_finite() {
            return 0;
        }
        // IEEE-754 biased exponent; subnormals land in the underflow bucket.
        let biased = ((v.to_bits() >> 52) & 0x7ff) as i32;
        let exp = biased - 1023;
        (exp + EXP_BIAS).clamp(0, BUCKETS as i32 - 1) as usize
    }

    /// Lower bound of a bucket (0.0 for the underflow bucket).
    fn bucket_floor(idx: usize) -> f64 {
        if idx == 0 {
            0.0
        } else {
            (2.0f64).powi(idx as i32 - EXP_BIAS)
        }
    }

    /// Record one observation. Lock-free and allocation-free.
    pub fn observe(&self, v: f64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Snapshot the non-empty buckets as `(lower_bound, count)`.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| (Self::bucket_floor(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// within the log-spaced bucket containing the target rank. Accurate
    /// to within one power of two — the resolution the histogram keeps.
    /// Returns 0.0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).max(1.0);
        let mut seen = 0.0;
        for &(lo, n) in &self.buckets {
            let n = n as f64;
            if seen + n >= target {
                // Each bucket spans one binary exponent: [lo, 2·lo). The
                // underflow bucket (lo = 0) tops out at the first real
                // bucket's floor.
                let hi = if lo == 0.0 {
                    Histogram::bucket_floor(1)
                } else {
                    lo * 2.0
                };
                return lo + (hi - lo) * ((target - seen) / n);
            }
            seen += n;
        }
        // Rounding left the target past the last bucket: report its edge.
        self.buckets
            .last()
            .map_or(0.0, |&(lo, _)| if lo == 0.0 { 0.0 } else { lo * 2.0 })
    }
}

/// A named collection of metrics. Handles are `Arc`s, so call sites register
/// once (allocating) and update forever after without touching the registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn get_or_insert<T: Default>(list: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut list = list.lock();
    if let Some((_, v)) = list.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    list.push((name.to_string(), Arc::clone(&v)));
    v
}

impl MetricsRegistry {
    /// An empty registry.
    pub const fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
        }
    }

    /// Get (or create) the named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// Get (or create) the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Get (or create) the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(String, f64)> = self
            .gauges
            .lock()
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .lock()
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Serialize as a JSON object.
    pub fn to_json(&self) -> Value {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), Value::Num(*v as f64)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(n, v)| (n.clone(), Value::Num(*v)))
                .collect(),
        );
        let histograms = Value::Obj(
            self.histograms
                .iter()
                .map(|(n, h)| {
                    let buckets = Value::Arr(
                        h.buckets
                            .iter()
                            .map(|&(lo, c)| Value::Arr(vec![Value::Num(lo), Value::Num(c as f64)]))
                            .collect(),
                    );
                    (
                        n.clone(),
                        Value::obj(vec![
                            ("count", Value::Num(h.count as f64)),
                            ("sum", Value::Num(h.sum)),
                            ("buckets", buckets),
                        ]),
                    )
                })
                .collect(),
        );
        Value::obj(vec![
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_last_value_wins() {
        let g = Gauge::new();
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = Histogram::new();
        h.observe(1.5); // exponent 0
        h.observe(1.9); // exponent 0
        h.observe(4.0); // exponent 2
        h.observe(0.0); // underflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.sum - 7.4).abs() < 1e-12);
        assert_eq!(s.buckets, vec![(0.0, 1), (1.0, 2), (4.0, 1)]);
    }

    #[test]
    fn histogram_extremes_clamp() {
        let h = Histogram::new();
        h.observe(1e300); // overflow bucket
        h.observe(1e-300); // underflow bucket
        h.observe(-5.0); // underflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(s.buckets[0].1, 2); // the two tiny/negative values
    }

    #[test]
    fn registry_returns_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("steps");
        let b = r.counter("steps");
        a.inc();
        b.inc();
        assert_eq!(r.counter("steps").get(), 2);
    }

    #[test]
    fn snapshot_is_sorted_and_serializes() {
        let r = MetricsRegistry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        r.gauge("imbalance").set(0.25);
        r.histogram("step_seconds").observe(0.5);
        let s = r.snapshot();
        assert_eq!(s.counters[0].0, "a.first");
        let json = s.to_json().to_string();
        let parsed = Value::parse(&json).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("a.first")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .unwrap()
                .get("imbalance")
                .unwrap()
                .as_f64(),
            Some(0.25)
        );
        assert_eq!(
            parsed
                .get("histograms")
                .unwrap()
                .get("step_seconds")
                .unwrap()
                .get("count")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn quantile_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_brackets_observations_and_is_monotone() {
        let h = Histogram::new();
        // 90 fast observations near 0.001, 10 slow near 10.0.
        for _ in 0..90 {
            h.observe(0.001);
        }
        for _ in 0..10 {
            h.observe(10.0);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.5);
        let p95 = snap.quantile(0.95);
        // p50 must land in the bucket holding 0.001 (one power of two
        // around it), p95 in the bucket holding 10.0.
        assert!(p50 > 0.0005 && p50 < 0.002, "p50 {p50}");
        assert!((8.0..=16.0).contains(&p95), "p95 {p95}");
        // Monotone in q, and the extremes stay within the data's buckets.
        let mut prev = 0.0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = snap.quantile(q);
            assert!(
                v >= prev,
                "quantile must be monotone: q={q} v={v} prev={prev}"
            );
            prev = v;
        }
        assert!(snap.quantile(1.0) <= 16.0);
    }

    #[test]
    fn quantile_single_observation() {
        let h = Histogram::new();
        h.observe(3.0);
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.95, 1.0] {
            let v = snap.quantile(q);
            assert!((2.0..=4.0).contains(&v), "q={q} v={v}");
        }
    }
}
