//! Trace analysis: matched message flows and wait-state attribution.
//!
//! Scalasca-style analysis over a [`WorldTrace`] replayed on the cost
//! model's virtual clocks (the [`EventSchedule`] replay hook):
//!
//! * every matched send/receive pair becomes a [`MessageFlow`] with its
//!   full virtual-time geometry (send occupancy, wire arrival, receive
//!   posting and completion);
//! * a receive that completes later than `post + recv_overhead` was held
//!   up by a **late sender** — that wait is charged to the receiving rank
//!   (where it was *suffered*) and attributed to the sending rank (which
//!   *caused* it), per phase;
//! * a message that arrives before its receive is posted sat **buffered**
//!   (the eager-send substrate never blocks the sender, so this is the
//!   late-receiver analogue);
//! * per rank, `busy + wait = finish` exactly — busy is recomputed
//!   independently from machine parameters, so the identity is a real
//!   cross-check, enforced by property tests.
//!
//! [`analyze`] bundles the flows, the [`WaitReport`], the communication
//! matrix and the critical path into one [`TraceAnalysis`] for report
//! generators and the extended Perfetto export.

use crate::commmatrix::CommMatrix;
use crate::critical::CriticalPath;
use crate::timeline::Timeline;
use agcm_costmodel::machine::MachineProfile;
use agcm_costmodel::replay::{schedule, EventSchedule};
use agcm_mps::trace::{Event, MessagePair, PhaseFault, WorldTrace};

/// One matched message with its virtual-time geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageFlow {
    /// The matched send/receive pair (ranks, seq, bytes, event indices).
    pub pair: MessagePair,
    /// When the sender started the send (s).
    pub send_start: f64,
    /// When the sender was done with the send (s).
    pub send_end: f64,
    /// When the message arrived at the receiver (`send_end + latency`).
    pub arrival: f64,
    /// When the receiver posted the receive (s).
    pub recv_start: f64,
    /// When the receive completed (s): `max(recv_start + overhead, arrival)`.
    pub recv_end: f64,
    /// Late-sender wait the receiver suffered on this message (s).
    pub wait: f64,
    /// Time the message sat delivered before the receive was posted (s).
    pub buffered: f64,
}

/// Wait accounting for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankWait {
    /// Seconds the rank was doing work (compute, send occupancy, receive
    /// overhead) — recomputed from machine parameters, not from `finish`.
    pub busy: f64,
    /// Late-sender wait suffered inside this rank's receives.
    pub wait: f64,
    /// Wait *caused* by this rank: other ranks' late-sender wait on
    /// messages this rank sent late.
    pub caused: f64,
    /// Seconds messages addressed to this rank sat buffered before it
    /// posted the receives (late-receiver time).
    pub buffered: f64,
    /// The rank's virtual finish time; `busy + wait == finish`.
    pub finish: f64,
}

/// Per-rank, per-phase wait-state decomposition of one trace.
#[derive(Debug, Clone, Default)]
pub struct WaitReport {
    /// Per-rank accounting.
    pub ranks: Vec<RankWait>,
    /// Per-phase per-rank wait *suffered*, keyed by the receiver's
    /// innermost open phase, sorted by name.
    pub phase_wait: Vec<(&'static str, Vec<f64>)>,
    /// Per-phase per-*sender* wait caused, keyed by the receiver's
    /// innermost open phase (where the stall was felt), indexed by the
    /// sending rank (who is to blame). Sorted by name.
    pub phase_caused: Vec<(&'static str, Vec<f64>)>,
    /// The run's makespan (slowest rank's finish).
    pub makespan: f64,
}

impl WaitReport {
    /// Compute the report for a trace. Validates phase balance first (the
    /// per-phase attribution needs a well-formed phase stream).
    pub fn from_trace(
        trace: &WorldTrace,
        machine: &MachineProfile,
    ) -> Result<WaitReport, Vec<PhaseFault>> {
        trace.validate_phases()?;
        let sched = schedule(trace, machine);
        let flows = message_flows(trace, &sched, machine);
        Ok(WaitReport::from_flows(trace, &sched, &flows, machine))
    }

    /// Compute the report from already-derived parts (trace must be
    /// phase-balanced, `flows` must come from `sched`).
    pub fn from_flows(
        trace: &WorldTrace,
        sched: &EventSchedule,
        flows: &[MessageFlow],
        machine: &MachineProfile,
    ) -> WaitReport {
        let n = trace.size();
        let phases = innermost_phases(trace);
        let mut ranks = vec![RankWait::default(); n];

        for (r, evs) in trace.ranks.iter().enumerate() {
            ranks[r].finish = sched.finish_times[r];
            for (i, ev) in evs.iter().enumerate() {
                // Busy from machine parameters: a receive's occupancy is
                // its overhead — everything past that is wait, accounted
                // through the flow below.
                ranks[r].busy += match ev {
                    Event::Recv { .. } => machine.recv_overhead_s,
                    _ => sched.times[r][i].duration(),
                };
            }
        }

        let mut phase_wait: Vec<(&'static str, Vec<f64>)> = Vec::new();
        let mut phase_caused: Vec<(&'static str, Vec<f64>)> = Vec::new();
        fn bump(
            table: &mut Vec<(&'static str, Vec<f64>)>,
            name: &'static str,
            rank: usize,
            n: usize,
            amount: f64,
        ) {
            let idx = match table.iter().position(|(nm, _)| *nm == name) {
                Some(i) => i,
                None => {
                    table.push((name, vec![0.0; n]));
                    table.len() - 1
                }
            };
            table[idx].1[rank] += amount;
        }
        for f in flows {
            ranks[f.pair.dst].wait += f.wait;
            ranks[f.pair.src].caused += f.wait;
            ranks[f.pair.dst].buffered += f.buffered;
            if f.wait > 0.0 {
                let phase = phases[f.pair.dst][f.pair.recv_event].unwrap_or("");
                bump(&mut phase_wait, phase, f.pair.dst, n, f.wait);
                bump(&mut phase_caused, phase, f.pair.src, n, f.wait);
            }
        }
        phase_wait.sort_by_key(|(n, _)| *n);
        phase_caused.sort_by_key(|(n, _)| *n);

        WaitReport {
            ranks,
            phase_wait,
            phase_caused,
            makespan: sched.makespan(),
        }
    }

    /// Per-rank idle seconds: wait inside receives plus the tail between
    /// the rank's finish and the run's makespan.
    pub fn idle(&self) -> Vec<f64> {
        self.ranks
            .iter()
            .map(|r| r.wait + (self.makespan - r.finish))
            .collect()
    }

    /// `(max − avg) / avg` of per-rank idle time — the idle-side analogue
    /// of `WorldTrace::flop_imbalance`.
    pub fn idle_imbalance(&self) -> f64 {
        imbalance(&self.idle())
    }

    /// Total late-sender wait across all ranks.
    pub fn total_wait(&self) -> f64 {
        self.ranks.iter().map(|r| r.wait).sum()
    }

    /// Total wait attributed (as cause) to the given ranks.
    pub fn caused_by(&self, ranks: &[usize]) -> f64 {
        ranks.iter().map(|&r| self.ranks[r].caused).sum()
    }
}

/// `(max − avg) / avg` over a slice; 0 when empty or the average is 0.
fn imbalance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let avg = values.iter().sum::<f64>() / values.len() as f64;
    if avg == 0.0 {
        return 0.0;
    }
    let max = values.iter().copied().fold(0.0, f64::max);
    (max - avg) / avg
}

/// The innermost open phase at every event of every rank (`None` outside
/// any phase). Shared by the wait report, the comm-matrix slicing and the
/// critical path, so all three attribute to phases identically.
pub fn innermost_phases(trace: &WorldTrace) -> Vec<Vec<Option<&'static str>>> {
    trace
        .ranks
        .iter()
        .map(|evs| {
            let mut open: Vec<&'static str> = Vec::new();
            evs.iter()
                .map(|ev| {
                    match *ev {
                        Event::PhaseBegin(name) => {
                            open.push(name);
                        }
                        Event::PhaseEnd(_) => {
                            open.pop();
                        }
                        _ => {}
                    }
                    // A begin/end marker is attributed to the phase it
                    // opens/closes (begin already pushed, end not yet
                    // popped at the marker itself — both zero-duration).
                    open.last().copied()
                })
                .collect()
        })
        .collect()
}

/// Derive every matched message's virtual-time geometry from the replay
/// schedule.
pub fn message_flows(
    trace: &WorldTrace,
    sched: &EventSchedule,
    machine: &MachineProfile,
) -> Vec<MessageFlow> {
    trace
        .message_pairs()
        .into_iter()
        .map(|pair| {
            let send = sched.times[pair.src][pair.send_event];
            let recv = sched.times[pair.dst][pair.recv_event];
            let arrival = send.end + machine.latency_s;
            let wait = (recv.end - (recv.start + machine.recv_overhead_s)).max(0.0);
            MessageFlow {
                pair,
                send_start: send.start,
                send_end: send.end,
                arrival,
                recv_start: recv.start,
                recv_end: recv.end,
                wait,
                buffered: (recv.start - arrival).max(0.0),
            }
        })
        .collect()
}

/// Everything the analysis engine derives from one trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// The span timeline (shared with the plain Perfetto export).
    pub timeline: Timeline,
    /// Per-event virtual timestamps.
    pub schedule: EventSchedule,
    /// Every matched message with its virtual-time geometry.
    pub flows: Vec<MessageFlow>,
    /// Wait-state decomposition.
    pub waits: WaitReport,
    /// The critical path through the rank×phase span graph.
    pub critical: CriticalPath,
    /// The whole-trace communication matrix.
    pub comm: CommMatrix,
    /// The machine profile everything was replayed against.
    pub machine: MachineProfile,
}

/// Run the full analysis over `trace` replayed against `machine`.
///
/// Fails (with every fault) on a phase-unbalanced trace — malformed
/// instrumentation would silently skew all phase attribution.
pub fn analyze(
    trace: &WorldTrace,
    machine: &MachineProfile,
) -> Result<TraceAnalysis, Vec<PhaseFault>> {
    trace.validate_phases()?;
    let sched = schedule(trace, machine);
    let timeline = Timeline::from_schedule(trace, &sched);
    let flows = message_flows(trace, &sched, machine);
    let waits = WaitReport::from_flows(trace, &sched, &flows, machine);
    let critical = CriticalPath::extract(trace, &sched, &flows);
    let comm = CommMatrix::from_trace(trace);
    Ok(TraceAnalysis {
        timeline,
        schedule: sched,
        flows,
        waits,
        critical,
        comm,
        machine: *machine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineProfile {
        MachineProfile {
            name: "test",
            flops_per_sec: 1.0e6,
            latency_s: 1.0e-3,
            bytes_per_sec: 1.0e6,
            send_overhead_s: 0.0,
            recv_overhead_s: 2.0e-3,
        }
    }

    /// Rank 0 computes 1 s then sends; rank 1 posts the receive at 0 and
    /// stalls on the late sender.
    fn late_sender_trace() -> WorldTrace {
        WorldTrace::from_ranks(vec![
            vec![
                Event::PhaseBegin("work"),
                Event::Flops(1.0e6),
                Event::Send {
                    to: 1,
                    bytes: 1000,
                    seq: 0,
                },
                Event::PhaseEnd("work"),
            ],
            vec![
                Event::PhaseBegin("halo"),
                Event::Recv {
                    from: 0,
                    bytes: 1000,
                    seq: 0,
                },
                Event::PhaseEnd("halo"),
            ],
        ])
    }

    #[test]
    fn late_sender_wait_is_detected_and_attributed() {
        let trace = late_sender_trace();
        let report = WaitReport::from_trace(&trace, &machine()).unwrap();
        // Send occupies [1, 1.001], arrival 2.002... no: send_time = 1000/1e6
        // = 1 ms, so send spans [1.0, 1.001], arrival 1.001 + 0.001 = 1.002.
        // Receiver posts at 0 with 2 ms overhead → would finish at 0.002,
        // bound by arrival 1.002 → wait = 1.0 s.
        let r1 = report.ranks[1];
        assert!((r1.wait - 1.0).abs() < 1e-12, "wait {}", r1.wait);
        assert_eq!(report.ranks[0].wait, 0.0);
        // The wait is caused by rank 0.
        assert!((report.ranks[0].caused - 1.0).abs() < 1e-12);
        assert_eq!(r1.caused, 0.0);
        // Suffered inside "halo" by rank 1; caused in "halo" by rank 0.
        assert_eq!(report.phase_wait.len(), 1);
        let (name, per_rank) = &report.phase_wait[0];
        assert_eq!(*name, "halo");
        assert!((per_rank[1] - 1.0).abs() < 1e-12);
        let (cname, caused) = &report.phase_caused[0];
        assert_eq!(*cname, "halo");
        assert!((caused[0] - 1.0).abs() < 1e-12);
        // busy + wait = finish on every rank.
        for r in &report.ranks {
            assert!((r.busy + r.wait - r.finish).abs() < 1e-12);
        }
    }

    #[test]
    fn late_receiver_buffers() {
        // Sender fires immediately; receiver computes 5 s first.
        let trace = WorldTrace::from_ranks(vec![
            vec![Event::Send {
                to: 1,
                bytes: 1000,
                seq: 0,
            }],
            vec![
                Event::Flops(5.0e6),
                Event::Recv {
                    from: 0,
                    bytes: 1000,
                    seq: 0,
                },
            ],
        ]);
        let report = WaitReport::from_trace(&trace, &machine()).unwrap();
        assert_eq!(report.ranks[1].wait, 0.0);
        // Arrival at 0.002; receive posted at 5.0 → buffered 4.998 s.
        assert!((report.ranks[1].buffered - 4.998).abs() < 1e-12);
        assert_eq!(report.ranks[0].caused, 0.0);
    }

    #[test]
    fn idle_imbalance_reflects_the_tail() {
        let trace =
            WorldTrace::from_ranks(vec![vec![Event::Flops(4.0e6)], vec![Event::Flops(1.0e6)]]);
        let report = WaitReport::from_trace(&trace, &machine()).unwrap();
        // Rank 0 idles 0 s, rank 1 idles 3 s (tail): avg 1.5, max 3.
        let idle = report.idle();
        assert!((idle[0] - 0.0).abs() < 1e-12);
        assert!((idle[1] - 3.0).abs() < 1e-12);
        assert!((report.idle_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flows_carry_geometry() {
        let trace = late_sender_trace();
        let m = machine();
        let sched = schedule(&trace, &m);
        let flows = message_flows(&trace, &sched, &m);
        assert_eq!(flows.len(), 1);
        let f = flows[0];
        assert_eq!((f.pair.src, f.pair.dst), (0, 1));
        assert!((f.send_start - 1.0).abs() < 1e-12);
        assert!((f.arrival - 1.002).abs() < 1e-12);
        assert_eq!(f.recv_end, f.arrival);
        assert_eq!(f.buffered, 0.0);
    }

    #[test]
    fn analyze_rejects_malformed_phases() {
        let trace = WorldTrace::from_ranks(vec![vec![Event::PhaseEnd("ghost")]]);
        assert!(analyze(&trace, &machine()).is_err());
        assert!(WaitReport::from_trace(&trace, &machine()).is_err());
    }

    #[test]
    fn analyze_bundles_consistent_parts() {
        let trace = late_sender_trace();
        let a = analyze(&trace, &machine()).unwrap();
        assert_eq!(a.flows.len(), 1);
        assert_eq!(a.comm.total_messages(), 1);
        assert_eq!(a.timeline.finish_times, a.schedule.finish_times);
        assert!((a.critical.length() - a.waits.makespan).abs() < 1e-9);
    }
}
