//! Structured per-step and per-run metrics derived from a trace.
//!
//! This is the machine-readable form of the paper's §3.4 measurement
//! tables: for every model step, the virtual step time, per-phase seconds,
//! message/byte/flop counts per rank, and the load-imbalance metric
//! `(max − avg) / avg`; for the whole run, the same aggregated, plus
//! collective-call counts and optional resilience counters. Each record
//! serializes to one JSON line, so a run produces a `metrics.jsonl` stream
//! any downstream tool can consume.
//!
//! Steps are delimited by the `"step"` phase the model wraps around each
//! timestep; traces without `"step"` phases simply yield no step records.

use crate::json::Value;
use crate::timeline::{Span, Timeline};
use agcm_costmodel::machine::MachineProfile;
use agcm_mps::trace::{Event, PhaseFault, WorldTrace};

/// The phase name the model wraps around each timestep.
pub const STEP_PHASE: &str = "step";

/// Metrics for one model step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepMetrics {
    /// Step index (0-based).
    pub step: usize,
    /// Earliest virtual start of the step across ranks (s).
    pub virt_start: f64,
    /// Parallel (max-over-ranks) virtual duration of the step (s).
    pub virt_seconds: f64,
    /// Max-over-ranks virtual seconds per phase inside this step,
    /// sorted by name.
    pub phase_seconds: Vec<(&'static str, f64)>,
    /// Messages sent by each rank during the step.
    pub messages: Vec<u64>,
    /// Bytes sent by each rank during the step.
    pub bytes: Vec<u64>,
    /// Flops recorded by each rank during the step.
    pub flops: Vec<f64>,
    /// `(max − avg) / avg` of per-rank flops within the step.
    pub flop_imbalance: f64,
    /// Per-phase flop imbalance within the step, sorted by name.
    pub phase_flop_imbalance: Vec<(&'static str, f64)>,
}

/// Resilience counters carried into the run summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Execution attempts (1 = clean run).
    pub attempts: u64,
    /// Failures that triggered recovery.
    pub failures: u64,
    /// Injected fault events observed.
    pub fault_events: u64,
}

/// Whole-run aggregate metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Number of ranks.
    pub ranks: usize,
    /// Number of `"step"` phases found (on the busiest rank).
    pub steps: usize,
    /// Virtual wall time of the run — the slowest rank (s).
    pub virt_seconds: f64,
    /// Total messages sent.
    pub total_messages: u64,
    /// Total bytes sent.
    pub total_bytes: u64,
    /// Total flops recorded.
    pub total_flops: f64,
    /// Whole-run flop imbalance — identical to
    /// [`WorldTrace::flop_imbalance`].
    pub flop_imbalance: f64,
    /// Max-over-ranks virtual seconds per phase, sorted by name.
    pub phase_seconds: Vec<(&'static str, f64)>,
    /// Per-phase flop imbalance across the whole run, sorted by name.
    pub phase_flop_imbalance: Vec<(&'static str, f64)>,
    /// Total collective-primitive calls across ranks, sorted by name.
    pub collectives: Vec<(String, u64)>,
    /// Per-rank late-sender wait seconds (see
    /// [`WaitReport`](crate::analysis::WaitReport)). Empty when the
    /// metrics were derived without a machine profile
    /// ([`RunMetrics::from_timeline`]).
    pub wait_seconds: Vec<f64>,
    /// `(max − avg) / avg` of per-rank idle time (wait + end-of-run tail)
    /// — the idle-side analogue of `flop_imbalance`. 0 when derived
    /// without a machine profile.
    pub idle_imbalance: f64,
    /// Resilience counters, when the run went through the recovery driver.
    pub resilience: Option<ResilienceCounters>,
}

/// Everything derived from one traced run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Per-step records, in step order.
    pub steps: Vec<StepMetrics>,
    /// The run summary.
    pub summary: RunSummary,
}

impl Default for RunSummary {
    fn default() -> RunSummary {
        RunSummary {
            ranks: 0,
            steps: 0,
            virt_seconds: 0.0,
            total_messages: 0,
            total_bytes: 0,
            total_flops: 0.0,
            flop_imbalance: 0.0,
            phase_seconds: Vec::new(),
            phase_flop_imbalance: Vec::new(),
            collectives: Vec::new(),
            wait_seconds: Vec::new(),
            idle_imbalance: 0.0,
            resilience: None,
        }
    }
}

/// `(max − avg) / avg` over a slice; 0 when empty or the average is 0.
fn imbalance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let avg = values.iter().sum::<f64>() / values.len() as f64;
    if avg == 0.0 {
        return 0.0;
    }
    let max = values.iter().copied().fold(0.0, f64::max);
    (max - avg) / avg
}

/// Per-rank flops attributed (inclusively) to each open phase over an event
/// slice. `skip` is excluded (used to drop the enclosing `"step"` itself).
fn phase_flops(events: &[Event], skip: Option<&str>) -> Vec<(&'static str, f64)> {
    let mut acc: Vec<(&'static str, f64)> = Vec::new();
    let mut open: Vec<&'static str> = Vec::new();
    for ev in events {
        match *ev {
            Event::PhaseBegin(name) => open.push(name),
            Event::PhaseEnd(_) => {
                open.pop();
            }
            Event::Flops(f) => {
                for &name in &open {
                    if Some(name) == skip {
                        continue;
                    }
                    match acc.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, sum)) => *sum += f,
                        None => acc.push((name, f)),
                    }
                }
            }
            _ => {}
        }
    }
    acc
}

/// Merge per-rank `(name, value)` lists into per-phase per-rank vectors and
/// reduce each phase with `reduce` over a dense `[f64; ranks]` (missing
/// entries are 0). Output is sorted by name.
fn per_phase<'a>(
    per_rank: &[Vec<(&'static str, f64)>],
    reduce: impl Fn(&[f64]) -> f64 + 'a,
) -> Vec<(&'static str, f64)> {
    let mut names: Vec<&'static str> = Vec::new();
    for list in per_rank {
        for (n, _) in list {
            if !names.contains(n) {
                names.push(n);
            }
        }
    }
    names.sort_unstable();
    names
        .into_iter()
        .map(|name| {
            let values: Vec<f64> = per_rank
                .iter()
                .map(|list| {
                    list.iter()
                        .find(|(n, _)| *n == name)
                        .map(|(_, v)| *v)
                        .unwrap_or(0.0)
                })
                .collect();
            (name, reduce(&values))
        })
        .collect()
}

impl RunMetrics {
    /// Derive all metrics from a trace by replaying it against `machine`.
    pub fn from_trace(
        trace: &WorldTrace,
        machine: &MachineProfile,
    ) -> Result<RunMetrics, Vec<PhaseFault>> {
        RunMetrics::from_trace_with_timeline(trace, machine).map(|(m, _)| m)
    }

    /// Like [`from_trace`](RunMetrics::from_trace), but also hands back the
    /// [`Timeline`] the metrics were derived from, so callers that need
    /// span-level data (e.g. streaming per-rank phase totals into a live
    /// sink) replay the trace exactly once.
    pub fn from_trace_with_timeline(
        trace: &WorldTrace,
        machine: &MachineProfile,
    ) -> Result<(RunMetrics, Timeline), Vec<PhaseFault>> {
        let timeline = Timeline::from_trace(trace, machine)?;
        let mut metrics = RunMetrics::from_timeline(trace, &timeline);
        // Machine-dependent wait analysis (the timeline already validated
        // the phase stream).
        let waits =
            crate::analysis::WaitReport::from_trace(trace, machine).expect("trace validated above");
        metrics.summary.wait_seconds = waits.ranks.iter().map(|r| r.wait).collect();
        metrics.summary.idle_imbalance = waits.idle_imbalance();
        Ok((metrics, timeline))
    }

    /// Derive all metrics from a trace and its already-built timeline.
    pub fn from_timeline(trace: &WorldTrace, timeline: &Timeline) -> RunMetrics {
        let n = trace.size();
        // Per-rank "step" spans, in order.
        let step_spans: Vec<Vec<&Span>> = (0..n)
            .map(|r| {
                timeline
                    .rank_spans(r)
                    .filter(|s| s.name == STEP_PHASE)
                    .collect()
            })
            .collect();
        let n_steps = step_spans.iter().map(|v| v.len()).max().unwrap_or(0);

        let mut steps = Vec::with_capacity(n_steps);
        for k in 0..n_steps {
            let spans: Vec<Option<&&Span>> = step_spans.iter().map(|v| v.get(k)).collect();
            let virt_start = spans
                .iter()
                .flatten()
                .map(|s| s.virt_start)
                .fold(f64::INFINITY, f64::min);
            let virt_seconds = spans
                .iter()
                .flatten()
                .map(|s| s.virt_duration())
                .fold(0.0, f64::max);

            let mut messages = vec![0u64; n];
            let mut bytes = vec![0u64; n];
            let mut flops = vec![0f64; n];
            let mut rank_phase_flops: Vec<Vec<(&'static str, f64)>> = vec![Vec::new(); n];
            let mut rank_phase_secs: Vec<Vec<(&'static str, f64)>> = vec![Vec::new(); n];
            for (r, span) in spans.iter().enumerate() {
                let Some(span) = span else { continue };
                let slice = &trace.ranks[r][span.begin_event..=span.end_event];
                for ev in slice {
                    match *ev {
                        Event::Send { bytes: b, .. } => {
                            messages[r] += 1;
                            bytes[r] += b as u64;
                        }
                        Event::Flops(f) => flops[r] += f,
                        _ => {}
                    }
                }
                rank_phase_flops[r] = phase_flops(slice, Some(STEP_PHASE));
                for s in timeline.rank_spans(r).filter(|s| span.contains(s)) {
                    match rank_phase_secs[r].iter_mut().find(|(nm, _)| *nm == s.name) {
                        Some((_, acc)) => *acc += s.virt_duration(),
                        None => rank_phase_secs[r].push((s.name, s.virt_duration())),
                    }
                }
            }

            steps.push(StepMetrics {
                step: k,
                virt_start: if virt_start.is_finite() {
                    virt_start
                } else {
                    0.0
                },
                virt_seconds,
                phase_seconds: per_phase(&rank_phase_secs, |v| {
                    v.iter().copied().fold(0.0, f64::max)
                }),
                flop_imbalance: imbalance(&flops),
                phase_flop_imbalance: per_phase(&rank_phase_flops, imbalance),
                messages,
                bytes,
                flops,
            });
        }

        // Whole-run aggregates.
        let stats = trace.stats();
        let rank_phase_secs: Vec<Vec<(&'static str, f64)>> = timeline
            .phase_seconds_per_rank()
            .into_iter()
            .map(|m| {
                let mut v: Vec<(&'static str, f64)> = m.into_iter().collect();
                v.sort_unstable_by_key(|(n, _)| *n);
                v
            })
            .collect();
        let rank_phase_flops: Vec<Vec<(&'static str, f64)>> = trace
            .ranks
            .iter()
            .map(|evs| phase_flops(evs, None))
            .collect();
        let mut collectives: Vec<(String, u64)> = Vec::new();
        for rank in &trace.collectives {
            for (name, count) in rank {
                match collectives.iter_mut().find(|(n, _)| n == name) {
                    Some((_, c)) => *c += count,
                    None => collectives.push((name.to_string(), *count)),
                }
            }
        }
        collectives.sort_by(|a, b| a.0.cmp(&b.0));

        let summary = RunSummary {
            ranks: n,
            steps: n_steps,
            virt_seconds: timeline.total_time(),
            total_messages: stats.iter().map(|s| s.sends as u64).sum(),
            total_bytes: stats.iter().map(|s| s.bytes_sent as u64).sum(),
            total_flops: stats.iter().map(|s| s.flops).sum(),
            flop_imbalance: trace.flop_imbalance(),
            phase_seconds: per_phase(&rank_phase_secs, |v| v.iter().copied().fold(0.0, f64::max)),
            phase_flop_imbalance: per_phase(&rank_phase_flops, imbalance),
            collectives,
            wait_seconds: Vec::new(),
            idle_imbalance: 0.0,
            resilience: None,
        };

        RunMetrics { steps, summary }
    }
}

fn named_f64s(pairs: &[(&'static str, f64)]) -> Value {
    Value::Obj(
        pairs
            .iter()
            .map(|&(n, v)| (n.to_string(), Value::Num(v)))
            .collect(),
    )
}

impl StepMetrics {
    /// One `metrics.jsonl` record: `{"kind":"step", ...}`.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("kind", Value::Str("step".into())),
            ("step", Value::Num(self.step as f64)),
            ("virt_start", Value::Num(self.virt_start)),
            ("virt_seconds", Value::Num(self.virt_seconds)),
            ("phase_seconds", named_f64s(&self.phase_seconds)),
            (
                "messages",
                Value::Arr(
                    self.messages
                        .iter()
                        .map(|&m| Value::Num(m as f64))
                        .collect(),
                ),
            ),
            (
                "bytes",
                Value::Arr(self.bytes.iter().map(|&b| Value::Num(b as f64)).collect()),
            ),
            (
                "flops",
                Value::Arr(self.flops.iter().map(|&f| Value::Num(f)).collect()),
            ),
            ("flop_imbalance", Value::Num(self.flop_imbalance)),
            (
                "phase_flop_imbalance",
                named_f64s(&self.phase_flop_imbalance),
            ),
        ])
    }
}

impl RunSummary {
    /// One `metrics.jsonl` record: `{"kind":"run", ...}`.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("kind", Value::Str("run".into())),
            ("ranks", Value::Num(self.ranks as f64)),
            ("steps", Value::Num(self.steps as f64)),
            ("virt_seconds", Value::Num(self.virt_seconds)),
            ("total_messages", Value::Num(self.total_messages as f64)),
            ("total_bytes", Value::Num(self.total_bytes as f64)),
            ("total_flops", Value::Num(self.total_flops)),
            ("flop_imbalance", Value::Num(self.flop_imbalance)),
            ("phase_seconds", named_f64s(&self.phase_seconds)),
            (
                "phase_flop_imbalance",
                named_f64s(&self.phase_flop_imbalance),
            ),
            (
                "collectives",
                Value::Obj(
                    self.collectives
                        .iter()
                        .map(|(n, c)| (n.clone(), Value::Num(*c as f64)))
                        .collect(),
                ),
            ),
            (
                "wait_seconds",
                Value::Arr(self.wait_seconds.iter().map(|&w| Value::Num(w)).collect()),
            ),
            ("idle_imbalance", Value::Num(self.idle_imbalance)),
        ];
        if let Some(res) = &self.resilience {
            pairs.push((
                "resilience",
                Value::obj(vec![
                    ("attempts", Value::Num(res.attempts as f64)),
                    ("failures", Value::Num(res.failures as f64)),
                    ("fault_events", Value::Num(res.fault_events as f64)),
                ]),
            ));
        }
        Value::obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineProfile {
        MachineProfile {
            name: "test",
            flops_per_sec: 1.0e6,
            latency_s: 1.0e-3,
            bytes_per_sec: 1.0e6,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
        }
    }

    fn stepped_trace() -> WorldTrace {
        // Two ranks, two steps; rank 1 does 3x the flops of rank 0 in
        // "physics" during step 0.
        let rank = |scale: f64| {
            let mut evs = Vec::new();
            for _ in 0..2 {
                evs.push(Event::PhaseBegin("step"));
                evs.push(Event::PhaseBegin("dynamics"));
                evs.push(Event::Flops(1.0e6));
                evs.push(Event::PhaseEnd("dynamics"));
                evs.push(Event::PhaseBegin("physics"));
                evs.push(Event::Flops(scale * 1.0e6));
                evs.push(Event::PhaseEnd("physics"));
                evs.push(Event::PhaseEnd("step"));
            }
            evs
        };
        WorldTrace::from_ranks(vec![rank(1.0), rank(3.0)])
    }

    #[test]
    fn steps_are_sliced_and_measured() {
        let trace = stepped_trace();
        let m = RunMetrics::from_trace(&trace, &machine()).unwrap();
        assert_eq!(m.steps.len(), 2);
        let s0 = &m.steps[0];
        // Rank 1: 1 s dynamics + 3 s physics = 4 s per step.
        assert!((s0.virt_seconds - 4.0).abs() < 1e-12);
        assert_eq!(s0.flops, vec![2.0e6, 4.0e6]);
        // (4e6 - 3e6) / 3e6 = 1/3.
        assert!((s0.flop_imbalance - 1.0 / 3.0).abs() < 1e-12);
        // physics imbalance within the step: (3 - 2) / 2 = 0.5.
        let physics = s0
            .phase_flop_imbalance
            .iter()
            .find(|(n, _)| *n == "physics")
            .unwrap();
        assert!((physics.1 - 0.5).abs() < 1e-12);
        // dynamics is balanced.
        let dynamics = s0
            .phase_flop_imbalance
            .iter()
            .find(|(n, _)| *n == "dynamics")
            .unwrap();
        assert!(dynamics.1.abs() < 1e-12);
        // Step 1 starts after step 0 on the earliest rank (rank 0: 2 s).
        assert!((m.steps[1].virt_start - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_flop_imbalance_matches_world_trace_exactly() {
        let trace = stepped_trace();
        let m = RunMetrics::from_trace(&trace, &machine()).unwrap();
        assert!((m.summary.flop_imbalance - trace.flop_imbalance()).abs() < 1e-9);
        assert_eq!(m.summary.steps, 2);
        assert_eq!(m.summary.ranks, 2);
        assert_eq!(m.summary.total_flops, 12.0e6);
    }

    #[test]
    fn summary_phase_seconds_match_costmodel_replay() {
        let trace = stepped_trace();
        let m = RunMetrics::from_trace(&trace, &machine()).unwrap();
        let replay = agcm_costmodel::replay::replay(&trace, &machine());
        for (name, secs) in &m.summary.phase_seconds {
            assert!(
                (secs - replay.phase_time(name)).abs() < 1e-12,
                "{name}: {secs} vs {}",
                replay.phase_time(name)
            );
        }
    }

    #[test]
    fn messages_and_collectives_aggregate() {
        let mut trace = WorldTrace::from_ranks(vec![
            vec![
                Event::PhaseBegin("step"),
                Event::Send {
                    to: 1,
                    bytes: 100,
                    seq: 0,
                },
                Event::PhaseEnd("step"),
            ],
            vec![
                Event::PhaseBegin("step"),
                Event::Recv {
                    from: 0,
                    bytes: 100,
                    seq: 0,
                },
                Event::PhaseEnd("step"),
            ],
        ]);
        trace.collectives = vec![vec![("barrier", 2)], vec![("barrier", 2), ("bcast", 1)]];
        let m = RunMetrics::from_trace(&trace, &machine()).unwrap();
        assert_eq!(m.steps[0].messages, vec![1, 0]);
        assert_eq!(m.steps[0].bytes, vec![100, 0]);
        assert_eq!(m.summary.total_messages, 1);
        assert_eq!(m.summary.total_bytes, 100);
        assert_eq!(
            m.summary.collectives,
            vec![("barrier".to_string(), 4), ("bcast".to_string(), 1)]
        );
    }

    #[test]
    fn wait_metrics_flow_into_the_summary() {
        // Rank 1 stalls ~3 s on rank 0's late send.
        let trace = WorldTrace::from_ranks(vec![
            vec![
                Event::PhaseBegin("step"),
                Event::Flops(3.0e6),
                Event::Send {
                    to: 1,
                    bytes: 1000,
                    seq: 0,
                },
                Event::PhaseEnd("step"),
            ],
            vec![
                Event::PhaseBegin("step"),
                Event::Recv {
                    from: 0,
                    bytes: 1000,
                    seq: 0,
                },
                Event::PhaseEnd("step"),
            ],
        ]);
        let m = RunMetrics::from_trace(&trace, &machine()).unwrap();
        assert_eq!(m.summary.wait_seconds.len(), 2);
        assert_eq!(m.summary.wait_seconds[0], 0.0);
        assert!(m.summary.wait_seconds[1] > 2.9);
        assert!(m.summary.idle_imbalance > 0.0);
        let json = m.summary.to_json().to_string();
        let parsed = Value::parse(&json).unwrap();
        assert_eq!(
            parsed.get("wait_seconds").unwrap().as_arr().unwrap().len(),
            2
        );
        assert!(parsed.get("idle_imbalance").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn traces_without_steps_yield_no_step_records() {
        let trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("dynamics"),
            Event::Flops(1.0e6),
            Event::PhaseEnd("dynamics"),
        ]]);
        let m = RunMetrics::from_trace(&trace, &machine()).unwrap();
        assert!(m.steps.is_empty());
        assert_eq!(m.summary.steps, 0);
        assert_eq!(m.summary.phase_seconds.len(), 1);
    }

    #[test]
    fn json_records_round_trip() {
        let trace = stepped_trace();
        let mut m = RunMetrics::from_trace(&trace, &machine()).unwrap();
        m.summary.resilience = Some(ResilienceCounters {
            attempts: 2,
            failures: 1,
            fault_events: 3,
        });
        let step_line = m.steps[0].to_json().to_string();
        let parsed = Value::parse(&step_line).unwrap();
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("step"));
        assert_eq!(parsed.get("flops").unwrap().as_arr().unwrap().len(), 2);
        let run_line = m.summary.to_json().to_string();
        let parsed = Value::parse(&run_line).unwrap();
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("run"));
        assert_eq!(
            parsed
                .get("resilience")
                .unwrap()
                .get("failures")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert!(
            (parsed.get("flop_imbalance").unwrap().as_f64().unwrap() - trace.flop_imbalance())
                .abs()
                < 1e-9
        );
    }
}
