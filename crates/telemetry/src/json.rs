//! A minimal JSON document model: serialize and parse.
//!
//! The build environment is offline, so `serde_json` is not available; the
//! telemetry exporters need only a small, deterministic subset of JSON:
//! objects with ordered keys, arrays, strings, finite numbers, booleans and
//! null. Serialization is byte-deterministic (insertion-ordered objects,
//! shortest round-trip float formatting), which keeps golden-file tests
//! stable. The parser exists so the `reproduce trace` subcommand and the
//! round-trip tests can validate what was emitted without external tooling.
//!
//! Since `agcm-server`, these bytes also arrive *off a socket*: the parser
//! is hardened for untrusted input. Every failure carries a typed
//! [`ParseErrorKind`] plus a byte offset; recursion depth is bounded
//! (default 512 levels) so a `[[[[...` bomb cannot blow the stack; raw
//! control characters in strings and numbers that overflow to infinity are
//! rejected. [`Value::parse_untrusted`] takes explicit [`ParseLimits`] for
//! request bodies that should be held to tighter bounds.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. (NaN/infinity are not representable in JSON; the
    /// serializer writes them as `null`.)
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Mutable view of an object's fields, for appending in place.
    pub fn as_obj_mut(&mut self) -> Option<&mut Vec<(String, Value)>> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parse a JSON document under the default [`ParseLimits`]. Returns a
    /// typed error with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        Value::parse_untrusted(text, ParseLimits::default())
    }

    /// Parse a JSON document from an untrusted source (e.g. an HTTP
    /// request body) under explicit [`ParseLimits`].
    pub fn parse_untrusted(text: &str, limits: ParseLimits) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
            limits,
        };
        if p.bytes.len() > p.limits.max_bytes {
            return Err(ParseError {
                kind: ParseErrorKind::TooLarge,
                message: format!(
                    "document is {} bytes (limit {})",
                    p.bytes.len(),
                    p.limits.max_bytes
                ),
                offset: 0,
            });
        }
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err(
                ParseErrorKind::Trailing,
                "trailing characters after document",
            ));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.is_finite() {
                    // Rust's shortest round-trip formatting; integers print
                    // without a fractional part, which JSON permits.
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Bounds applied while parsing. The defaults are generous enough for
/// every document this repo emits (the deep-nesting telemetry tests go to
/// 200 levels) while still bounding adversarial input.
#[derive(Debug, Clone, Copy)]
pub struct ParseLimits {
    /// Maximum container nesting depth; exceeding it yields
    /// [`ParseErrorKind::TooDeep`]. The parser recurses per level, so
    /// this bounds stack use.
    pub max_depth: usize,
    /// Maximum document size in bytes; exceeding it yields
    /// [`ParseErrorKind::TooLarge`] before any parsing happens.
    pub max_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> ParseLimits {
        ParseLimits {
            max_depth: 512,
            max_bytes: usize::MAX,
        }
    }
}

/// What class of failure a [`ParseError`] is — stable across message
/// wording, so callers (the HTTP error mapper) can branch on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Structurally malformed input (bad token, missing delimiter, ...).
    Syntax,
    /// A string ran to end-of-input without a closing quote.
    UnterminatedString,
    /// A malformed `\\` escape or `\u` code point.
    BadEscape,
    /// A raw (unescaped) control character inside a string.
    ControlCharacter,
    /// A number that does not parse or overflows to a non-finite value.
    BadNumber,
    /// Nesting exceeded [`ParseLimits::max_depth`].
    TooDeep,
    /// Input exceeded [`ParseLimits::max_bytes`].
    TooLarge,
    /// Valid document followed by trailing characters.
    Trailing,
}

impl ParseErrorKind {
    /// Short stable label (used in HTTP error payloads).
    pub fn label(&self) -> &'static str {
        match self {
            ParseErrorKind::Syntax => "syntax",
            ParseErrorKind::UnterminatedString => "unterminated_string",
            ParseErrorKind::BadEscape => "bad_escape",
            ParseErrorKind::ControlCharacter => "control_character",
            ParseErrorKind::BadNumber => "bad_number",
            ParseErrorKind::TooDeep => "too_deep",
            ParseErrorKind::TooLarge => "too_large",
            ParseErrorKind::Trailing => "trailing",
        }
    }
}

/// A JSON parse failure: typed kind, message, byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Failure class, stable for programmatic handling.
    pub kind: ParseErrorKind,
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    limits: ParseLimits,
}

impl Parser<'_> {
    fn err(&self, kind: ParseErrorKind, msg: &str) -> ParseError {
        ParseError {
            kind,
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            return Err(self.err(
                ParseErrorKind::TooDeep,
                &format!("nesting exceeds {} levels", self.limits.max_depth),
            ));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(ParseErrorKind::Syntax, &format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(ParseErrorKind::Syntax, &format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err(ParseErrorKind::Syntax, "expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(self.err(ParseErrorKind::UnterminatedString, "unterminated string"))
                }
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex =
                                self.bytes.get(self.pos + 1..self.pos + 5).ok_or_else(|| {
                                    self.err(ParseErrorKind::BadEscape, "truncated \\u escape")
                                })?;
                            let hex = std::str::from_utf8(hex).map_err(|_| {
                                self.err(ParseErrorKind::BadEscape, "bad \\u escape")
                            })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                self.err(ParseErrorKind::BadEscape, "bad \\u escape")
                            })?;
                            // Surrogates are not paired here; the emitter
                            // never produces them.
                            out.push(char::from_u32(code).ok_or_else(|| {
                                self.err(ParseErrorKind::BadEscape, "invalid \\u code point")
                            })?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err(ParseErrorKind::BadEscape, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    // RFC 8259: control characters must be escaped. Raw
                    // ones off a socket are either corruption or smuggling.
                    return Err(self.err(
                        ParseErrorKind::ControlCharacter,
                        &format!("raw control character 0x{c:02x} in string"),
                    ));
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n = text
            .parse::<f64>()
            .map_err(|_| self.err(ParseErrorKind::BadNumber, "malformed number"))?;
        if !n.is_finite() {
            // e.g. "1e999" overflows to infinity — not a JSON number.
            return Err(self.err(
                ParseErrorKind::BadNumber,
                "number overflows to a non-finite value",
            ));
        }
        Ok(Value::Num(n))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err(ParseErrorKind::Syntax, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err(ParseErrorKind::Syntax, "expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1.5", "\"hi\"", "1e-9"] {
            let v = Value::parse(text).unwrap();
            let again = Value::parse(&v.to_string()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Value::obj(vec![
            ("name", Value::Str("filter".into())),
            ("ts", Value::Num(12.5)),
            ("flags", Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("args", Value::obj(vec![("rank", Value::Num(3.0))])),
        ]);
        let text = doc.to_string();
        assert_eq!(Value::parse(&text).unwrap(), doc);
        // Keys stay in insertion order — deterministic output.
        assert!(text.starts_with("{\"name\":\"filter\",\"ts\":12.5,"));
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd\u{1}".into());
        let text = v.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Value::parse(" { \"k\" : [ 1 , 2.5 ] , \"s\" : \"π\\u00e9\" } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "πé");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1.2.3",
            "[] []",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn accessors() {
        let v = Value::obj(vec![("n", Value::Num(2.0))]);
        assert_eq!(v.get("n").unwrap().as_f64(), Some(2.0));
        assert!(v.get("missing").is_none());
        assert!(v.as_obj().is_some());
        assert!(v.as_arr().is_none());
    }
}
