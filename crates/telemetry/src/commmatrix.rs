//! Communication matrices from traces.
//!
//! The paper's filter comparison (§3.1–3.2) argues from communication
//! *structure*: how many messages, how many bytes, between whom. A
//! [`CommMatrix`] makes that structure measurable on real traces — per
//! src→dst cell message and byte counts, sliceable by phase — so the
//! ring/tree/transpose comparison falls out of recorded runs instead of
//! the closed-form formulas in `agcm_costmodel::analysis` (and the two can
//! be checked against each other).

use crate::json::Value;
use agcm_costmodel::machine::MachineProfile;
use agcm_mps::trace::{Event, WorldTrace};

/// Aggregate traffic of one src→dst pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommCell {
    /// Messages sent src→dst.
    pub messages: u64,
    /// Bytes sent src→dst.
    pub bytes: u64,
}

impl CommCell {
    fn add(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
    }
}

/// A dense ranks×ranks matrix of [`CommCell`]s built from `Send` events.
///
/// Row `r` describes what rank `r` sent; column `c` what was sent *to*
/// rank `c`. On a complete trace (every send received) row and column sums
/// coincide with the per-rank [`RankStats`](agcm_mps::trace::RankStats)
/// send/receive totals — a property test in this crate holds the two
/// accountings together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommMatrix {
    ranks: usize,
    /// Row-major `cells[src * ranks + dst]`.
    cells: Vec<CommCell>,
}

impl CommMatrix {
    /// An all-zero matrix.
    pub fn new(ranks: usize) -> CommMatrix {
        CommMatrix {
            ranks,
            cells: vec![CommCell::default(); ranks * ranks],
        }
    }

    /// The matrix of every send in the trace.
    pub fn from_trace(trace: &WorldTrace) -> CommMatrix {
        CommMatrix::filtered(trace, None)
    }

    /// The matrix of sends issued while a phase named `phase` was open
    /// (at any nesting depth) on the sending rank.
    pub fn for_phase(trace: &WorldTrace, phase: &str) -> CommMatrix {
        CommMatrix::filtered(trace, Some(phase))
    }

    fn filtered(trace: &WorldTrace, phase: Option<&str>) -> CommMatrix {
        let mut m = CommMatrix::new(trace.size());
        for (src, evs) in trace.ranks.iter().enumerate() {
            let mut open: Vec<&'static str> = Vec::new();
            for ev in evs {
                match *ev {
                    Event::PhaseBegin(name) => open.push(name),
                    Event::PhaseEnd(_) => {
                        open.pop();
                    }
                    Event::Send { to, bytes, .. } if phase.is_none_or(|p| open.contains(&p)) => {
                        m.cells[src * m.ranks + to].add(bytes);
                    }
                    _ => {}
                }
            }
        }
        m
    }

    /// One matrix per *innermost* open phase, sorted by phase name; sends
    /// issued outside any phase land under `""`. The per-phase matrices
    /// partition [`CommMatrix::from_trace`].
    pub fn by_innermost_phase(trace: &WorldTrace) -> Vec<(&'static str, CommMatrix)> {
        let ranks = trace.size();
        let mut slices: Vec<(&'static str, CommMatrix)> = Vec::new();
        for (src, evs) in trace.ranks.iter().enumerate() {
            let mut open: Vec<&'static str> = Vec::new();
            for ev in evs {
                match *ev {
                    Event::PhaseBegin(name) => open.push(name),
                    Event::PhaseEnd(_) => {
                        open.pop();
                    }
                    Event::Send { to, bytes, .. } => {
                        let name = open.last().copied().unwrap_or("");
                        let m = match slices.iter_mut().find(|(n, _)| *n == name) {
                            Some((_, m)) => m,
                            None => {
                                slices.push((name, CommMatrix::new(ranks)));
                                &mut slices.last_mut().unwrap().1
                            }
                        };
                        m.cells[src * ranks + to].add(bytes);
                    }
                    _ => {}
                }
            }
        }
        slices.sort_by_key(|(n, _)| *n);
        slices
    }

    /// Number of ranks (matrix dimension).
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The src→dst cell.
    pub fn cell(&self, src: usize, dst: usize) -> CommCell {
        self.cells[src * self.ranks + dst]
    }

    /// Row sum: everything `rank` sent.
    pub fn sent_by(&self, rank: usize) -> CommCell {
        let mut total = CommCell::default();
        for dst in 0..self.ranks {
            let c = self.cell(rank, dst);
            total.messages += c.messages;
            total.bytes += c.bytes;
        }
        total
    }

    /// Column sum: everything sent *to* `rank`.
    pub fn sent_to(&self, rank: usize) -> CommCell {
        let mut total = CommCell::default();
        for src in 0..self.ranks {
            let c = self.cell(src, rank);
            total.messages += c.messages;
            total.bytes += c.bytes;
        }
        total
    }

    /// Total messages in the matrix.
    pub fn total_messages(&self) -> u64 {
        self.cells.iter().map(|c| c.messages).sum()
    }

    /// Total bytes in the matrix.
    pub fn total_bytes(&self) -> u64 {
        self.cells.iter().map(|c| c.bytes).sum()
    }

    /// Modeled communication seconds under `machine`, serialized upper
    /// bound (no overlap between pairs) — the measured-trace counterpart
    /// of `CommCost::time` in `agcm_costmodel::analysis`.
    pub fn modeled_time(&self, machine: &MachineProfile) -> f64 {
        self.cells
            .iter()
            .map(|c| {
                c.messages as f64
                    * (machine.latency_s + machine.send_overhead_s + machine.recv_overhead_s)
                    + c.bytes as f64 / machine.bytes_per_sec
            })
            .sum()
    }

    /// JSON form: dimension, totals, and the non-zero cells.
    pub fn to_json(&self) -> Value {
        let cells: Vec<Value> = (0..self.ranks)
            .flat_map(|src| (0..self.ranks).map(move |dst| (src, dst)))
            .filter_map(|(src, dst)| {
                let c = self.cell(src, dst);
                (c.messages > 0).then(|| {
                    Value::obj(vec![
                        ("src", Value::Num(src as f64)),
                        ("dst", Value::Num(dst as f64)),
                        ("messages", Value::Num(c.messages as f64)),
                        ("bytes", Value::Num(c.bytes as f64)),
                    ])
                })
            })
            .collect();
        Value::obj(vec![
            ("ranks", Value::Num(self.ranks as f64)),
            ("total_messages", Value::Num(self.total_messages() as f64)),
            ("total_bytes", Value::Num(self.total_bytes() as f64)),
            ("cells", Value::Arr(cells)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(to: usize, bytes: usize, seq: u64) -> Event {
        Event::Send { to, bytes, seq }
    }

    fn trace() -> WorldTrace {
        WorldTrace::from_ranks(vec![
            vec![
                Event::PhaseBegin("halo"),
                send(1, 100, 0),
                Event::PhaseEnd("halo"),
                Event::PhaseBegin("filter"),
                Event::PhaseBegin("redist_fwd"),
                send(1, 50, 1),
                send(2, 60, 0),
                Event::PhaseEnd("redist_fwd"),
                Event::PhaseEnd("filter"),
            ],
            vec![send(0, 10, 0)],
            vec![],
        ])
    }

    #[test]
    fn cells_and_sums() {
        let m = CommMatrix::from_trace(&trace());
        assert_eq!(m.ranks(), 3);
        assert_eq!(
            m.cell(0, 1),
            CommCell {
                messages: 2,
                bytes: 150,
            }
        );
        assert_eq!(m.cell(0, 2).bytes, 60);
        assert_eq!(m.cell(1, 0).messages, 1);
        assert_eq!(m.sent_by(0).messages, 3);
        assert_eq!(m.sent_by(0).bytes, 210);
        assert_eq!(m.sent_to(1).bytes, 150);
        assert_eq!(m.total_messages(), 4);
        assert_eq!(m.total_bytes(), 220);
    }

    #[test]
    fn phase_slicing_uses_open_stack() {
        let t = trace();
        // "filter" is open during both redist_fwd sends (nested).
        let filter = CommMatrix::for_phase(&t, "filter");
        assert_eq!(filter.total_messages(), 2);
        assert_eq!(filter.total_bytes(), 110);
        let halo = CommMatrix::for_phase(&t, "halo");
        assert_eq!(halo.total_messages(), 1);
        assert_eq!(halo.total_bytes(), 100);
        assert_eq!(CommMatrix::for_phase(&t, "nope").total_messages(), 0);
    }

    #[test]
    fn innermost_slices_partition_the_total() {
        let t = trace();
        let slices = CommMatrix::by_innermost_phase(&t);
        let names: Vec<&str> = slices.iter().map(|(n, _)| *n).collect();
        // Rank 1's bare send lands under "".
        assert_eq!(names, vec!["", "halo", "redist_fwd"]);
        let total = CommMatrix::from_trace(&t);
        let msg_sum: u64 = slices.iter().map(|(_, m)| m.total_messages()).sum();
        let byte_sum: u64 = slices.iter().map(|(_, m)| m.total_bytes()).sum();
        assert_eq!(msg_sum, total.total_messages());
        assert_eq!(byte_sum, total.total_bytes());
    }

    #[test]
    fn row_and_column_sums_match_rank_stats() {
        let t = trace();
        let m = CommMatrix::from_trace(&t);
        for (r, s) in t.stats().iter().enumerate() {
            assert_eq!(m.sent_by(r).messages as usize, s.sends);
            assert_eq!(m.sent_by(r).bytes as usize, s.bytes_sent);
        }
    }

    #[test]
    fn modeled_time_is_latency_plus_bandwidth() {
        let mut m = CommMatrix::new(2);
        m.cells[1].add(1000);
        let machine = MachineProfile {
            name: "test",
            flops_per_sec: 1.0,
            latency_s: 1.0e-3,
            bytes_per_sec: 1.0e6,
            send_overhead_s: 2.0e-3,
            recv_overhead_s: 3.0e-3,
        };
        // 1 msg × (1+2+3) ms + 1000 B / 1 MB/s = 0.006 + 0.001.
        assert!((m.modeled_time(&machine) - 0.007).abs() < 1e-12);
    }

    #[test]
    fn json_skips_zero_cells() {
        let doc = CommMatrix::from_trace(&trace()).to_json();
        assert_eq!(doc.get("ranks").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("cells").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("total_bytes").unwrap().as_f64(), Some(220.0));
    }
}
