//! Telemetry sinks: where step and run records go.
//!
//! The contract that keeps the model's hot path honest: call sites gate all
//! record *construction* on [`TelemetrySink::enabled`], so with the default
//! [`NullSink`] an instrumented code path costs one relaxed atomic-free
//! boolean check and performs **zero heap allocations** (enforced by the
//! `null_sink_alloc_free` integration test). [`MemorySink`] captures
//! records for tests; [`FileSink`] streams them as JSON lines.

use crate::run::{RunSummary, StepMetrics};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A destination for telemetry records.
///
/// Beyond the original step/run records, sinks can receive *live* events
/// streamed while a job runs: attempt starts, checkpoint commits, wall-
/// clock phase durations as ranks finish phases, and the authoritative
/// per-rank virtual phase totals at end of run. All live methods default
/// to no-ops taking only scalar arguments, so the disabled path stays
/// allocation-free and existing sinks need no changes.
pub trait TelemetrySink: Send + Sync {
    /// Whether this sink wants records. Callers must check this before
    /// building a record, so disabled telemetry costs nothing.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one step.
    fn record_step(&self, step: &StepMetrics);

    /// Record a run summary.
    fn record_run(&self, run: &RunSummary);

    /// A new execution attempt started (0 = first). `resumed_from` is the
    /// checkpoint step the attempt resumed at (`None` = cold start).
    fn record_attempt(&self, _attempt: u64, _resumed_from: Option<u64>) {}

    /// A coordinated checkpoint committed through `step`.
    fn record_checkpoint(&self, _step: u64) {}

    /// One rank finished one phase, measured in wall-clock seconds on
    /// this machine. Streamed live, mid-run; approximate by nature.
    fn record_live_phase(&self, _rank: u32, _phase: &str, _wall_seconds: f64) {}

    /// Authoritative per-rank virtual seconds accumulated in one phase
    /// over the successful attempt (from the cost-model timeline), with
    /// the number of spans folded in. Streamed once at end of run.
    fn record_rank_phase(&self, _rank: u32, _phase: &str, _virt_seconds: f64, _spans: u64) {}

    /// A sampled wall-clock profile of the run ([`crate::profile`]),
    /// optionally joined against the cost model as a skew report.
    /// Delivered once, after the run finishes.
    fn record_profile(
        &self,
        _profile: &crate::profile::ProfileReport,
        _skew: Option<&crate::profile::SkewReport>,
    ) {
    }
}

/// Discards everything; reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record_step(&self, _step: &StepMetrics) {}

    fn record_run(&self, _run: &RunSummary) {}
}

/// Buffers records in memory, for tests and in-process inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    steps: Mutex<Vec<StepMetrics>>,
    runs: Mutex<Vec<RunSummary>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Snapshot the recorded steps.
    pub fn steps(&self) -> Vec<StepMetrics> {
        self.steps.lock().clone()
    }

    /// Snapshot the recorded run summaries.
    pub fn runs(&self) -> Vec<RunSummary> {
        self.runs.lock().clone()
    }
}

impl TelemetrySink for MemorySink {
    fn record_step(&self, step: &StepMetrics) {
        self.steps.lock().push(step.clone());
    }

    fn record_run(&self, run: &RunSummary) {
        self.runs.lock().push(run.clone());
    }
}

/// Streams records to a file as JSON lines (`metrics.jsonl`).
#[derive(Debug)]
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Create (truncating) the JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<FileSink> {
        Ok(FileSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    fn write_line(&self, line: String) {
        let mut w = self.writer.lock();
        // Telemetry must never take the model down; drop the record on I/O
        // failure.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

impl TelemetrySink for FileSink {
    fn record_step(&self, step: &StepMetrics) {
        self.write_line(step.to_json().to_string());
    }

    fn record_run(&self, run: &RunSummary) {
        self.write_line(run.to_json().to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    fn sample_step() -> StepMetrics {
        StepMetrics {
            step: 0,
            virt_start: 0.0,
            virt_seconds: 1.5,
            phase_seconds: vec![("dynamics", 1.0)],
            messages: vec![2, 2],
            bytes: vec![100, 100],
            flops: vec![1.0e6, 1.0e6],
            flop_imbalance: 0.0,
            phase_flop_imbalance: vec![("dynamics", 0.0)],
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn memory_sink_captures() {
        let sink = MemorySink::new();
        sink.record_step(&sample_step());
        sink.record_run(&RunSummary::default());
        assert_eq!(sink.steps().len(), 1);
        assert_eq!(sink.runs().len(), 1);
        assert!(sink.enabled());
    }

    #[test]
    fn file_sink_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join("agcm_telemetry_sink_test.jsonl");
        let sink = FileSink::create(&path).unwrap();
        sink.record_step(&sample_step());
        sink.record_run(&RunSummary::default());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            Value::parse(lines[0])
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("step")
        );
        assert_eq!(
            Value::parse(lines[1])
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("run")
        );
        let _ = std::fs::remove_file(&path);
    }
}
