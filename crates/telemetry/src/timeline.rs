//! Span timelines from phase events.
//!
//! `agcm-costmodel`'s replay answers "how many seconds does each phase
//! cost?"; this module answers "*when* does each phase run on each rank?".
//! It takes the replay's per-event [`EventSchedule`] — per-rank virtual
//! clocks, receives bound by the matching send's simulated arrival — and
//! folds it into one [`Span`] per `PhaseBegin`/`PhaseEnd` pair, with
//! virtual start/end timestamps. When the trace carries wall-clock stamps
//! (recorded runs do), each span also carries the real start/end on *this*
//! machine, so a timeline viewer can show both tracks side by side.

use agcm_costmodel::machine::MachineProfile;
use agcm_costmodel::replay::{schedule, EventSchedule};
use agcm_mps::trace::{Event, PhaseFault, WorldTrace};
use std::collections::HashMap;

/// One phase execution on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// World rank the span ran on.
    pub rank: usize,
    /// Phase name.
    pub name: &'static str,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// Virtual (cost-model) start time, seconds.
    pub virt_start: f64,
    /// Virtual (cost-model) end time, seconds.
    pub virt_end: f64,
    /// Wall-clock start (seconds since the run epoch), when recorded.
    pub wall_start: Option<f64>,
    /// Wall-clock end (seconds since the run epoch), when recorded.
    pub wall_end: Option<f64>,
    /// Index of the `PhaseBegin` event in the rank's stream.
    pub begin_event: usize,
    /// Index of the matching `PhaseEnd` event in the rank's stream.
    pub end_event: usize,
}

impl Span {
    /// Virtual duration, seconds.
    pub fn virt_duration(&self) -> f64 {
        self.virt_end - self.virt_start
    }

    /// Whether `other` is strictly nested inside this span (same rank,
    /// event range contained).
    pub fn contains(&self, other: &Span) -> bool {
        self.rank == other.rank
            && self.begin_event < other.begin_event
            && other.end_event < self.end_event
    }
}

/// All spans of a run, plus per-rank virtual finish times.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Spans sorted by `(rank, begin_event)`.
    pub spans: Vec<Span>,
    /// Virtual finish time of each rank.
    pub finish_times: Vec<f64>,
}

impl Timeline {
    /// Build the timeline by replaying `trace` against `machine`.
    ///
    /// Validates phase balance first and reports every fault instead of
    /// panicking mid-replay.
    pub fn from_trace(
        trace: &WorldTrace,
        machine: &MachineProfile,
    ) -> Result<Timeline, Vec<PhaseFault>> {
        trace.validate_phases()?;
        Ok(Timeline::from_schedule(trace, &schedule(trace, machine)))
    }

    /// Build the timeline from an already-computed replay schedule. The
    /// trace must be phase-balanced (see [`WorldTrace::validate_phases`]).
    pub fn from_schedule(trace: &WorldTrace, sched: &EventSchedule) -> Timeline {
        let mut spans: Vec<Span> = Vec::new();
        for (r, evs) in trace.ranks.iter().enumerate() {
            let walls = trace.walls.get(r).map(|w| w.as_slice());
            // Running index over *phase* events, for the wall-stamp sidecar.
            let mut phase_seq = 0usize;
            // Open phases: (name, virtual start, wall start, begin event index).
            let mut open: Vec<(&'static str, f64, Option<f64>, usize)> = Vec::new();
            for (i, ev) in evs.iter().enumerate() {
                match *ev {
                    Event::PhaseBegin(name) => {
                        let wall = walls.and_then(|w| w.get(phase_seq)).copied();
                        phase_seq += 1;
                        open.push((name, sched.times[r][i].end, wall, i));
                    }
                    Event::PhaseEnd(_) => {
                        let wall = walls.and_then(|w| w.get(phase_seq)).copied();
                        phase_seq += 1;
                        // validate_phases guarantees balance.
                        let (name, virt_start, wall_start, begin_event) = open.pop().unwrap();
                        spans.push(Span {
                            rank: r,
                            name,
                            depth: open.len(),
                            virt_start,
                            virt_end: sched.times[r][i].end,
                            wall_start,
                            wall_end: wall,
                            begin_event,
                            end_event: i,
                        });
                    }
                    _ => {}
                }
            }
        }

        spans.sort_by_key(|s| (s.rank, s.begin_event));
        Timeline {
            spans,
            finish_times: sched.finish_times.clone(),
        }
    }

    /// The slowest rank's virtual finish time.
    pub fn total_time(&self) -> f64 {
        self.finish_times.iter().copied().fold(0.0, f64::max)
    }

    /// Spans on one rank, in begin order.
    pub fn rank_spans(&self, rank: usize) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.rank == rank)
    }

    /// Per-rank accumulated virtual seconds inside each named phase
    /// (inclusive of nested phases) — matches the costmodel's
    /// `ReplayResult::phase_times` accounting.
    pub fn phase_seconds_per_rank(&self) -> Vec<HashMap<&'static str, f64>> {
        let n = self.finish_times.len();
        let mut acc: Vec<HashMap<&'static str, f64>> = vec![HashMap::new(); n];
        for s in &self.spans {
            *acc[s.rank].entry(s.name).or_insert(0.0) += s.virt_duration();
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineProfile {
        MachineProfile {
            name: "test",
            flops_per_sec: 1.0e6,
            latency_s: 1.0e-3,
            bytes_per_sec: 1.0e6,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
        }
    }

    #[test]
    fn spans_get_virtual_timestamps() {
        let trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("dynamics"),
            Event::Flops(2.0e6),
            Event::PhaseEnd("dynamics"),
            Event::PhaseBegin("physics"),
            Event::Flops(1.0e6),
            Event::PhaseEnd("physics"),
        ]]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        assert_eq!(tl.spans.len(), 2);
        let d = &tl.spans[0];
        assert_eq!(
            (d.name, d.virt_start, d.virt_end, d.depth),
            ("dynamics", 0.0, 2.0, 0)
        );
        let p = &tl.spans[1];
        assert_eq!((p.name, p.virt_start, p.virt_end), ("physics", 2.0, 3.0));
        assert_eq!(tl.total_time(), 3.0);
    }

    #[test]
    fn nested_spans_have_depth_and_containment() {
        let trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("outer"),
            Event::Flops(1.0e6),
            Event::PhaseBegin("inner"),
            Event::Flops(2.0e6),
            Event::PhaseEnd("inner"),
            Event::PhaseEnd("outer"),
        ]]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let outer = tl.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = tl.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.contains(inner));
        assert!(!inner.contains(outer));
        assert!(outer.virt_start <= inner.virt_start && inner.virt_end <= outer.virt_end);
    }

    #[test]
    fn communication_shifts_spans() {
        // Rank 1's phase cannot end before rank 0's send arrives.
        let trace = WorldTrace::from_ranks(vec![
            vec![
                Event::Flops(1.0e6),
                Event::Send {
                    to: 1,
                    bytes: 1_000_000,
                    seq: 0,
                },
            ],
            vec![
                Event::PhaseBegin("halo"),
                Event::Recv {
                    from: 0,
                    bytes: 1_000_000,
                    seq: 0,
                },
                Event::PhaseEnd("halo"),
            ],
        ]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let halo = &tl.spans[0];
        assert_eq!(halo.rank, 1);
        assert!((halo.virt_end - 2.001).abs() < 1e-12);
    }

    #[test]
    fn wall_stamps_flow_into_spans() {
        let mut trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("step"),
            Event::PhaseEnd("step"),
        ]]);
        trace.walls = vec![vec![0.25, 0.75]];
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        assert_eq!(tl.spans[0].wall_start, Some(0.25));
        assert_eq!(tl.spans[0].wall_end, Some(0.75));
    }

    #[test]
    fn unbalanced_trace_is_rejected() {
        let trace = WorldTrace::from_ranks(vec![vec![Event::PhaseEnd("ghost")]]);
        assert!(Timeline::from_trace(&trace, &machine()).is_err());
    }

    #[test]
    fn phase_seconds_match_costmodel_accounting() {
        let trace = WorldTrace::from_ranks(vec![
            vec![
                Event::PhaseBegin("filter"),
                Event::Flops(1.0e6),
                Event::PhaseEnd("filter"),
                Event::PhaseBegin("filter"),
                Event::Flops(1.5e6),
                Event::PhaseEnd("filter"),
            ],
            vec![
                Event::PhaseBegin("filter"),
                Event::Flops(0.5e6),
                Event::PhaseEnd("filter"),
            ],
        ]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let replay = agcm_costmodel::replay::replay(&trace, &machine());
        let per_rank = tl.phase_seconds_per_rank();
        for (r, rank_phases) in per_rank.iter().enumerate() {
            let ours = rank_phases.get("filter").copied().unwrap_or(0.0);
            let theirs = replay.phase_times[r].get("filter").copied().unwrap_or(0.0);
            assert!(
                (ours - theirs).abs() < 1e-12,
                "rank {r}: {ours} vs {theirs}"
            );
        }
    }
}
