//! Span timelines from phase events.
//!
//! `agcm-costmodel`'s replay answers "how many seconds does each phase
//! cost?"; this module answers "*when* does each phase run on each rank?".
//! It re-runs the same co-routine sweep — per-rank virtual clocks, receives
//! blocking on the matching send's simulated arrival — but instead of
//! accumulating per-phase totals it emits one [`Span`] per
//! `PhaseBegin`/`PhaseEnd` pair, with virtual start/end timestamps. When
//! the trace carries wall-clock stamps (recorded runs do), each span also
//! carries the real start/end on *this* machine, so a timeline viewer can
//! show both tracks side by side.

use agcm_costmodel::machine::MachineProfile;
use agcm_mps::trace::{Event, PhaseFault, WorldTrace};
use std::collections::HashMap;

/// One phase execution on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// World rank the span ran on.
    pub rank: usize,
    /// Phase name.
    pub name: &'static str,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// Virtual (cost-model) start time, seconds.
    pub virt_start: f64,
    /// Virtual (cost-model) end time, seconds.
    pub virt_end: f64,
    /// Wall-clock start (seconds since the run epoch), when recorded.
    pub wall_start: Option<f64>,
    /// Wall-clock end (seconds since the run epoch), when recorded.
    pub wall_end: Option<f64>,
    /// Index of the `PhaseBegin` event in the rank's stream.
    pub begin_event: usize,
    /// Index of the matching `PhaseEnd` event in the rank's stream.
    pub end_event: usize,
}

impl Span {
    /// Virtual duration, seconds.
    pub fn virt_duration(&self) -> f64 {
        self.virt_end - self.virt_start
    }

    /// Whether `other` is strictly nested inside this span (same rank,
    /// event range contained).
    pub fn contains(&self, other: &Span) -> bool {
        self.rank == other.rank
            && self.begin_event < other.begin_event
            && other.end_event < self.end_event
    }
}

/// All spans of a run, plus per-rank virtual finish times.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Spans sorted by `(rank, begin_event)`.
    pub spans: Vec<Span>,
    /// Virtual finish time of each rank.
    pub finish_times: Vec<f64>,
}

struct RankState<'a> {
    events: &'a [Event],
    walls: Option<&'a [f64]>,
    next: usize,
    clock: f64,
    /// Running index over *phase* events, for the wall-stamp sidecar.
    phase_seq: usize,
    /// Open phases: (name, virtual start, wall start, begin event index).
    open: Vec<(&'static str, f64, Option<f64>, usize)>,
}

impl Timeline {
    /// Build the timeline by replaying `trace` against `machine`.
    ///
    /// Validates phase balance first and reports every fault instead of
    /// panicking mid-replay.
    pub fn from_trace(
        trace: &WorldTrace,
        machine: &MachineProfile,
    ) -> Result<Timeline, Vec<PhaseFault>> {
        trace.validate_phases()?;
        let n = trace.size();
        let mut states: Vec<RankState> = (0..n)
            .map(|r| RankState {
                events: &trace.ranks[r],
                walls: trace.walls.get(r).map(|w| w.as_slice()),
                next: 0,
                clock: 0.0,
                phase_seq: 0,
                open: Vec::new(),
            })
            .collect();
        let mut arrivals: HashMap<(usize, usize, u64), f64> = HashMap::new();
        let mut spans: Vec<Span> = Vec::new();

        loop {
            let mut progressed = false;
            let mut all_done = true;
            #[allow(clippy::needless_range_loop)] // index drives multiple buffers
            for r in 0..n {
                loop {
                    let state = &mut states[r];
                    let Some(ev) = state.events.get(state.next) else {
                        break;
                    };
                    match *ev {
                        Event::Flops(f) => state.clock += machine.compute_time(f),
                        Event::Send { to, bytes, seq } => {
                            state.clock += machine.send_time(bytes);
                            arrivals.insert((r, to, seq), state.clock + machine.latency_s);
                        }
                        Event::Recv { from, seq, .. } => match arrivals.get(&(from, r, seq)) {
                            Some(&arrival) => {
                                state.clock = (state.clock + machine.recv_overhead_s).max(arrival);
                            }
                            None => break, // blocked on an unsimulated send
                        },
                        Event::PhaseBegin(name) => {
                            let wall = state.walls.and_then(|w| w.get(state.phase_seq)).copied();
                            state.phase_seq += 1;
                            state.open.push((name, state.clock, wall, state.next));
                        }
                        Event::PhaseEnd(_) => {
                            let wall = state.walls.and_then(|w| w.get(state.phase_seq)).copied();
                            state.phase_seq += 1;
                            // validate_phases guarantees balance.
                            let (name, virt_start, wall_start, begin_event) =
                                state.open.pop().unwrap();
                            spans.push(Span {
                                rank: r,
                                name,
                                depth: state.open.len(),
                                virt_start,
                                virt_end: state.clock,
                                wall_start,
                                wall_end: wall,
                                begin_event,
                                end_event: state.next,
                            });
                        }
                    }
                    state.next += 1;
                    progressed = true;
                }
                if states[r].next < states[r].events.len() {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            assert!(
                progressed,
                "timeline replay deadlock: a receive has no matching send in the trace"
            );
        }

        spans.sort_by_key(|s| (s.rank, s.begin_event));
        Ok(Timeline {
            spans,
            finish_times: states.iter().map(|s| s.clock).collect(),
        })
    }

    /// The slowest rank's virtual finish time.
    pub fn total_time(&self) -> f64 {
        self.finish_times.iter().copied().fold(0.0, f64::max)
    }

    /// Spans on one rank, in begin order.
    pub fn rank_spans(&self, rank: usize) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.rank == rank)
    }

    /// Per-rank accumulated virtual seconds inside each named phase
    /// (inclusive of nested phases) — matches the costmodel's
    /// `ReplayResult::phase_times` accounting.
    pub fn phase_seconds_per_rank(&self) -> Vec<HashMap<&'static str, f64>> {
        let n = self.finish_times.len();
        let mut acc: Vec<HashMap<&'static str, f64>> = vec![HashMap::new(); n];
        for s in &self.spans {
            *acc[s.rank].entry(s.name).or_insert(0.0) += s.virt_duration();
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineProfile {
        MachineProfile {
            name: "test",
            flops_per_sec: 1.0e6,
            latency_s: 1.0e-3,
            bytes_per_sec: 1.0e6,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
        }
    }

    #[test]
    fn spans_get_virtual_timestamps() {
        let trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("dynamics"),
            Event::Flops(2.0e6),
            Event::PhaseEnd("dynamics"),
            Event::PhaseBegin("physics"),
            Event::Flops(1.0e6),
            Event::PhaseEnd("physics"),
        ]]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        assert_eq!(tl.spans.len(), 2);
        let d = &tl.spans[0];
        assert_eq!(
            (d.name, d.virt_start, d.virt_end, d.depth),
            ("dynamics", 0.0, 2.0, 0)
        );
        let p = &tl.spans[1];
        assert_eq!((p.name, p.virt_start, p.virt_end), ("physics", 2.0, 3.0));
        assert_eq!(tl.total_time(), 3.0);
    }

    #[test]
    fn nested_spans_have_depth_and_containment() {
        let trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("outer"),
            Event::Flops(1.0e6),
            Event::PhaseBegin("inner"),
            Event::Flops(2.0e6),
            Event::PhaseEnd("inner"),
            Event::PhaseEnd("outer"),
        ]]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let outer = tl.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = tl.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.contains(inner));
        assert!(!inner.contains(outer));
        assert!(outer.virt_start <= inner.virt_start && inner.virt_end <= outer.virt_end);
    }

    #[test]
    fn communication_shifts_spans() {
        // Rank 1's phase cannot end before rank 0's send arrives.
        let trace = WorldTrace::from_ranks(vec![
            vec![
                Event::Flops(1.0e6),
                Event::Send {
                    to: 1,
                    bytes: 1_000_000,
                    seq: 0,
                },
            ],
            vec![
                Event::PhaseBegin("halo"),
                Event::Recv {
                    from: 0,
                    bytes: 1_000_000,
                    seq: 0,
                },
                Event::PhaseEnd("halo"),
            ],
        ]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let halo = &tl.spans[0];
        assert_eq!(halo.rank, 1);
        assert!((halo.virt_end - 2.001).abs() < 1e-12);
    }

    #[test]
    fn wall_stamps_flow_into_spans() {
        let mut trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("step"),
            Event::PhaseEnd("step"),
        ]]);
        trace.walls = vec![vec![0.25, 0.75]];
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        assert_eq!(tl.spans[0].wall_start, Some(0.25));
        assert_eq!(tl.spans[0].wall_end, Some(0.75));
    }

    #[test]
    fn unbalanced_trace_is_rejected() {
        let trace = WorldTrace::from_ranks(vec![vec![Event::PhaseEnd("ghost")]]);
        assert!(Timeline::from_trace(&trace, &machine()).is_err());
    }

    #[test]
    fn phase_seconds_match_costmodel_accounting() {
        let trace = WorldTrace::from_ranks(vec![
            vec![
                Event::PhaseBegin("filter"),
                Event::Flops(1.0e6),
                Event::PhaseEnd("filter"),
                Event::PhaseBegin("filter"),
                Event::Flops(1.5e6),
                Event::PhaseEnd("filter"),
            ],
            vec![
                Event::PhaseBegin("filter"),
                Event::Flops(0.5e6),
                Event::PhaseEnd("filter"),
            ],
        ]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let replay = agcm_costmodel::replay::replay(&trace, &machine());
        let per_rank = tl.phase_seconds_per_rank();
        for (r, rank_phases) in per_rank.iter().enumerate() {
            let ours = rank_phases.get("filter").copied().unwrap_or(0.0);
            let theirs = replay.phase_times[r].get("filter").copied().unwrap_or(0.0);
            assert!(
                (ours - theirs).abs() < 1e-12,
                "rank {r}: {ours} vs {theirs}"
            );
        }
    }
}
