//! In-process wall-clock sampling profiler.
//!
//! The cost model (PR 3/4) predicts where time *should* go; this module
//! measures where it *actually* goes, the way the paper's own §3.4 per-
//! component timings were measured. Rank threads publish their current
//! phase stack into a lock-free per-rank slot registry — the existing
//! `PhaseBegin`/`PhaseEnd` instrumentation drives it through the
//! [`SpanObserver`] hook, so nothing in the model changes — and a sampler
//! thread snapshots every live slot at a configurable Hz, accumulating
//! folded stacks.
//!
//! ## Concurrency design
//!
//! Each rank owns one [`PhaseSlot`]: a seqlock (sequence counter odd while
//! the writer is mid-update) over a fixed-depth stack of interned phase
//! ids. The rank thread is the only writer; the sampler retries a
//! bounded number of times on a torn read and otherwise *skips* the slot
//! for that tick (counted, never blocking the rank). Phase names are
//! interned into a fixed lock-free table of `OnceLock<&'static str>`
//! slots, so the publication path — begin, end, intern — performs **zero
//! allocations** and takes no locks. The disabled path (no observer
//! installed) is a single `Option` check in the substrate.
//!
//! ## Outputs
//!
//! [`Profiler::stop`] folds the samples into a [`ProfileReport`]:
//! folded-stack text (`step;dynamics;filter 42`), a dependency-free SVG
//! flamegraph ([`crate::flamegraph`]), a per-phase self/total table, and —
//! joined against a recorded trace — a [`SkewReport`] comparing measured
//! wall fractions with the cost model's virtual fractions per phase: the
//! repo's first measured-vs-modeled accountability check.

use crate::json::Value;
use crate::timeline::Timeline;
use agcm_costmodel::machine::MachineProfile;
use agcm_mps::span::SpanObserver;
use agcm_mps::trace::{PhaseFault, WorldTrace};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Deepest phase stack a slot can publish; deeper frames are dropped and
/// counted in [`ProfileReport::truncated`]. The model nests four deep
/// (step > dynamics > filter > fft), so 16 leaves ample headroom.
pub const MAX_DEPTH: usize = 16;

/// Interner capacity: distinct phase names a profile can distinguish.
/// Names beyond the cap fold into the reserved `(other)` frame.
pub const MAX_PHASES: usize = 128;

/// Pseudo-frame for a live rank currently outside any phase.
pub const IDLE_FRAME: &str = "(idle)";

/// Pseudo-frame for phase names past the interner capacity.
pub const OVERFLOW_FRAME: &str = "(other)";

/// Sampler configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProfileConfig {
    /// Target sampling frequency. Clamped to `[1, 20_000]` Hz.
    pub hz: f64,
    /// Number of rank slots to preallocate; events from ranks at or above
    /// this index are dropped (counted in [`ProfileReport::dropped_ranks`]).
    pub max_ranks: usize,
}

impl Default for ProfileConfig {
    fn default() -> ProfileConfig {
        ProfileConfig {
            // A prime default keeps the sampler from beating in lockstep
            // with millisecond-periodic model phases.
            hz: 997.0,
            max_ranks: 256,
        }
    }
}

impl ProfileConfig {
    /// A config sampling at `hz` with the default rank capacity.
    pub fn at_hz(hz: f64) -> ProfileConfig {
        ProfileConfig {
            hz,
            ..ProfileConfig::default()
        }
    }

    fn clamped_hz(&self) -> f64 {
        self.hz.clamp(1.0, 20_000.0)
    }
}

/// Lock-free phase-name interner: a fixed table of `OnceLock` slots.
/// Interning scans published entries (string equality merges the same
/// literal from different crates) and claims the first empty slot on a
/// miss — no allocation, no mutex, at worst a bounded CAS race.
struct Interner {
    names: [OnceLock<&'static str>; MAX_PHASES],
    overflow: AtomicU64,
}

impl Interner {
    fn new() -> Interner {
        Interner {
            names: [const { OnceLock::new() }; MAX_PHASES],
            overflow: AtomicU64::new(0),
        }
    }

    /// Intern `name`, returning its 1-based id; 0 means the table is full.
    fn intern(&self, name: &'static str) -> u32 {
        let mut i = 0;
        while i < MAX_PHASES {
            match self.names[i].get() {
                Some(n) => {
                    if *n == name {
                        return (i + 1) as u32;
                    }
                    i += 1;
                }
                None => {
                    if self.names[i].set(name).is_ok() {
                        return (i + 1) as u32;
                    }
                    // Lost the claim race: re-inspect the same slot.
                }
            }
        }
        self.overflow.fetch_add(1, Ordering::Relaxed);
        0
    }

    /// Resolve an id back to its name. Called at report time only.
    fn resolve(&self, id: u32) -> &'static str {
        if id == 0 {
            return OVERFLOW_FRAME;
        }
        self.names
            .get(id as usize - 1)
            .and_then(|n| n.get().copied())
            .unwrap_or(OVERFLOW_FRAME)
    }
}

/// One rank's published phase stack, seqlock-protected. The rank thread
/// is the single writer; the sampler reads with a retry loop. Every
/// field is an atomic, so even a torn snapshot is well-defined (and then
/// discarded by the sequence check).
struct PhaseSlot {
    /// Seqlock sequence: odd while the writer is mid-update.
    seq: AtomicU32,
    /// Whether the rank's thread is currently running.
    live: AtomicBool,
    /// Current stack depth (may exceed `MAX_DEPTH`; excess frames are
    /// not stored).
    depth: AtomicU32,
    /// Interned phase ids, innermost last.
    stack: [AtomicU32; MAX_DEPTH],
    /// Pushes that arrived beyond `MAX_DEPTH`.
    truncated: AtomicU64,
}

impl PhaseSlot {
    fn new() -> PhaseSlot {
        PhaseSlot {
            seq: AtomicU32::new(0),
            live: AtomicBool::new(false),
            depth: AtomicU32::new(0),
            stack: [const { AtomicU32::new(0) }; MAX_DEPTH],
            truncated: AtomicU64::new(0),
        }
    }

    fn write<F: FnOnce(&PhaseSlot)>(&self, f: F) {
        self.seq.fetch_add(1, Ordering::AcqRel); // odd: write in progress
        f(self);
        self.seq.fetch_add(1, Ordering::Release); // even: stable
    }

    fn push(&self, id: u32) {
        self.write(|s| {
            let d = s.depth.load(Ordering::Relaxed) as usize;
            if d < MAX_DEPTH {
                s.stack[d].store(id, Ordering::Relaxed);
            } else {
                s.truncated.fetch_add(1, Ordering::Relaxed);
            }
            s.depth.store(d as u32 + 1, Ordering::Relaxed);
        });
    }

    fn pop(&self) {
        self.write(|s| {
            let d = s.depth.load(Ordering::Relaxed);
            s.depth.store(d.saturating_sub(1), Ordering::Relaxed);
        });
    }

    fn reset(&self, live: bool) {
        self.write(|s| {
            s.depth.store(0, Ordering::Relaxed);
            s.live.store(live, Ordering::Relaxed);
        });
    }

    /// Snapshot the stack if the slot is live and stable; `None` when the
    /// rank is not running or the writer kept interfering.
    fn snapshot(&self, out: &mut Vec<u32>) -> SnapshotOutcome {
        const RETRIES: usize = 8;
        for _ in 0..RETRIES {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            if !self.live.load(Ordering::Relaxed) {
                return SnapshotOutcome::Dead;
            }
            let depth = (self.depth.load(Ordering::Relaxed) as usize).min(MAX_DEPTH);
            out.clear();
            for i in 0..depth {
                out.push(self.stack[i].load(Ordering::Relaxed));
            }
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Acquire) == s1 {
                return SnapshotOutcome::Sampled;
            }
        }
        SnapshotOutcome::Contended
    }
}

enum SnapshotOutcome {
    Sampled,
    Dead,
    Contended,
}

struct ProfShared {
    interner: Interner,
    slots: Vec<PhaseSlot>,
    stop: AtomicBool,
    dropped_ranks: AtomicU64,
    sampled: Mutex<Option<Sampled>>,
}

#[derive(Default)]
struct Sampled {
    /// Folded stacks keyed by interned-id path; empty path = idle.
    stacks: HashMap<Vec<u32>, u64>,
    ticks: u64,
    total_samples: u64,
    idle_samples: u64,
    skipped_samples: u64,
}

/// The [`SpanObserver`] face of the profiler: attach it to a world via
/// `WorldOptions::spans` (possibly through a
/// [`FanoutObserver`](agcm_mps::FanoutObserver)). Publication is
/// allocation-free and lock-free.
pub struct ProfileObserver {
    shared: Arc<ProfShared>,
}

impl ProfileObserver {
    fn slot(&self, rank: usize) -> Option<&PhaseSlot> {
        let slot = self.shared.slots.get(rank);
        if slot.is_none() {
            self.shared.dropped_ranks.fetch_add(1, Ordering::Relaxed);
        }
        slot
    }
}

impl SpanObserver for ProfileObserver {
    fn phase_begin(&self, rank: usize, name: &'static str) {
        if let Some(slot) = self.slot(rank) {
            // A phase event from a rank that never announced itself still
            // marks the slot live, so the profiler works even on paths
            // that bypass the runtime's lifecycle hooks.
            if !slot.live.load(Ordering::Relaxed) {
                slot.reset(true);
            }
            slot.push(self.shared.interner.intern(name));
        }
    }

    fn phase_end(&self, rank: usize, _name: &'static str) {
        if let Some(slot) = self.slot(rank) {
            slot.pop();
        }
    }

    fn rank_started(&self, rank: usize) {
        if let Some(slot) = self.slot(rank) {
            slot.reset(true);
        }
    }

    fn rank_finished(&self, rank: usize) {
        if let Some(slot) = self.slot(rank) {
            slot.reset(false);
        }
    }
}

/// A running sampling profiler: owns the sampler thread.
pub struct Profiler {
    shared: Arc<ProfShared>,
    handle: Option<JoinHandle<()>>,
    started: Instant,
    hz: f64,
}

impl Profiler {
    /// Start sampling at `cfg.hz`. The profiler samples nothing until an
    /// [`observer`](Profiler::observer) is attached to a running world.
    pub fn start(cfg: ProfileConfig) -> Profiler {
        let hz = cfg.clamped_hz();
        let shared = Arc::new(ProfShared {
            interner: Interner::new(),
            slots: (0..cfg.max_ranks.max(1))
                .map(|_| PhaseSlot::new())
                .collect(),
            stop: AtomicBool::new(false),
            dropped_ranks: AtomicU64::new(0),
            sampled: Mutex::new(None),
        });
        let worker = Arc::clone(&shared);
        let interval = Duration::from_secs_f64(1.0 / hz);
        let handle = std::thread::Builder::new()
            .name("agcm-profiler".into())
            .spawn(move || sampler_loop(&worker, interval))
            .expect("spawn sampler thread");
        Profiler {
            shared,
            handle: Some(handle),
            started: Instant::now(),
            hz,
        }
    }

    /// The observer rank threads publish through. Attach to
    /// `WorldOptions::spans`.
    pub fn observer(&self) -> Arc<dyn SpanObserver> {
        Arc::new(ProfileObserver {
            shared: Arc::clone(&self.shared),
        })
    }

    /// Stop the sampler and fold what it saw into a report.
    pub fn stop(mut self) -> ProfileReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let sampled = self
            .shared
            .sampled
            .lock()
            .unwrap()
            .take()
            .unwrap_or_default();
        let mut stacks: Vec<FoldedStack> = sampled
            .stacks
            .iter()
            .map(|(ids, &samples)| FoldedStack {
                frames: if ids.is_empty() {
                    vec![IDLE_FRAME.to_string()]
                } else {
                    ids.iter()
                        .map(|&id| self.shared.interner.resolve(id).to_string())
                        .collect()
                },
                samples,
            })
            .collect();
        // Name-level merge: distinct id paths can resolve to the same
        // frame path (interner overflow), so re-fold by name.
        let mut by_name: BTreeMap<Vec<String>, u64> = BTreeMap::new();
        for s in stacks.drain(..) {
            *by_name.entry(s.frames).or_insert(0) += s.samples;
        }
        let stacks: Vec<FoldedStack> = by_name
            .into_iter()
            .map(|(frames, samples)| FoldedStack { frames, samples })
            .collect();
        let truncated = self
            .shared
            .slots
            .iter()
            .map(|s| s.truncated.load(Ordering::Relaxed))
            .sum();
        ProfileReport {
            hz: self.hz,
            wall_seconds,
            ticks: sampled.ticks,
            total_samples: sampled.total_samples,
            idle_samples: sampled.idle_samples,
            skipped_samples: sampled.skipped_samples,
            dropped_phases: self.shared.interner.overflow.load(Ordering::Relaxed),
            dropped_ranks: self.shared.dropped_ranks.load(Ordering::Relaxed),
            truncated,
            stacks,
        }
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn sampler_loop(shared: &ProfShared, interval: Duration) {
    let mut acc = Sampled::default();
    let mut scratch: Vec<u32> = Vec::with_capacity(MAX_DEPTH);
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        acc.ticks += 1;
        for slot in &shared.slots {
            match slot.snapshot(&mut scratch) {
                SnapshotOutcome::Sampled => {
                    acc.total_samples += 1;
                    if scratch.is_empty() {
                        acc.idle_samples += 1;
                    }
                    *acc.stacks.entry(scratch.clone()).or_insert(0) += 1;
                }
                SnapshotOutcome::Dead => {}
                SnapshotOutcome::Contended => acc.skipped_samples += 1,
            }
        }
    }
    *shared.sampled.lock().unwrap() = Some(acc);
}

/// One folded stack: a root-to-leaf frame path and its sample count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedStack {
    /// Frame path, outermost first.
    pub frames: Vec<String>,
    /// Samples that observed exactly this stack.
    pub samples: u64,
}

/// Per-phase sample attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name.
    pub name: String,
    /// Samples with this phase innermost (leaf) — its *self* time.
    pub self_samples: u64,
    /// Samples with this phase anywhere on the stack — its *total* time.
    pub total_samples: u64,
}

/// Everything the sampler saw, folded.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Effective sampling frequency (after clamping).
    pub hz: f64,
    /// Wall seconds the profiler ran.
    pub wall_seconds: f64,
    /// Sampler wake-ups.
    pub ticks: u64,
    /// Successful slot snapshots (= sum over folded stacks).
    pub total_samples: u64,
    /// Snapshots of live ranks outside any phase.
    pub idle_samples: u64,
    /// Snapshots abandoned to writer contention (not in `total_samples`).
    pub skipped_samples: u64,
    /// Phase-begin events whose name missed the interner table.
    pub dropped_phases: u64,
    /// Phase events from ranks beyond the slot capacity.
    pub dropped_ranks: u64,
    /// Frames dropped past [`MAX_DEPTH`].
    pub truncated: u64,
    /// Folded stacks, sorted by frame path.
    pub stacks: Vec<FoldedStack>,
}

impl ProfileReport {
    /// The folded-stack text format (`a;b;c 42`), one line per stack —
    /// loadable by any flamegraph toolchain.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for s in &self.stacks {
            out.push_str(&s.frames.join(";"));
            out.push(' ');
            out.push_str(&s.samples.to_string());
            out.push('\n');
        }
        out
    }

    /// Sample conservation: the folded stacks account for every recorded
    /// sample, no more, no less.
    pub fn conservation_ok(&self) -> bool {
        self.stacks.iter().map(|s| s.samples).sum::<u64>() == self.total_samples
    }

    /// Every distinct phase name observed on any stack (excluding the
    /// [`IDLE_FRAME`] pseudo-frame).
    pub fn sampled_phases(&self) -> BTreeSet<&str> {
        self.stacks
            .iter()
            .flat_map(|s| s.frames.iter())
            .map(String::as_str)
            .filter(|f| *f != IDLE_FRAME)
            .collect()
    }

    /// Per-phase self/total sample counts, heaviest self first.
    pub fn phase_table(&self) -> Vec<PhaseStat> {
        let mut table: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for s in &self.stacks {
            if let Some(leaf) = s.frames.last() {
                table.entry(leaf).or_default().0 += s.samples;
            }
            // Count each stack once per phase even if a name repeats.
            let distinct: BTreeSet<&str> = s.frames.iter().map(String::as_str).collect();
            for f in distinct {
                table.entry(f).or_default().1 += s.samples;
            }
        }
        let mut rows: Vec<PhaseStat> = table
            .into_iter()
            .map(|(name, (self_samples, total_samples))| PhaseStat {
                name: name.to_string(),
                self_samples,
                total_samples,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.self_samples
                .cmp(&a.self_samples)
                .then(a.name.cmp(&b.name))
        });
        rows
    }

    /// The report as JSON (stacks, counters, phase table).
    pub fn to_json(&self) -> Value {
        let stacks = Value::Arr(
            self.stacks
                .iter()
                .map(|s| {
                    Value::obj(vec![
                        ("stack", Value::Str(s.frames.join(";"))),
                        ("samples", Value::Num(s.samples as f64)),
                    ])
                })
                .collect(),
        );
        let phases = Value::Arr(
            self.phase_table()
                .into_iter()
                .map(|p| {
                    Value::obj(vec![
                        ("phase", Value::Str(p.name)),
                        ("self_samples", Value::Num(p.self_samples as f64)),
                        ("total_samples", Value::Num(p.total_samples as f64)),
                    ])
                })
                .collect(),
        );
        Value::obj(vec![
            ("hz", Value::Num(self.hz)),
            ("wall_seconds", Value::Num(self.wall_seconds)),
            ("ticks", Value::Num(self.ticks as f64)),
            ("total_samples", Value::Num(self.total_samples as f64)),
            ("idle_samples", Value::Num(self.idle_samples as f64)),
            ("skipped_samples", Value::Num(self.skipped_samples as f64)),
            ("dropped_phases", Value::Num(self.dropped_phases as f64)),
            ("dropped_ranks", Value::Num(self.dropped_ranks as f64)),
            ("truncated", Value::Num(self.truncated as f64)),
            ("stacks", stacks),
            ("phases", phases),
        ])
    }

    /// A self-contained SVG flamegraph of the folded stacks.
    pub fn flamegraph_svg(&self, title: &str) -> String {
        crate::flamegraph::render(&self.stacks, title)
    }
}

/// One row of the measured-vs-modeled join.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewRow {
    /// Phase name (or a pseudo-frame).
    pub phase: String,
    /// Fraction of wall samples with this phase innermost.
    pub measured_self_frac: f64,
    /// Fraction of total virtual rank-seconds spent in this phase
    /// exclusively (children subtracted).
    pub modeled_self_frac: f64,
    /// Self samples behind `measured_self_frac`.
    pub measured_samples: u64,
    /// Virtual self seconds behind `modeled_self_frac`.
    pub modeled_self_seconds: f64,
    /// `(measured − modeled) × 100` percentage points.
    pub skew_points: f64,
    /// Whether the phase appears in the recorded trace.
    pub in_trace: bool,
}

/// Measured wall fractions joined against cost-model virtual fractions,
/// one row per phase in the union of both domains.
#[derive(Debug, Clone, Default)]
pub struct SkewReport {
    /// Rows sorted by modeled fraction, heaviest first.
    pub rows: Vec<SkewRow>,
    /// Sum of per-rank virtual finish times (the modeled denominator).
    pub total_virtual_seconds: f64,
    /// Wall samples (the measured denominator).
    pub total_samples: u64,
    /// Phases in the trace (the join is complete iff each has a row —
    /// true by construction, recorded for the machine check).
    pub traced_phases: usize,
}

impl SkewReport {
    /// True if every *sampled* phase also exists in the trace — sampling
    /// must never invent phases the model does not know about.
    pub fn sampled_phases_in_trace(&self) -> bool {
        self.rows
            .iter()
            .filter(|r| r.measured_samples > 0 && r.phase != IDLE_FRAME)
            .all(|r| r.in_trace)
    }

    /// True if every traced phase got a row in the join.
    pub fn join_complete(&self) -> bool {
        self.rows
            .iter()
            .filter(|r| r.phase != IDLE_FRAME && r.in_trace)
            .count()
            == self.traced_phases
    }

    /// Fixed-width text table for terminal output.
    pub fn table_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>8}  {}\n",
            "phase", "measured%", "modeled%", "skew", "samples"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>9.2}% {:>9.2}% {:>+7.2}  {}{}\n",
                r.phase,
                r.measured_self_frac * 100.0,
                r.modeled_self_frac * 100.0,
                r.skew_points,
                r.measured_samples,
                if r.in_trace { "" } else { "  [not in trace]" }
            ));
        }
        out
    }

    /// The report as JSON.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            (
                "rows",
                Value::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Value::obj(vec![
                                ("phase", Value::Str(r.phase.clone())),
                                ("measured_self_frac", Value::Num(r.measured_self_frac)),
                                ("modeled_self_frac", Value::Num(r.modeled_self_frac)),
                                ("measured_samples", Value::Num(r.measured_samples as f64)),
                                ("modeled_self_seconds", Value::Num(r.modeled_self_seconds)),
                                ("skew_points", Value::Num(r.skew_points)),
                                ("in_trace", Value::Bool(r.in_trace)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "total_virtual_seconds",
                Value::Num(self.total_virtual_seconds),
            ),
            ("total_samples", Value::Num(self.total_samples as f64)),
            ("traced_phases", Value::Num(self.traced_phases as f64)),
        ])
    }
}

/// Join a sampled profile against the cost model's replay of `trace`.
///
/// Both sides are reduced to *self* fractions of total rank-time:
/// measured = leaf samples / total samples, modeled = exclusive virtual
/// seconds / summed virtual finish times. Time a rank spends outside any
/// phase lands in the [`IDLE_FRAME`] row on both sides, so the two
/// columns each sum to ~1 and are directly comparable.
pub fn skew_report(
    report: &ProfileReport,
    trace: &WorldTrace,
    machine: &MachineProfile,
) -> Result<SkewReport, Vec<PhaseFault>> {
    let tl = Timeline::from_trace(trace, machine)?;

    // Exclusive (self) virtual seconds per phase: walk each rank's spans
    // in begin order, subtracting every span's duration from its direct
    // parent.
    let mut self_secs: BTreeMap<&str, f64> = BTreeMap::new();
    let mut idle_secs = 0.0;
    for rank in 0..tl.finish_times.len() {
        let mut stack: Vec<(&str, usize)> = Vec::new(); // (name, end_event)
        let mut top_level_covered = 0.0;
        for s in tl.rank_spans(rank) {
            while let Some(&(_, end)) = stack.last() {
                if end < s.begin_event {
                    stack.pop();
                } else {
                    break;
                }
            }
            match stack.last() {
                Some(&(parent, _)) => *self_secs.entry(parent).or_insert(0.0) -= s.virt_duration(),
                None => top_level_covered += s.virt_duration(),
            }
            *self_secs.entry(s.name).or_insert(0.0) += s.virt_duration();
            stack.push((s.name, s.end_event));
        }
        idle_secs += (tl.finish_times[rank] - top_level_covered).max(0.0);
    }
    let total_virtual: f64 = tl.finish_times.iter().sum();

    let traced: BTreeSet<&str> = self_secs.keys().copied().collect();
    let measured: BTreeMap<String, u64> = report
        .phase_table()
        .into_iter()
        .map(|p| (p.name, p.self_samples))
        .collect();

    let mut names: BTreeSet<String> = traced.iter().map(|s| s.to_string()).collect();
    names.extend(measured.keys().cloned());
    names.insert(IDLE_FRAME.to_string());

    let total_samples = report.total_samples;
    let mut rows: Vec<SkewRow> = names
        .into_iter()
        .map(|phase| {
            let samples = if phase == IDLE_FRAME {
                report.idle_samples
            } else {
                measured.get(&phase).copied().unwrap_or(0)
            };
            let modeled_secs = if phase == IDLE_FRAME {
                idle_secs
            } else {
                self_secs.get(phase.as_str()).copied().unwrap_or(0.0)
            };
            let measured_frac = if total_samples > 0 {
                samples as f64 / total_samples as f64
            } else {
                0.0
            };
            let modeled_frac = if total_virtual > 0.0 {
                modeled_secs / total_virtual
            } else {
                0.0
            };
            SkewRow {
                in_trace: phase == IDLE_FRAME || traced.contains(phase.as_str()),
                measured_self_frac: measured_frac,
                modeled_self_frac: modeled_frac,
                measured_samples: samples,
                modeled_self_seconds: modeled_secs,
                skew_points: (measured_frac - modeled_frac) * 100.0,
                phase,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.modeled_self_frac
            .partial_cmp(&a.modeled_self_frac)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.phase.cmp(&b.phase))
    });

    Ok(SkewReport {
        rows,
        total_virtual_seconds: total_virtual,
        total_samples,
        traced_phases: traced.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_mps::trace::Event;

    fn machine() -> MachineProfile {
        MachineProfile {
            name: "test",
            flops_per_sec: 1.0e6,
            latency_s: 1.0e-3,
            bytes_per_sec: 1.0e6,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
        }
    }

    #[test]
    fn interner_merges_equal_names_and_overflows_gracefully() {
        let i = Interner::new();
        let a = i.intern("step");
        let b = i.intern("step");
        let c = i.intern("physics");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.resolve(a), "step");
        assert_eq!(i.resolve(0), OVERFLOW_FRAME);
    }

    #[test]
    fn slot_snapshot_sees_pushed_stack() {
        let slot = PhaseSlot::new();
        slot.reset(true);
        slot.push(1);
        slot.push(2);
        let mut out = Vec::new();
        assert!(matches!(slot.snapshot(&mut out), SnapshotOutcome::Sampled));
        assert_eq!(out, vec![1, 2]);
        slot.pop();
        assert!(matches!(slot.snapshot(&mut out), SnapshotOutcome::Sampled));
        assert_eq!(out, vec![1]);
        slot.reset(false);
        assert!(matches!(slot.snapshot(&mut out), SnapshotOutcome::Dead));
    }

    #[test]
    fn deep_stacks_truncate_but_stay_balanced() {
        let slot = PhaseSlot::new();
        slot.reset(true);
        for i in 0..(MAX_DEPTH as u32 + 4) {
            slot.push(i + 1);
        }
        assert_eq!(slot.truncated.load(Ordering::Relaxed), 4);
        for _ in 0..(MAX_DEPTH + 4) {
            slot.pop();
        }
        let mut out = Vec::new();
        assert!(matches!(slot.snapshot(&mut out), SnapshotOutcome::Sampled));
        assert!(out.is_empty());
    }

    #[test]
    fn profiler_samples_a_busy_observer() {
        let profiler = Profiler::start(ProfileConfig {
            hz: 4000.0,
            max_ranks: 4,
        });
        let obs = profiler.observer();
        obs.rank_started(0);
        obs.phase_begin(0, "step");
        obs.phase_begin(0, "dynamics");
        std::thread::sleep(Duration::from_millis(60));
        obs.phase_end(0, "dynamics");
        obs.phase_end(0, "step");
        obs.rank_finished(0);
        let report = profiler.stop();
        assert!(report.total_samples > 0, "sampler saw nothing");
        assert!(report.conservation_ok());
        let folded = report.folded();
        assert!(
            folded.contains("step;dynamics"),
            "expected nested stack in:\n{folded}"
        );
        let table = report.phase_table();
        let dyn_row = table.iter().find(|p| p.name == "dynamics").unwrap();
        let step_row = table.iter().find(|p| p.name == "step").unwrap();
        assert!(dyn_row.self_samples > 0);
        assert!(step_row.total_samples >= dyn_row.total_samples);
    }

    #[test]
    fn finished_ranks_are_not_sampled() {
        let profiler = Profiler::start(ProfileConfig {
            hz: 4000.0,
            max_ranks: 2,
        });
        let obs = profiler.observer();
        obs.rank_started(0);
        obs.rank_finished(0);
        std::thread::sleep(Duration::from_millis(30));
        let report = profiler.stop();
        assert_eq!(report.total_samples, 0, "dead slot was sampled");
    }

    #[test]
    fn out_of_range_ranks_are_counted_not_crashed() {
        let profiler = Profiler::start(ProfileConfig {
            hz: 100.0,
            max_ranks: 1,
        });
        let obs = profiler.observer();
        obs.phase_begin(7, "step");
        obs.phase_end(7, "step");
        let report = profiler.stop();
        assert!(report.dropped_ranks >= 2);
    }

    #[test]
    fn skew_report_joins_every_traced_phase() {
        // Build a tiny trace: step > {dynamics, physics}.
        let trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("step"),
            Event::PhaseBegin("dynamics"),
            Event::Flops(3.0e6),
            Event::PhaseEnd("dynamics"),
            Event::PhaseBegin("physics"),
            Event::Flops(1.0e6),
            Event::PhaseEnd("physics"),
            Event::PhaseEnd("step"),
        ]]);
        let report = ProfileReport {
            hz: 1000.0,
            wall_seconds: 0.1,
            ticks: 80,
            total_samples: 80,
            idle_samples: 0,
            stacks: vec![
                FoldedStack {
                    frames: vec!["step".into(), "dynamics".into()],
                    samples: 60,
                },
                FoldedStack {
                    frames: vec!["step".into(), "physics".into()],
                    samples: 20,
                },
            ],
            ..ProfileReport::default()
        };
        let skew = skew_report(&report, &trace, &machine()).unwrap();
        assert_eq!(skew.traced_phases, 3);
        assert!(skew.join_complete());
        assert!(skew.sampled_phases_in_trace());
        let dynamics = skew.rows.iter().find(|r| r.phase == "dynamics").unwrap();
        // Modeled: 3 of 4 Mflop = 75% self; measured: 60/80 = 75%.
        assert!((dynamics.modeled_self_frac - 0.75).abs() < 1e-9);
        assert!((dynamics.measured_self_frac - 0.75).abs() < 1e-9);
        assert!(dynamics.skew_points.abs() < 1e-9);
        // "step" self time is zero on both sides (all time is in children).
        let step = skew.rows.iter().find(|r| r.phase == "step").unwrap();
        assert!(step.modeled_self_frac.abs() < 1e-9);
        // Fractions sum to ~1 on both sides (idle row included).
        let m: f64 = skew.rows.iter().map(|r| r.measured_self_frac).sum();
        let v: f64 = skew.rows.iter().map(|r| r.modeled_self_frac).sum();
        assert!((m - 1.0).abs() < 1e-9, "measured sums to {m}");
        assert!((v - 1.0).abs() < 1e-9, "modeled sums to {v}");
    }

    #[test]
    fn skew_flags_phases_sampled_but_not_traced() {
        let trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("step"),
            Event::Flops(1.0e6),
            Event::PhaseEnd("step"),
        ]]);
        let report = ProfileReport {
            total_samples: 10,
            stacks: vec![FoldedStack {
                frames: vec!["rogue".into()],
                samples: 10,
            }],
            ..ProfileReport::default()
        };
        let skew = skew_report(&report, &trace, &machine()).unwrap();
        assert!(!skew.sampled_phases_in_trace());
        assert!(skew.join_complete());
    }

    #[test]
    fn report_json_roundtrips_counts() {
        let report = ProfileReport {
            hz: 997.0,
            total_samples: 5,
            stacks: vec![FoldedStack {
                frames: vec!["step".into()],
                samples: 5,
            }],
            ..ProfileReport::default()
        };
        let v = report.to_json();
        assert_eq!(v.get("total_samples").and_then(Value::as_f64), Some(5.0));
        let back = Value::parse(&v.to_string()).expect("report JSON parses");
        assert_eq!(back.get("hz").and_then(Value::as_f64), Some(997.0));
    }
}
