//! Critical-path extraction through the rank×phase span graph.
//!
//! The critical path is the chain of activity that determines the run's
//! makespan: start from the slowest rank's last event and walk backwards
//! through intra-rank program order, jumping along a message edge to the
//! sender whenever a receive was bound by its matching send's arrival
//! (i.e. the receiver was *waiting* — the time was really spent on the
//! sender, plus the wire). Because events on one rank are contiguous and
//! an arrival-bound receive ends exactly at the arrival, the resulting
//! segments tile `[0, makespan]` with no gaps or overlaps: the path length
//! equals the makespan to floating-point summation error (a property test
//! pins this to 1e-9), and shortening anything *off* the path cannot speed
//! the run up.
//!
//! Each segment carries the rank it ran on and the innermost phase open
//! there, so the makespan decomposes into per-phase / per-rank attribution
//! — "which phase, on which ranks, actually gates the run".

use crate::analysis::{innermost_phases, MessageFlow};
use crate::json::Value;
use agcm_costmodel::replay::EventSchedule;
use agcm_mps::trace::{Event, WorldTrace};
use std::collections::HashMap;

/// What a critical-path segment was doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Local floating-point work.
    Compute,
    /// Sender-side message occupancy.
    Send,
    /// Receiver-side overhead of a receive that did not wait.
    Recv,
    /// Wire time of a message edge the path crossed (attributed to the
    /// sending rank).
    Transfer,
}

impl SegmentKind {
    /// Short label for reports and trace viewers.
    pub fn label(&self) -> &'static str {
        match self {
            SegmentKind::Compute => "compute",
            SegmentKind::Send => "send",
            SegmentKind::Recv => "recv",
            SegmentKind::Transfer => "transfer",
        }
    }
}

/// One contiguous stretch of the critical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalSegment {
    /// Rank the time is attributed to.
    pub rank: usize,
    /// Activity kind.
    pub kind: SegmentKind,
    /// Innermost phase open on that rank (`None` outside any phase).
    pub phase: Option<&'static str>,
    /// Virtual start (s).
    pub start: f64,
    /// Virtual end (s).
    pub end: f64,
}

impl CriticalSegment {
    /// `end − start`.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The extracted critical path.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Segments in increasing time order, tiling `[0, makespan]`.
    pub segments: Vec<CriticalSegment>,
    /// The run's makespan (slowest rank's finish time).
    pub makespan: f64,
}

impl CriticalPath {
    /// Walk the path backwards from the slowest rank's last event.
    ///
    /// `flows` must come from `sched` (see
    /// [`message_flows`](crate::analysis::message_flows)); the flow map is
    /// how an arrival-bound receive finds its matching send.
    pub fn extract(
        trace: &WorldTrace,
        sched: &EventSchedule,
        flows: &[MessageFlow],
    ) -> CriticalPath {
        let makespan = sched.makespan();
        let mut path = CriticalPath {
            segments: Vec::new(),
            makespan,
        };
        let Some((mut rank, _)) = sched
            .finish_times
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
        else {
            return path;
        };
        let phases = innermost_phases(trace);
        // (dst rank, recv event index) → flow.
        let by_recv: HashMap<(usize, usize), &MessageFlow> = flows
            .iter()
            .map(|f| ((f.pair.dst, f.pair.recv_event), f))
            .collect();

        let mut next: isize = trace.ranks[rank].len() as isize - 1;
        while next >= 0 {
            let i = next as usize;
            let t = sched.times[rank][i];
            let phase = phases[rank][i];
            let mut push = |kind: SegmentKind, rank: usize, phase, start: f64, end: f64| {
                if end > start {
                    path.segments.push(CriticalSegment {
                        rank,
                        kind,
                        phase,
                        start,
                        end,
                    });
                }
            };
            match trace.ranks[rank][i] {
                Event::Recv { .. } => {
                    let flow = by_recv.get(&(rank, i)).copied();
                    match flow {
                        // Arrival-bound receive: the time belongs to the
                        // sender. Cross the message edge — wire time is a
                        // transfer segment charged to the sender — and
                        // continue backwards from the send event.
                        Some(f) if f.wait > 0.0 => {
                            let sender_phase = phases[f.pair.src][f.pair.send_event];
                            push(
                                SegmentKind::Transfer,
                                f.pair.src,
                                sender_phase,
                                f.send_end,
                                f.arrival,
                            );
                            rank = f.pair.src;
                            next = f.pair.send_event as isize;
                            continue;
                        }
                        // Overhead-bound: plain local activity.
                        _ => push(SegmentKind::Recv, rank, phase, t.start, t.end),
                    }
                }
                Event::Send { .. } => push(SegmentKind::Send, rank, phase, t.start, t.end),
                Event::Flops(_) => push(SegmentKind::Compute, rank, phase, t.start, t.end),
                // Phase markers are instantaneous.
                Event::PhaseBegin(_) | Event::PhaseEnd(_) => {}
            }
            next -= 1;
        }
        path.segments.reverse();
        path
    }

    /// Total path length — equals the makespan (to summation error).
    pub fn length(&self) -> f64 {
        self.segments.iter().map(|s| s.duration()).sum()
    }

    /// Makespan attributed per phase, sorted by name; time outside any
    /// phase is keyed `""`.
    pub fn by_phase(&self) -> Vec<(&'static str, f64)> {
        let mut acc: Vec<(&'static str, f64)> = Vec::new();
        for s in &self.segments {
            let name = s.phase.unwrap_or("");
            match acc.iter_mut().find(|(n, _)| *n == name) {
                Some((_, t)) => *t += s.duration(),
                None => acc.push((name, s.duration())),
            }
        }
        acc.sort_by_key(|(n, _)| *n);
        acc
    }

    /// Makespan attributed per rank (`ranks` sizes the output so ranks
    /// that never appear on the path still get a 0 entry).
    pub fn by_rank(&self, ranks: usize) -> Vec<f64> {
        let mut acc = vec![0.0; ranks];
        for s in &self.segments {
            acc[s.rank] += s.duration();
        }
        acc
    }

    /// JSON form: makespan, length, attribution, and the segments.
    pub fn to_json(&self) -> Value {
        let segments: Vec<Value> = self
            .segments
            .iter()
            .map(|s| {
                Value::obj(vec![
                    ("rank", Value::Num(s.rank as f64)),
                    ("kind", Value::Str(s.kind.label().into())),
                    (
                        "phase",
                        match s.phase {
                            Some(p) => Value::Str(p.into()),
                            None => Value::Null,
                        },
                    ),
                    ("start", Value::Num(s.start)),
                    ("end", Value::Num(s.end)),
                ])
            })
            .collect();
        Value::obj(vec![
            ("makespan", Value::Num(self.makespan)),
            ("length", Value::Num(self.length())),
            (
                "by_phase",
                Value::Obj(
                    self.by_phase()
                        .into_iter()
                        .map(|(n, t)| (n.to_string(), Value::Num(t)))
                        .collect(),
                ),
            ),
            ("segments", Value::Arr(segments)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::message_flows;
    use agcm_costmodel::machine::MachineProfile;
    use agcm_costmodel::replay::schedule;

    fn machine() -> MachineProfile {
        MachineProfile {
            name: "test",
            flops_per_sec: 1.0e6,
            latency_s: 1.0e-3,
            bytes_per_sec: 1.0e6,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
        }
    }

    fn extract(trace: &WorldTrace) -> CriticalPath {
        let m = machine();
        let sched = schedule(trace, &m);
        let flows = message_flows(trace, &sched, &m);
        CriticalPath::extract(trace, &sched, &flows)
    }

    #[test]
    fn single_rank_path_is_its_event_stream() {
        let trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("dynamics"),
            Event::Flops(2.0e6),
            Event::PhaseEnd("dynamics"),
            Event::PhaseBegin("physics"),
            Event::Flops(1.0e6),
            Event::PhaseEnd("physics"),
        ]]);
        let cp = extract(&trace);
        assert_eq!(cp.segments.len(), 2);
        assert!((cp.length() - 3.0).abs() < 1e-12);
        assert_eq!(cp.makespan, 3.0);
        let by_phase = cp.by_phase();
        assert_eq!(by_phase, vec![("dynamics", 2.0), ("physics", 1.0)]);
        assert_eq!(cp.by_rank(1), vec![3.0]);
    }

    #[test]
    fn path_crosses_message_edges_to_the_late_sender() {
        // Rank 0 computes 3 s then sends to rank 1, which waited from 0.
        // The critical path must be: rank 0 compute, rank 0 send, wire
        // transfer, then rank 1's post-receive compute.
        let trace = WorldTrace::from_ranks(vec![
            vec![
                Event::PhaseBegin("produce"),
                Event::Flops(3.0e6),
                Event::Send {
                    to: 1,
                    bytes: 1_000_000,
                    seq: 0,
                },
                Event::PhaseEnd("produce"),
            ],
            vec![
                Event::PhaseBegin("consume"),
                Event::Recv {
                    from: 0,
                    bytes: 1_000_000,
                    seq: 0,
                },
                Event::Flops(2.0e6),
                Event::PhaseEnd("consume"),
            ],
        ]);
        let cp = extract(&trace);
        let kinds: Vec<SegmentKind> = cp.segments.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SegmentKind::Compute,
                SegmentKind::Send,
                SegmentKind::Transfer,
                SegmentKind::Compute,
            ]
        );
        let ranks: Vec<usize> = cp.segments.iter().map(|s| s.rank).collect();
        assert_eq!(ranks, vec![0, 0, 0, 1]);
        // 3 compute + 1 send + 0.001 wire + 2 compute = makespan.
        assert!((cp.length() - cp.makespan).abs() < 1e-9);
        assert!((cp.makespan - 6.001).abs() < 1e-12);
        // Segments tile time contiguously.
        for w in cp.segments.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-12);
        }
        assert_eq!(cp.segments[0].start, 0.0);
        // Attribution: transfer is charged to the sender inside "produce".
        assert_eq!(cp.segments[2].phase, Some("produce"));
        let by_rank = cp.by_rank(2);
        assert!((by_rank[0] - 4.001).abs() < 1e-12);
        assert!((by_rank[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn early_sender_stays_off_the_path() {
        // The message is ready long before the receive: no jump.
        let trace = WorldTrace::from_ranks(vec![
            vec![Event::Send {
                to: 1,
                bytes: 8,
                seq: 0,
            }],
            vec![
                Event::Flops(5.0e6),
                Event::Recv {
                    from: 0,
                    bytes: 8,
                    seq: 0,
                },
            ],
        ]);
        let cp = extract(&trace);
        assert!(cp.segments.iter().all(|s| s.rank == 1));
        assert!(cp.segments.iter().all(|s| s.kind != SegmentKind::Transfer));
        assert!((cp.length() - cp.makespan).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_empty_path() {
        let cp = extract(&WorldTrace::default());
        assert!(cp.segments.is_empty());
        assert_eq!(cp.length(), 0.0);
        assert_eq!(cp.makespan, 0.0);
    }

    #[test]
    fn json_export_carries_attribution() {
        let trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("p"),
            Event::Flops(1.0e6),
            Event::PhaseEnd("p"),
        ]]);
        let doc = extract(&trace).to_json();
        assert_eq!(doc.get("makespan").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("length").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            doc.get("by_phase").unwrap().get("p").unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(doc.get("segments").unwrap().as_arr().unwrap().len(), 1);
    }
}
