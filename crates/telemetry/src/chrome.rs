//! Chrome trace-event export.
//!
//! Serializes a [`Timeline`] in the Chrome trace-event JSON format, which
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` load
//! directly. Layout:
//!
//! * **process 1 — "virtual (cost model)"**: one track (tid) per rank,
//!   spans positioned at cost-model virtual time. This is the paper's
//!   machine view: what the run looks like on a calibrated Paragon/T3D.
//! * **process 2 — "wall clock"**: the same spans at real wall time on
//!   the machine that recorded the trace, present when the trace carries
//!   wall stamps.
//!
//! All spans are "complete" events (`ph:"X"`) with microsecond `ts`/`dur`,
//! plus `M`-phase metadata records naming processes and threads.

use crate::json::Value;
use crate::timeline::Timeline;
use std::io;
use std::path::Path;

/// Process id of the virtual (cost-model) timeline.
pub const VIRTUAL_PID: usize = 1;
/// Process id of the wall-clock timeline.
pub const WALL_PID: usize = 2;

fn metadata(name: &str, pid: usize, tid: usize, value: &str) -> Value {
    Value::obj(vec![
        ("name", Value::Str(name.into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::Num(pid as f64)),
        ("tid", Value::Num(tid as f64)),
        ("args", Value::obj(vec![("name", Value::Str(value.into()))])),
    ])
}

fn complete(name: &str, pid: usize, tid: usize, ts_us: f64, dur_us: f64) -> Value {
    Value::obj(vec![
        ("name", Value::Str(name.into())),
        ("cat", Value::Str("phase".into())),
        ("ph", Value::Str("X".into())),
        ("ts", Value::Num(ts_us)),
        ("dur", Value::Num(dur_us)),
        ("pid", Value::Num(pid as f64)),
        ("tid", Value::Num(tid as f64)),
    ])
}

/// Build the trace document: `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
pub fn to_chrome_json(timeline: &Timeline) -> Value {
    let n_ranks = timeline.finish_times.len();
    let has_walls = timeline
        .spans
        .iter()
        .any(|s| s.wall_start.is_some() && s.wall_end.is_some());

    let mut events = Vec::new();
    events.push(metadata(
        "process_name",
        VIRTUAL_PID,
        0,
        "virtual (cost model)",
    ));
    for rank in 0..n_ranks {
        events.push(metadata(
            "thread_name",
            VIRTUAL_PID,
            rank,
            &format!("rank {rank}"),
        ));
    }
    if has_walls {
        events.push(metadata("process_name", WALL_PID, 0, "wall clock"));
        for rank in 0..n_ranks {
            events.push(metadata(
                "thread_name",
                WALL_PID,
                rank,
                &format!("rank {rank}"),
            ));
        }
    }

    for span in &timeline.spans {
        events.push(complete(
            span.name,
            VIRTUAL_PID,
            span.rank,
            span.virt_start * 1.0e6,
            span.virt_duration() * 1.0e6,
        ));
        if let (Some(w0), Some(w1)) = (span.wall_start, span.wall_end) {
            events.push(complete(
                span.name,
                WALL_PID,
                span.rank,
                w0 * 1.0e6,
                (w1 - w0) * 1.0e6,
            ));
        }
    }

    Value::obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
}

/// Write the trace document to `path` (e.g. `trace.json`).
pub fn write_chrome_trace(path: impl AsRef<Path>, timeline: &Timeline) -> io::Result<()> {
    std::fs::write(path, to_chrome_json(timeline).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_costmodel::machine::MachineProfile;
    use agcm_mps::trace::{Event, WorldTrace};

    fn machine() -> MachineProfile {
        MachineProfile {
            name: "test",
            flops_per_sec: 1.0e6,
            latency_s: 1.0e-3,
            bytes_per_sec: 1.0e6,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
        }
    }

    #[test]
    fn exports_one_track_per_rank() {
        let trace = WorldTrace::from_ranks(vec![
            vec![
                Event::PhaseBegin("dynamics"),
                Event::Flops(1.0e6),
                Event::PhaseEnd("dynamics"),
            ],
            vec![
                Event::PhaseBegin("dynamics"),
                Event::Flops(2.0e6),
                Event::PhaseEnd("dynamics"),
            ],
        ]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let doc = to_chrome_json(&tl);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 2 thread_name + 2 complete events.
        assert_eq!(events.len(), 5);
        let spans: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        let tids: Vec<f64> = spans
            .iter()
            .map(|e| e.get("tid").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(tids, vec![0.0, 1.0]);
        // Rank 1's dynamics runs 2 virtual seconds = 2e6 µs.
        assert_eq!(spans[1].get("dur").unwrap().as_f64(), Some(2.0e6));
    }

    #[test]
    fn wall_track_appears_only_with_stamps() {
        let mut trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("step"),
            Event::PhaseEnd("step"),
        ]]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let doc = to_chrome_json(&tl);
        let text = doc.to_string();
        assert!(!text.contains("wall clock"));

        trace.walls = vec![vec![0.5, 1.0]];
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let doc = to_chrome_json(&tl);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let wall_spans: Vec<&Value> = events
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() == Some("X")
                    && e.get("pid").unwrap().as_f64() == Some(WALL_PID as f64)
            })
            .collect();
        assert_eq!(wall_spans.len(), 1);
        assert_eq!(wall_spans[0].get("ts").unwrap().as_f64(), Some(0.5e6));
        assert_eq!(wall_spans[0].get("dur").unwrap().as_f64(), Some(0.5e6));
    }
}
