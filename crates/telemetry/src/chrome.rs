//! Chrome trace-event export.
//!
//! Serializes a [`Timeline`] in the Chrome trace-event JSON format, which
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` load
//! directly. Layout:
//!
//! * **process 1 — "virtual (cost model)"**: one track (tid) per rank,
//!   spans positioned at cost-model virtual time. This is the paper's
//!   machine view: what the run looks like on a calibrated Paragon/T3D.
//! * **process 2 — "wall clock"**: the same spans at real wall time on
//!   the machine that recorded the trace, present when the trace carries
//!   wall stamps.
//!
//! All spans are "complete" events (`ph:"X"`) with microsecond `ts`/`dur`,
//! plus `M`-phase metadata records naming processes and threads.
//!
//! The *analyzed* export ([`to_chrome_json_analyzed`]) additionally emits:
//!
//! * **flow events** (`ph:"s"`/`ph:"f"` — Perfetto draws arrows) from
//!   every matched send to its receive on the virtual tracks;
//! * **counter tracks** (`ph:"C"`): global bytes-in-flight, and a per-rank
//!   0/1 load counter that drops during late-sender waits;
//! * **process 3 — "critical path"**: one track rendering the extracted
//!   critical path, each segment named by its phase and kind.

use crate::analysis::TraceAnalysis;
use crate::json::Value;
use crate::timeline::Timeline;
use std::io;
use std::path::Path;

/// Process id of the virtual (cost-model) timeline.
pub const VIRTUAL_PID: usize = 1;
/// Process id of the wall-clock timeline.
pub const WALL_PID: usize = 2;
/// Process id of the critical-path track.
pub const CRITICAL_PID: usize = 3;

fn metadata(name: &str, pid: usize, tid: usize, value: &str) -> Value {
    Value::obj(vec![
        ("name", Value::Str(name.into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::Num(pid as f64)),
        ("tid", Value::Num(tid as f64)),
        ("args", Value::obj(vec![("name", Value::Str(value.into()))])),
    ])
}

fn complete(name: &str, pid: usize, tid: usize, ts_us: f64, dur_us: f64) -> Value {
    Value::obj(vec![
        ("name", Value::Str(name.into())),
        ("cat", Value::Str("phase".into())),
        ("ph", Value::Str("X".into())),
        ("ts", Value::Num(ts_us)),
        ("dur", Value::Num(dur_us)),
        ("pid", Value::Num(pid as f64)),
        ("tid", Value::Num(tid as f64)),
    ])
}

fn flow(ph: &str, id: usize, tid: usize, ts_us: f64, args: Vec<(&str, Value)>) -> Value {
    let mut pairs = vec![
        ("name", Value::Str("msg".into())),
        ("cat", Value::Str("msg".into())),
        ("ph", Value::Str(ph.into())),
        ("id", Value::Num(id as f64)),
        ("ts", Value::Num(ts_us)),
        ("pid", Value::Num(VIRTUAL_PID as f64)),
        ("tid", Value::Num(tid as f64)),
    ];
    if ph == "f" {
        // Bind to the enclosing slice so the arrow head lands on the span.
        pairs.push(("bp", Value::Str("e".into())));
    }
    if !args.is_empty() {
        pairs.push(("args", Value::obj(args)));
    }
    Value::obj(pairs)
}

fn counter(name: &str, tid: usize, ts_us: f64, key: &str, value: f64) -> Value {
    Value::obj(vec![
        ("name", Value::Str(name.into())),
        ("ph", Value::Str("C".into())),
        ("ts", Value::Num(ts_us)),
        ("pid", Value::Num(VIRTUAL_PID as f64)),
        ("tid", Value::Num(tid as f64)),
        ("args", Value::obj(vec![(key, Value::Num(value))])),
    ])
}

/// The span and metadata events shared by both exports.
fn base_events(timeline: &Timeline) -> Vec<Value> {
    let n_ranks = timeline.finish_times.len();
    let has_walls = timeline
        .spans
        .iter()
        .any(|s| s.wall_start.is_some() && s.wall_end.is_some());

    let mut events = Vec::new();
    events.push(metadata(
        "process_name",
        VIRTUAL_PID,
        0,
        "virtual (cost model)",
    ));
    for rank in 0..n_ranks {
        events.push(metadata(
            "thread_name",
            VIRTUAL_PID,
            rank,
            &format!("rank {rank}"),
        ));
    }
    if has_walls {
        events.push(metadata("process_name", WALL_PID, 0, "wall clock"));
        for rank in 0..n_ranks {
            events.push(metadata(
                "thread_name",
                WALL_PID,
                rank,
                &format!("rank {rank}"),
            ));
        }
    }

    for span in &timeline.spans {
        events.push(complete(
            span.name,
            VIRTUAL_PID,
            span.rank,
            span.virt_start * 1.0e6,
            span.virt_duration() * 1.0e6,
        ));
        if let (Some(w0), Some(w1)) = (span.wall_start, span.wall_end) {
            events.push(complete(
                span.name,
                WALL_PID,
                span.rank,
                w0 * 1.0e6,
                (w1 - w0) * 1.0e6,
            ));
        }
    }
    events
}

fn wrap(events: Vec<Value>) -> Value {
    Value::obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
}

/// Build the trace document: `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
pub fn to_chrome_json(timeline: &Timeline) -> Value {
    wrap(base_events(timeline))
}

/// Build the *analyzed* trace document: the plain export plus flow arrows
/// for every matched message, bytes-in-flight and per-rank load counters,
/// and the critical path as its own process.
pub fn to_chrome_json_analyzed(analysis: &TraceAnalysis) -> Value {
    let mut events = base_events(&analysis.timeline);
    let n_ranks = analysis.timeline.finish_times.len();

    // Flow arrows: start at the send's completion on the sender's track,
    // finish at the receive's completion on the receiver's track.
    for (id, f) in analysis.flows.iter().enumerate() {
        events.push(flow(
            "s",
            id,
            f.pair.src,
            f.send_end * 1.0e6,
            vec![
                ("bytes", Value::Num(f.pair.bytes as f64)),
                ("seq", Value::Num(f.pair.seq as f64)),
                ("wait_us", Value::Num(f.wait * 1.0e6)),
            ],
        ));
        events.push(flow("f", id, f.pair.dst, f.recv_end * 1.0e6, Vec::new()));
    }

    // Bytes-in-flight counter: +bytes when a message leaves the sender,
    // −bytes when its receive completes.
    let mut changes: Vec<(f64, f64)> = Vec::with_capacity(2 * analysis.flows.len());
    for f in &analysis.flows {
        changes.push((f.send_end, f.pair.bytes as f64));
        changes.push((f.recv_end, -(f.pair.bytes as f64)));
    }
    changes.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut in_flight = 0.0;
    for (ts, delta) in changes {
        in_flight += delta;
        events.push(counter(
            "bytes in flight",
            0,
            ts * 1.0e6,
            "bytes",
            in_flight,
        ));
    }

    // Per-rank load counters: 1 while busy, 0 during late-sender waits and
    // after the rank finishes.
    let mut idle_intervals: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_ranks];
    for f in &analysis.flows {
        if f.wait > 0.0 {
            idle_intervals[f.pair.dst].push((f.recv_end - f.wait, f.recv_end));
        }
    }
    for (rank, intervals) in idle_intervals.iter_mut().enumerate() {
        if analysis.schedule.times[rank].is_empty() {
            continue;
        }
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let name = format!("rank {rank} load");
        events.push(counter(&name, rank, 0.0, "busy", 1.0));
        for &(from, to) in intervals.iter() {
            events.push(counter(&name, rank, from * 1.0e6, "busy", 0.0));
            events.push(counter(&name, rank, to * 1.0e6, "busy", 1.0));
        }
        events.push(counter(
            &name,
            rank,
            analysis.schedule.finish_times[rank] * 1.0e6,
            "busy",
            0.0,
        ));
    }

    // The critical path as its own process, one span per segment.
    events.push(metadata("process_name", CRITICAL_PID, 0, "critical path"));
    events.push(metadata("thread_name", CRITICAL_PID, 0, "path"));
    for seg in &analysis.critical.segments {
        let name = match seg.phase {
            Some(p) => format!("{p} [{}] r{}", seg.kind.label(), seg.rank),
            None => format!("[{}] r{}", seg.kind.label(), seg.rank),
        };
        events.push(complete(
            &name,
            CRITICAL_PID,
            0,
            seg.start * 1.0e6,
            seg.duration() * 1.0e6,
        ));
    }

    wrap(events)
}

/// Write the trace document to `path` (e.g. `trace.json`).
pub fn write_chrome_trace(path: impl AsRef<Path>, timeline: &Timeline) -> io::Result<()> {
    std::fs::write(path, to_chrome_json(timeline).to_string())
}

/// Write the analyzed trace document (flow arrows, counters, critical
/// path) to `path`.
pub fn write_chrome_trace_analyzed(
    path: impl AsRef<Path>,
    analysis: &TraceAnalysis,
) -> io::Result<()> {
    std::fs::write(path, to_chrome_json_analyzed(analysis).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_costmodel::machine::MachineProfile;
    use agcm_mps::trace::{Event, WorldTrace};

    fn machine() -> MachineProfile {
        MachineProfile {
            name: "test",
            flops_per_sec: 1.0e6,
            latency_s: 1.0e-3,
            bytes_per_sec: 1.0e6,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
        }
    }

    #[test]
    fn exports_one_track_per_rank() {
        let trace = WorldTrace::from_ranks(vec![
            vec![
                Event::PhaseBegin("dynamics"),
                Event::Flops(1.0e6),
                Event::PhaseEnd("dynamics"),
            ],
            vec![
                Event::PhaseBegin("dynamics"),
                Event::Flops(2.0e6),
                Event::PhaseEnd("dynamics"),
            ],
        ]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let doc = to_chrome_json(&tl);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 2 thread_name + 2 complete events.
        assert_eq!(events.len(), 5);
        let spans: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        let tids: Vec<f64> = spans
            .iter()
            .map(|e| e.get("tid").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(tids, vec![0.0, 1.0]);
        // Rank 1's dynamics runs 2 virtual seconds = 2e6 µs.
        assert_eq!(spans[1].get("dur").unwrap().as_f64(), Some(2.0e6));
    }

    #[test]
    fn analyzed_export_adds_flows_counters_and_critical_track() {
        let trace = WorldTrace::from_ranks(vec![
            vec![
                Event::PhaseBegin("produce"),
                Event::Flops(2.0e6),
                Event::Send {
                    to: 1,
                    bytes: 1000,
                    seq: 0,
                },
                Event::PhaseEnd("produce"),
            ],
            vec![
                Event::PhaseBegin("consume"),
                Event::Recv {
                    from: 0,
                    bytes: 1000,
                    seq: 0,
                },
                Event::PhaseEnd("consume"),
            ],
        ]);
        let analysis = crate::analysis::analyze(&trace, &machine()).unwrap();
        let doc = to_chrome_json_analyzed(&analysis);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

        let phs = |ph: &str| -> Vec<&Value> {
            events
                .iter()
                .filter(|e| e.get("ph").unwrap().as_str() == Some(ph))
                .collect()
        };
        // One matched message → one s/f flow pair, same id, src/dst tids.
        let starts = phs("s");
        let finishes = phs("f");
        assert_eq!(starts.len(), 1);
        assert_eq!(finishes.len(), 1);
        assert_eq!(
            starts[0].get("id").unwrap().as_f64(),
            finishes[0].get("id").unwrap().as_f64()
        );
        assert_eq!(starts[0].get("tid").unwrap().as_f64(), Some(0.0));
        assert_eq!(finishes[0].get("tid").unwrap().as_f64(), Some(1.0));
        assert_eq!(finishes[0].get("bp").unwrap().as_str(), Some("e"));

        // Counters: 2 bytes-in-flight changes + per-rank load edges
        // (rank 0: on/off; rank 1: on, wait-off/on, off).
        let counters = phs("C");
        let in_flight: Vec<&&Value> = counters
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("bytes in flight"))
            .collect();
        assert_eq!(in_flight.len(), 2);
        assert_eq!(
            in_flight[0]
                .get("args")
                .unwrap()
                .get("bytes")
                .unwrap()
                .as_f64(),
            Some(1000.0)
        );
        assert_eq!(
            in_flight[1]
                .get("args")
                .unwrap()
                .get("bytes")
                .unwrap()
                .as_f64(),
            Some(0.0)
        );
        assert!(counters
            .iter()
            .any(|e| e.get("name").unwrap().as_str() == Some("rank 1 load")));

        // Critical-path process exists and its spans cover the makespan.
        let critical_spans: Vec<&Value> = events
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() == Some("X")
                    && e.get("pid").unwrap().as_f64() == Some(CRITICAL_PID as f64)
            })
            .collect();
        assert!(!critical_spans.is_empty());
        let total_us: f64 = critical_spans
            .iter()
            .map(|e| e.get("dur").unwrap().as_f64().unwrap())
            .sum();
        assert!((total_us - analysis.waits.makespan * 1.0e6).abs() < 1e-3);
    }

    #[test]
    fn analyzed_export_preserves_plain_events() {
        let trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("step"),
            Event::Flops(1.0e6),
            Event::PhaseEnd("step"),
        ]]);
        let analysis = crate::analysis::analyze(&trace, &machine()).unwrap();
        let plain = to_chrome_json(&analysis.timeline);
        let analyzed = to_chrome_json_analyzed(&analysis);
        let plain_events = plain.get("traceEvents").unwrap().as_arr().unwrap();
        let analyzed_events = analyzed.get("traceEvents").unwrap().as_arr().unwrap();
        // The analyzed document starts with exactly the plain events.
        assert!(analyzed_events.len() > plain_events.len());
        for (a, b) in plain_events.iter().zip(analyzed_events) {
            assert_eq!(a.to_string(), b.to_string());
        }
    }

    #[test]
    fn wall_track_appears_only_with_stamps() {
        let mut trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("step"),
            Event::PhaseEnd("step"),
        ]]);
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let doc = to_chrome_json(&tl);
        let text = doc.to_string();
        assert!(!text.contains("wall clock"));

        trace.walls = vec![vec![0.5, 1.0]];
        let tl = Timeline::from_trace(&trace, &machine()).unwrap();
        let doc = to_chrome_json(&tl);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let wall_spans: Vec<&Value> = events
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() == Some("X")
                    && e.get("pid").unwrap().as_f64() == Some(WALL_PID as f64)
            })
            .collect();
        assert_eq!(wall_spans.len(), 1);
        assert_eq!(wall_spans[0].get("ts").unwrap().as_f64(), Some(0.5e6));
        assert_eq!(wall_spans[0].get("dur").unwrap().as_f64(), Some(0.5e6));
    }
}
