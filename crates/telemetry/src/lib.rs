//! # agcm-telemetry — unified observability for the AGCM reproduction
//!
//! The paper (Lou & Farrara, SC'96, §3.4) is built on measurement: per-
//! processor timings of each model component, message counts, and the
//! load-imbalance metric `(MaxLoad − AvgLoad) / AvgLoad`. This crate turns
//! the traces the substrate already records into first-class observability:
//!
//! * [`metrics`] — process-wide counters, gauges and log-bucketed
//!   histograms, lock-free and allocation-free to update;
//! * [`timeline`] — per-rank span timelines from `PhaseBegin`/`PhaseEnd`
//!   events, with cost-model *virtual* timestamps and (when recorded)
//!   wall-clock timestamps;
//! * [`chrome`] — export of those timelines as Chrome trace-event JSON,
//!   loadable in Perfetto (one track per rank), with flow arrows for every
//!   matched message, counter tracks, and a critical-path track when
//!   exported from a [`TraceAnalysis`];
//! * [`analysis`] — trace analysis proper: matched message flows, wait-state
//!   detection (late-sender / buffered time per rank and per phase), and the
//!   [`analyze`] one-call bundle;
//! * [`commmatrix`] — per src→dst communication matrices with phase slicing;
//! * [`critical`] — critical-path extraction through the rank×event span
//!   graph (program order + message edges);
//! * [`run`] — structured per-step and per-run metrics
//!   ([`run::StepMetrics`] / [`run::RunSummary`]) serialized as JSON lines;
//! * [`sink`] — the [`TelemetrySink`] trait with null, in-memory and file
//!   implementations. The default is the null sink, and every instrumented
//!   call site gates on [`TelemetrySink::enabled`], so a model run with
//!   telemetry off pays a single atomic load and **zero allocations**;
//! * [`tracectx`] — dependency-free span contexts ([`TraceContext`]): one
//!   128-bit trace id per request, deterministic child span ids per
//!   attempt, hex round-trip for journaling;
//! * [`live`] — the [`LiveCollector`] streaming aggregator: per-job live
//!   views (attempts, last checkpoint, phase breakdown so far) and
//!   windowed per-phase/per-tenant rollups, folded incrementally from
//!   sink events rather than post-hoc replay;
//! * [`prom`] — Prometheus text exposition of a [`MetricsSnapshot`], plus
//!   a strict validator for smoke checks;
//! * [`profile`] — an in-process wall-clock sampling profiler: rank
//!   threads publish their phase stack through lock-free slots, a sampler
//!   folds stacks at a configurable Hz, and a [`SkewReport`] joins the
//!   measured fractions against the cost model's virtual fractions;
//! * [`flamegraph`] — a dependency-free SVG flamegraph writer for the
//!   profiler's folded stacks.
//!
//! ## The global handle
//!
//! The model crates are instrumented against a process-global [`Telemetry`]
//! handle: [`telemetry()`] returns it (null-sinked by default), and
//! [`install`] points it at a real sink plus the [`MachineProfile`] used to
//! derive virtual time. [`Telemetry::observe_trace`] is the single entry
//! point the model calls at end of run.

pub mod analysis;
pub mod chrome;
pub mod commmatrix;
pub mod critical;
pub mod flamegraph;
pub mod json;
pub mod live;
pub mod metrics;
pub mod profile;
pub mod prom;
pub mod run;
pub mod sink;
pub mod timeline;
pub mod tracectx;

pub use analysis::{analyze, MessageFlow, RankWait, TraceAnalysis, WaitReport};
pub use commmatrix::{CommCell, CommMatrix};
pub use critical::{CriticalPath, CriticalSegment, SegmentKind};
pub use live::{JobSink, LiveCollector};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use profile::{
    skew_report, FoldedStack, PhaseStat, ProfileConfig, ProfileReport, Profiler, SkewReport,
    SkewRow,
};
pub use run::{ResilienceCounters, RunMetrics, RunSummary, StepMetrics};
pub use sink::{FileSink, MemorySink, NullSink, TelemetrySink};
pub use timeline::{Span, Timeline};
pub use tracectx::TraceContext;

use agcm_costmodel::machine::MachineProfile;
use agcm_mps::trace::WorldTrace;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// The process-global telemetry state.
pub struct Telemetry {
    sink: OnceLock<(Arc<dyn TelemetrySink>, MachineProfile)>,
    installed: AtomicBool,
}

static GLOBAL: Telemetry = Telemetry {
    sink: OnceLock::new(),
    installed: AtomicBool::new(false),
};

static REGISTRY: MetricsRegistry = MetricsRegistry::new();

/// The global telemetry handle. Null-sinked until [`install`] is called.
pub fn telemetry() -> &'static Telemetry {
    &GLOBAL
}

/// The global metrics registry, always available.
pub fn registry() -> &'static MetricsRegistry {
    &REGISTRY
}

/// Install a sink and the machine profile used to derive virtual time.
/// Returns `false` if telemetry was already installed (first install wins —
/// the handle is read lock-free from rank threads).
pub fn install(sink: Arc<dyn TelemetrySink>, machine: MachineProfile) -> bool {
    let ok = GLOBAL.sink.set((sink, machine)).is_ok();
    if ok {
        // Publish only after the sink is readable.
        GLOBAL.installed.store(true, Ordering::Release);
    }
    ok
}

impl Telemetry {
    /// Whether an enabled sink is installed. One relaxed atomic load on the
    /// fast path — no allocation, no lock.
    pub fn enabled(&self) -> bool {
        self.installed.load(Ordering::Acquire) && self.sink.get().is_some_and(|(s, _)| s.enabled())
    }

    /// The installed machine profile, if any.
    pub fn machine(&self) -> Option<MachineProfile> {
        self.sink.get().map(|(_, m)| *m)
    }

    /// Derive [`RunMetrics`] from a finished run's trace and feed them to
    /// the sink (each step, then the run summary). With no sink installed
    /// (or a disabled one) this returns `None` immediately without
    /// computing or allocating anything.
    ///
    /// `resilience`, when present, is attached to the run summary.
    pub fn observe_trace(
        &self,
        trace: &WorldTrace,
        resilience: Option<ResilienceCounters>,
    ) -> Option<RunMetrics> {
        if !self.enabled() {
            return None;
        }
        let (sink, machine) = self.sink.get()?;
        let mut metrics = match RunMetrics::from_trace(trace, machine) {
            Ok(m) => m,
            // A malformed trace is the model's bug; telemetry reports
            // nothing rather than panicking the run.
            Err(_) => return None,
        };
        metrics.summary.resilience = resilience;
        for step in &metrics.steps {
            sink.record_step(step);
        }
        sink.record_run(&metrics.summary);
        Some(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_mps::trace::Event;

    #[test]
    fn uninstalled_global_is_disabled_and_observes_nothing() {
        // Note: install() in another test in this *same binary* could race
        // this, so unit tests here never install; integration tests own
        // their own process each.
        let trace = WorldTrace::from_ranks(vec![vec![
            Event::PhaseBegin("step"),
            Event::Flops(1.0),
            Event::PhaseEnd("step"),
        ]]);
        assert!(!telemetry().enabled());
        assert!(telemetry().observe_trace(&trace, None).is_none());
    }

    #[test]
    fn registry_is_shared() {
        registry().counter("lib.test").add(3);
        assert_eq!(registry().counter("lib.test").get(), 3);
    }
}
