//! Dependency-free SVG flamegraph writer.
//!
//! Takes the folded stacks a [`crate::profile::Profiler`] collects and
//! renders the classic flame-graph layout: x-extent proportional to
//! samples, one row per stack depth, children stacked above their parent.
//! The output is a single static SVG — no JavaScript, no external fonts,
//! no dependencies — with a `<title>` tooltip per frame so any browser
//! shows exact counts on hover.

use crate::profile::FoldedStack;

/// Canvas width in pixels.
const WIDTH: f64 = 1200.0;
/// Height of one frame row.
const ROW: f64 = 18.0;
/// Vertical padding above and below the frame rows.
const PAD: f64 = 28.0;
/// Approximate glyph width at font-size 11, for label truncation.
const GLYPH: f64 = 6.7;
/// Frames narrower than this get no label.
const MIN_LABEL_PX: f64 = 3.0 * GLYPH;

/// One node of the merged stack tree.
struct Node {
    name: String,
    value: u64,
    children: Vec<Node>,
}

impl Node {
    fn child_mut(&mut self, name: &str) -> &mut Node {
        // Linear scan: phase fan-out is tiny (a handful of children).
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            &mut self.children[i]
        } else {
            self.children.push(Node {
                name: name.to_string(),
                value: 0,
                children: Vec::new(),
            });
            self.children.last_mut().unwrap()
        }
    }

    fn depth(&self) -> usize {
        1 + self.children.iter().map(Node::depth).max().unwrap_or(0)
    }
}

/// Deterministic warm color per frame name (FNV-1a hash into a small
/// orange/red palette, like the canonical flamegraph tooling).
fn color(name: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    let r = 205 + (h % 50) as u8;
    let g = 50 + ((h >> 8) % 130) as u8;
    let b = ((h >> 16) % 35) as u8;
    format!("rgb({r},{g},{b})")
}

/// Escape text for SVG/XML content and attributes.
fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Render `stacks` as a self-contained SVG flamegraph.
pub fn render(stacks: &[FoldedStack], title: &str) -> String {
    let mut root = Node {
        name: String::new(),
        value: 0,
        children: Vec::new(),
    };
    for s in stacks {
        root.value += s.samples;
        let mut node = &mut root;
        for frame in &s.frames {
            node = node.child_mut(frame);
            node.value += s.samples;
        }
    }
    let total = root.value.max(1);
    let depth = root.depth().saturating_sub(1).max(1);
    let height = PAD * 2.0 + ROW * depth as f64;

    let mut svg = String::new();
    svg.push_str(&format!(
        concat!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" ",
            "viewBox=\"0 0 {w} {h}\" font-family=\"monospace\" font-size=\"11\">\n",
            "<rect width=\"{w}\" height=\"{h}\" fill=\"#f8f8f8\"/>\n",
            "<text x=\"{mid}\" y=\"17\" text-anchor=\"middle\" font-size=\"13\">{title}</text>\n",
        ),
        w = WIDTH,
        h = height,
        mid = WIDTH / 2.0,
        title = esc(title),
    ));

    // Flames grow upward: depth 0 sits at the bottom.
    let mut frames: Vec<(f64, usize, &Node)> = Vec::new(); // (x, depth, node)
    let mut queue: Vec<(f64, usize, &Node)> = vec![(0.0, 0, &root)];
    while let Some((x, d, node)) = queue.pop() {
        let mut cx = x;
        for child in &node.children {
            frames.push((cx, d, child));
            queue.push((cx, d + 1, child));
            cx += child.value as f64 / total as f64 * WIDTH;
        }
    }

    for (x, d, node) in frames {
        let w = node.value as f64 / total as f64 * WIDTH;
        let y = height - PAD - ROW * (d + 1) as f64;
        let pct = node.value as f64 / total as f64 * 100.0;
        svg.push_str(&format!(
            concat!(
                "<g><title>{name}: {v} samples ({pct:.2}%)</title>",
                "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{rh}\" ",
                "fill=\"{fill}\" stroke=\"#f8f8f8\" stroke-width=\"0.5\"/>",
            ),
            name = esc(&node.name),
            v = node.value,
            pct = pct,
            x = x,
            y = y,
            w = w.max(0.1),
            rh = ROW,
            fill = color(&node.name),
        ));
        if w >= MIN_LABEL_PX {
            let max_chars = (w / GLYPH).floor() as usize;
            let label: String = if node.name.chars().count() > max_chars {
                let cut: String = node
                    .name
                    .chars()
                    .take(max_chars.saturating_sub(2))
                    .collect();
                format!("{cut}..")
            } else {
                node.name.clone()
            };
            svg.push_str(&format!(
                "<text x=\"{:.2}\" y=\"{:.2}\" fill=\"#111\">{}</text>",
                x + 3.0,
                y + ROW - 5.0,
                esc(&label)
            ));
        }
        svg.push_str("</g>\n");
    }
    svg.push_str(&format!(
        "<text x=\"4\" y=\"{:.2}\" fill=\"#555\">{} samples</text>\n",
        height - 8.0,
        root.value
    ));
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stacks() -> Vec<FoldedStack> {
        vec![
            FoldedStack {
                frames: vec!["step".into(), "dynamics".into(), "filter".into()],
                samples: 60,
            },
            FoldedStack {
                frames: vec!["step".into(), "physics".into()],
                samples: 30,
            },
            FoldedStack {
                frames: vec!["(idle)".into()],
                samples: 10,
            },
        ]
    }

    #[test]
    fn svg_contains_every_frame_and_is_well_formed_enough() {
        let svg = render(&stacks(), "smoke profile");
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        for name in ["step", "dynamics", "physics", "(idle)"] {
            assert!(svg.contains(name), "missing frame {name}");
        }
        // Balanced tags, since nothing should be truncated mid-element.
        assert_eq!(svg.matches("<rect").count(), svg.matches("<g>").count() + 1);
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
    }

    #[test]
    fn widths_are_proportional_to_samples() {
        let svg = render(&stacks(), "t");
        // step = 90 of 100 samples → width 90% of 1200 = 1080.
        assert!(svg.contains("width=\"1080.00\""), "svg:\n{svg}");
    }

    #[test]
    fn xml_special_characters_are_escaped() {
        let svg = render(
            &[FoldedStack {
                frames: vec!["a<b&\"c\">".into()],
                samples: 1,
            }],
            "<title&>",
        );
        assert!(!svg.contains("a<b"));
        assert!(svg.contains("a&lt;b&amp;&quot;c&quot;&gt;"));
        assert!(svg.contains("&lt;title&amp;&gt;"));
    }

    #[test]
    fn empty_input_renders_an_empty_graph() {
        let svg = render(&[], "empty");
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("0 samples"));
    }
}
