//! Streaming live-telemetry aggregation for served jobs.
//!
//! [`LiveCollector`] is the serving layer's in-memory observability state:
//! one collector per server, fed *incrementally* by [`TelemetrySink`]
//! events as jobs execute — never by post-hoc trace replay. Each job gets
//! a [`JobSink`] handle (job id + shared collector) wired into its
//! `JobSpec`, so attempt starts, checkpoint commits, live wall-clock phase
//! durations and the end-of-run authoritative virtual phase totals all
//! fold into the collector as they happen.
//!
//! Two time domains are kept deliberately separate:
//!
//! * **wall/live** — per-phase wall-clock seconds accumulated from
//!   [`TelemetrySink::record_live_phase`] while the job runs. Approximate
//!   (threads share cores), but available *now* for a running job.
//! * **virtual/final** — per-(rank, phase) virtual seconds from
//!   [`TelemetrySink::record_rank_phase`], streamed once from the
//!   successful attempt's timeline. The per-phase view is the max over
//!   ranks — by construction identical (not just close) to the post-hoc
//!   `RunSummary::phase_seconds` for the same run.
//!
//! The collector also maintains windowed rollups: a ring of fixed-width
//! wall-clock windows, each accumulating per-phase seconds and per-tenant
//! completion counts, so `/v1/metrics` can show what the fleet did in the
//! last minute without replaying anything.

use crate::json::Value;
use crate::run::{RunSummary, StepMetrics};
use crate::sink::TelemetrySink;
use crate::tracectx::TraceContext;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// One execution attempt of a job, as seen live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptView {
    /// Attempt index (0 = first).
    pub attempt: u64,
    /// Deterministic span context of this attempt (child of the root).
    pub span: TraceContext,
    /// Checkpoint step the attempt resumed from (`None` = cold start).
    pub resumed_from: Option<u64>,
}

/// Live state of one job.
#[derive(Debug, Clone, Default)]
struct JobLive {
    trace: Option<TraceContext>,
    tenant: String,
    attempts: Vec<AttemptView>,
    last_checkpoint_step: Option<u64>,
    /// Wall-clock seconds per phase, accumulated live.
    wall_phase: BTreeMap<String, f64>,
    /// Authoritative virtual seconds and span counts per (rank, phase).
    rank_phase: BTreeMap<(u32, String), (f64, u64)>,
    /// Steps recorded so far (from `record_step`, so it fills at end of
    /// attempt; live progress comes from checkpoints).
    steps_recorded: u64,
    /// Virtual seconds of the finished run.
    virt_seconds: Option<f64>,
    /// Sampled wall-clock profile (with optional skew join), delivered
    /// once when the job finishes with profiling enabled.
    profile: Option<Value>,
    finished: bool,
}

/// One wall-clock rollup window.
#[derive(Debug, Clone, Default)]
struct Window {
    index: u64,
    phase_wall: BTreeMap<String, f64>,
    tenant_finished: BTreeMap<String, u64>,
    tenant_attempts: BTreeMap<String, u64>,
}

/// Server-wide live telemetry state. Cheap to share (`Arc`), fed by
/// [`JobSink`] handles, read by the HTTP endpoints.
pub struct LiveCollector {
    epoch: Instant,
    window_secs: f64,
    keep_windows: usize,
    jobs: Mutex<HashMap<u64, JobLive>>,
    windows: Mutex<VecDeque<Window>>,
}

impl Default for LiveCollector {
    fn default() -> LiveCollector {
        LiveCollector::new()
    }
}

impl LiveCollector {
    /// 10-second windows, last 6 kept (one minute of rollups).
    pub fn new() -> LiveCollector {
        LiveCollector::with_windows(10.0, 6)
    }

    /// Custom rollup windowing.
    pub fn with_windows(window_secs: f64, keep_windows: usize) -> LiveCollector {
        LiveCollector {
            epoch: Instant::now(),
            window_secs: window_secs.max(0.001),
            keep_windows: keep_windows.max(1),
            jobs: Mutex::new(HashMap::new()),
            windows: Mutex::new(VecDeque::new()),
        }
    }

    /// Register a job the moment it is admitted, with its root span
    /// context and tenant label. Idempotent: re-registration after a
    /// journal-replay resubmit keeps the accumulated state.
    pub fn begin_job(&self, job: u64, trace: TraceContext, tenant: &str) {
        let mut jobs = self.jobs.lock();
        let entry = jobs.entry(job).or_default();
        entry.trace = Some(trace);
        if entry.tenant.is_empty() {
            entry.tenant = tenant.to_string();
        }
    }

    /// A sink handle that attributes records to `job`.
    pub fn sink(self: &Arc<Self>, job: u64) -> Arc<JobSink> {
        Arc::new(JobSink {
            collector: Arc::clone(self),
            job,
        })
    }

    /// Root span context of a job, if registered.
    pub fn trace_of(&self, job: u64) -> Option<TraceContext> {
        self.jobs.lock().get(&job).and_then(|j| j.trace)
    }

    /// Drop a job's live state (after terminal records are served it can
    /// be reaped by the caller's retention policy; the collector itself
    /// never forgets on its own).
    pub fn forget(&self, job: u64) {
        self.jobs.lock().remove(&job);
    }

    /// Number of jobs currently tracked.
    pub fn tracked_jobs(&self) -> usize {
        self.jobs.lock().len()
    }

    /// The sampled profile of a job (with its skew join), once recorded.
    /// Served at `GET /v1/jobs/{id}/profile`; `None` while the job is
    /// still running or if profiling was not enabled for it.
    pub fn job_profile(&self, job: u64) -> Option<Value> {
        let jobs = self.jobs.lock();
        let j = jobs.get(&job)?;
        let mut pairs = vec![("job", Value::Num(job as f64))];
        if let Some(t) = &j.trace {
            pairs.push(("trace", Value::Str(t.trace_hex())));
        }
        match &j.profile {
            Some(p) => pairs.push(("data", p.clone())),
            None => return None,
        }
        Some(Value::obj(pairs))
    }

    /// Per-phase totals of a *finished* job in the virtual domain:
    /// max-over-ranks of the streamed per-rank sums — the same reduction
    /// `RunSummary::phase_seconds` applies, so the two agree exactly.
    pub fn final_phase_totals(&self, job: u64) -> Option<Vec<(String, f64)>> {
        let jobs = self.jobs.lock();
        let j = jobs.get(&job)?;
        if j.rank_phase.is_empty() {
            return None;
        }
        let mut acc: BTreeMap<&str, f64> = BTreeMap::new();
        for ((_rank, phase), (secs, _spans)) in &j.rank_phase {
            let slot = acc.entry(phase.as_str()).or_insert(0.0);
            *slot = slot.max(*secs);
        }
        Some(acc.into_iter().map(|(p, s)| (p.to_string(), s)).collect())
    }

    /// The live view served at `GET /v1/jobs/{id}/trace`: trace identity,
    /// attempts so far, last committed checkpoint, and the phase
    /// breakdown — virtual totals once finished, live wall accumulations
    /// while running.
    pub fn job_view(&self, job: u64) -> Option<Value> {
        let jobs = self.jobs.lock();
        let j = jobs.get(&job)?;
        let attempts = Value::Arr(
            j.attempts
                .iter()
                .map(|a| {
                    Value::obj(vec![
                        ("attempt", Value::Num(a.attempt as f64)),
                        ("span", Value::Str(a.span.span_hex())),
                        ("parent", Value::Str(format!("{:016x}", a.span.parent_span))),
                        (
                            "resumed_from",
                            match a.resumed_from {
                                Some(s) => Value::Num(s as f64),
                                None => Value::Null,
                            },
                        ),
                    ])
                })
                .collect(),
        );
        let (phases, domain): (Vec<(String, f64)>, &str) = if !j.rank_phase.is_empty() {
            let mut acc: BTreeMap<String, f64> = BTreeMap::new();
            for ((_rank, phase), (secs, _)) in &j.rank_phase {
                let slot = acc.entry(phase.clone()).or_insert(0.0);
                *slot = slot.max(*secs);
            }
            (acc.into_iter().collect(), "virtual")
        } else {
            (
                j.wall_phase.iter().map(|(p, s)| (p.clone(), *s)).collect(),
                "wall",
            )
        };
        let mut ranks: BTreeMap<u32, Vec<(String, f64, u64)>> = BTreeMap::new();
        for ((rank, phase), (secs, spans)) in &j.rank_phase {
            ranks
                .entry(*rank)
                .or_default()
                .push((phase.clone(), *secs, *spans));
        }
        let mut pairs = vec![
            ("job", Value::Num(job as f64)),
            (
                "trace",
                match &j.trace {
                    Some(t) => Value::Str(t.trace_hex()),
                    None => Value::Null,
                },
            ),
            (
                "root_span",
                match &j.trace {
                    Some(t) => Value::Str(t.span_hex()),
                    None => Value::Null,
                },
            ),
            ("tenant", Value::Str(j.tenant.clone())),
            (
                "current_attempt",
                Value::Num(j.attempts.last().map(|a| a.attempt as f64).unwrap_or(-1.0)),
            ),
            ("attempts", attempts),
            (
                "last_checkpoint_step",
                match j.last_checkpoint_step {
                    Some(s) => Value::Num(s as f64),
                    None => Value::Null,
                },
            ),
            ("steps_recorded", Value::Num(j.steps_recorded as f64)),
            ("finished", Value::Bool(j.finished)),
            ("phase_domain", Value::Str(domain.to_string())),
            (
                "phases",
                Value::Obj(
                    phases
                        .into_iter()
                        .map(|(p, s)| (p, Value::Num(s)))
                        .collect(),
                ),
            ),
            (
                "ranks",
                Value::Arr(
                    ranks
                        .into_iter()
                        .map(|(rank, phases)| {
                            Value::obj(vec![
                                ("rank", Value::Num(rank as f64)),
                                (
                                    "phases",
                                    Value::Obj(
                                        phases
                                            .into_iter()
                                            .map(|(p, s, n)| {
                                                (
                                                    p,
                                                    Value::obj(vec![
                                                        ("virt_seconds", Value::Num(s)),
                                                        ("spans", Value::Num(n as f64)),
                                                    ]),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(v) = j.virt_seconds {
            pairs.push(("virt_seconds", Value::Num(v)));
        }
        Some(Value::obj(pairs))
    }

    /// Windowed rollups: the retained windows, oldest first, each with
    /// per-phase wall seconds and per-tenant attempt/finish counts.
    pub fn rollup(&self) -> Value {
        let windows = self.windows.lock();
        Value::obj(vec![
            ("window_seconds", Value::Num(self.window_secs)),
            (
                "windows",
                Value::Arr(
                    windows
                        .iter()
                        .map(|w| {
                            Value::obj(vec![
                                ("index", Value::Num(w.index as f64)),
                                (
                                    "phase_wall_seconds",
                                    Value::Obj(
                                        w.phase_wall
                                            .iter()
                                            .map(|(p, s)| (p.clone(), Value::Num(*s)))
                                            .collect(),
                                    ),
                                ),
                                (
                                    "tenant_attempts",
                                    Value::Obj(
                                        w.tenant_attempts
                                            .iter()
                                            .map(|(t, c)| (t.clone(), Value::Num(*c as f64)))
                                            .collect(),
                                    ),
                                ),
                                (
                                    "tenant_finished",
                                    Value::Obj(
                                        w.tenant_finished
                                            .iter()
                                            .map(|(t, c)| (t.clone(), Value::Num(*c as f64)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn window_mut<R>(&self, f: impl FnOnce(&mut Window) -> R) -> R {
        let index = (self.epoch.elapsed().as_secs_f64() / self.window_secs) as u64;
        let mut windows = self.windows.lock();
        let fresh = match windows.back() {
            Some(w) => w.index != index,
            None => true,
        };
        if fresh {
            windows.push_back(Window {
                index,
                ..Window::default()
            });
            while windows.len() > self.keep_windows {
                windows.pop_front();
            }
        }
        f(windows.back_mut().expect("window just ensured"))
    }

    fn with_job<R>(&self, job: u64, f: impl FnOnce(&mut JobLive) -> R) -> R {
        let mut jobs = self.jobs.lock();
        f(jobs.entry(job).or_default())
    }
}

/// Per-job sink handle: forwards every record into the shared collector,
/// stamped with the job id.
pub struct JobSink {
    collector: Arc<LiveCollector>,
    job: u64,
}

impl TelemetrySink for JobSink {
    fn record_step(&self, step: &StepMetrics) {
        self.collector.with_job(self.job, |j| {
            j.steps_recorded = j.steps_recorded.max(step.step as u64 + 1);
        });
    }

    fn record_run(&self, run: &RunSummary) {
        let tenant = self.collector.with_job(self.job, |j| {
            j.finished = true;
            j.virt_seconds = Some(run.virt_seconds);
            j.tenant.clone()
        });
        self.collector.window_mut(|w| {
            *w.tenant_finished.entry(tenant).or_insert(0) += 1;
        });
    }

    fn record_attempt(&self, attempt: u64, resumed_from: Option<u64>) {
        let tenant = self.collector.with_job(self.job, |j| {
            // Attempt span ids derive from the root context; a job with no
            // registered trace (direct ensemble use) gets no span linkage
            // but still counts attempts.
            let span = j
                .trace
                .map(|root| root.child(attempt))
                .unwrap_or(TraceContext {
                    trace_id: 0,
                    span_id: attempt.max(1),
                    parent_span: 0,
                });
            if !j.attempts.iter().any(|a| a.attempt == attempt) {
                j.attempts.push(AttemptView {
                    attempt,
                    span,
                    resumed_from,
                });
            }
            j.tenant.clone()
        });
        self.collector.window_mut(|w| {
            *w.tenant_attempts.entry(tenant).or_insert(0) += 1;
        });
    }

    fn record_checkpoint(&self, step: u64) {
        self.collector.with_job(self.job, |j| {
            j.last_checkpoint_step = Some(j.last_checkpoint_step.map_or(step, |s| s.max(step)));
        });
    }

    fn record_live_phase(&self, _rank: u32, phase: &str, wall_seconds: f64) {
        self.collector.with_job(self.job, |j| {
            *j.wall_phase.entry(phase.to_string()).or_insert(0.0) += wall_seconds;
        });
        self.collector.window_mut(|w| {
            *w.phase_wall.entry(phase.to_string()).or_insert(0.0) += wall_seconds;
        });
    }

    fn record_rank_phase(&self, rank: u32, phase: &str, virt_seconds: f64, spans: u64) {
        self.collector.with_job(self.job, |j| {
            j.rank_phase
                .insert((rank, phase.to_string()), (virt_seconds, spans));
        });
    }

    fn record_profile(
        &self,
        profile: &crate::profile::ProfileReport,
        skew: Option<&crate::profile::SkewReport>,
    ) {
        let value = Value::obj(vec![
            ("profile", profile.to_json()),
            (
                "skew",
                match skew {
                    Some(s) => s.to_json(),
                    None => Value::Null,
                },
            ),
        ]);
        self.collector.with_job(self.job, |j| {
            j.profile = Some(value);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector() -> Arc<LiveCollector> {
        Arc::new(LiveCollector::new())
    }

    #[test]
    fn attempts_and_checkpoints_fold_into_the_view() {
        let c = collector();
        let root = TraceContext::new_root();
        c.begin_job(7, root, "alice");
        let sink = c.sink(7);
        sink.record_attempt(0, None);
        sink.record_checkpoint(4);
        sink.record_attempt(1, Some(4));
        sink.record_checkpoint(8);
        let view = c.job_view(7).unwrap();
        assert_eq!(
            view.get("trace").unwrap().as_str(),
            Some(&root.trace_hex()[..])
        );
        assert_eq!(view.get("current_attempt").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            view.get("last_checkpoint_step").unwrap().as_f64(),
            Some(8.0)
        );
        let attempts = view.get("attempts").unwrap().as_arr().unwrap();
        assert_eq!(attempts.len(), 2);
        // Attempt spans parent to the root span, deterministically.
        assert_eq!(
            attempts[1].get("span").unwrap().as_str(),
            Some(&root.child(1).span_hex()[..])
        );
        assert_eq!(
            attempts[1].get("parent").unwrap().as_str(),
            Some(&root.span_hex()[..])
        );
        assert_eq!(attempts[1].get("resumed_from").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn recorded_profile_is_served_with_trace_linkage() {
        let c = collector();
        let root = TraceContext::new_root();
        c.begin_job(3, root, "bob");
        let sink = c.sink(3);
        assert!(c.job_profile(3).is_none(), "no profile before recording");
        let report = crate::profile::ProfileReport {
            hz: 997.0,
            total_samples: 4,
            stacks: vec![crate::profile::FoldedStack {
                frames: vec!["step".into()],
                samples: 4,
            }],
            ..Default::default()
        };
        sink.record_profile(&report, None);
        let view = c.job_profile(3).unwrap();
        assert_eq!(
            view.get("trace").unwrap().as_str(),
            Some(&root.trace_hex()[..])
        );
        let data = view.get("data").unwrap();
        assert_eq!(
            data.get("profile")
                .and_then(|p| p.get("total_samples"))
                .and_then(Value::as_f64),
            Some(4.0)
        );
        assert!(matches!(data.get("skew"), Some(Value::Null)));
    }

    #[test]
    fn duplicate_attempt_events_are_idempotent() {
        let c = collector();
        c.begin_job(1, TraceContext::new_root(), "t");
        let sink = c.sink(1);
        sink.record_attempt(0, None);
        sink.record_attempt(0, None);
        let view = c.job_view(1).unwrap();
        assert_eq!(view.get("attempts").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn view_switches_from_wall_to_virtual_domain() {
        let c = collector();
        c.begin_job(2, TraceContext::new_root(), "t");
        let sink = c.sink(2);
        sink.record_live_phase(0, "fd", 0.25);
        sink.record_live_phase(1, "fd", 0.50);
        let view = c.job_view(2).unwrap();
        assert_eq!(view.get("phase_domain").unwrap().as_str(), Some("wall"));
        assert_eq!(
            view.get("phases").unwrap().get("fd").unwrap().as_f64(),
            Some(0.75)
        );
        // Authoritative totals arrive: the view flips to virtual and takes
        // max over ranks.
        sink.record_rank_phase(0, "fd", 1.5, 3);
        sink.record_rank_phase(1, "fd", 2.0, 3);
        let view = c.job_view(2).unwrap();
        assert_eq!(view.get("phase_domain").unwrap().as_str(), Some("virtual"));
        assert_eq!(
            view.get("phases").unwrap().get("fd").unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(
            c.final_phase_totals(2).unwrap(),
            vec![("fd".to_string(), 2.0)]
        );
    }

    #[test]
    fn final_totals_match_run_summary_reduction_exactly() {
        // Feed the exact per-rank sums a RunSummary would be built from;
        // the collector's max-over-ranks must reproduce phase_seconds
        // bit-for-bit.
        let per_rank: Vec<Vec<(&str, f64)>> = vec![
            vec![("fd", 0.1 + 0.2), ("filter", 1.0 / 3.0)],
            vec![("fd", 0.3), ("filter", 0.2 + 0.1 + 0.033)],
        ];
        let c = collector();
        c.begin_job(3, TraceContext::new_root(), "t");
        let sink = c.sink(3);
        for (rank, phases) in per_rank.iter().enumerate() {
            for (phase, secs) in phases {
                sink.record_rank_phase(rank as u32, phase, *secs, 1);
            }
        }
        let totals = c.final_phase_totals(3).unwrap();
        for (phase, secs) in totals {
            let expect = per_rank
                .iter()
                .map(|r| {
                    r.iter()
                        .find(|(p, _)| *p == phase)
                        .map(|(_, s)| *s)
                        .unwrap_or(0.0)
                })
                .fold(0.0, f64::max);
            assert_eq!(secs, expect, "{phase}");
        }
    }

    #[test]
    fn rollup_windows_accumulate_and_rotate() {
        let c = Arc::new(LiveCollector::with_windows(0.001, 2));
        c.begin_job(4, TraceContext::new_root(), "alice");
        let sink = c.sink(4);
        sink.record_live_phase(0, "physics", 1.0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        sink.record_live_phase(0, "physics", 2.0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        sink.record_live_phase(0, "physics", 4.0);
        let rollup = c.rollup();
        let windows = rollup.get("windows").unwrap().as_arr().unwrap();
        assert!(windows.len() <= 2, "ring keeps at most 2 windows");
        let total: f64 = windows
            .iter()
            .filter_map(|w| {
                w.get("phase_wall_seconds")
                    .and_then(|p| p.get("physics"))
                    .and_then(|v| v.as_f64())
            })
            .sum();
        // Oldest window (1.0) rotated out.
        assert!((4.0..=6.0).contains(&total), "total {total}");
    }

    #[test]
    fn forget_drops_job_state() {
        let c = collector();
        c.begin_job(9, TraceContext::new_root(), "t");
        assert_eq!(c.tracked_jobs(), 1);
        c.forget(9);
        assert_eq!(c.tracked_jobs(), 0);
        assert!(c.job_view(9).is_none());
    }
}
