//! Span context for end-to-end distributed tracing — no dependencies.
//!
//! A [`TraceContext`] is the identity a request carries through the whole
//! serving path: a 128-bit trace id minted once at `POST /v1/jobs`, a
//! 64-bit span id for the current unit of work, and the parent span id
//! (0 for the root). The context is journaled with the submit record, so
//! a job recovered after a crash keeps the trace id it was born with, and
//! every retry attempt and rank-level phase span links back to the same
//! HTTP request.
//!
//! Child span ids are *derived*, not random: `child(seed)` mixes the
//! trace id, the parent span id and the seed with FNV-1a, so attempt `k`
//! of a job gets the same span id before and after a server restart —
//! the journal and the live view agree without coordination.
//!
//! Hex encoding goes through fixed stack buffers ([`hex32`], [`hex16`]),
//! so producers on the disabled-telemetry path can format ids without a
//! single heap allocation.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Fold bytes into an FNV-1a accumulator.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A span context: trace id + span id + parent span id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// 128-bit trace id shared by every span of one request. Never 0.
    pub trace_id: u128,
    /// 64-bit id of the current span. Never 0.
    pub span_id: u64,
    /// Id of the parent span; 0 means this is the root span.
    pub parent_span: u64,
}

impl TraceContext {
    /// Mint a fresh root context with process-local entropy.
    ///
    /// Entropy comes from `RandomState` (seeded from the OS per process,
    /// perturbed per instance) plus a monotone counter, so two roots
    /// minted back-to-back never collide within a process and are
    /// unpredictable across processes. No external dependencies.
    pub fn new_root() -> TraceContext {
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(1);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut h1 = RandomState::new().build_hasher();
        h1.write_u64(seq);
        let hi = h1.finish();
        let mut h2 = RandomState::new().build_hasher();
        h2.write_u64(hi ^ seq.rotate_left(17));
        let lo = h2.finish();
        let trace_id = ((hi as u128) << 64 | lo as u128).max(1);
        TraceContext {
            trace_id,
            span_id: mix(trace_id, 0, seq).max(1),
            parent_span: 0,
        }
    }

    /// Derive a child context: same trace id, deterministic span id from
    /// `(trace_id, self.span_id, seed)`, parented to this span. Attempt
    /// `k` of a job conventionally uses `seed = k`.
    pub fn child(&self, seed: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: mix(self.trace_id, self.span_id, seed).max(1),
            parent_span: self.span_id,
        }
    }

    /// Encode as `"<32 hex>-<16 hex>-<16 hex>"` (trace, span, parent) —
    /// the form journaled with the submit record.
    pub fn encode(&self) -> String {
        format!(
            "{:032x}-{:016x}-{:016x}",
            self.trace_id, self.span_id, self.parent_span
        )
    }

    /// Parse the [`encode`](TraceContext::encode) form. Returns `None` on
    /// any malformed field (a corrupt journal line must not panic replay).
    pub fn parse(s: &str) -> Option<TraceContext> {
        let mut parts = s.split('-');
        let trace = parts.next()?;
        let span = parts.next()?;
        let parent = parts.next()?;
        if parts.next().is_some() || trace.len() != 32 || span.len() != 16 || parent.len() != 16 {
            return None;
        }
        let ctx = TraceContext {
            trace_id: u128::from_str_radix(trace, 16).ok()?,
            span_id: u64::from_str_radix(span, 16).ok()?,
            parent_span: u64::from_str_radix(parent, 16).ok()?,
        };
        (ctx.trace_id != 0 && ctx.span_id != 0).then_some(ctx)
    }

    /// The 32-hex trace id alone (what clients correlate on).
    pub fn trace_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// The 16-hex span id alone.
    pub fn span_hex(&self) -> String {
        format!("{:016x}", self.span_id)
    }
}

/// Deterministic id mixer: FNV-1a over the three inputs' bytes, with a
/// final avalanche so low-entropy seeds still spread over all 64 bits.
fn mix(trace_id: u128, parent: u64, seed: u64) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &trace_id.to_le_bytes());
    h = fnv1a(h, &parent.to_le_bytes());
    h = fnv1a(h, &seed.to_le_bytes());
    // xorshift-multiply avalanche (splitmix64 finalizer).
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

const HEX: &[u8; 16] = b"0123456789abcdef";

/// Write `v` as 32 lowercase hex digits into `buf` and return it as
/// `&str`. Allocation-free.
pub fn hex32(v: u128, buf: &mut [u8; 32]) -> &str {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = HEX[((v >> ((31 - i) * 4)) & 0xf) as usize];
    }
    // Safety not needed: all bytes are ASCII hex digits.
    std::str::from_utf8(buf).expect("hex digits are UTF-8")
}

/// Write `v` as 16 lowercase hex digits into `buf` and return it as
/// `&str`. Allocation-free.
pub fn hex16(v: u64, buf: &mut [u8; 16]) -> &str {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = HEX[((v >> ((15 - i) * 4)) & 0xf) as usize];
    }
    std::str::from_utf8(buf).expect("hex digits are UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_distinct_and_nonzero() {
        let a = TraceContext::new_root();
        let b = TraceContext::new_root();
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.span_id, 0);
        assert_eq!(a.parent_span, 0);
    }

    #[test]
    fn encode_parse_round_trip() {
        let ctx = TraceContext::new_root();
        let text = ctx.encode();
        assert_eq!(text.len(), 32 + 1 + 16 + 1 + 16);
        assert_eq!(TraceContext::parse(&text), Some(ctx));
        let child = ctx.child(2);
        assert_eq!(TraceContext::parse(&child.encode()), Some(child));
    }

    #[test]
    fn malformed_contexts_parse_to_none() {
        for bad in [
            "",
            "zz",
            "deadbeef-0123456789abcdef-0000000000000000",
            &format!(
                "{}-{}-{}-{}",
                "0".repeat(32),
                "1".repeat(16),
                "2".repeat(16),
                "3"
            ),
            &format!("{}-{}-{}", "g".repeat(32), "1".repeat(16), "2".repeat(16)),
            &format!("{}-{}-{}", "0".repeat(32), "1".repeat(16), "2".repeat(16)),
        ] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn children_are_deterministic_and_linked() {
        let root = TraceContext::parse(&format!(
            "{:032x}-{:016x}-{:016x}",
            0x1234_5678_9abc_def0_u128, 0xfeed_face_u64, 0u64
        ))
        .unwrap();
        let a = root.child(3);
        let b = root.child(3);
        assert_eq!(a, b, "child ids are reproducible across restarts");
        assert_eq!(a.trace_id, root.trace_id);
        assert_eq!(a.parent_span, root.span_id);
        assert_ne!(a.span_id, root.span_id);
        assert_ne!(root.child(4).span_id, a.span_id);
    }

    #[test]
    fn hex_buffers_match_format() {
        let ctx = TraceContext::new_root();
        let mut b32 = [0u8; 32];
        let mut b16 = [0u8; 16];
        assert_eq!(hex32(ctx.trace_id, &mut b32), ctx.trace_hex());
        assert_eq!(hex16(ctx.span_id, &mut b16), ctx.span_hex());
    }
}
