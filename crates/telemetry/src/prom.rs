//! Prometheus text exposition (format version 0.0.4) for the metrics
//! registry, plus a strict validator used by the smoke checks.
//!
//! The registry's dotted metric names (`http.requests.healthz`) map to
//! Prometheus metric names by sanitization: every character outside
//! `[a-zA-Z0-9_]` becomes `_`, and names that would not start with a
//! letter or underscore are prefixed. Counters get a `# TYPE ... counter`
//! line, gauges `gauge`, histograms `histogram` with the conventional
//! `_bucket{le=...}` / `_sum` / `_count` series. The registry's
//! histograms store sparse power-of-two buckets with *lower* bounds;
//! exposition converts them to the cumulative *upper*-bound form
//! Prometheus expects (each sparse bucket's `le` is the next bucket's
//! lower bound — every observation in `[lo, 2·lo)` is below it — and the
//! final bucket is `+Inf`).

use crate::metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sanitize a dotted registry name into a Prometheus metric name.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label *value* for the text exposition: backslash, double
/// quote, and newline must be escaped inside the `label="value"` quotes
/// (and nothing else — the format defines exactly these three).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escape `# HELP` text: backslash and newline only (no quotes here).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Format a float the way Prometheus text format expects (no exponent
/// surprises for the common cases; `+Inf`/`-Inf`/`NaN` spelled out).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render a snapshot as Prometheus text exposition. Extra gauges (e.g.
/// fleet state or uptime, not owned by the registry) ride along.
pub fn render(snapshot: &MetricsSnapshot, extra_gauges: &[(String, f64)]) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# HELP {n} Total count of {}.", escape_help(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    let mut gauges: Vec<(String, f64)> = snapshot.gauges.clone();
    gauges.extend(extra_gauges.iter().cloned());
    for (name, value) in &gauges {
        let n = sanitize(name);
        let _ = writeln!(out, "# HELP {n} Current value of {}.", escape_help(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", fmt_value(*value));
    }
    for (name, hist) in &snapshot.histograms {
        let n = sanitize(name);
        let _ = writeln!(out, "# HELP {n} Distribution of {}.", escape_help(name));
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (i, (_lo, count)) in hist.buckets.iter().enumerate() {
            cumulative += count;
            let le = match hist.buckets.get(i + 1) {
                Some((next_lo, _)) => fmt_value(*next_lo),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        if hist.buckets.is_empty() {
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} 0");
        }
        let _ = writeln!(out, "{n}_sum {}", fmt_value(hist.sum));
        let _ = writeln!(out, "{n}_count {}", hist.count);
    }
    out
}

/// What a validated exposition contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Metric families declared `counter`.
    pub counters: usize,
    /// Metric families declared `gauge`.
    pub gauges: usize,
    /// Metric families declared `histogram`.
    pub histograms: usize,
    /// `# HELP` lines seen (one per documented family).
    pub helps: usize,
    /// Total sample lines.
    pub samples: usize,
}

impl ExpositionStats {
    /// Number of declared metric families.
    pub fn families(&self) -> usize {
        self.counters + self.gauges + self.histograms
    }

    /// Whether every declared family carried a `# HELP` line.
    pub fn fully_documented(&self) -> bool {
        self.helps == self.families()
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphanumeric() && (i > 0 || !c.is_ascii_digit()) || c == '_' || c == ':'
        })
}

fn parse_sample_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

/// Strictly validate a text exposition: every line is a well-formed
/// `# TYPE` / `# HELP` comment or a sample; sample names trace back to a
/// declared family; histogram families carry monotone `_bucket` series
/// ending at `le="+Inf"` whose final count equals `_count`. Returns what
/// was found, or the first violation.
pub fn validate(text: &str) -> Result<ExpositionStats, String> {
    let mut stats = ExpositionStats::default();
    // family -> (kind, bucket state: (last cumulative, saw +Inf, inf count))
    let mut families: BTreeMap<String, String> = BTreeMap::new();
    let mut buckets: BTreeMap<String, (f64, u64, Option<u64>)> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("line {n}: TYPE without metric name"))?;
                    let kind = parts
                        .next()
                        .ok_or_else(|| format!("line {n}: TYPE without kind"))?;
                    if !valid_name(name) {
                        return Err(format!("line {n}: invalid metric name {name:?}"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {n}: unknown TYPE kind {kind:?}"));
                    }
                    if families
                        .insert(name.to_string(), kind.to_string())
                        .is_some()
                    {
                        return Err(format!("line {n}: duplicate TYPE for {name}"));
                    }
                    match kind {
                        "counter" => stats.counters += 1,
                        "gauge" => stats.gauges += 1,
                        "histogram" => stats.histograms += 1,
                        _ => {}
                    }
                }
                Some("HELP") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("line {n}: HELP without metric name"))?;
                    if !valid_name(name) {
                        return Err(format!("line {n}: invalid metric name {name:?}"));
                    }
                    stats.helps += 1;
                }
                _ => return Err(format!("line {n}: malformed comment {line:?}")),
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {n}: unclosed label braces"))?;
                (&line[..brace], line[close + 1..].trim())
            }
            None => {
                let mut it = line.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                (name, it.next().unwrap_or("").trim())
            }
        };
        if !valid_name(name_part) {
            return Err(format!("line {n}: invalid sample name {name_part:?}"));
        }
        let value_str = rest.split_whitespace().next().unwrap_or("");
        let value = parse_sample_value(value_str)
            .ok_or_else(|| format!("line {n}: unparseable value {value_str:?}"))?;
        stats.samples += 1;

        // Histogram bookkeeping.
        if let Some(family) = name_part.strip_suffix("_bucket") {
            if families.get(family).map(String::as_str) == Some("histogram") {
                let le = line
                    .split("le=\"")
                    .nth(1)
                    .and_then(|s| s.split('"').next())
                    .ok_or_else(|| format!("line {n}: histogram bucket without le label"))?;
                let le_v = parse_sample_value(le)
                    .ok_or_else(|| format!("line {n}: unparseable le {le:?}"))?;
                let entry =
                    buckets
                        .entry(family.to_string())
                        .or_insert((f64::NEG_INFINITY, 0, None));
                if le_v < entry.0 {
                    return Err(format!("line {n}: le values not increasing in {family}"));
                }
                if (value as u64) < entry.1 {
                    return Err(format!(
                        "line {n}: bucket counts not cumulative in {family}"
                    ));
                }
                entry.0 = le_v;
                entry.1 = value as u64;
                if le_v == f64::INFINITY {
                    entry.2 = Some(value as u64);
                }
            }
        } else if let Some(family) = name_part.strip_suffix("_count") {
            if families.get(family).map(String::as_str) == Some("histogram") {
                counts.insert(family.to_string(), value as u64);
            }
        }
    }
    for (family, kind) in &families {
        if kind == "histogram" {
            let (_, _, inf) = buckets
                .get(family)
                .ok_or_else(|| format!("histogram {family} has no buckets"))?;
            let inf = inf.ok_or_else(|| format!("histogram {family} missing le=\"+Inf\""))?;
            let count = counts
                .get(family)
                .ok_or_else(|| format!("histogram {family} missing _count"))?;
            if inf != *count {
                return Err(format!(
                    "histogram {family}: +Inf bucket {inf} != count {count}"
                ));
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("http.requests.jobs"), "http_requests_jobs");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("tenant.other/evil name"), "tenant_other_evil_name");
    }

    #[test]
    fn render_and_validate_round_trip() {
        let r = MetricsRegistry::new();
        r.counter("http.requests.jobs").add(3);
        r.counter("jobs.completed").add(2);
        r.gauge("fleet.ranks_busy").set(4.0);
        let h = r.histogram("http.latency_seconds.jobs");
        h.observe(0.002);
        h.observe(0.004);
        h.observe(3.0);
        let text = render(&r.snapshot(), &[("uptime_seconds".to_string(), 12.5)]);
        let stats = validate(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
        assert_eq!(stats.counters, 2);
        assert_eq!(stats.gauges, 2);
        assert_eq!(stats.histograms, 1);
        assert!(stats.samples >= 7, "{stats:?}");
        assert!(text.contains("# TYPE http_requests_jobs counter"));
        assert!(text.contains("http_latency_seconds_jobs_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("http_latency_seconds_jobs_count 3"));
    }

    #[test]
    fn empty_histogram_still_exposes_inf_bucket() {
        let r = MetricsRegistry::new();
        let _ = r.histogram("empty.h");
        let text = render(&r.snapshot(), &[]);
        assert!(text.contains("empty_h_bucket{le=\"+Inf\"} 0"));
        validate(&text).unwrap();
    }

    #[test]
    fn validator_rejects_garbage() {
        for (bad, why) in [
            ("# TYPE bad-name counter\n", "invalid family name"),
            ("metric_without_value\n", "missing value"),
            ("m{le=\"0.1\" 1\n", "unclosed braces"),
            ("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n", "missing _count"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
                "non-cumulative buckets",
            ),
        ] {
            assert!(validate(bad).is_err(), "{why}: {bad:?}");
        }
    }

    #[test]
    fn cumulative_buckets_use_next_lower_bound_as_le() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        h.observe(1.5); // bucket [1, 2)
        h.observe(4.0); // bucket [4, 8)
        let text = render(&r.snapshot(), &[]);
        // Sparse buckets: [1,·)=1 then [4,·)=1 → le="4" carries cumulative
        // 1, +Inf carries 2.
        assert!(text.contains("lat_bucket{le=\"4\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 2"), "{text}");
        validate(&text).unwrap();
    }
}
