//! Property tests for the checkpoint wire format: randomized
//! round-trips across both byte orders, truncation at every prefix
//! length, and checksum-detected corruption. No external proptest
//! crate — a seeded LCG drives the generation, so failures reproduce.

use agcm_grid::field::Field3D;
use agcm_grid::history::ByteOrder;
use agcm_resilience::checkpoint::{CheckpointError, ModelCheckpoint};

/// Deterministic 64-bit LCG (Knuth's constants).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn f64(&mut self) -> f64 {
        // Finite, sign-varied, wide dynamic range; exact bit patterns
        // must survive the trip.
        let mantissa = self.next() as i64 as f64;
        mantissa * 2f64.powi((self.below(60) as i32) - 30)
    }
}

fn random_checkpoint(rng: &mut Rng) -> ModelCheckpoint {
    let n_seeds = rng.below(4) as usize;
    let n_scalars = rng.below(4) as usize;
    let n_series = rng.below(16) as usize;
    let n_fields = rng.below(4) as usize;
    ModelCheckpoint {
        rank: rng.below(64) as u32,
        world: 64,
        step: rng.below(1 << 20),
        seeds: (0..n_seeds).map(|_| rng.next()).collect(),
        scalars: (0..n_scalars).map(|_| rng.f64()).collect(),
        series: (0..n_series).map(|_| rng.f64()).collect(),
        fields: (0..n_fields)
            .map(|_| {
                let (ni, nj, nk) = (
                    rng.below(5) as usize + 1,
                    rng.below(4) as usize + 1,
                    rng.below(3) as usize + 1,
                );
                let mut f = Field3D::zeros(ni, nj, nk);
                for v in f.as_mut_slice() {
                    *v = rng.f64();
                }
                f
            })
            .collect(),
    }
}

#[test]
fn random_checkpoints_roundtrip_in_both_byte_orders() {
    let mut rng = Rng(0xA5A5_0001);
    for case in 0..200 {
        let ckpt = random_checkpoint(&mut rng);
        for order in [ByteOrder::Little, ByteOrder::Big] {
            let rec = ckpt.encode(order);
            let (back, detected) =
                ModelCheckpoint::decode(&rec).unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert_eq!(detected, order, "case {case}");
            assert_eq!(back, ckpt, "case {case}: lossless round-trip");
        }
        // The two encodings describe the same state but must not be
        // byte-identical (the endian marker alone differs) unless the
        // record is all byte-order-invariant content — never true here
        // because the header holds multi-byte fields.
        assert_ne!(ckpt.encode(ByteOrder::Little), ckpt.encode(ByteOrder::Big));
    }
}

#[test]
fn every_truncation_is_rejected() {
    let mut rng = Rng(0xA5A5_0002);
    for _ in 0..20 {
        let ckpt = random_checkpoint(&mut rng);
        let order = if rng.below(2) == 0 {
            ByteOrder::Little
        } else {
            ByteOrder::Big
        };
        let rec = ckpt.encode(order);
        // Every strict prefix must fail — and fail as a typed error,
        // never a panic or a silently-short checkpoint.
        for cut in 0..rec.len() {
            let err =
                ModelCheckpoint::decode(&rec[..cut]).expect_err("truncated record must not decode");
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated
                        | CheckpointError::ChecksumMismatch { .. }
                        | CheckpointError::LengthMismatch { .. }
                        | CheckpointError::BadEndianMarker(_)
                        | CheckpointError::BadMagic(_)
                ),
                "cut {cut}: unexpected {err:?}"
            );
        }
    }
}

#[test]
fn flipped_checksum_trailer_is_always_caught() {
    let mut rng = Rng(0xA5A5_0003);
    for _ in 0..50 {
        let ckpt = random_checkpoint(&mut rng);
        for order in [ByteOrder::Little, ByteOrder::Big] {
            let mut rec = ckpt.encode(order);
            let n = rec.len();
            // Flip one random bit inside the 8-byte trailer.
            let byte = n - 8 + rng.below(8) as usize;
            rec[byte] ^= 1 << rng.below(8);
            assert!(matches!(
                ModelCheckpoint::decode(&rec),
                Err(CheckpointError::ChecksumMismatch { .. })
            ));
        }
    }
}

#[test]
fn flipped_payload_bit_is_always_caught() {
    let mut rng = Rng(0xA5A5_0004);
    for _ in 0..50 {
        let ckpt = random_checkpoint(&mut rng);
        let rec = ckpt.encode(ByteOrder::Little);
        // Flip one random bit anywhere after the magic/marker (those
        // fail with their own typed errors, covered elsewhere).
        let byte = 8 + rng.below((rec.len() - 16) as u64) as usize;
        let mut bad = rec.clone();
        bad[byte] ^= 1 << rng.below(8);
        let err = ModelCheckpoint::decode(&bad).expect_err("corruption must not decode");
        assert!(
            matches!(
                err,
                CheckpointError::ChecksumMismatch { .. } | CheckpointError::BadVersion(_)
            ),
            "byte {byte}: unexpected {err:?}"
        );
    }
}
