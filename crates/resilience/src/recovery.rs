//! Restart-from-last-checkpoint recovery driver.
//!
//! [`run_recovered`] wraps [`agcm_mps::run_with_faults`] in an attempt
//! loop: each attempt looks up the latest committed checkpoint and passes
//! the resume step into the model body; if any rank fails (planned kill,
//! or a communication abort cascading from a dead peer) the attempt is
//! recorded and the run restarts from the last committed step. Because the
//! model is a deterministic function of (state, step), a restarted run
//! continues bit-identically with an uninterrupted one.

use crate::coordinator::{CheckpointStore, StoreError};
use crate::metrics::ResilienceMetrics;
use agcm_mps::fault::{FaultEvent, FaultPlan};
use agcm_mps::runtime::{run_world, FailureKind, WorldOptions};
use agcm_mps::span::SpanObserver;
use agcm_mps::trace::WorldTrace;
use agcm_mps::{CancelToken, Comm};
use std::fmt;
use std::sync::Arc;

/// Observes the progress of a recovered run, live: attempt starts (with
/// the checkpoint step each attempt resumed from) and checkpoint commits.
/// All methods default to no-ops; implementations must be cheap — they
/// are called synchronously from the recovery loop and (for
/// [`on_checkpoint`](RunProgress::on_checkpoint)) from rank 0's thread.
pub trait RunProgress: Send + Sync {
    /// Attempt `attempt` (0 = first) is starting, resuming from
    /// `resumed_from` (`None` = cold start).
    fn on_attempt(&self, _attempt: usize, _resumed_from: Option<u64>) {}

    /// A coordinated checkpoint committed through `step`. Emitted by the
    /// model body, conventionally from rank 0 after the commit.
    fn on_checkpoint(&self, _step: u64) {}
}

/// Knobs for the recovery loop.
#[derive(Clone)]
pub struct RecoveryOptions {
    /// Maximum number of restarts after the first attempt.
    pub max_restarts: usize,
    /// Cooperative cancellation token threaded into every attempt's world.
    /// Cancellation is not a fault: a cancelled attempt is never retried
    /// and surfaces as [`RecoveryError::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// Live progress observer (attempt starts); also handed to the model
    /// body via the options it was built from for checkpoint commits.
    pub progress: Option<Arc<dyn RunProgress>>,
    /// Live span observer threaded into every attempt's world.
    pub spans: Option<Arc<dyn SpanObserver>>,
}

impl Default for RecoveryOptions {
    fn default() -> RecoveryOptions {
        RecoveryOptions {
            max_restarts: 3,
            cancel: None,
            progress: None,
            spans: None,
        }
    }
}

impl fmt::Debug for RecoveryOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecoveryOptions")
            .field("max_restarts", &self.max_restarts)
            .field("cancel", &self.cancel)
            .field("progress", &self.progress.as_ref().map(|_| "RunProgress"))
            .field("spans", &self.spans.as_ref().map(|_| "SpanObserver"))
            .finish()
    }
}

/// One failed attempt, for the run report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptFailure {
    /// Attempt index (0 = first run).
    pub attempt: usize,
    /// Step the attempt resumed from (`None` = cold start).
    pub resumed_from: Option<u64>,
    /// The ranks that failed, and how.
    pub failed_ranks: Vec<(usize, FailureKind)>,
}

/// Outcome of a recovered run.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-rank results of the successful attempt, in rank order.
    pub results: Vec<R>,
    /// Total attempts made (1 = no restart was needed).
    pub attempts: usize,
    /// The failed attempts, in order.
    pub failures: Vec<AttemptFailure>,
    /// Injected-fault log per rank, merged across attempts.
    pub fault_events: Vec<Vec<FaultEvent>>,
    /// Aggregated counters.
    pub metrics: ResilienceMetrics,
    /// Execution trace of the *successful* attempt (failed attempts die
    /// mid-phase, so their streams are not comparable).
    pub trace: WorldTrace,
}

/// Why a recovered run gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// Every allowed attempt failed.
    RestartsExhausted {
        /// Attempts made.
        attempts: usize,
        /// The failure record of each attempt.
        failures: Vec<AttemptFailure>,
    },
    /// The checkpoint store itself failed.
    Store(StoreError),
    /// The run's [`CancelToken`] was cancelled (deadline expiry, explicit
    /// cancellation). Never retried.
    Cancelled {
        /// Attempts made before cancellation was observed.
        attempts: usize,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::RestartsExhausted { attempts, .. } => {
                write!(f, "recovery gave up after {attempts} failed attempts")
            }
            RecoveryError::Store(e) => write!(f, "recovery aborted by store error: {e}"),
            RecoveryError::Cancelled { attempts } => {
                write!(f, "run cancelled after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Store(e) => Some(e),
            _ => None,
        }
    }
}

/// Run `body` on `n` ranks with restart-based recovery.
///
/// `plan_for(attempt)` supplies the fault plan for each attempt — typically
/// a plan with a kill for attempt 0 and `None` afterwards (the "node was
/// replaced" scenario). `body` receives the communicator and the resume
/// step (`None` on a cold start); it is responsible for loading its shard
/// from the store and for writing checkpoints as it goes.
pub fn run_recovered<R, F, P>(
    n: usize,
    opts: RecoveryOptions,
    store: &CheckpointStore,
    mut plan_for: P,
    body: F,
) -> Result<RunReport<R>, RecoveryError>
where
    F: Fn(&Comm, Option<u64>) -> R + Sync,
    R: Send,
    P: FnMut(usize) -> Option<FaultPlan>,
{
    let mut failures: Vec<AttemptFailure> = Vec::new();
    let mut merged_events: Vec<Vec<FaultEvent>> = (0..n).map(|_| Vec::new()).collect();
    for attempt in 0..=opts.max_restarts {
        let resume = store.latest_committed();
        if let Some(progress) = &opts.progress {
            progress.on_attempt(attempt, resume);
        }
        let world_opts = WorldOptions {
            plan: plan_for(attempt),
            cancel: opts.cancel.clone(),
            spans: opts.spans.clone(),
        };
        let mut out = run_world(n, world_opts, |c| body(c, resume));
        for (merged, events) in merged_events.iter_mut().zip(&out.fault_events) {
            merged.extend(events.iter().copied());
        }
        if out.all_ok() {
            let metrics = ResilienceMetrics::tally(attempt + 1, &failures, &merged_events);
            let trace = std::mem::take(&mut out.trace);
            return Ok(RunReport {
                results: out.into_results(),
                attempts: attempt + 1,
                failures,
                fault_events: merged_events,
                metrics,
                trace,
            });
        }
        let attempt_failures = out.failures();
        // Cancellation is a verdict, not a fault: do not retry. Some ranks
        // may surface as Disconnected (they observed a cancelled peer's
        // death before their own cancellation point), so check both the
        // token and the per-rank failure kinds.
        let cancelled = opts.cancel.as_ref().is_some_and(|t| t.is_cancelled())
            || attempt_failures
                .iter()
                .any(|(_, k)| *k == FailureKind::Cancelled);
        failures.push(AttemptFailure {
            attempt,
            resumed_from: resume,
            failed_ranks: attempt_failures,
        });
        if cancelled {
            return Err(RecoveryError::Cancelled {
                attempts: attempt + 1,
            });
        }
    }
    Err(RecoveryError::RestartsExhausted {
        attempts: opts.max_restarts + 1,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::ModelCheckpoint;
    use crate::coordinator::write_coordinated;
    use agcm_grid::field::Field3D;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("agcm-recovery-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A toy iterative "model": per-rank counter advanced one per step,
    /// checkpointed every other step.
    fn toy_model(c: &Comm, resume: Option<u64>, store: &CheckpointStore, steps: u64) -> f64 {
        let world = c.size() as u32;
        let rank = c.rank() as u32;
        let (start, mut value) = match resume {
            Some(step) => {
                let ckpt = store.load_shard(step, rank).unwrap();
                (step, ckpt.scalars[0])
            }
            None => (0, rank as f64),
        };
        for step in start..steps {
            c.begin_step(step);
            value = value * 1.000_1 + 1.0;
            if (step + 1) % 2 == 0 {
                let ckpt = ModelCheckpoint {
                    rank,
                    world,
                    step: step + 1,
                    seeds: vec![],
                    scalars: vec![value],
                    series: vec![],
                    fields: vec![Field3D::zeros(1, 1, 1)],
                };
                write_coordinated(c, store, &ckpt).unwrap();
            }
        }
        value
    }

    #[test]
    fn no_faults_single_attempt() {
        let store = CheckpointStore::new(scratch("clean"));
        let report = run_recovered(
            2,
            RecoveryOptions::default(),
            &store,
            |_| None,
            |c, resume| toy_model(c, resume, &store, 6),
        )
        .unwrap();
        assert_eq!(report.attempts, 1);
        assert!(report.failures.is_empty());
        assert_eq!(report.metrics.restarts, 0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn killed_rank_recovers_bit_identically() {
        // Baseline: uninterrupted run.
        let baseline_store = CheckpointStore::new(scratch("baseline"));
        let baseline = run_recovered(
            3,
            RecoveryOptions::default(),
            &baseline_store,
            |_| None,
            |c, r| toy_model(c, r, &baseline_store, 9),
        )
        .unwrap();

        // Faulted: rank 1 dies at step 5 on the first attempt.
        let store = CheckpointStore::new(scratch("killed"));
        let report = run_recovered(
            3,
            RecoveryOptions::default(),
            &store,
            |attempt| (attempt == 0).then(|| FaultPlan::seeded(1).with_kill(1, 5)),
            |c, r| toy_model(c, r, &store, 9),
        )
        .unwrap();

        assert_eq!(report.attempts, 2);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].resumed_from, None);
        assert!(report.failures[0]
            .failed_ranks
            .iter()
            .any(|(r, k)| *r == 1 && *k == FailureKind::Killed { step: 5 }));
        // The kill fired after the step-4 checkpoint committed.
        assert_eq!(report.metrics.ranks_killed, 1);
        // Bit-identical continuation: the recovered run's results equal the
        // uninterrupted run's, exactly.
        assert_eq!(report.results, baseline.results);
        let _ = std::fs::remove_dir_all(store.root());
        let _ = std::fs::remove_dir_all(baseline_store.root());
    }

    #[test]
    fn cancelled_run_is_not_retried() {
        let store = CheckpointStore::new(scratch("cancel"));
        let token = CancelToken::new();
        token.cancel();
        let err = run_recovered(
            2,
            RecoveryOptions {
                max_restarts: 5,
                cancel: Some(token),
                ..RecoveryOptions::default()
            },
            &store,
            |_| None,
            |c, r| toy_model(c, r, &store, 4),
        )
        .unwrap_err();
        // Cancellation must surface typed and untried — one attempt, not
        // six restarts of a run nobody wants anymore.
        assert_eq!(err, RecoveryError::Cancelled { attempts: 1 });
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn progress_observer_sees_every_attempt_with_resume_steps() {
        #[derive(Default)]
        struct Recorder {
            attempts: std::sync::Mutex<Vec<(usize, Option<u64>)>>,
        }
        impl RunProgress for Recorder {
            fn on_attempt(&self, attempt: usize, resumed_from: Option<u64>) {
                self.attempts.lock().unwrap().push((attempt, resumed_from));
            }
        }
        let store = CheckpointStore::new(scratch("progress"));
        let recorder = std::sync::Arc::new(Recorder::default());
        let report = run_recovered(
            2,
            RecoveryOptions {
                progress: Some(recorder.clone()),
                ..RecoveryOptions::default()
            },
            &store,
            |attempt| (attempt == 0).then(|| FaultPlan::seeded(1).with_kill(0, 3)),
            |c, r| toy_model(c, r, &store, 6),
        )
        .unwrap();
        assert_eq!(report.attempts, 2);
        // Cold start, then a resume from the step-2 checkpoint.
        assert_eq!(
            *recorder.attempts.lock().unwrap(),
            vec![(0, None), (1, Some(2))]
        );
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn unrecoverable_kill_exhausts_restarts() {
        let store = CheckpointStore::new(scratch("exhaust"));
        // The same rank dies at the same step on *every* attempt.
        let err = run_recovered(
            2,
            RecoveryOptions {
                max_restarts: 2,
                ..RecoveryOptions::default()
            },
            &store,
            |_| Some(FaultPlan::seeded(0).with_kill(0, 1)),
            |c, r| toy_model(c, r, &store, 4),
        )
        .unwrap_err();
        match err {
            RecoveryError::RestartsExhausted { attempts, failures } => {
                assert_eq!(attempts, 3);
                assert_eq!(failures.len(), 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }
}
