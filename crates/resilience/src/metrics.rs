//! Aggregated counters for a recovered run.

use crate::recovery::AttemptFailure;
use agcm_mps::fault::{FaultAction, FaultEvent};
use agcm_mps::runtime::FailureKind;

/// What the fault plane and recovery loop did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceMetrics {
    /// Attempts made (1 = clean run).
    pub attempts: usize,
    /// Restarts performed (attempts − 1).
    pub restarts: usize,
    /// Rank failures caused by planned kills, summed over attempts.
    pub ranks_killed: usize,
    /// Rank failures caused by communication aborts, summed over attempts.
    pub ranks_disconnected: usize,
    /// Rank failures caused by cooperative cancellation.
    pub ranks_cancelled: usize,
    /// Messages dropped by the injector.
    pub messages_dropped: usize,
    /// Messages duplicated by the injector.
    pub messages_duplicated: usize,
    /// Messages delayed (reordered) by the injector.
    pub messages_delayed: usize,
}

impl ResilienceMetrics {
    /// Aggregate the counters of a recovered run.
    pub fn tally(
        attempts: usize,
        failures: &[AttemptFailure],
        fault_events: &[Vec<FaultEvent>],
    ) -> ResilienceMetrics {
        let mut m = ResilienceMetrics {
            attempts,
            restarts: attempts.saturating_sub(1),
            ..ResilienceMetrics::default()
        };
        for failure in failures {
            for (_, kind) in &failure.failed_ranks {
                match kind {
                    FailureKind::Killed { .. } => m.ranks_killed += 1,
                    FailureKind::Disconnected { .. } => m.ranks_disconnected += 1,
                    FailureKind::Cancelled => m.ranks_cancelled += 1,
                }
            }
        }
        for events in fault_events {
            for event in events {
                if let FaultEvent::Message { action, .. } = event {
                    match action {
                        FaultAction::Drop => m.messages_dropped += 1,
                        FaultAction::Duplicate => m.messages_duplicated += 1,
                        FaultAction::Delay => m.messages_delayed += 1,
                        FaultAction::Deliver => {}
                    }
                }
            }
        }
        m
    }

    /// Total injected message faults.
    pub fn messages_faulted(&self) -> usize {
        self.messages_dropped + self.messages_duplicated + self.messages_delayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_counts_by_kind() {
        let failures = vec![AttemptFailure {
            attempt: 0,
            resumed_from: None,
            failed_ranks: vec![
                (1, FailureKind::Killed { step: 5 }),
                (
                    0,
                    FailureKind::Disconnected {
                        error: agcm_mps::Error::Timeout,
                    },
                ),
            ],
        }];
        let events = vec![
            vec![
                FaultEvent::Message {
                    src: 0,
                    dst: 1,
                    seq: 0,
                    action: FaultAction::Drop,
                },
                FaultEvent::Message {
                    src: 0,
                    dst: 1,
                    seq: 3,
                    action: FaultAction::Delay,
                },
            ],
            vec![FaultEvent::Kill { step: 5 }],
        ];
        let m = ResilienceMetrics::tally(2, &failures, &events);
        assert_eq!(m.attempts, 2);
        assert_eq!(m.restarts, 1);
        assert_eq!(m.ranks_killed, 1);
        assert_eq!(m.ranks_disconnected, 1);
        assert_eq!(m.messages_dropped, 1);
        assert_eq!(m.messages_delayed, 1);
        assert_eq!(m.messages_duplicated, 0);
        assert_eq!(m.messages_faulted(), 2);
    }
}
