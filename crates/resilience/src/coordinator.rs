//! Coordinated checkpoint writing with an atomic commit protocol.
//!
//! Each rank writes its own shard; a checkpoint only counts once a `COMMIT`
//! manifest exists in its step directory. The protocol:
//!
//! 1. every rank writes `rank_NNNN.agck.tmp` and renames it into place
//!    (rename is atomic, so a shard is either absent or complete);
//! 2. barrier — all shards are now durable;
//! 3. rank 0 verifies the shard count, writes `COMMIT.tmp`, renames it to
//!    `COMMIT` (the atomic commit point);
//! 4. barrier — every rank knows the checkpoint committed.
//!
//! A crash between (1) and (3) leaves an uncommitted directory that restart
//! ignores; recovery always resumes from the *latest committed* step.

use crate::checkpoint::{CheckpointError, ModelCheckpoint};
use agcm_grid::history::ByteOrder;
use agcm_mps::Comm;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Errors from the checkpoint store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure, with context.
    Io(String),
    /// A shard failed to decode.
    Format(CheckpointError),
    /// A shard's metadata disagrees with what was asked for.
    ShardMismatch {
        /// What the caller expected (step, rank).
        expected: (u64, u32),
        /// What the shard recorded.
        found: (u64, u32),
    },
    /// Commit was attempted with shards missing.
    IncompleteCheckpoint {
        /// Step being committed.
        step: u64,
        /// Shards present.
        present: usize,
        /// Shards required (world size).
        required: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            StoreError::Format(e) => write!(f, "checkpoint format error: {e}"),
            StoreError::ShardMismatch { expected, found } => write!(
                f,
                "shard mismatch: expected step {}/rank {}, found step {}/rank {}",
                expected.0, expected.1, found.0, found.1
            ),
            StoreError::IncompleteCheckpoint {
                step,
                present,
                required,
            } => write!(
                f,
                "refusing to commit step {step}: {present} of {required} shards present"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Format(e) => Some(e),
            _ => None,
        }
    }
}

fn io_err(ctx: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{ctx} {}: {e}", path.display()))
}

/// Byte-level storage for checkpoint shards, the seam behind
/// [`CheckpointStore`].
///
/// The default store writes each shard as a file under
/// `step_XXXXXXXX/` and publishes a `COMMIT` manifest; a backend
/// replaces that directory layout with its own storage (e.g. the
/// content-addressed fleet store in `agcm-ckptstore`) while the commit
/// protocol, encoding, and recovery loop above it stay unchanged. A
/// backend speaks encoded records, not `ModelCheckpoint` values, so the
/// checksummed wire format is the unit of storage everywhere.
///
/// `committed_steps` is also the reuse surface: a backend may report
/// steps committed by *another* job with the same lineage, which is how
/// fleet-wide prefix reuse reaches the recovery loop without it knowing.
pub trait ShardBackend: Send + Sync {
    /// Store one rank's encoded shard for `step`. Must be atomic: a
    /// concurrent reader sees the whole record or nothing.
    fn put_shard(&self, step: u64, rank: u32, world: u32, record: &[u8]) -> Result<(), StoreError>;
    /// Publish `step` as committed once all `world` shards are stored.
    fn commit(&self, step: u64, world: u32) -> Result<(), StoreError>;
    /// Steps visible as committed, ascending.
    fn committed_steps(&self) -> Vec<u64>;
    /// Retrieve the encoded shard for `(step, rank)`.
    fn get_shard(&self, step: u64, rank: u32) -> Result<Vec<u8>, StoreError>;
    /// Shards present for `step`.
    fn shard_count(&self, step: u64) -> usize;
}

/// An on-disk checkpoint directory:
/// `root/step_XXXXXXXX/{rank_NNNN.agck..., COMMIT}`,
/// or a [`ShardBackend`] replacing that layout.
#[derive(Clone)]
pub struct CheckpointStore {
    root: PathBuf,
    order: ByteOrder,
    backend: Option<Arc<dyn ShardBackend>>,
}

impl fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("root", &self.root)
            .field("order", &self.order)
            .field(
                "backend",
                &self.backend.as_ref().map(|_| "dyn ShardBackend"),
            )
            .finish()
    }
}

impl CheckpointStore {
    /// A store rooted at `root`, writing native-flavoured little-endian
    /// records.
    pub fn new(root: impl Into<PathBuf>) -> CheckpointStore {
        CheckpointStore {
            root: root.into(),
            order: ByteOrder::Little,
            backend: None,
        }
    }

    /// Override the byte order of written shards (reads auto-detect).
    pub fn with_order(mut self, order: ByteOrder) -> CheckpointStore {
        self.order = order;
        self
    }

    /// Route shard bytes through `backend` instead of the directory
    /// layout. `root` is kept for display only; no files are written
    /// under it.
    pub fn with_backend(mut self, backend: Arc<dyn ShardBackend>) -> CheckpointStore {
        self.backend = Some(backend);
        self
    }

    /// Whether shards route through a [`ShardBackend`].
    pub fn has_backend(&self) -> bool {
        self.backend.is_some()
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn step_dir(&self, step: u64) -> PathBuf {
        self.root.join(format!("step_{step:08}"))
    }

    fn shard_path(&self, step: u64, rank: u32) -> PathBuf {
        self.step_dir(step).join(format!("rank_{rank:04}.agck"))
    }

    /// Write one rank's shard: tmp file, flush, atomic rename (or hand
    /// the encoded record to the backend).
    pub fn write_shard(&self, ckpt: &ModelCheckpoint) -> Result<(), StoreError> {
        if let Some(b) = &self.backend {
            return b.put_shard(ckpt.step, ckpt.rank, ckpt.world, &ckpt.encode(self.order));
        }
        let dir = self.step_dir(ckpt.step);
        fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, e))?;
        let final_path = self.shard_path(ckpt.step, ckpt.rank);
        let tmp = final_path.with_extension("agck.tmp");
        let record = ckpt.encode(self.order);
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            f.write_all(&record).map_err(|e| io_err("write", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
        }
        fs::rename(&tmp, &final_path).map_err(|e| io_err("rename", &tmp, e))
    }

    /// Count the shards present for `step`.
    pub fn shard_count(&self, step: u64) -> usize {
        if let Some(b) = &self.backend {
            return b.shard_count(step);
        }
        let Ok(entries) = fs::read_dir(self.step_dir(step)) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("rank_") && name.ends_with(".agck")
            })
            .count()
    }

    /// Commit `step`: verify all `world` shards are in place, then publish
    /// the `COMMIT` manifest with an atomic rename. Rank 0 only.
    pub fn commit(&self, step: u64, world: u32) -> Result<(), StoreError> {
        if let Some(b) = &self.backend {
            return b.commit(step, world);
        }
        let present = self.shard_count(step);
        if present != world as usize {
            return Err(StoreError::IncompleteCheckpoint {
                step,
                present,
                required: world as usize,
            });
        }
        let dir = self.step_dir(step);
        let tmp = dir.join("COMMIT.tmp");
        let manifest = dir.join("COMMIT");
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            writeln!(f, "step {step} world {world}").map_err(|e| io_err("write", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
        }
        fs::rename(&tmp, &manifest).map_err(|e| io_err("rename", &tmp, e))
    }

    /// Steps with a published `COMMIT` manifest, ascending.
    pub fn committed_steps(&self) -> Vec<u64> {
        if let Some(b) = &self.backend {
            return b.committed_steps();
        }
        let Ok(entries) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut steps: Vec<u64> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                let step: u64 = name.strip_prefix("step_")?.parse().ok()?;
                e.path().join("COMMIT").exists().then_some(step)
            })
            .collect();
        steps.sort_unstable();
        steps
    }

    /// The most recent committed step, if any checkpoint has committed.
    pub fn latest_committed(&self) -> Option<u64> {
        self.committed_steps().into_iter().max()
    }

    /// Load one rank's shard of a committed step, verifying its checksum
    /// and that it is the shard asked for.
    pub fn load_shard(&self, step: u64, rank: u32) -> Result<ModelCheckpoint, StoreError> {
        let record = match &self.backend {
            Some(b) => b.get_shard(step, rank)?,
            None => {
                let path = self.shard_path(step, rank);
                fs::read(&path).map_err(|e| io_err("read", &path, e))?
            }
        };
        let (ckpt, _) = ModelCheckpoint::decode(&record).map_err(StoreError::Format)?;
        if ckpt.step != step || ckpt.rank != rank {
            return Err(StoreError::ShardMismatch {
                expected: (step, rank),
                found: (ckpt.step, ckpt.rank),
            });
        }
        Ok(ckpt)
    }

    /// Drop every *committed* checkpoint older than `keep` steps back from
    /// the newest, returning the steps removed. Uncommitted (partial)
    /// directories are left for inspection. With a backend the shared
    /// store's refcounted GC owns chunk lifetime, so prune is a no-op.
    pub fn prune(&self, keep: usize) -> Vec<u64> {
        if self.backend.is_some() {
            return Vec::new();
        }
        let steps = self.committed_steps();
        if steps.len() <= keep {
            return Vec::new();
        }
        let cut = steps.len() - keep;
        let removed: Vec<u64> = steps[..cut].to_vec();
        for &step in &removed {
            let _ = fs::remove_dir_all(self.step_dir(step));
        }
        removed
    }
}

/// Collectively write and commit one checkpoint: every rank of `comm`
/// calls this with its own shard (all sharing the same `step`).
pub fn write_coordinated(
    comm: &Comm,
    store: &CheckpointStore,
    ckpt: &ModelCheckpoint,
) -> Result<(), StoreError> {
    let result = store.write_shard(ckpt);
    // Barrier even on error: peers must not commit a checkpoint this rank
    // failed to join. The error is returned after the collective completes;
    // commit refuses if the shard count is short.
    comm.barrier();
    result?;
    let commit_result = if comm.rank() == 0 {
        store.commit(ckpt.step, ckpt.world)
    } else {
        Ok(())
    };
    comm.barrier();
    commit_result
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_grid::field::Field3D;
    use agcm_mps::runtime::run;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique scratch directory per test (no external tempdir crate).
    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("agcm-resilience-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn shard(step: u64, rank: u32, world: u32) -> ModelCheckpoint {
        ModelCheckpoint {
            rank,
            world,
            step,
            seeds: vec![rank as u64],
            scalars: vec![],
            series: vec![step as f64],
            fields: vec![Field3D::from_fn(3, 2, 1, |i, j, _| {
                (rank as usize + i * j) as f64
            })],
        }
    }

    #[test]
    fn uncommitted_checkpoint_is_invisible() {
        let store = CheckpointStore::new(scratch("uncommitted"));
        store.write_shard(&shard(5, 0, 2)).unwrap();
        store.write_shard(&shard(5, 1, 2)).unwrap();
        assert_eq!(store.latest_committed(), None);
        store.commit(5, 2).unwrap();
        assert_eq!(store.latest_committed(), Some(5));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn commit_refuses_missing_shards() {
        let store = CheckpointStore::new(scratch("missing"));
        store.write_shard(&shard(3, 0, 4)).unwrap();
        assert_eq!(
            store.commit(3, 4),
            Err(StoreError::IncompleteCheckpoint {
                step: 3,
                present: 1,
                required: 4
            })
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn load_roundtrips_and_checks_identity() {
        let store = CheckpointStore::new(scratch("load"));
        let original = shard(9, 1, 2);
        store.write_shard(&original).unwrap();
        assert_eq!(store.load_shard(9, 1).unwrap(), original);
        assert!(matches!(store.load_shard(9, 0), Err(StoreError::Io(_))));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn latest_committed_picks_newest() {
        let store = CheckpointStore::new(scratch("latest"));
        for step in [2u64, 7, 4] {
            store.write_shard(&shard(step, 0, 1)).unwrap();
            store.commit(step, 1).unwrap();
        }
        // A newer but uncommitted step must be ignored.
        store.write_shard(&shard(11, 0, 1)).unwrap();
        assert_eq!(store.committed_steps(), vec![2, 4, 7]);
        assert_eq!(store.latest_committed(), Some(7));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn prune_keeps_newest_committed() {
        let store = CheckpointStore::new(scratch("prune"));
        for step in [1u64, 2, 3, 4] {
            store.write_shard(&shard(step, 0, 1)).unwrap();
            store.commit(step, 1).unwrap();
        }
        assert_eq!(store.prune(2), vec![1, 2]);
        assert_eq!(store.committed_steps(), vec![3, 4]);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_shard_fails_to_load() {
        let store = CheckpointStore::new(scratch("corrupt"));
        store.write_shard(&shard(1, 0, 1)).unwrap();
        let path = store.shard_path(1, 0);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load_shard(1, 0),
            Err(StoreError::Format(CheckpointError::ChecksumMismatch { .. }))
        ));
        let _ = fs::remove_dir_all(store.root());
    }

    /// Minimal in-memory backend: enough to prove the delegation seam.
    #[derive(Default)]
    struct MemBackend {
        shards: std::sync::Mutex<std::collections::HashMap<(u64, u32), Vec<u8>>>,
        committed: std::sync::Mutex<std::collections::BTreeSet<u64>>,
    }

    impl ShardBackend for MemBackend {
        fn put_shard(
            &self,
            step: u64,
            rank: u32,
            _world: u32,
            record: &[u8],
        ) -> Result<(), StoreError> {
            self.shards
                .lock()
                .unwrap()
                .insert((step, rank), record.to_vec());
            Ok(())
        }
        fn commit(&self, step: u64, world: u32) -> Result<(), StoreError> {
            let present = self.shard_count(step);
            if present != world as usize {
                return Err(StoreError::IncompleteCheckpoint {
                    step,
                    present,
                    required: world as usize,
                });
            }
            self.committed.lock().unwrap().insert(step);
            Ok(())
        }
        fn committed_steps(&self) -> Vec<u64> {
            self.committed.lock().unwrap().iter().copied().collect()
        }
        fn get_shard(&self, step: u64, rank: u32) -> Result<Vec<u8>, StoreError> {
            self.shards
                .lock()
                .unwrap()
                .get(&(step, rank))
                .cloned()
                .ok_or_else(|| StoreError::Io(format!("no shard for step {step} rank {rank}")))
        }
        fn shard_count(&self, step: u64) -> usize {
            self.shards
                .lock()
                .unwrap()
                .keys()
                .filter(|(s, _)| *s == step)
                .count()
        }
    }

    #[test]
    fn backend_routes_shards_away_from_the_directory_layout() {
        let store =
            CheckpointStore::new(scratch("backend")).with_backend(Arc::new(MemBackend::default()));
        assert!(store.has_backend());
        store.write_shard(&shard(4, 0, 1)).unwrap();
        assert_eq!(store.shard_count(4), 1);
        assert_eq!(store.latest_committed(), None, "uncommitted is invisible");
        store.commit(4, 1).unwrap();
        assert_eq!(store.latest_committed(), Some(4));
        assert_eq!(store.load_shard(4, 0).unwrap(), shard(4, 0, 1));
        assert!(store.prune(0).is_empty(), "prune defers to backend GC");
        assert!(
            !store.root().exists(),
            "backend-wired store writes nothing under its root"
        );
    }

    #[test]
    fn backend_commit_refuses_missing_shards() {
        let store = CheckpointStore::new(scratch("backend-miss"))
            .with_backend(Arc::new(MemBackend::default()));
        store.write_shard(&shard(2, 0, 3)).unwrap();
        assert_eq!(
            store.commit(2, 3),
            Err(StoreError::IncompleteCheckpoint {
                step: 2,
                present: 1,
                required: 3
            })
        );
    }

    #[test]
    fn coordinated_write_commits_across_ranks() {
        let store = CheckpointStore::new(scratch("coordinated"));
        let s = &store;
        run(4, |c| {
            let ckpt = shard(6, c.rank() as u32, 4);
            write_coordinated(c, s, &ckpt).unwrap();
        });
        assert_eq!(s.latest_committed(), Some(6));
        assert_eq!(s.shard_count(6), 4);
        for rank in 0..4 {
            assert_eq!(s.load_shard(6, rank).unwrap().rank, rank);
        }
        let _ = fs::remove_dir_all(store.root());
    }
}
