//! Coordinated checkpoint writing with an atomic commit protocol.
//!
//! Each rank writes its own shard; a checkpoint only counts once a `COMMIT`
//! manifest exists in its step directory. The protocol:
//!
//! 1. every rank writes `rank_NNNN.agck.tmp` and renames it into place
//!    (rename is atomic, so a shard is either absent or complete);
//! 2. barrier — all shards are now durable;
//! 3. rank 0 verifies the shard count, writes `COMMIT.tmp`, renames it to
//!    `COMMIT` (the atomic commit point);
//! 4. barrier — every rank knows the checkpoint committed.
//!
//! A crash between (1) and (3) leaves an uncommitted directory that restart
//! ignores; recovery always resumes from the *latest committed* step.

use crate::checkpoint::{CheckpointError, ModelCheckpoint};
use agcm_grid::history::ByteOrder;
use agcm_mps::Comm;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Errors from the checkpoint store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure, with context.
    Io(String),
    /// A shard failed to decode.
    Format(CheckpointError),
    /// A shard's metadata disagrees with what was asked for.
    ShardMismatch {
        /// What the caller expected (step, rank).
        expected: (u64, u32),
        /// What the shard recorded.
        found: (u64, u32),
    },
    /// Commit was attempted with shards missing.
    IncompleteCheckpoint {
        /// Step being committed.
        step: u64,
        /// Shards present.
        present: usize,
        /// Shards required (world size).
        required: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            StoreError::Format(e) => write!(f, "checkpoint format error: {e}"),
            StoreError::ShardMismatch { expected, found } => write!(
                f,
                "shard mismatch: expected step {}/rank {}, found step {}/rank {}",
                expected.0, expected.1, found.0, found.1
            ),
            StoreError::IncompleteCheckpoint {
                step,
                present,
                required,
            } => write!(
                f,
                "refusing to commit step {step}: {present} of {required} shards present"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Format(e) => Some(e),
            _ => None,
        }
    }
}

fn io_err(ctx: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{ctx} {}: {e}", path.display()))
}

/// An on-disk checkpoint directory:
/// `root/step_XXXXXXXX/{rank_NNNN.agck..., COMMIT}`.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    root: PathBuf,
    order: ByteOrder,
}

impl CheckpointStore {
    /// A store rooted at `root`, writing native-flavoured little-endian
    /// records.
    pub fn new(root: impl Into<PathBuf>) -> CheckpointStore {
        CheckpointStore {
            root: root.into(),
            order: ByteOrder::Little,
        }
    }

    /// Override the byte order of written shards (reads auto-detect).
    pub fn with_order(mut self, order: ByteOrder) -> CheckpointStore {
        self.order = order;
        self
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn step_dir(&self, step: u64) -> PathBuf {
        self.root.join(format!("step_{step:08}"))
    }

    fn shard_path(&self, step: u64, rank: u32) -> PathBuf {
        self.step_dir(step).join(format!("rank_{rank:04}.agck"))
    }

    /// Write one rank's shard: tmp file, flush, atomic rename.
    pub fn write_shard(&self, ckpt: &ModelCheckpoint) -> Result<(), StoreError> {
        let dir = self.step_dir(ckpt.step);
        fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, e))?;
        let final_path = self.shard_path(ckpt.step, ckpt.rank);
        let tmp = final_path.with_extension("agck.tmp");
        let record = ckpt.encode(self.order);
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            f.write_all(&record).map_err(|e| io_err("write", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
        }
        fs::rename(&tmp, &final_path).map_err(|e| io_err("rename", &tmp, e))
    }

    /// Count the shards present for `step`.
    pub fn shard_count(&self, step: u64) -> usize {
        let Ok(entries) = fs::read_dir(self.step_dir(step)) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("rank_") && name.ends_with(".agck")
            })
            .count()
    }

    /// Commit `step`: verify all `world` shards are in place, then publish
    /// the `COMMIT` manifest with an atomic rename. Rank 0 only.
    pub fn commit(&self, step: u64, world: u32) -> Result<(), StoreError> {
        let present = self.shard_count(step);
        if present != world as usize {
            return Err(StoreError::IncompleteCheckpoint {
                step,
                present,
                required: world as usize,
            });
        }
        let dir = self.step_dir(step);
        let tmp = dir.join("COMMIT.tmp");
        let manifest = dir.join("COMMIT");
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            writeln!(f, "step {step} world {world}").map_err(|e| io_err("write", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
        }
        fs::rename(&tmp, &manifest).map_err(|e| io_err("rename", &tmp, e))
    }

    /// Steps with a published `COMMIT` manifest, ascending.
    pub fn committed_steps(&self) -> Vec<u64> {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut steps: Vec<u64> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                let step: u64 = name.strip_prefix("step_")?.parse().ok()?;
                e.path().join("COMMIT").exists().then_some(step)
            })
            .collect();
        steps.sort_unstable();
        steps
    }

    /// The most recent committed step, if any checkpoint has committed.
    pub fn latest_committed(&self) -> Option<u64> {
        self.committed_steps().into_iter().max()
    }

    /// Load one rank's shard of a committed step, verifying its checksum
    /// and that it is the shard asked for.
    pub fn load_shard(&self, step: u64, rank: u32) -> Result<ModelCheckpoint, StoreError> {
        let path = self.shard_path(step, rank);
        let record = fs::read(&path).map_err(|e| io_err("read", &path, e))?;
        let (ckpt, _) = ModelCheckpoint::decode(&record).map_err(StoreError::Format)?;
        if ckpt.step != step || ckpt.rank != rank {
            return Err(StoreError::ShardMismatch {
                expected: (step, rank),
                found: (ckpt.step, ckpt.rank),
            });
        }
        Ok(ckpt)
    }

    /// Drop every *committed* checkpoint older than `keep` steps back from
    /// the newest, returning the steps removed. Uncommitted (partial)
    /// directories are left for inspection.
    pub fn prune(&self, keep: usize) -> Vec<u64> {
        let steps = self.committed_steps();
        if steps.len() <= keep {
            return Vec::new();
        }
        let cut = steps.len() - keep;
        let removed: Vec<u64> = steps[..cut].to_vec();
        for &step in &removed {
            let _ = fs::remove_dir_all(self.step_dir(step));
        }
        removed
    }
}

/// Collectively write and commit one checkpoint: every rank of `comm`
/// calls this with its own shard (all sharing the same `step`).
pub fn write_coordinated(
    comm: &Comm,
    store: &CheckpointStore,
    ckpt: &ModelCheckpoint,
) -> Result<(), StoreError> {
    let result = store.write_shard(ckpt);
    // Barrier even on error: peers must not commit a checkpoint this rank
    // failed to join. The error is returned after the collective completes;
    // commit refuses if the shard count is short.
    comm.barrier();
    result?;
    let commit_result = if comm.rank() == 0 {
        store.commit(ckpt.step, ckpt.world)
    } else {
        Ok(())
    };
    comm.barrier();
    commit_result
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_grid::field::Field3D;
    use agcm_mps::runtime::run;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique scratch directory per test (no external tempdir crate).
    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("agcm-resilience-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn shard(step: u64, rank: u32, world: u32) -> ModelCheckpoint {
        ModelCheckpoint {
            rank,
            world,
            step,
            seeds: vec![rank as u64],
            scalars: vec![],
            series: vec![step as f64],
            fields: vec![Field3D::from_fn(3, 2, 1, |i, j, _| {
                (rank as usize + i * j) as f64
            })],
        }
    }

    #[test]
    fn uncommitted_checkpoint_is_invisible() {
        let store = CheckpointStore::new(scratch("uncommitted"));
        store.write_shard(&shard(5, 0, 2)).unwrap();
        store.write_shard(&shard(5, 1, 2)).unwrap();
        assert_eq!(store.latest_committed(), None);
        store.commit(5, 2).unwrap();
        assert_eq!(store.latest_committed(), Some(5));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn commit_refuses_missing_shards() {
        let store = CheckpointStore::new(scratch("missing"));
        store.write_shard(&shard(3, 0, 4)).unwrap();
        assert_eq!(
            store.commit(3, 4),
            Err(StoreError::IncompleteCheckpoint {
                step: 3,
                present: 1,
                required: 4
            })
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn load_roundtrips_and_checks_identity() {
        let store = CheckpointStore::new(scratch("load"));
        let original = shard(9, 1, 2);
        store.write_shard(&original).unwrap();
        assert_eq!(store.load_shard(9, 1).unwrap(), original);
        assert!(matches!(store.load_shard(9, 0), Err(StoreError::Io(_))));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn latest_committed_picks_newest() {
        let store = CheckpointStore::new(scratch("latest"));
        for step in [2u64, 7, 4] {
            store.write_shard(&shard(step, 0, 1)).unwrap();
            store.commit(step, 1).unwrap();
        }
        // A newer but uncommitted step must be ignored.
        store.write_shard(&shard(11, 0, 1)).unwrap();
        assert_eq!(store.committed_steps(), vec![2, 4, 7]);
        assert_eq!(store.latest_committed(), Some(7));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn prune_keeps_newest_committed() {
        let store = CheckpointStore::new(scratch("prune"));
        for step in [1u64, 2, 3, 4] {
            store.write_shard(&shard(step, 0, 1)).unwrap();
            store.commit(step, 1).unwrap();
        }
        assert_eq!(store.prune(2), vec![1, 2]);
        assert_eq!(store.committed_steps(), vec![3, 4]);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_shard_fails_to_load() {
        let store = CheckpointStore::new(scratch("corrupt"));
        store.write_shard(&shard(1, 0, 1)).unwrap();
        let path = store.shard_path(1, 0);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load_shard(1, 0),
            Err(StoreError::Format(CheckpointError::ChecksumMismatch { .. }))
        ));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn coordinated_write_commits_across_ranks() {
        let store = CheckpointStore::new(scratch("coordinated"));
        let s = &store;
        run(4, |c| {
            let ckpt = shard(6, c.rank() as u32, 4);
            write_coordinated(c, s, &ckpt).unwrap();
        });
        assert_eq!(s.latest_committed(), Some(6));
        assert_eq!(s.shard_count(6), 4);
        for rank in 0..4 {
            assert_eq!(s.load_shard(6, rank).unwrap().rank, rank);
        }
        let _ = fs::remove_dir_all(store.root());
    }
}
