//! The model checkpoint record format.
//!
//! Extends the single-field history snapshot of `agcm_grid::history` to a
//! versioned, checksummed, multi-field model checkpoint: dynamics state
//! (every prognostic field), physics state (load series and the balancer's
//! memory), RNG seeds, and the timestep counter. Like the history format it
//! records its own byte order and the reader swaps as needed.
//!
//! Layout (header fields in the *writer's* byte order):
//!
//! ```text
//! magic "AGCK"
//! endian marker  u32 = 0x01020304
//! version        u32 = 1
//! rank           u32      world rank that wrote the shard
//! world          u32      world size of the writing run
//! step           u64      first step NOT yet executed (resume point)
//! n_seeds  u32, seeds   u64 × n_seeds
//! n_scalars u32, scalars f64 × n_scalars
//! n_series u32, series  f64 × n_series
//! n_fields u32, then per field: ni u32 · nj u32 · nk u32 · f64 × ni·nj·nk
//! checksum       u64      FNV-1a over every preceding byte
//! ```

use agcm_grid::field::Field3D;
use agcm_grid::history::ByteOrder;
use std::fmt;

const MAGIC: &[u8; 4] = b"AGCK";
const ENDIAN_MARKER: u32 = 0x0102_0304;
const ENDIAN_MARKER_SWAPPED: u32 = 0x0403_0201;
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors from decoding a checkpoint record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Record ends before the structure it promises.
    Truncated,
    /// Magic bytes did not match.
    BadMagic([u8; 4]),
    /// Endianness marker unintelligible in either byte order.
    BadEndianMarker(u32),
    /// Format version this reader does not understand.
    BadVersion(u32),
    /// Stored checksum disagrees with the record contents.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        stored: u64,
        /// Checksum computed over the record.
        computed: u64,
    },
    /// Bytes left over after the complete structure and trailer.
    LengthMismatch {
        /// Record length implied by the structure.
        expected: usize,
        /// Actual record length.
        found: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint record truncated"),
            CheckpointError::BadMagic(m) => write!(f, "bad magic bytes {m:?}"),
            CheckpointError::BadEndianMarker(v) => {
                write!(f, "unintelligible endian marker {v:#x}")
            }
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
                )
            }
            CheckpointError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "record length mismatch: expected {expected} bytes, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One rank's complete model state at a step boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCheckpoint {
    /// World rank that owns this shard.
    pub rank: u32,
    /// World size of the writing run (restart must match).
    pub world: u32,
    /// First step not yet executed: restart resumes here.
    pub step: u64,
    /// RNG seeds in effect (the reproduction's physics is seeded, not
    /// sampled, but the slot keeps restarts future-proof).
    pub seeds: Vec<u64>,
    /// Small scalar state (e.g. the load balancer's one-step memory).
    pub scalars: Vec<f64>,
    /// Per-step series accumulated so far (e.g. physics load history).
    pub series: Vec<f64>,
    /// Prognostic fields, in model variable order.
    pub fields: Vec<Field3D>,
}

/// FNV-1a over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Writer {
    buf: Vec<u8>,
    big: bool,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        let b = if self.big {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        };
        self.buf.extend_from_slice(&b);
    }
    fn u64(&mut self, v: u64) {
        let b = if self.big {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        };
        self.buf.extend_from_slice(&b);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    big: bool,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        if self.buf.len() < n {
            return Err(CheckpointError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b: [u8; 4] = self.take(4)?.try_into().unwrap();
        Ok(if self.big {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        })
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b: [u8; 8] = self.take(8)?.try_into().unwrap();
        Ok(if self.big {
            u64::from_be_bytes(b)
        } else {
            u64::from_le_bytes(b)
        })
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

impl ModelCheckpoint {
    /// Encode in the requested byte order, checksum trailer included.
    pub fn encode(&self, order: ByteOrder) -> Vec<u8> {
        let payload: usize = self.fields.iter().map(|f| f.len() * 8 + 12).sum();
        let mut w = Writer {
            buf: Vec::with_capacity(
                44 + self.seeds.len() * 8 + (self.scalars.len() + self.series.len()) * 8 + payload,
            ),
            big: order == ByteOrder::Big,
        };
        w.buf.extend_from_slice(MAGIC);
        w.u32(ENDIAN_MARKER);
        w.u32(VERSION);
        w.u32(self.rank);
        w.u32(self.world);
        w.u64(self.step);
        w.u32(self.seeds.len() as u32);
        for &s in &self.seeds {
            w.u64(s);
        }
        w.u32(self.scalars.len() as u32);
        for &v in &self.scalars {
            w.f64(v);
        }
        w.u32(self.series.len() as u32);
        for &v in &self.series {
            w.f64(v);
        }
        w.u32(self.fields.len() as u32);
        for f in &self.fields {
            let (ni, nj, nk) = f.shape();
            w.u32(ni as u32);
            w.u32(nj as u32);
            w.u32(nk as u32);
            for &v in f.as_slice() {
                w.f64(v);
            }
        }
        let sum = fnv1a(&w.buf);
        w.u64(sum);
        w.buf
    }

    /// Decode a record, detecting its byte order and verifying the
    /// checksum. Returns the checkpoint and the detected order.
    pub fn decode(record: &[u8]) -> Result<(ModelCheckpoint, ByteOrder), CheckpointError> {
        if record.len() < 12 {
            return Err(CheckpointError::Truncated);
        }
        if &record[..4] != MAGIC {
            return Err(CheckpointError::BadMagic(record[..4].try_into().unwrap()));
        }
        let marker = u32::from_le_bytes(record[4..8].try_into().unwrap());
        let order = match marker {
            ENDIAN_MARKER => ByteOrder::Little,
            ENDIAN_MARKER_SWAPPED => ByteOrder::Big,
            other => return Err(CheckpointError::BadEndianMarker(other)),
        };
        let big = order == ByteOrder::Big;
        // Checksum first: a corrupt record must fail fast, not parse.
        if record.len() < 20 {
            return Err(CheckpointError::Truncated);
        }
        let body = &record[..record.len() - 8];
        let trailer: [u8; 8] = record[record.len() - 8..].try_into().unwrap();
        let stored = if big {
            u64::from_be_bytes(trailer)
        } else {
            u64::from_le_bytes(trailer)
        };
        let computed = fnv1a(body);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }
        let mut r = Reader {
            buf: &body[8..],
            big,
        };
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let rank = r.u32()?;
        let world = r.u32()?;
        let step = r.u64()?;
        let n_seeds = r.u32()? as usize;
        let mut seeds = Vec::with_capacity(n_seeds.min(1 << 16));
        for _ in 0..n_seeds {
            seeds.push(r.u64()?);
        }
        let n_scalars = r.u32()? as usize;
        let mut scalars = Vec::with_capacity(n_scalars.min(1 << 16));
        for _ in 0..n_scalars {
            scalars.push(r.f64()?);
        }
        let n_series = r.u32()? as usize;
        let mut series = Vec::with_capacity(n_series.min(1 << 16));
        for _ in 0..n_series {
            series.push(r.f64()?);
        }
        let n_fields = r.u32()? as usize;
        let mut fields = Vec::with_capacity(n_fields.min(1 << 10));
        for _ in 0..n_fields {
            let ni = r.u32()? as usize;
            let nj = r.u32()? as usize;
            let nk = r.u32()? as usize;
            let len = ni
                .checked_mul(nj)
                .and_then(|x| x.checked_mul(nk))
                .ok_or(CheckpointError::Truncated)?;
            // Cheap bound: the record must be able to hold the data it
            // promises, before any allocation.
            if r.buf.len() < len.checked_mul(8).ok_or(CheckpointError::Truncated)? {
                return Err(CheckpointError::Truncated);
            }
            let mut field = Field3D::zeros(ni, nj, nk);
            for v in field.as_mut_slice() {
                *v = r.f64()?;
            }
            fields.push(field);
        }
        if !r.buf.is_empty() {
            return Err(CheckpointError::LengthMismatch {
                expected: record.len() - r.buf.len(),
                found: record.len(),
            });
        }
        Ok((
            ModelCheckpoint {
                rank,
                world,
                step,
                seeds,
                scalars,
                series,
                fields,
            },
            order,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelCheckpoint {
        ModelCheckpoint {
            rank: 3,
            world: 8,
            step: 42,
            seeds: vec![0xDEAD_BEEF, 7],
            scalars: vec![1.0, -0.5],
            series: vec![0.1, 0.2, 0.3],
            fields: vec![
                Field3D::from_fn(4, 3, 2, |i, j, k| (i * 100 + j * 10 + k) as f64),
                Field3D::from_fn(2, 2, 1, |i, j, _| -((i + j) as f64)),
            ],
        }
    }

    #[test]
    fn roundtrip_both_orders() {
        let ckpt = sample();
        for order in [ByteOrder::Little, ByteOrder::Big] {
            let rec = ckpt.encode(order);
            let (back, detected) = ModelCheckpoint::decode(&rec).unwrap();
            assert_eq!(detected, order);
            assert_eq!(back, ckpt);
        }
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let ckpt = ModelCheckpoint {
            rank: 0,
            world: 1,
            step: 0,
            seeds: vec![],
            scalars: vec![],
            series: vec![],
            fields: vec![],
        };
        let rec = ckpt.encode(ByteOrder::Little);
        assert_eq!(ModelCheckpoint::decode(&rec).unwrap().0, ckpt);
    }

    #[test]
    fn bad_magic_detected() {
        let mut rec = sample().encode(ByteOrder::Little);
        rec[0] = b'X';
        assert_eq!(
            ModelCheckpoint::decode(&rec),
            Err(CheckpointError::BadMagic(*b"XGCK"))
        );
    }

    #[test]
    fn bad_marker_detected() {
        let mut rec = sample().encode(ByteOrder::Little);
        rec[4] = 0xFF;
        assert!(matches!(
            ModelCheckpoint::decode(&rec),
            Err(CheckpointError::BadEndianMarker(_))
        ));
    }

    #[test]
    fn bad_version_detected() {
        let ckpt = sample();
        let mut rec = ckpt.encode(ByteOrder::Little);
        rec[8] = 99; // version low byte
                     // Fix the checksum so version is the first failure.
        let sum = fnv1a(&rec[..rec.len() - 8]);
        let n = rec.len();
        rec[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            ModelCheckpoint::decode(&rec),
            Err(CheckpointError::BadVersion(99))
        );
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut rec = sample().encode(ByteOrder::Big);
        let mid = rec.len() / 2;
        rec[mid] ^= 0x10;
        assert!(matches!(
            ModelCheckpoint::decode(&rec),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let rec = sample().encode(ByteOrder::Little);
        for cut in [0, 3, 11, 19, rec.len() - 1] {
            let err = ModelCheckpoint::decode(&rec[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::ChecksumMismatch { .. }
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let ckpt = sample();
        let mut rec = ckpt.encode(ByteOrder::Little);
        // Append extra bytes and refresh the trailer checksum over them so
        // length, not checksum, is the first failure.
        rec.truncate(rec.len() - 8);
        rec.extend_from_slice(&[0u8; 16]);
        let sum = fnv1a(&rec[..rec.len() - 8]);
        let n = rec.len();
        rec[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            ModelCheckpoint::decode(&rec),
            Err(CheckpointError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn encode_is_deterministic() {
        let ckpt = sample();
        assert_eq!(
            ckpt.encode(ByteOrder::Little),
            ckpt.encode(ByteOrder::Little)
        );
        assert_eq!(ckpt.encode(ByteOrder::Big), ckpt.encode(ByteOrder::Big));
    }
}
