//! # agcm-resilience — checkpoint/restart and fault recovery
//!
//! The paper's production runs were long: multi-year simulations at
//! hundreds of node-hours, on machines whose nodes failed. This crate adds
//! the fault-tolerance layer the reproduction needs to run at that scale:
//!
//! * [`checkpoint`] — a versioned, checksummed multi-field model
//!   checkpoint record (dynamics state, physics state, RNG seeds, timestep
//!   counter), extending the single-field history snapshot of
//!   `agcm_grid::history` and sharing its explicit byte-order discipline;
//! * [`coordinator`] — a per-rank shard store with an atomic rename commit
//!   protocol: a checkpoint exists only once every shard is in place and
//!   the `COMMIT` manifest has been published;
//! * [`recovery`] — the restart loop: run under a fault plan, detect rank
//!   deaths (surfaced by `agcm-mps` as typed failures, not panics), resume
//!   from the latest committed checkpoint, and verify nothing by luck —
//!   the model being a deterministic function of (state, step) makes
//!   recovered runs bit-identical to uninterrupted ones;
//! * [`metrics`] — counters aggregating what the fault plane and recovery
//!   loop did.
//!
//! Fault *injection* itself lives in `agcm_mps::fault`, inside the
//! message-passing substrate, so collectives and the model exercise faults
//! without code changes; this crate is the consumer that turns those
//! faults into recoveries.

pub mod checkpoint;
pub mod coordinator;
pub mod metrics;
pub mod recovery;

pub use checkpoint::{CheckpointError, ModelCheckpoint};
pub use coordinator::{write_coordinated, CheckpointStore, ShardBackend, StoreError};
pub use metrics::ResilienceMetrics;
pub use recovery::{
    run_recovered, AttemptFailure, RecoveryError, RecoveryOptions, RunProgress, RunReport,
};
